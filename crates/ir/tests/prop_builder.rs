//! Property tests: every program the structured builder can produce is
//! structurally valid, and the size model behaves monotonically.

use proptest::prelude::*;

use nimage_ir::{BodyBuilder, Program, ProgramBuilder, TypeRef};

/// Random structured control flow: a tree of sequences, ifs and bounded
/// loops over an accumulator local.
#[derive(Debug, Clone)]
enum Stmt {
    AddConst(i8),
    If(Vec<Stmt>, Vec<Stmt>),
    Loop(u8, Vec<Stmt>),
}

fn stmt_strategy() -> impl Strategy<Value = Vec<Stmt>> {
    let leaf = any::<i8>().prop_map(Stmt::AddConst);
    let stmt = leaf.prop_recursive(3, 24, 4, |inner| {
        let block = proptest::collection::vec(inner.clone(), 0..4);
        prop_oneof![
            (block.clone(), block.clone()).prop_map(|(t, e)| Stmt::If(t, e)),
            (1u8..4, block).prop_map(|(n, b)| Stmt::Loop(n, b)),
        ]
    });
    proptest::collection::vec(stmt, 0..6)
}

fn emit(f: &mut BodyBuilder, acc: nimage_ir::Local, stmts: &[Stmt]) {
    for s in stmts {
        match s {
            Stmt::AddConst(c) => {
                let v = f.iconst(i64::from(*c));
                let n = f.add(acc, v);
                f.assign(acc, n);
            }
            Stmt::If(t, e) => {
                let zero = f.iconst(0);
                let cond = f.ge(acc, zero);
                f.if_then_else(cond, |f| emit(f, acc, t), |f| emit(f, acc, e));
            }
            Stmt::Loop(n, b) => {
                let from = f.iconst(0);
                let to = f.iconst(i64::from(*n));
                f.for_range(from, to, |f, _i| emit(f, acc, b));
            }
        }
    }
}

fn build(stmts: &[Stmt]) -> Program {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("prop.P", None);
    let m = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(m);
    let acc = f.iconst(0);
    emit(&mut f, acc, stmts);
    f.ret(Some(acc));
    pb.finish_body(m, f);
    pb.set_entry(m);
    pb.build().expect("structured builders always validate")
}

proptest! {
    /// The builder's structured helpers can never produce an invalid body.
    #[test]
    fn structured_bodies_always_validate(stmts in stmt_strategy()) {
        let p = build(&stmts);
        // Block 0 exists and every block has a terminator by construction;
        // validation re-checks everything.
        prop_assert!(!p.method(p.entry.unwrap()).blocks.is_empty());
    }

    /// Adding statements never shrinks the code size.
    #[test]
    fn code_size_is_monotone_in_statements(stmts in stmt_strategy(), extra in any::<i8>()) {
        let base = build(&stmts);
        let mut bigger_stmts = stmts.clone();
        bigger_stmts.push(Stmt::AddConst(extra));
        let bigger = build(&bigger_stmts);
        prop_assert!(bigger.total_code_size() >= base.total_code_size());
    }

    /// Signatures are unique per method and stable across rebuilds of the
    /// same source.
    #[test]
    fn signatures_are_stable_and_unique(stmts in stmt_strategy()) {
        let a = build(&stmts);
        let b = build(&stmts);
        let sigs_a: Vec<String> = (0..a.methods().len())
            .map(|i| a.method_signature(nimage_ir::MethodId(i as u32)))
            .collect();
        let sigs_b: Vec<String> = (0..b.methods().len())
            .map(|i| b.method_signature(nimage_ir::MethodId(i as u32)))
            .collect();
        prop_assert_eq!(&sigs_a, &sigs_b);
        let set: std::collections::HashSet<_> = sigs_a.iter().collect();
        prop_assert_eq!(set.len(), sigs_a.len());
    }
}
