//! Ergonomic construction of programs, classes and method bodies.

use crate::instr::{BinOp, Callee, Instr, Intrinsic, Terminator, UnOp};
use crate::program::{Class, Field, Method, MethodKind, Program, Resource, SelectorId};
use crate::types::{BlockId, ClassId, FieldId, Local, MethodId, TypeRef};
use crate::validate::{validate, ValidateError};

/// Builder for a [`Program`].
///
/// Classes, fields and methods are declared up front (so that bodies can
/// reference them, including recursively); bodies are then attached with
/// [`ProgramBuilder::body`] / [`ProgramBuilder::finish_body`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
    next_init_group: u32,
}

impl ProgramBuilder {
    /// Creates an empty program builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a class. Class names must be unique.
    ///
    /// # Panics
    /// Panics if the class name was already declared.
    pub fn add_class(&mut self, name: &str, superclass: Option<ClassId>) -> ClassId {
        assert!(
            !self.program.class_map.contains_key(name),
            "duplicate class name {name}"
        );
        let id = ClassId::from(self.program.classes.len());
        let group = self.next_init_group;
        self.next_init_group += 1;
        self.program.classes.push(Class {
            name: name.to_string(),
            superclass,
            instance_fields: vec![],
            static_fields: vec![],
            methods: vec![],
            clinit: None,
            init_group: group,
        });
        self.program.class_map.insert(name.to_string(), id);
        id
    }

    /// Puts a class into an explicit parallel-initialization group.
    ///
    /// Classes sharing a group may have their `<clinit>` run in a
    /// build-dependent order (see `nimage-heap`).
    pub fn set_init_group(&mut self, class: ClassId, group: u32) {
        self.program.classes[class.index()].init_group = group;
        self.next_init_group = self.next_init_group.max(group + 1);
    }

    /// Declares an instance field on `class`.
    pub fn add_instance_field(&mut self, class: ClassId, name: &str, ty: TypeRef) -> FieldId {
        let id = FieldId::from(self.program.fields.len());
        self.program.fields.push(Field {
            name: name.to_string(),
            owner: class,
            ty,
            is_static: false,
        });
        self.program.classes[class.index()].instance_fields.push(id);
        id
    }

    /// Declares a static field on `class`.
    pub fn add_static_field(&mut self, class: ClassId, name: &str, ty: TypeRef) -> FieldId {
        let id = FieldId::from(self.program.fields.len());
        self.program.fields.push(Field {
            name: name.to_string(),
            owner: class,
            ty,
            is_static: true,
        });
        self.program.classes[class.index()].static_fields.push(id);
        id
    }

    /// Interns a selector (method name + arity) for virtual dispatch.
    pub fn intern_selector(&mut self, name: &str, arity: usize) -> SelectorId {
        let key = format!("{name}/{arity}");
        if let Some(&s) = self.program.selector_map.get(&key) {
            return s;
        }
        let id = SelectorId(self.program.selectors.len() as u32);
        self.program.selectors.push(key.clone());
        self.program.selector_map.insert(key, id);
        id
    }

    fn declare(
        &mut self,
        class: ClassId,
        name: &str,
        kind: MethodKind,
        params: &[TypeRef],
        ret: Option<TypeRef>,
    ) -> MethodId {
        let selector = self.intern_selector(name, params.len());
        let id = MethodId::from(self.program.methods.len());
        self.program.methods.push(Method {
            name: name.to_string(),
            owner: class,
            kind,
            params: params.to_vec(),
            ret,
            n_locals: 0,
            blocks: vec![],
            selector,
        });
        self.program.classes[class.index()].methods.push(id);
        id
    }

    /// Declares a static method; attach the body later with [`Self::body`].
    pub fn declare_static(
        &mut self,
        class: ClassId,
        name: &str,
        params: &[TypeRef],
        ret: Option<TypeRef>,
    ) -> MethodId {
        self.declare(class, name, MethodKind::Static, params, ret)
    }

    /// Declares a virtual (instance) method. `this` will be local 0.
    pub fn declare_virtual(
        &mut self,
        class: ClassId,
        name: &str,
        params: &[TypeRef],
        ret: Option<TypeRef>,
    ) -> MethodId {
        self.declare(class, name, MethodKind::Virtual, params, ret)
    }

    /// Declares the class initializer of `class`.
    ///
    /// # Panics
    /// Panics if the class already has an initializer.
    pub fn declare_clinit(&mut self, class: ClassId) -> MethodId {
        assert!(
            self.program.classes[class.index()].clinit.is_none(),
            "class {} already has a <clinit>",
            self.program.classes[class.index()].name
        );
        let id = self.declare(class, "<clinit>", MethodKind::ClassInit, &[], None);
        self.program.classes[class.index()].clinit = Some(id);
        id
    }

    /// Starts building the body of a previously declared method.
    pub fn body(&self, method: MethodId) -> BodyBuilder {
        BodyBuilder::new(self.program.method(method).param_locals())
    }

    /// Attaches a finished body to a method.
    ///
    /// # Panics
    /// Panics if the body has unterminated blocks.
    pub fn finish_body(&mut self, method: MethodId, body: BodyBuilder) {
        let (blocks, n_locals) = body.finish();
        let m = &mut self.program.methods[method.index()];
        m.blocks = blocks;
        m.n_locals = n_locals;
    }

    /// Sets the program entry point (must be a static method).
    pub fn set_entry(&mut self, method: MethodId) {
        self.program.entry = Some(method);
    }

    /// Embeds a build-time resource (becomes a `Resource` heap root).
    pub fn add_resource(&mut self, name: &str, size: u32) {
        self.program.resources.push(Resource {
            name: name.to_string(),
            size,
        });
    }

    /// Read-only view of the program built so far (bodies may be missing).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Validates and returns the finished program.
    ///
    /// # Errors
    /// Returns a [`ValidateError`] describing the first structural problem
    /// found (missing body, dangling block reference, out-of-range local…).
    pub fn build(self) -> Result<Program, ValidateError> {
        validate(&self.program)?;
        Ok(self.program)
    }
}

/// Builder for one method body.
///
/// Maintains a current basic block; straight-line emission helpers append to
/// it, and the structured helpers ([`BodyBuilder::if_then_else`],
/// [`BodyBuilder::while_loop`], [`BodyBuilder::for_range`]) manage block
/// creation and termination. Each value-producing helper allocates and
/// returns a fresh local.
#[derive(Debug)]
pub struct BodyBuilder {
    next_local: u16,
    blocks: Vec<Option<crate::instr::Block>>,
    current: Option<BlockId>,
    current_instrs: Vec<Instr>,
}

impl BodyBuilder {
    fn new(n_params: u16) -> Self {
        BodyBuilder {
            next_local: n_params,
            blocks: vec![None],
            current: Some(BlockId(0)),
            current_instrs: vec![],
        }
    }

    /// Allocates a fresh local register.
    pub fn local(&mut self) -> Local {
        let l = Local(self.next_local);
        self.next_local = self.next_local.checked_add(1).expect("too many locals");
        l
    }

    /// The local holding parameter `i` (for virtual methods, parameter 0 is
    /// at local 1 because `this` occupies local 0 — use [`Self::this`]).
    pub fn param(&self, i: u16) -> Local {
        Local(i)
    }

    /// The `this` receiver of a virtual method (local 0).
    pub fn this(&self) -> Local {
        Local(0)
    }

    /// Reserves a new, not-yet-built basic block.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(None);
        BlockId::from(self.blocks.len() - 1)
    }

    /// Begins emitting into block `b`.
    ///
    /// # Panics
    /// Panics if the current block is unterminated or `b` was already built.
    pub fn switch_to(&mut self, b: BlockId) {
        assert!(
            self.current.is_none(),
            "switch_to while block {:?} is unterminated",
            self.current
        );
        assert!(
            self.blocks[b.index()].is_none(),
            "block {b} was already built"
        );
        self.current = Some(b);
    }

    /// Whether the current block has been terminated (e.g. the last emitted
    /// statement was a `ret` inside a structured-control-flow closure).
    pub fn is_terminated(&self) -> bool {
        self.current.is_none()
    }

    /// Appends a raw instruction to the current block.
    ///
    /// # Panics
    /// Panics if the current block has already been terminated.
    pub fn emit(&mut self, i: Instr) {
        assert!(self.current.is_some(), "emit after terminator");
        self.current_instrs.push(i);
    }

    fn terminate(&mut self, t: Terminator) {
        let cur = self.current.take().expect("terminate after terminator");
        self.blocks[cur.index()] = Some(crate::instr::Block {
            instrs: std::mem::take(&mut self.current_instrs),
            terminator: t,
        });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Local>) {
        self.terminate(Terminator::Ret(value));
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.terminate(Terminator::Jump(target));
    }

    /// Terminates the current block with a conditional branch.
    pub fn br(&mut self, cond: Local, then_blk: BlockId, else_blk: BlockId) {
        self.terminate(Terminator::Br {
            cond,
            then_blk,
            else_blk,
        });
    }

    // ---- value helpers ---------------------------------------------------

    fn with_dst(&mut self, make: impl FnOnce(Local) -> Instr) -> Local {
        let dst = self.local();
        let i = make(dst);
        self.emit(i);
        dst
    }

    /// `dst = <int literal>`
    pub fn iconst(&mut self, v: i64) -> Local {
        self.with_dst(|d| Instr::ConstInt(d, v))
    }

    /// `dst = <double literal>`
    pub fn dconst(&mut self, v: f64) -> Local {
        self.with_dst(|d| Instr::ConstDouble(d, v))
    }

    /// `dst = <bool literal>`
    pub fn bconst(&mut self, v: bool) -> Local {
        self.with_dst(|d| Instr::ConstBool(d, v))
    }

    /// `dst = "literal"` (interned string)
    pub fn sconst(&mut self, v: &str) -> Local {
        let s = v.to_string();
        self.with_dst(|d| Instr::ConstStr(d, s))
    }

    /// `dst = null`
    pub fn null(&mut self) -> Local {
        self.with_dst(Instr::ConstNull)
    }

    /// `dst = src` into a fresh local.
    pub fn copy(&mut self, src: Local) -> Local {
        self.with_dst(|d| Instr::Move(d, src))
    }

    /// `dst = src` into an existing local.
    pub fn assign(&mut self, dst: Local, src: Local) {
        self.emit(Instr::Move(dst, src));
    }

    /// `dst = a <op> b`
    pub fn bin(&mut self, op: BinOp, a: Local, b: Local) -> Local {
        self.with_dst(|d| Instr::Bin(op, d, a, b))
    }

    /// `dst = <op> a`
    pub fn un(&mut self, op: UnOp, a: Local) -> Local {
        self.with_dst(|d| Instr::Un(op, d, a))
    }

    /// `dst = new C` (no constructor is run).
    pub fn new_object(&mut self, class: ClassId) -> Local {
        self.with_dst(|d| Instr::New(d, class))
    }

    /// `dst = new elem[len]`
    pub fn new_array(&mut self, elem: TypeRef, len: Local) -> Local {
        self.with_dst(|d| Instr::NewArray(d, elem, len))
    }

    /// `dst = obj.field`
    pub fn get_field(&mut self, obj: Local, field: FieldId) -> Local {
        self.with_dst(|d| Instr::GetField(d, obj, field))
    }

    /// `obj.field = src`
    pub fn put_field(&mut self, obj: Local, field: FieldId, src: Local) {
        self.emit(Instr::PutField(obj, field, src));
    }

    /// `dst = C.field`
    pub fn get_static(&mut self, field: FieldId) -> Local {
        self.with_dst(|d| Instr::GetStatic(d, field))
    }

    /// `C.field = src`
    pub fn put_static(&mut self, field: FieldId, src: Local) {
        self.emit(Instr::PutStatic(field, src));
    }

    /// `dst = arr[idx]`
    pub fn array_get(&mut self, arr: Local, idx: Local) -> Local {
        self.with_dst(|d| Instr::ArrayGet(d, arr, idx))
    }

    /// `arr[idx] = src`
    pub fn array_set(&mut self, arr: Local, idx: Local, src: Local) {
        self.emit(Instr::ArraySet(arr, idx, src));
    }

    /// `dst = arr.length`
    pub fn array_len(&mut self, arr: Local) -> Local {
        self.with_dst(|d| Instr::ArrayLen(d, arr))
    }

    /// `dst = s.length()`
    pub fn str_len(&mut self, s: Local) -> Local {
        self.with_dst(|d| Instr::StrLen(d, s))
    }

    /// `dst = s.charAt(i)`
    pub fn str_char_at(&mut self, s: Local, i: Local) -> Local {
        self.with_dst(|d| Instr::StrCharAt(d, s, i))
    }

    /// `dst = a ++ b`
    pub fn str_concat(&mut self, a: Local, b: Local) -> Local {
        self.with_dst(|d| Instr::StrConcat(d, a, b))
    }

    /// Direct call to a static method or constructor-like helper.
    ///
    /// Returns the destination local if the callee returns a value.
    pub fn call_static(
        &mut self,
        method: MethodId,
        args: &[Local],
        has_ret: bool,
    ) -> Option<Local> {
        let dst = if has_ret { Some(self.local()) } else { None };
        self.emit(Instr::Call {
            dst,
            callee: Callee::Static(method),
            args: args.to_vec(),
        });
        dst
    }

    /// Virtual call; `args[0]` must be the receiver.
    pub fn call_virtual(
        &mut self,
        declared: ClassId,
        selector: SelectorId,
        args: &[Local],
        has_ret: bool,
    ) -> Option<Local> {
        let dst = if has_ret { Some(self.local()) } else { None };
        self.emit(Instr::Call {
            dst,
            callee: Callee::Virtual { declared, selector },
            args: args.to_vec(),
        });
        dst
    }

    /// Emits an intrinsic operation.
    pub fn intrinsic(&mut self, op: Intrinsic, args: &[Local], has_ret: bool) -> Option<Local> {
        let dst = if has_ret { Some(self.local()) } else { None };
        self.emit(Instr::Intrinsic {
            dst,
            op,
            args: args.to_vec(),
        });
        dst
    }

    /// Spawns a thread running a static method.
    pub fn spawn(&mut self, method: MethodId, args: &[Local]) {
        self.emit(Instr::Spawn {
            method,
            args: args.to_vec(),
        });
    }

    // ---- arithmetic sugar ------------------------------------------------

    /// `a + b`
    pub fn add(&mut self, a: Local, b: Local) -> Local {
        self.bin(BinOp::Add, a, b)
    }
    /// `a - b`
    pub fn sub(&mut self, a: Local, b: Local) -> Local {
        self.bin(BinOp::Sub, a, b)
    }
    /// `a * b`
    pub fn mul(&mut self, a: Local, b: Local) -> Local {
        self.bin(BinOp::Mul, a, b)
    }
    /// `a / b`
    pub fn div(&mut self, a: Local, b: Local) -> Local {
        self.bin(BinOp::Div, a, b)
    }
    /// `a % b`
    pub fn rem(&mut self, a: Local, b: Local) -> Local {
        self.bin(BinOp::Rem, a, b)
    }
    /// `a < b`
    pub fn lt(&mut self, a: Local, b: Local) -> Local {
        self.bin(BinOp::Lt, a, b)
    }
    /// `a <= b`
    pub fn le(&mut self, a: Local, b: Local) -> Local {
        self.bin(BinOp::Le, a, b)
    }
    /// `a > b`
    pub fn gt(&mut self, a: Local, b: Local) -> Local {
        self.bin(BinOp::Gt, a, b)
    }
    /// `a >= b`
    pub fn ge(&mut self, a: Local, b: Local) -> Local {
        self.bin(BinOp::Ge, a, b)
    }
    /// `a == b`
    pub fn eq(&mut self, a: Local, b: Local) -> Local {
        self.bin(BinOp::Eq, a, b)
    }
    /// `a != b`
    pub fn ne(&mut self, a: Local, b: Local) -> Local {
        self.bin(BinOp::Ne, a, b)
    }

    // ---- structured control flow ------------------------------------------

    /// `if (cond) { then } else { otherwise }` with an implicit join.
    ///
    /// Either branch may terminate itself (e.g. with [`Self::ret`]); the
    /// join block is entered only from branches that fall through. If both
    /// branches terminate, the builder is left terminated.
    pub fn if_then_else(
        &mut self,
        cond: Local,
        then: impl FnOnce(&mut Self),
        otherwise: impl FnOnce(&mut Self),
    ) {
        let then_blk = self.new_block();
        let else_blk = self.new_block();
        let join = self.new_block();
        self.br(cond, then_blk, else_blk);

        self.switch_to(then_blk);
        then(self);
        let then_falls = !self.is_terminated();
        if then_falls {
            self.jump(join);
        }

        self.switch_to(else_blk);
        otherwise(self);
        let else_falls = !self.is_terminated();
        if else_falls {
            self.jump(join);
        }

        if then_falls || else_falls {
            self.switch_to(join);
        } else {
            // Join is unreachable; give it a dummy terminator so the body is
            // complete, but nothing branches to it.
            self.switch_to(join);
            self.ret(None);
        }
    }

    /// `if (cond) { then }`
    pub fn if_then(&mut self, cond: Local, then: impl FnOnce(&mut Self)) {
        self.if_then_else(cond, then, |_| {});
    }

    /// `while (cond()) { body() }`
    ///
    /// `cond` is re-evaluated in the loop header on every iteration and must
    /// return the boolean local to branch on.
    pub fn while_loop(
        &mut self,
        cond: impl FnOnce(&mut Self) -> Local,
        body: impl FnOnce(&mut Self),
    ) {
        let header = self.new_block();
        let body_blk = self.new_block();
        let exit = self.new_block();
        self.jump(header);

        self.switch_to(header);
        let c = cond(self);
        self.br(c, body_blk, exit);

        self.switch_to(body_blk);
        body(self);
        if !self.is_terminated() {
            self.jump(header);
        }

        self.switch_to(exit);
    }

    /// `for (i = from; i < to; i++) { body(i) }`
    ///
    /// `from` and `to` are evaluated once, before the loop.
    pub fn for_range(&mut self, from: Local, to: Local, body: impl FnOnce(&mut Self, Local)) {
        let i = self.local();
        self.assign(i, from);
        let bound = self.copy(to);
        self.while_loop(
            |f| f.lt(i, bound),
            |f| {
                body(f, i);
                if !f.is_terminated() {
                    let one = f.iconst(1);
                    let next = f.add(i, one);
                    f.assign(i, next);
                }
            },
        );
    }

    fn finish(self) -> (Vec<crate::instr::Block>, u16) {
        assert!(
            self.current.is_none(),
            "method body finished with unterminated block {:?}",
            self.current
        );
        let blocks = self
            .blocks
            .into_iter()
            .enumerate()
            .map(|(i, b)| b.unwrap_or_else(|| panic!("block b{i} reserved but never built")))
            .collect();
        (blocks, self.next_local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeRef;

    fn simple_program() -> (ProgramBuilder, MethodId) {
        let mut pb = ProgramBuilder::new();
        let cls = pb.add_class("t.Main", None);
        let main = pb.declare_static(cls, "main", &[], Some(TypeRef::Int));
        (pb, main)
    }

    #[test]
    fn straight_line_body() {
        let (mut pb, main) = simple_program();
        let mut f = pb.body(main);
        let a = f.iconst(1);
        let b = f.iconst(2);
        let c = f.add(a, b);
        f.ret(Some(c));
        pb.finish_body(main, f);
        pb.set_entry(main);
        let p = pb.build().unwrap();
        assert_eq!(p.method(main).blocks.len(), 1);
        assert_eq!(p.method(main).n_locals, 3);
    }

    #[test]
    fn if_then_else_builds_join() {
        let (mut pb, main) = simple_program();
        let mut f = pb.body(main);
        let c = f.bconst(true);
        let out = f.local();
        f.if_then_else(
            c,
            |f| {
                let v = f.iconst(1);
                f.assign(out, v);
            },
            |f| {
                let v = f.iconst(2);
                f.assign(out, v);
            },
        );
        f.ret(Some(out));
        pb.finish_body(main, f);
        let p = pb.build().unwrap();
        // entry + then + else + join
        assert_eq!(p.method(main).blocks.len(), 4);
    }

    #[test]
    fn if_with_early_return_in_both_branches() {
        let (mut pb, main) = simple_program();
        let mut f = pb.body(main);
        let c = f.bconst(false);
        f.if_then_else(
            c,
            |f| {
                let v = f.iconst(1);
                f.ret(Some(v));
            },
            |f| {
                let v = f.iconst(2);
                f.ret(Some(v));
            },
        );
        assert!(f.is_terminated());
        pb.finish_body(main, f);
        pb.build().unwrap();
    }

    #[test]
    fn while_loop_shape() {
        let (mut pb, main) = simple_program();
        let mut f = pb.body(main);
        let i = f.iconst(0);
        let n = f.iconst(10);
        f.while_loop(
            |f| f.lt(i, n),
            |f| {
                let one = f.iconst(1);
                let next = f.add(i, one);
                f.assign(i, next);
            },
        );
        f.ret(Some(i));
        pb.finish_body(main, f);
        let p = pb.build().unwrap();
        // entry + header + body + exit
        assert_eq!(p.method(main).blocks.len(), 4);
    }

    #[test]
    fn for_range_counts() {
        let (mut pb, main) = simple_program();
        let mut f = pb.body(main);
        let from = f.iconst(0);
        let to = f.iconst(5);
        let acc = f.iconst(0);
        f.for_range(from, to, |f, i| {
            let next = f.add(acc, i);
            f.assign(acc, next);
        });
        f.ret(Some(acc));
        pb.finish_body(main, f);
        pb.build().unwrap();
    }

    #[test]
    #[should_panic(expected = "emit after terminator")]
    fn emit_after_ret_panics() {
        let (pb, main) = simple_program();
        let mut f = pb.body(main);
        f.ret(None);
        f.iconst(1);
    }

    #[test]
    #[should_panic(expected = "duplicate class name")]
    fn duplicate_class_panics() {
        let mut pb = ProgramBuilder::new();
        pb.add_class("t.A", None);
        pb.add_class("t.A", None);
    }

    #[test]
    fn selectors_are_interned_by_name_and_arity() {
        let mut pb = ProgramBuilder::new();
        let s1 = pb.intern_selector("run", 1);
        let s2 = pb.intern_selector("run", 1);
        let s3 = pb.intern_selector("run", 2);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn virtual_methods_reserve_this() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.add_class("t.A", None);
        let m = pb.declare_virtual(cls, "f", &[TypeRef::Int], Some(TypeRef::Int));
        let mut f = pb.body(m);
        // local 0 = this, local 1 = first param
        let p0 = f.param(1);
        f.ret(Some(p0));
        pb.finish_body(m, f);
        let p = pb.build().unwrap();
        assert_eq!(p.method(m).param_locals(), 2);
    }

    #[test]
    fn missing_body_is_a_build_error() {
        let (pb, _) = simple_program();
        assert!(matches!(
            pb.build(),
            Err(crate::ValidateError::MissingBody { .. })
        ));
    }
}
