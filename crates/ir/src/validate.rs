//! Structural validation of finished programs.

use std::error::Error;
use std::fmt;

use crate::instr::{Callee, Instr};
use crate::program::{MethodKind, Program};
use crate::types::{BlockId, Local, MethodId};

/// A structural defect found during program validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A method was declared but no body was attached.
    MissingBody {
        /// Signature of the offending method.
        method: String,
    },
    /// A terminator referenced a block index that does not exist.
    DanglingBlock {
        /// Signature of the offending method.
        method: String,
        /// Block containing the bad terminator.
        from: BlockId,
        /// The nonexistent target.
        target: BlockId,
    },
    /// An instruction referenced a local ≥ `n_locals`.
    LocalOutOfRange {
        /// Signature of the offending method.
        method: String,
        /// The out-of-range local.
        local: Local,
        /// The method's local count.
        n_locals: u16,
    },
    /// A call referenced a method id that does not exist.
    BadMethodRef {
        /// Signature of the calling method.
        method: String,
        /// The nonexistent callee id.
        callee: MethodId,
    },
    /// A field access referenced a field id that does not exist, or used a
    /// static accessor on an instance field (or vice versa).
    BadFieldRef {
        /// Signature of the offending method.
        method: String,
        /// Description of the problem.
        detail: String,
    },
    /// The program entry point is missing or not a static method.
    BadEntry,
    /// A class's superclass chain contains a cycle.
    InheritanceCycle {
        /// Name of a class on the cycle.
        class: String,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::MissingBody { method } => {
                write!(f, "method {method} has no body")
            }
            ValidateError::DanglingBlock {
                method,
                from,
                target,
            } => write!(f, "method {method}: {from} jumps to nonexistent {target}"),
            ValidateError::LocalOutOfRange {
                method,
                local,
                n_locals,
            } => write!(
                f,
                "method {method}: {local} out of range (n_locals = {n_locals})"
            ),
            ValidateError::BadMethodRef { method, callee } => {
                write!(f, "method {method}: call to nonexistent {callee}")
            }
            ValidateError::BadFieldRef { method, detail } => {
                write!(f, "method {method}: {detail}")
            }
            ValidateError::BadEntry => write!(f, "entry point missing or not a static method"),
            ValidateError::InheritanceCycle { class } => {
                write!(f, "inheritance cycle through class {class}")
            }
        }
    }
}

impl Error for ValidateError {}

/// Validates the structural invariants of a program.
///
/// # Errors
/// Returns the first [`ValidateError`] found.
pub fn validate(p: &Program) -> Result<(), ValidateError> {
    // Inheritance must be acyclic.
    for (i, _) in p.classes().iter().enumerate() {
        let start = crate::types::ClassId::from(i);
        let mut slow = Some(start);
        let mut fast = p.class(start).superclass;
        while let (Some(s), Some(fa)) = (slow, fast) {
            if s == fa {
                return Err(ValidateError::InheritanceCycle {
                    class: p.class(s).name.clone(),
                });
            }
            slow = p.class(s).superclass;
            fast = p.class(fa).superclass.and_then(|c| p.class(c).superclass);
        }
    }

    for (mi, m) in p.methods().iter().enumerate() {
        let mid = MethodId::from(mi);
        let sig = p.method_signature(mid);
        if m.blocks.is_empty() {
            return Err(ValidateError::MissingBody { method: sig });
        }
        let n_blocks = m.blocks.len();
        let check_local = |l: Local| -> Result<(), ValidateError> {
            if l.index() >= m.n_locals as usize {
                Err(ValidateError::LocalOutOfRange {
                    method: p.method_signature(mid),
                    local: l,
                    n_locals: m.n_locals,
                })
            } else {
                Ok(())
            }
        };
        for b in &m.blocks {
            for t in b.terminator.successors() {
                if t.index() >= n_blocks {
                    return Err(ValidateError::DanglingBlock {
                        method: sig.clone(),
                        from: BlockId(0),
                        target: t,
                    });
                }
            }
            if let crate::instr::Terminator::Br { cond, .. } = b.terminator {
                check_local(cond)?;
            }
            if let crate::instr::Terminator::Ret(Some(v)) = b.terminator {
                check_local(v)?;
            }
            for ins in &b.instrs {
                if let Some(d) = ins.dst() {
                    check_local(d)?;
                }
                for s in ins.sources() {
                    check_local(s)?;
                }
                match ins {
                    Instr::Call {
                        callee: Callee::Static(c),
                        ..
                    } if c.index() >= p.methods().len() => {
                        return Err(ValidateError::BadMethodRef {
                            method: sig.clone(),
                            callee: *c,
                        });
                    }
                    Instr::Spawn { method, .. } if method.index() >= p.methods().len() => {
                        return Err(ValidateError::BadMethodRef {
                            method: sig.clone(),
                            callee: *method,
                        });
                    }
                    Instr::GetField(_, _, fid) | Instr::PutField(_, fid, _) => {
                        check_field(p, &sig, *fid, false)?;
                    }
                    Instr::GetStatic(_, fid) | Instr::PutStatic(fid, _) => {
                        check_field(p, &sig, *fid, true)?;
                    }
                    _ => {}
                }
            }
        }
    }

    if let Some(e) = p.entry {
        if e.index() >= p.methods().len() || p.method(e).kind != MethodKind::Static {
            return Err(ValidateError::BadEntry);
        }
    }
    Ok(())
}

fn check_field(
    p: &Program,
    method_sig: &str,
    fid: crate::types::FieldId,
    want_static: bool,
) -> Result<(), ValidateError> {
    if fid.index() >= p.fields().len() {
        return Err(ValidateError::BadFieldRef {
            method: method_sig.to_string(),
            detail: format!("nonexistent field {fid}"),
        });
    }
    let f = p.field(fid);
    if f.is_static != want_static {
        return Err(ValidateError::BadFieldRef {
            method: method_sig.to_string(),
            detail: format!(
                "field {} is {} but accessed as {}",
                p.field_signature(fid),
                if f.is_static { "static" } else { "instance" },
                if want_static { "static" } else { "instance" },
            ),
        });
    }
    Ok(())
}
