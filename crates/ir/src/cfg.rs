//! Control-flow-graph utilities over method bodies.
//!
//! Every dataflow client (the `nimage-verify` worklist solver, the
//! compiler's inliner heuristics) needs the same three derived views of a
//! [`Method`]: predecessor/successor lists, entry-reachability, and a
//! reverse post-order for fast fixpoint convergence. [`Cfg`] computes all
//! of them in one pass so callers stop re-deriving them ad hoc.

use crate::program::Method;

/// Derived control-flow structure of one method body.
///
/// Blocks are addressed by their index in `Method::blocks`. Predecessor
/// edges are recorded only from entry-reachable blocks: an unreachable
/// block never contributes facts to a dataflow join, matching the lint
/// policy of analyzing reachable code only.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Per-block predecessors (entry-reachable sources only).
    pub preds: Vec<Vec<usize>>,
    /// Per-block successors, straight from the terminator.
    pub succs: Vec<Vec<usize>>,
    /// Whether each block is reachable from the entry block.
    pub reachable: Vec<bool>,
    /// Entry-reachable blocks in reverse post-order of a depth-first walk
    /// from the entry block. Forward analyses converge fastest visiting
    /// blocks in this order; backward analyses use it reversed.
    pub rpo: Vec<usize>,
}

impl Cfg {
    /// Computes the CFG views of `method`. An empty body yields empty
    /// views.
    pub fn new(method: &Method) -> Cfg {
        let n = method.blocks.len();
        let mut succs: Vec<Vec<usize>> = vec![vec![]; n];
        for (b, block) in method.blocks.iter().enumerate() {
            succs[b] = block
                .terminator
                .successors()
                .iter()
                .map(|s| s.index())
                .collect();
        }

        // Iterative DFS from the entry block, recording the post-order.
        let mut reachable = vec![false; n];
        let mut post: Vec<usize> = Vec::new();
        if n > 0 {
            // (block, next successor index to visit)
            let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
            reachable[0] = true;
            while let Some(&mut (b, ref mut next)) = stack.last_mut() {
                if let Some(&s) = succs[b].get(*next) {
                    *next += 1;
                    if !reachable[s] {
                        reachable[s] = true;
                        stack.push((s, 0));
                    }
                } else {
                    post.push(b);
                    stack.pop();
                }
            }
        }
        let rpo: Vec<usize> = post.into_iter().rev().collect();

        let mut preds: Vec<Vec<usize>> = vec![vec![]; n];
        for (b, r) in reachable.iter().enumerate() {
            if *r {
                for &s in &succs[b] {
                    preds[s].push(b);
                }
            }
        }

        Cfg {
            preds,
            succs,
            reachable,
            rpo,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProgramBuilder, TypeRef};

    #[test]
    fn diamond_cfg_views() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.C", None);
        let flag = pb.add_static_field(c, "F", TypeRef::Bool);
        let main = pb.declare_static(c, "main", &[], None);
        let mut f = pb.body(main);
        let cond = f.get_static(flag);
        let t = f.new_block();
        let e = f.new_block();
        let j = f.new_block();
        f.br(cond, t, e);
        f.switch_to(t);
        f.jump(j);
        f.switch_to(e);
        f.jump(j);
        f.switch_to(j);
        f.ret(None);
        pb.finish_body(main, f);
        pb.set_entry(main);
        let p = pb.build().unwrap();
        let cfg = Cfg::new(&p.methods()[0]);

        assert_eq!(cfg.succs[0].len(), 2);
        assert_eq!(cfg.preds[j.index()].len(), 2);
        assert!(cfg.reachable.iter().all(|&r| r));
        // RPO starts at the entry and ends at the join.
        assert_eq!(cfg.rpo.first(), Some(&0));
        assert_eq!(cfg.rpo.last(), Some(&j.index()));
        assert_eq!(cfg.rpo.len(), 4);
    }

    #[test]
    fn unreachable_block_excluded_from_rpo_and_preds() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.C", None);
        let main = pb.declare_static(c, "main", &[], None);
        let mut f = pb.body(main);
        f.ret(None);
        let island = f.new_block();
        f.switch_to(island);
        f.jump(nimage_block(0));
        pb.finish_body(main, f);
        pb.set_entry(main);
        let p = pb.build().unwrap();
        let cfg = Cfg::new(&p.methods()[0]);

        assert!(!cfg.reachable[island.index()]);
        assert!(!cfg.rpo.contains(&island.index()));
        // The island's edge into b0 is not recorded as a predecessor.
        assert!(cfg.preds[0].is_empty());
    }

    fn nimage_block(i: u32) -> crate::BlockId {
        crate::BlockId(i)
    }
}
