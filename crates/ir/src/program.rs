//! Program, class, field and method definitions plus virtual-dispatch
//! resolution.

use std::collections::BTreeMap;
use std::fmt;

use crate::instr::Block;
use crate::types::{ClassId, FieldId, MethodId, TypeRef};

/// An interned method selector (method name + arity), the unit of virtual
/// dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SelectorId(pub u32);

impl SelectorId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How a method may be invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// Static method; parameters start at local 0.
    Static,
    /// Instance method dispatched virtually; `this` is local 0.
    Virtual,
    /// Class initializer, run once at image build time by `nimage-heap`.
    ClassInit,
}

/// A field declaration (static or instance).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Simple field name, unique within the declaring class.
    pub name: String,
    /// Declaring class.
    pub owner: ClassId,
    /// Declared (static) type.
    pub ty: TypeRef,
    /// Whether the field is static.
    pub is_static: bool,
}

/// A class declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Class {
    /// Fully qualified name, e.g. `"awfy.bounce.Ball"`. Unique per program,
    /// which is what makes types identifiable across builds (Sec. 5.1).
    pub name: String,
    /// Superclass, if any. Single inheritance.
    pub superclass: Option<ClassId>,
    /// Instance fields declared by this class (not including inherited ones).
    pub instance_fields: Vec<FieldId>,
    /// Static fields declared by this class.
    pub static_fields: Vec<FieldId>,
    /// Methods declared by this class.
    pub methods: Vec<MethodId>,
    /// The class initializer, if the class has one.
    pub clinit: Option<MethodId>,
    /// Parallel-initialization group. Classes sharing a group may have their
    /// initializers run in a build-dependent order, modelling the
    /// non-determinism of parallel class initialization described in Sec. 2.
    pub init_group: u32,
}

/// A method definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Method {
    /// Simple method name.
    pub name: String,
    /// Declaring class.
    pub owner: ClassId,
    /// Invocation kind.
    pub kind: MethodKind,
    /// Declared parameter types (excluding the implicit `this`).
    pub params: Vec<TypeRef>,
    /// Return type, if the method returns a value.
    pub ret: Option<TypeRef>,
    /// Number of locals (registers), including parameters and `this`.
    pub n_locals: u16,
    /// Basic blocks; block 0 is the entry block.
    pub blocks: Vec<Block>,
    /// Interned selector for virtual dispatch.
    pub selector: SelectorId,
}

impl Method {
    /// Number of locals occupied by parameters (including `this` for virtual
    /// methods).
    pub fn param_locals(&self) -> u16 {
        let this = if self.kind == MethodKind::Virtual {
            1
        } else {
            0
        };
        this + self.params.len() as u16
    }

    /// Machine-code size of the method body in bytes, including a fixed
    /// prologue/epilogue allowance.
    pub fn code_size(&self) -> u32 {
        16 + self.blocks.iter().map(Block::size_bytes).sum::<u32>()
    }
}

/// A build-time resource embedded in the image (becomes a `Resource` heap
/// root, Sec. 5.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    /// Resource path, e.g. `"META-INF/services/demo"`.
    pub name: String,
    /// Payload size in bytes.
    pub size: u32,
}

/// A complete program: the unit compiled into a native image.
#[derive(Debug, Clone, Default)]
pub struct Program {
    pub(crate) classes: Vec<Class>,
    pub(crate) fields: Vec<Field>,
    pub(crate) methods: Vec<Method>,
    pub(crate) selectors: Vec<String>,
    // BTreeMaps, not HashMaps: the derived `Debug` rendering doubles as the
    // program's content fingerprint for the (disk-persisted) artifact cache,
    // so its iteration order must be stable across processes.
    pub(crate) selector_map: BTreeMap<String, SelectorId>,
    pub(crate) class_map: BTreeMap<String, ClassId>,
    /// Program entry point (a static method), if set.
    pub entry: Option<MethodId>,
    /// Embedded resources.
    pub resources: Vec<Resource>,
}

impl Program {
    /// All classes, indexable by [`ClassId`].
    pub fn classes(&self) -> &[Class] {
        &self.classes
    }

    /// All fields, indexable by [`FieldId`].
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// All methods, indexable by [`MethodId`].
    pub fn methods(&self) -> &[Method] {
        &self.methods
    }

    /// Looks up a class definition.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// Looks up a field definition.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn field(&self, id: FieldId) -> &Field {
        &self.fields[id.index()]
    }

    /// Looks up a method definition.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.index()]
    }

    /// Looks up a class by fully qualified name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.class_map.get(name).copied()
    }

    /// The interned selector string (`name/arity`).
    pub fn selector_name(&self, id: SelectorId) -> &str {
        &self.selectors[id.index()]
    }

    /// Interned selector for a name and argument count, if it exists.
    pub fn selector(&self, name: &str, arity: usize) -> Option<SelectorId> {
        self.selector_map.get(&format!("{name}/{arity}")).copied()
    }

    /// All interned selector strings, indexable by [`SelectorId`].
    pub fn selectors(&self) -> &[String] {
        &self.selectors
    }

    /// Fully qualified, build-stable signature of a method:
    /// `owner.name(paramCount)`.
    ///
    /// Signatures are the keys used by the code-ordering profiles (Sec. 4) —
    /// they are stable across builds even when inlining differs.
    pub fn method_signature(&self, id: MethodId) -> String {
        let m = self.method(id);
        format!(
            "{}.{}({})",
            self.class(m.owner).name,
            m.name,
            m.params.len()
        )
    }

    /// Fully qualified, build-stable signature of a field: `owner.name`.
    pub fn field_signature(&self, id: FieldId) -> String {
        let f = self.field(id);
        format!("{}.{}", self.class(f.owner).name, f.name)
    }

    /// Fully qualified name of a type, including array types
    /// (`"demo.Point[]"`).
    pub fn type_name(&self, ty: &TypeRef) -> String {
        match ty {
            TypeRef::Bool => "bool".to_string(),
            TypeRef::Int => "int".to_string(),
            TypeRef::Double => "double".to_string(),
            TypeRef::Str => "String".to_string(),
            TypeRef::Object(c) => self.class(*c).name.clone(),
            TypeRef::Array(e) => format!("{}[]", self.type_name(e)),
        }
    }

    /// Resolves a virtual call on a receiver of dynamic class `class` to a
    /// concrete method, walking the superclass chain.
    pub fn resolve_virtual(&self, class: ClassId, selector: SelectorId) -> Option<MethodId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            let cls = self.class(c);
            for &m in &cls.methods {
                let method = self.method(m);
                if method.selector == selector && method.kind == MethodKind::Virtual {
                    return Some(m);
                }
            }
            cur = cls.superclass;
        }
        None
    }

    /// Whether `sub` is `sup` or a (transitive) subclass of it.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.class(c).superclass;
        }
        false
    }

    /// All classes that are `class` or a transitive subclass of it.
    pub fn subclasses_of(&self, class: ClassId) -> Vec<ClassId> {
        (0..self.classes.len())
            .map(ClassId::from)
            .filter(|&c| self.is_subclass(c, class))
            .collect()
    }

    /// All instance fields of a class including inherited ones, superclass
    /// fields first — the object layout order, and the field iteration order
    /// of the structural hash (Algorithm 2, "source-code definition order").
    pub fn all_instance_fields(&self, class: ClassId) -> Vec<FieldId> {
        let mut chain = vec![];
        let mut cur = Some(class);
        while let Some(c) = cur {
            chain.push(c);
            cur = self.class(c).superclass;
        }
        chain
            .into_iter()
            .rev()
            .flat_map(|c| self.class(c).instance_fields.iter().copied())
            .collect()
    }

    /// Looks up an instance field by name on a class (searching the
    /// superclass chain).
    pub fn find_instance_field(&self, class: ClassId, name: &str) -> Option<FieldId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            for &f in &self.class(c).instance_fields {
                if self.field(f).name == name {
                    return Some(f);
                }
            }
            cur = self.class(c).superclass;
        }
        None
    }

    /// Total machine-code size of all method bodies, in bytes.
    pub fn total_code_size(&self) -> u64 {
        self.methods.iter().map(|m| u64::from(m.code_size())).sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program: {} classes, {} methods, {} fields",
            self.classes.len(),
            self.methods.len(),
            self.fields.len()
        )?;
        for (i, c) in self.classes.iter().enumerate() {
            writeln!(f, "  class {} {}", ClassId::from(i), c.name)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{MethodKind, ProgramBuilder, TypeRef};

    #[test]
    fn virtual_resolution_walks_super_chain() {
        let mut pb = ProgramBuilder::new();
        let base = pb.add_class("t.Base", None);
        let derived = pb.add_class("t.Derived", Some(base));
        let leaf = pb.add_class("t.Leaf", Some(derived));
        let run_base = pb.declare_virtual(base, "run", &[], Some(TypeRef::Int));
        let run_derived = pb.declare_virtual(derived, "run", &[], Some(TypeRef::Int));
        for m in [run_base, run_derived] {
            let mut f = pb.body(m);
            let v = f.iconst(0);
            f.ret(Some(v));
            pb.finish_body(m, f);
        }
        let sel = pb.intern_selector("run", 0);
        let p = pb.build().unwrap();
        assert_eq!(p.resolve_virtual(base, sel), Some(run_base));
        assert_eq!(p.resolve_virtual(derived, sel), Some(run_derived));
        // Leaf inherits Derived's implementation.
        assert_eq!(p.resolve_virtual(leaf, sel), Some(run_derived));
    }

    #[test]
    fn subclass_relation() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("t.A", None);
        let b = pb.add_class("t.B", Some(a));
        let c = pb.add_class("t.C", None);
        let p = {
            // no methods needed
            pb.build().unwrap()
        };
        assert!(p.is_subclass(b, a));
        assert!(p.is_subclass(a, a));
        assert!(!p.is_subclass(a, b));
        assert!(!p.is_subclass(c, a));
        assert_eq!(p.subclasses_of(a), vec![a, b]);
    }

    #[test]
    fn instance_field_layout_superclass_first() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("t.A", None);
        let fa = pb.add_instance_field(a, "x", TypeRef::Int);
        let b = pb.add_class("t.B", Some(a));
        let fb = pb.add_instance_field(b, "y", TypeRef::Int);
        let p = pb.build().unwrap();
        assert_eq!(p.all_instance_fields(b), vec![fa, fb]);
        assert_eq!(p.find_instance_field(b, "x"), Some(fa));
        assert_eq!(p.find_instance_field(b, "y"), Some(fb));
        assert_eq!(p.find_instance_field(a, "y"), None);
    }

    #[test]
    fn signatures_are_fully_qualified() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("pkg.A", None);
        let m = pb.declare_static(a, "go", &[TypeRef::Int, TypeRef::Int], None);
        let mut f = pb.body(m);
        f.ret(None);
        pb.finish_body(m, f);
        let fld = pb.add_static_field(a, "COUNT", TypeRef::Int);
        let p = pb.build().unwrap();
        assert_eq!(p.method_signature(m), "pkg.A.go(2)");
        assert_eq!(p.field_signature(fld), "pkg.A.COUNT");
        assert_eq!(
            p.type_name(&TypeRef::array_of(TypeRef::Object(a))),
            "pkg.A[]"
        );
    }

    #[test]
    fn clinit_kind_and_registration() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("t.A", None);
        let cl = pb.declare_clinit(a);
        let mut f = pb.body(cl);
        f.ret(None);
        pb.finish_body(cl, f);
        let p = pb.build().unwrap();
        assert_eq!(p.class(a).clinit, Some(cl));
        assert_eq!(p.method(cl).kind, MethodKind::ClassInit);
    }
}
