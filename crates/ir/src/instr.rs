//! Instructions, terminators and the machine-code size model.

use crate::program::SelectorId;
use crate::types::{BlockId, ClassId, FieldId, Local, MethodId, TypeRef};

/// Binary operators. Comparison operators produce `Bool` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean negation.
    Not,
    /// Int → Double conversion.
    IntToDouble,
    /// Double → Int conversion (truncating).
    DoubleToInt,
}

/// Built-in operations the interpreter implements directly.
///
/// `Respond` is the observable "first response" event used by the
/// microservice workloads (Sec. 7.1 measures elapsed time until the first
/// response).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `sqrt(double) -> double`
    Sqrt,
    /// `abs(double) -> double`
    Abs,
    /// `floor(double) -> double`
    Floor,
    /// `cos(double) -> double`
    Cos,
    /// `sin(double) -> double`
    Sin,
    /// Marks the service's first response; takes one int argument (status).
    Respond,
}

/// Call target of a [`Instr::Call`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Callee {
    /// Direct call to a known method (static methods and constructors).
    Static(MethodId),
    /// Virtual dispatch on the receiver (first argument) through a selector.
    ///
    /// `declared` is the static receiver class used by the reachability
    /// analysis to bound the possible targets.
    Virtual {
        /// Static type of the receiver.
        declared: ClassId,
        /// Interned method selector (name + arity).
        selector: SelectorId,
    },
}

/// A non-terminator instruction of the register machine.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = <int literal>`
    ConstInt(Local, i64),
    /// `dst = <double literal>` — the literal is materialized in the binary's
    /// data section, so it also becomes a `DataSection` heap root.
    ConstDouble(Local, f64),
    /// `dst = <bool literal>`
    ConstBool(Local, bool),
    /// `dst = "literal"` — string literals are interned, mirroring Java
    /// interned strings (an `InternedString` heap-snapshot root).
    ConstStr(Local, String),
    /// `dst = null`
    ConstNull(Local),
    /// `dst = src`
    Move(Local, Local),
    /// `dst = a <op> b`
    Bin(BinOp, Local, Local, Local),
    /// `dst = <op> a`
    Un(UnOp, Local, Local),
    /// `dst = new C()` — allocation without running a constructor; call an
    /// `init` method explicitly for constructor logic.
    New(Local, ClassId),
    /// `dst = new elem[len]`
    NewArray(Local, TypeRef, Local),
    /// `dst = obj.field`
    GetField(Local, Local, FieldId),
    /// `obj.field = src`
    PutField(Local, FieldId, Local),
    /// `dst = C.field`
    GetStatic(Local, FieldId),
    /// `C.field = src`
    PutStatic(FieldId, Local),
    /// `dst = arr[idx]`
    ArrayGet(Local, Local, Local),
    /// `arr[idx] = src`
    ArraySet(Local, Local, Local),
    /// `dst = arr.length`
    ArrayLen(Local, Local),
    /// `dst = s.length()`
    StrLen(Local, Local),
    /// `dst = s.charAt(i)` (as an int code point)
    StrCharAt(Local, Local, Local),
    /// `dst = a + b` (string concatenation; either side may be int or str)
    StrConcat(Local, Local, Local),
    /// `dst? = call(args...)`
    Call {
        /// Destination local for the return value, if the callee returns one.
        dst: Option<Local>,
        /// Call target.
        callee: Callee,
        /// Argument locals; for virtual calls `args[0]` is the receiver.
        args: Vec<Local>,
    },
    /// `dst? = intrinsic(args...)`
    Intrinsic {
        /// Destination local, if the intrinsic produces a value.
        dst: Option<Local>,
        /// Which intrinsic.
        op: Intrinsic,
        /// Argument locals.
        args: Vec<Local>,
    },
    /// Spawn a new thread executing a static method with the given arguments.
    ///
    /// Used by the microservice workloads; threads are scheduled
    /// deterministically by `nimage-vm`.
    Spawn {
        /// Static entry method of the new thread.
        method: MethodId,
        /// Arguments passed to the thread's entry method.
        args: Vec<Local>,
    },
}

impl Instr {
    /// Approximate machine-code size of this instruction in bytes.
    ///
    /// The size model drives the inliner's code-size budget in
    /// `nimage-compiler` and the `.text` layout in `nimage-image`; its exact
    /// values are unimportant, but instrumentation adding bytes per event
    /// site is what perturbs inlining between instrumented and optimized
    /// builds — the divergence at the heart of the paper's Sec. 5.
    pub fn size_bytes(&self) -> u32 {
        match self {
            Instr::ConstInt(..) | Instr::ConstBool(..) | Instr::ConstNull(..) => 5,
            Instr::ConstDouble(..) => 8,
            Instr::ConstStr(..) => 7,
            Instr::Move(..) => 3,
            Instr::Bin(..) => 4,
            Instr::Un(..) => 3,
            Instr::New(..) => 14,
            Instr::NewArray(..) => 16,
            Instr::GetField(..) | Instr::PutField(..) => 6,
            Instr::GetStatic(..) | Instr::PutStatic(..) => 7,
            Instr::ArrayGet(..) | Instr::ArraySet(..) => 8,
            Instr::ArrayLen(..) => 4,
            Instr::StrLen(..) => 5,
            Instr::StrCharAt(..) => 8,
            Instr::StrConcat(..) => 18,
            Instr::Call { args, callee, .. } => {
                // Virtual dispatch needs a vtable load on top of the call.
                let base = match callee {
                    Callee::Static(_) => 5,
                    Callee::Virtual { .. } => 12,
                };
                base + 2 * args.len() as u32
            }
            Instr::Intrinsic { args, .. } => 6 + 2 * args.len() as u32,
            Instr::Spawn { args, .. } => 24 + 2 * args.len() as u32,
        }
    }

    /// The destination local written by this instruction, if any.
    pub fn dst(&self) -> Option<Local> {
        match self {
            Instr::ConstInt(d, _)
            | Instr::ConstDouble(d, _)
            | Instr::ConstBool(d, _)
            | Instr::ConstStr(d, _)
            | Instr::ConstNull(d)
            | Instr::Move(d, _)
            | Instr::Bin(_, d, _, _)
            | Instr::Un(_, d, _)
            | Instr::New(d, _)
            | Instr::NewArray(d, _, _)
            | Instr::GetField(d, _, _)
            | Instr::GetStatic(d, _)
            | Instr::ArrayGet(d, _, _)
            | Instr::ArrayLen(d, _)
            | Instr::StrLen(d, _)
            | Instr::StrCharAt(d, _, _)
            | Instr::StrConcat(d, _, _) => Some(*d),
            Instr::Call { dst, .. } | Instr::Intrinsic { dst, .. } => *dst,
            Instr::PutField(..)
            | Instr::PutStatic(..)
            | Instr::ArraySet(..)
            | Instr::Spawn { .. } => None,
        }
    }

    /// Locals read by this instruction, in operand order.
    pub fn sources(&self) -> Vec<Local> {
        match self {
            Instr::ConstInt(..)
            | Instr::ConstDouble(..)
            | Instr::ConstBool(..)
            | Instr::ConstStr(..)
            | Instr::ConstNull(..)
            | Instr::New(..)
            | Instr::GetStatic(..) => vec![],
            Instr::Move(_, s)
            | Instr::Un(_, _, s)
            | Instr::NewArray(_, _, s)
            | Instr::GetField(_, s, _)
            | Instr::ArrayLen(_, s)
            | Instr::StrLen(_, s)
            | Instr::PutStatic(_, s) => vec![*s],
            Instr::Bin(_, _, a, b)
            | Instr::ArrayGet(_, a, b)
            | Instr::StrCharAt(_, a, b)
            | Instr::StrConcat(_, a, b)
            | Instr::PutField(a, _, b) => vec![*a, *b],
            Instr::ArraySet(a, b, c) => vec![*a, *b, *c],
            Instr::Call { args, .. }
            | Instr::Intrinsic { args, .. }
            | Instr::Spawn { args, .. } => args.clone(),
        }
    }
}

/// The terminator of a basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Return from the method, optionally with a value.
    Ret(Option<Local>),
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on a boolean local.
    Br {
        /// Condition local (must hold a `Bool`).
        cond: Local,
        /// Successor when the condition is true.
        then_blk: BlockId,
        /// Successor when the condition is false.
        else_blk: BlockId,
    },
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Ret(_) => vec![],
            Terminator::Jump(b) => vec![*b],
            Terminator::Br {
                then_blk, else_blk, ..
            } => vec![*then_blk, *else_blk],
        }
    }

    /// Approximate machine-code size of the terminator in bytes.
    pub fn size_bytes(&self) -> u32 {
        match self {
            Terminator::Ret(_) => 3,
            Terminator::Jump(_) => 5,
            Terminator::Br { .. } => 8,
        }
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Straight-line instructions.
    pub instrs: Vec<Instr>,
    /// Block terminator.
    pub terminator: Terminator,
}

impl Block {
    /// Machine-code size of the whole block in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.instrs.iter().map(Instr::size_bytes).sum::<u32>() + self.terminator.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Local;

    #[test]
    fn sizes_are_positive_and_call_scales_with_args() {
        let l = Local(0);
        let c0 = Instr::Call {
            dst: None,
            callee: Callee::Static(MethodId(0)),
            args: vec![],
        };
        let c2 = Instr::Call {
            dst: None,
            callee: Callee::Static(MethodId(0)),
            args: vec![l, l],
        };
        assert!(c0.size_bytes() > 0);
        assert_eq!(c2.size_bytes(), c0.size_bytes() + 4);
    }

    #[test]
    fn virtual_call_larger_than_static() {
        let stat = Instr::Call {
            dst: None,
            callee: Callee::Static(MethodId(0)),
            args: vec![],
        };
        let virt = Instr::Call {
            dst: None,
            callee: Callee::Virtual {
                declared: ClassId(0),
                selector: crate::program::SelectorId(0),
            },
            args: vec![],
        };
        assert!(virt.size_bytes() > stat.size_bytes());
    }

    #[test]
    fn dst_and_sources_roundtrip() {
        let i = Instr::Bin(BinOp::Add, Local(2), Local(0), Local(1));
        assert_eq!(i.dst(), Some(Local(2)));
        assert_eq!(i.sources(), vec![Local(0), Local(1)]);

        let s = Instr::ArraySet(Local(0), Local(1), Local(2));
        assert_eq!(s.dst(), None);
        assert_eq!(s.sources(), vec![Local(0), Local(1), Local(2)]);
    }

    #[test]
    fn terminator_successors() {
        assert!(Terminator::Ret(None).successors().is_empty());
        assert_eq!(Terminator::Jump(BlockId(3)).successors(), vec![BlockId(3)]);
        assert_eq!(
            Terminator::Br {
                cond: Local(0),
                then_blk: BlockId(1),
                else_blk: BlockId(2)
            }
            .successors(),
            vec![BlockId(1), BlockId(2)]
        );
    }

    #[test]
    fn block_size_sums_instrs_and_terminator() {
        let b = Block {
            instrs: vec![Instr::ConstInt(Local(0), 7)],
            terminator: Terminator::Ret(Some(Local(0))),
        };
        assert_eq!(
            b.size_bytes(),
            Instr::ConstInt(Local(0), 7).size_bytes() + Terminator::Ret(None).size_bytes()
        );
    }
}
