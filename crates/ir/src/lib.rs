//! # nimage-ir
//!
//! A miniature class-based object language, used by the `nimage` workspace as
//! the stand-in for Java bytecode / Graal IR in the reproduction of
//! *Improving Native-Image Startup Performance* (CGO '25).
//!
//! The language is deliberately small but preserves everything the paper's
//! ordering strategies observe:
//!
//! * **classes** with single inheritance, instance fields, static fields and
//!   class initializers (`<clinit>`),
//! * **methods** built from basic blocks of register-machine instructions
//!   (allocation, field/array access, calls, string literals, arithmetic),
//! * **virtual dispatch** through interned selectors,
//! * a **code-size model** (every instruction has a machine-code size in
//!   bytes) that drives the inliner in `nimage-compiler`, and
//! * build-time metadata: parallel class-initialization groups, resources and
//!   entry points, which become heap-snapshot roots in `nimage-heap`.
//!
//! Programs are constructed with [`ProgramBuilder`] and [`BodyBuilder`]:
//!
//! ```
//! use nimage_ir::{ProgramBuilder, TypeRef};
//!
//! let mut pb = ProgramBuilder::new();
//! let cls = pb.add_class("demo.Main", None);
//! let main = pb.declare_static(cls, "main", &[], Some(TypeRef::Int));
//! let mut f = pb.body(main);
//! let a = f.iconst(40);
//! let b = f.iconst(2);
//! let sum = f.add(a, b);
//! f.ret(Some(sum));
//! pb.finish_body(main, f);
//! pb.set_entry(main);
//! let program = pb.build().expect("valid program");
//! assert_eq!(program.method(main).name, "main");
//! ```

#![warn(missing_docs)]

mod builder;
pub mod cfg;
mod instr;
mod program;
mod types;
mod validate;

pub use builder::{BodyBuilder, ProgramBuilder};
pub use cfg::Cfg;
pub use instr::{BinOp, Block, Callee, Instr, Intrinsic, Terminator, UnOp};
pub use program::{Class, Field, Method, MethodKind, Program, Resource, SelectorId};
pub use types::{BlockId, ClassId, FieldId, Local, MethodId, TypeRef};
pub use validate::ValidateError;
