//! Identifier newtypes and the reference-type lattice of the mini language.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the underlying index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(u32::try_from(v).expect("id overflow"))
            }
        }
    };
}

id_type!(
    /// Index of a class in a [`crate::Program`].
    ClassId,
    "c"
);
id_type!(
    /// Index of a method in a [`crate::Program`].
    MethodId,
    "m"
);
id_type!(
    /// Index of a field (static or instance) in a [`crate::Program`].
    FieldId,
    "f"
);
id_type!(
    /// Index of a basic block within one method body.
    BlockId,
    "b"
);

/// A virtual register within a method body.
///
/// The calling convention places `this` in local 0 for virtual methods, and
/// the declared parameters in the following locals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Local(pub u16);

impl Local {
    /// Returns the underlying register index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Local {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A (static) type in the mini language.
///
/// `Str` is a built-in immutable string type, mirroring the special treatment
/// `java.lang.String` receives in the paper's Algorithms 2 and 3.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeRef {
    /// Boolean primitive.
    Bool,
    /// 64-bit signed integer primitive.
    Int,
    /// 64-bit IEEE-754 floating point primitive.
    Double,
    /// Built-in immutable string.
    Str,
    /// Reference to an instance of the given class (or a subclass).
    Object(ClassId),
    /// Reference to an array with the given element type.
    Array(Box<TypeRef>),
}

impl TypeRef {
    /// Convenience constructor for an array of `elem`.
    pub fn array_of(elem: TypeRef) -> TypeRef {
        TypeRef::Array(Box::new(elem))
    }

    /// Whether this is one of the primitive (non-reference) types.
    pub fn is_primitive(&self) -> bool {
        matches!(self, TypeRef::Bool | TypeRef::Int | TypeRef::Double)
    }

    /// Whether values of this type are heap references (objects or arrays).
    pub fn is_reference(&self) -> bool {
        matches!(self, TypeRef::Object(_) | TypeRef::Array(_))
    }
}
