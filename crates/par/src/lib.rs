//! Intra-stage parallelism primitives shared by the pipeline stages and
//! the evaluation engine.
//!
//! Every parallel stage in the pipeline follows the same discipline:
//! **fan out over independent jobs, then merge in a deterministic order
//! that does not depend on execution interleaving**. This crate provides
//! the two building blocks:
//!
//! - [`StealQueue`] — the work-stealing deque machinery (each worker owns
//!   a deque seeded with its share of the jobs, pops locally from the
//!   front and steals from other workers' backs when its own runs dry).
//! - [`parallel_map`] — an index-ordered parallel map on top of it:
//!   results come back in job-index order regardless of which worker ran
//!   which job, so callers get scheduling-independent output for free.
//!
//! [`Parallelism`] carries the thread-count knob through configuration
//! structs whose derived `Debug` rendering doubles as a cache
//! fingerprint: its `Debug` output is a constant, because the thread
//! count must never change *what* is computed, only *how fast*.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

/// A thread-count knob for intra-stage parallelism.
///
/// `0` means "auto": use the machine's available parallelism. The
/// `Debug` rendering is intentionally a constant so that embedding a
/// `Parallelism` in a fingerprinted options struct (for example
/// `nimage_core::BuildOptions`, whose `Debug` output feeds the content
/// keys of the artifact cache) does not perturb cache keys: artifacts
/// built with different thread counts are bit-identical and must share
/// cache entries — in memory and on disk.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Parallelism(usize);

impl Parallelism {
    /// Single-threaded execution (the default).
    pub const fn serial() -> Parallelism {
        Parallelism(1)
    }

    /// Use the machine's available parallelism.
    pub const fn auto() -> Parallelism {
        Parallelism(0)
    }

    /// An explicit thread count; `0` behaves like [`Parallelism::auto`].
    pub const fn threads(n: usize) -> Parallelism {
        Parallelism(n)
    }

    /// The raw knob value (`0` = auto).
    pub const fn raw(self) -> usize {
        self.0
    }

    /// Resolves the knob to a concrete worker count (at least 1).
    pub fn effective(self) -> usize {
        if self.0 > 0 {
            self.0
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

impl Default for Parallelism {
    fn default() -> Parallelism {
        Parallelism::serial()
    }
}

impl fmt::Debug for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Constant on purpose — see the type docs. Do NOT include
        // `self.0` here: it would split cache keys by thread count.
        f.write_str("Parallelism(..)")
    }
}

/// Measured per-stage work-size cutoffs below which the parallel path
/// loses to a plain serial loop.
///
/// Each constant is the smallest work size (in the stage's natural unit)
/// for which `parallel_map` at 4 threads beat the serial loop on the
/// bundled workloads (release build, median of 5 warm runs; see
/// DESIGN.md §11 for the measurement protocol). Below the cutoff the
/// spawn + mutex overhead of the steal queue dominates the actual work,
/// which is how the 4-thread bench previously *regressed* on the small
/// bundled workloads (compile 0.95×, snapshot 0.56×, replay 0.88×).
/// [`workers_for`] applies them: under the cutoff it returns 1, making
/// the "parallel" path literally the serial path (`parallel_map` with
/// one worker is a plain loop), so a sub-1× speedup is impossible by
/// construction.
pub mod cutoff {
    /// Inline-wave compilation: minimum CU roots in a wave before the
    /// wave is fanned out. Building one CU is a whole inlining pass, so
    /// the per-job work is large and the cutoff is low; micronaut's
    /// first wave (~40 roots) parallelizes, the 2–4 root tail waves of
    /// every bundled workload no longer do.
    pub const COMPILE_MIN_ROOTS: usize = 8;

    /// Snapshot heap traversal: minimum GC roots before the two
    /// closure/DFS passes fan out. Per-root traversals are short and
    /// share a serial assignment fold that bounds the win; at 4 threads
    /// the fan-out lost on every bundled workload, including micronaut's
    /// 1 610 roots (0.56–0.82×), so the cutoff sits beyond the bundled
    /// scale until a workload demonstrates a parallel win.
    pub const SNAPSHOT_MIN_ROOTS: usize = 4096;

    /// Trace replay: minimum *records* (not chunks) before chunked
    /// decode fans out. Decoding is a tight varint loop at a few ns per
    /// record, so only large traces amortize worker spawn; micronaut's
    /// instrumented trace (~1M records) clears this easily, the small
    /// Awfy traces fall back to serial.
    pub const REPLAY_MIN_RECORDS: usize = 32_768;

    /// Eval-matrix VM runs: minimum (strategy, workload) cells before
    /// runs are sharded. A VM run is milliseconds of work, so two cells
    /// already amortize a spawn.
    pub const RUN_MIN_CELLS: usize = 2;

    /// Layout optimization: minimum entities (CUs + objects) before the
    /// co-access graph build and candidate scoring fan out. Scoring one
    /// candidate is a single linear pass over the entities (~µs per
    /// thousand on the bundled workloads, whose largest input is
    /// micronaut's few thousand entities), so below this floor the spawn +
    /// mutex overhead of the steal queue dominates just like the other
    /// small stages did before their cutoffs; the bundled workloads stay
    /// serial until a workload an order of magnitude larger demonstrates a
    /// parallel win.
    pub const OPTIMIZE_MIN_ENTITIES: usize = 16_384;

    /// Pre-lowering wave: minimum profile-hot CUs before the engine fans
    /// the per-CU shard lowering out. Lowering one shard is a short flat
    /// re-encode of a handful of method bodies (tens of µs on the bundled
    /// workloads), so small hot sets — every Awfy workload, and micronaut's
    /// first-response set (~20 CUs) — stay serial; the cutoff sits just
    /// past the bundled scale until a larger hot set demonstrates a
    /// parallel win.
    pub const PRELOWER_MIN_CUS: usize = 32;
}

/// The host's available parallelism (cached after the first query;
/// at least 1).
pub fn host_parallelism() -> usize {
    static HOST: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *HOST.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Resolves the worker count for a stage given its work size: `threads`
/// when `work` is at or above the stage's measured cutoff, else 1 (the
/// serial path). See [`cutoff`] for the thresholds and their provenance.
///
/// The result is additionally capped at [`host_parallelism`]: a thread
/// count above the hardware's cannot run concurrently, so the extra
/// workers are pure spawn-and-contend overhead — on a single-CPU host
/// every "parallel" arm would otherwise hover at ~1× minus noise.
pub fn workers_for(threads: usize, work: usize, min_work: usize) -> usize {
    if work < min_work {
        1
    } else {
        threads.min(host_parallelism()).max(1)
    }
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A work-stealing job queue: each worker owns a deque seeded with its
/// share of the jobs, pops locally from the front and steals from other
/// workers' backs when its own runs dry.
pub struct StealQueue {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl StealQueue {
    /// Creates a queue with one deque per worker.
    pub fn new(n_workers: usize) -> StealQueue {
        StealQueue {
            deques: (0..n_workers)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
        }
    }

    /// Appends a job to `worker`'s own deque.
    pub fn seed(&self, worker: usize, job: usize) {
        lock_unpoisoned(&self.deques[worker]).push_back(job);
    }

    /// Takes the next job for `worker`: its own front, else a steal from
    /// another worker's back, else `None` (all deques dry).
    pub fn pop(&self, worker: usize) -> Option<usize> {
        if let Some(j) = lock_unpoisoned(&self.deques[worker]).pop_front() {
            return Some(j);
        }
        let n = self.deques.len();
        for victim in (worker + 1..n).chain(0..worker) {
            if let Some(j) = lock_unpoisoned(&self.deques[victim]).pop_back() {
                return Some(j);
            }
        }
        None
    }
}

/// Runs `f(0..n_jobs)` across up to `threads` workers and returns the
/// results in job-index order. With `threads <= 1` (or fewer than two
/// jobs) this degenerates to a plain serial loop, so the serial and
/// parallel paths share one code path and trivially agree.
///
/// The output order — and therefore everything a caller derives from it —
/// is independent of scheduling; determinism of a parallel stage reduces
/// to the purity of `f`.
pub fn parallel_map<T, F>(threads: usize, n_jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n_workers = threads.clamp(1, n_jobs.max(1));
    if n_workers <= 1 {
        return (0..n_jobs).map(f).collect();
    }
    let queue = StealQueue::new(n_workers);
    for j in 0..n_jobs {
        queue.seed(j % n_workers, j);
    }
    // Mutex-of-Option slots rather than OnceLock: they only need `T: Send`,
    // and each slot is written exactly once (its job runs on one worker).
    let slots: Vec<Mutex<Option<T>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
    let (queue, slots_ref, f) = (&queue, &slots, &f);
    std::thread::scope(|scope| {
        for w in 0..n_workers {
            scope.spawn(move || {
                while let Some(j) = queue.pop(w) {
                    *lock_unpoisoned(&slots_ref[j]) = Some(f(j));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| lock_unpoisoned(&s).take().expect("every seeded job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallelism_debug_is_thread_count_invariant() {
        assert_eq!(
            format!("{:?}", Parallelism::serial()),
            format!("{:?}", Parallelism::threads(8)),
            "Debug doubles as a cache fingerprint and must not leak the knob"
        );
        assert_eq!(Parallelism::serial().effective(), 1);
        assert_eq!(Parallelism::threads(3).effective(), 3);
        assert!(Parallelism::auto().effective() >= 1);
    }

    #[test]
    fn steal_queue_drains_own_then_steals() {
        let q = StealQueue::new(2);
        q.seed(0, 10);
        q.seed(0, 11);
        q.seed(1, 20);
        assert_eq!(q.pop(0), Some(10), "own deque pops front");
        assert_eq!(q.pop(1), Some(20));
        assert_eq!(q.pop(1), Some(11), "steals from the other worker's back");
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop(1), None);
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        for threads in [1, 2, 8] {
            let out = parallel_map(threads, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_runs_every_job_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = parallel_map(4, 64, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 64);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        assert_eq!(parallel_map(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(8, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn workers_for_applies_cutoff() {
        let cap = host_parallelism();
        assert!(cap >= 1);
        assert_eq!(workers_for(4, 7, 8), 1, "under cutoff: serial");
        assert_eq!(workers_for(4, 8, 8), 4.min(cap), "at cutoff: parallel");
        assert_eq!(workers_for(4, 1_000_000, 8), 4.min(cap));
        assert_eq!(workers_for(1, 1_000_000, 8), 1, "threads=1 stays serial");
        assert_eq!(workers_for(4, 0, 0), 4.min(cap), "zero cutoff never gates");
    }

    #[test]
    fn workers_for_never_exceeds_the_host() {
        for threads in [1, 2, 64, 4096] {
            assert!(workers_for(threads, usize::MAX, 0) <= host_parallelism());
        }
    }
}
