//! Execution reports and the time model.

use nimage_compiler::CallCountProfile;
use nimage_profiler::{SessionStats, Trace};

use crate::heap_rt::RtValue;
use crate::paging::{PageState, SectionFaults};

/// Why the VM stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitKind {
    /// All threads terminated.
    Exited,
    /// The first response was observed and the run was stopped (the paper
    /// sends `SIGKILL` to microservice workloads at this point).
    FirstResponse,
    /// The operation budget ran out.
    OpsBudget,
}

/// Counters sampled at the moment of the first response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponsePoint {
    /// Interpreter operations executed so far (excluding probes).
    pub ops: u64,
    /// Instrumentation-probe operations so far.
    pub probe_ops: u64,
    /// Page faults so far.
    pub faults: SectionFaults,
}

/// The result of one VM execution.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Interpreter operations executed (the compute part of the run).
    pub ops: u64,
    /// Extra operations spent in instrumentation probes (Sec. 7.4's
    /// overhead source).
    pub probe_ops: u64,
    /// Major page faults per binary section.
    pub faults: SectionFaults,
    /// Counters at the first `respond` intrinsic, if one executed.
    pub first_response: Option<ResponsePoint>,
    /// Method call counts (the PGO profile of Sec. 2).
    pub call_counts: CallCountProfile,
    /// The collected trace, when the image was instrumented.
    pub trace: Option<Trace>,
    /// Profiler session statistics, when the image was instrumented.
    pub session_stats: Option<SessionStats>,
    /// Why the run stopped.
    pub exit: ExitKind,
    /// The value returned by the entry method, when it returned one.
    pub entry_return: Option<RtValue>,
    /// Logical pages of the native tail in first-touch order — the profile
    /// consumed by the native-reordering extension (the paper's Appendix A
    /// future work).
    pub native_touch_pages: Vec<u32>,
    /// Per-page states of `.text` (Fig. 6).
    pub text_page_states: Vec<PageState>,
    /// Per-page states of `.svm_heap`.
    pub heap_page_states: Vec<PageState>,
    /// Measured touched-byte spans of snapshot objects, keyed by raw
    /// snapshot object index and sorted by it; each span `[start, end)` is
    /// in bytes from the object's start, sorted and non-overlapping.
    /// Recorded on heap-traced runs only (empty otherwise); feeds the
    /// layout optimizer's fault predictor, which otherwise charges every
    /// hot object's full extent.
    pub heap_touch_spans: Vec<(u32, Vec<(u64, u64)>)>,
}

/// Converts operation and fault counts into simulated time.
///
/// `time = (ops + probe_ops) · ns_per_op + major_faults · fault_ns`. The
/// default fault latency approximates a cold 4 KiB read from a consumer SSD
/// including kernel fault handling; [`CostModel::nfs`] approximates the NFS
/// setting the paper also evaluated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Nanoseconds per interpreter operation.
    pub ns_per_op: f64,
    /// Nanoseconds per major page fault.
    pub fault_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ns_per_op: 2.0,
            fault_ns: 110_000.0,
        }
    }
}

impl CostModel {
    /// Cost model for an SSD-backed binary (the paper's main setting).
    pub fn ssd() -> Self {
        Self::default()
    }

    /// Cost model for an NFS-backed binary (higher per-fault latency; the
    /// paper reports similar reduction factors).
    pub fn nfs() -> Self {
        CostModel {
            ns_per_op: 2.0,
            fault_ns: 450_000.0,
        }
    }
}

impl RunReport {
    /// End-to-end execution time under a cost model (AWFY metric).
    pub fn time_ns(&self, cm: &CostModel) -> f64 {
        (self.ops + self.probe_ops) as f64 * cm.ns_per_op + self.faults.total() as f64 * cm.fault_ns
    }

    /// Elapsed time until the first response (microservice metric), if a
    /// response was observed.
    pub fn time_to_first_response_ns(&self, cm: &CostModel) -> Option<f64> {
        self.first_response.map(|r| {
            (r.ops + r.probe_ops) as f64 * cm.ns_per_op + r.faults.total() as f64 * cm.fault_ns
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ops: u64, text: u64, heap: u64) -> RunReport {
        RunReport {
            ops,
            probe_ops: 0,
            faults: SectionFaults {
                text,
                svm_heap: heap,
            },
            first_response: None,
            call_counts: CallCountProfile::new(),
            trace: None,
            session_stats: None,
            exit: ExitKind::Exited,
            entry_return: None,
            native_touch_pages: vec![],
            text_page_states: vec![],
            heap_page_states: vec![],
            heap_touch_spans: vec![],
        }
    }

    #[test]
    fn time_combines_ops_and_faults() {
        let r = report(1000, 2, 3);
        let cm = CostModel {
            ns_per_op: 1.0,
            fault_ns: 100.0,
        };
        assert_eq!(r.time_ns(&cm), 1000.0 + 500.0);
    }

    #[test]
    fn fewer_faults_is_faster() {
        let cm = CostModel::default();
        assert!(report(1000, 1, 1).time_ns(&cm) < report(1000, 10, 10).time_ns(&cm));
    }

    #[test]
    fn response_time_uses_sampled_counters() {
        let mut r = report(10_000, 50, 50);
        r.first_response = Some(ResponsePoint {
            ops: 100,
            probe_ops: 0,
            faults: SectionFaults {
                text: 1,
                svm_heap: 0,
            },
        });
        let cm = CostModel {
            ns_per_op: 1.0,
            fault_ns: 10.0,
        };
        assert_eq!(r.time_to_first_response_ns(&cm), Some(110.0));
        assert!(r.time_to_first_response_ns(&cm).unwrap() < r.time_ns(&cm));
    }

    #[test]
    fn nfs_faults_cost_more_than_ssd() {
        assert!(CostModel::nfs().fault_ns > CostModel::ssd().fault_ns);
    }
}
