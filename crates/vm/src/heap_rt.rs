//! Runtime heap: the snapshot contents materialized for execution, plus
//! dynamically allocated objects.
//!
//! Objects with indices below [`RtHeap::snapshot_len`] correspond one-to-one
//! to build-time objects ([`nimage_heap::ObjId`]); their first accesses are
//! what faults `.svm_heap` pages in. Objects allocated at run time live in
//! anonymous memory and never fault binary pages.
//!
//! The materialization is split in two so one image can be executed many
//! times (the evaluation engine measures the same baseline build once per
//! strategy-matrix row): a [`HeapTemplate`] holds the immutable converted
//! snapshot and is shared between runs behind an `Arc`, while [`RtHeap`]
//! keeps only the per-run mutable state — a copy-on-write overlay for
//! mutated snapshot objects and the dynamically allocated tail.

use std::collections::HashMap;
use std::sync::Arc;

use nimage_heap::{BuildHeap, HObjectKind, HValue, ObjId};
use nimage_ir::{ClassId, FieldId, Program, TypeRef};

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RtValue {
    /// Null reference.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Double(f64),
    /// Reference into the [`RtHeap`] arena.
    Ref(u32),
}

impl RtValue {
    /// Default value for a declared type.
    pub fn default_for(ty: &TypeRef) -> RtValue {
        match ty {
            TypeRef::Bool => RtValue::Bool(false),
            TypeRef::Int => RtValue::Int(0),
            TypeRef::Double => RtValue::Double(0.0),
            _ => RtValue::Null,
        }
    }
}

/// A runtime object's payload.
#[derive(Debug, Clone, PartialEq)]
pub enum RtObject {
    /// Class instance with fields in layout order.
    Instance {
        /// Dynamic class.
        class: ClassId,
        /// Field slots.
        fields: Vec<RtValue>,
    },
    /// Array.
    Array {
        /// Element type.
        elem: TypeRef,
        /// Elements.
        elems: Vec<RtValue>,
    },
    /// Immutable string.
    Str(String),
    /// Boxed FP constant (from the data section).
    Boxed(f64),
    /// Resource blob.
    Blob {
        /// Resource path.
        name: String,
        /// Size in bytes.
        size: u32,
    },
}

fn convert_value(v: HValue) -> RtValue {
    match v {
        HValue::Null => RtValue::Null,
        HValue::Bool(b) => RtValue::Bool(b),
        HValue::Int(i) => RtValue::Int(i),
        HValue::Double(d) => RtValue::Double(d),
        HValue::Ref(o) => RtValue::Ref(o.0),
    }
}

/// The immutable materialization of a build-heap snapshot: every snapshot
/// object converted to its runtime representation, plus the build-time
/// static-field values and interned-string table.
///
/// A template is built once per snapshot and shared (via `Arc`) by every
/// [`RtHeap`] — and therefore every VM run — over that snapshot.
#[derive(Debug)]
pub struct HeapTemplate {
    objects: Vec<RtObject>,
    statics: HashMap<FieldId, RtValue>,
    interned: HashMap<String, u32>,
}

impl HeapTemplate {
    /// Converts a build heap. Indices of build objects are preserved, so
    /// `RtValue::Ref(i)` with `i < len` denotes the build object `ObjId(i)`.
    pub fn from_build_heap(heap: &BuildHeap) -> HeapTemplate {
        let mut objects = Vec::with_capacity(heap.len());
        let mut interned = HashMap::new();
        for i in 0..heap.len() {
            let o = heap.get(ObjId(i as u32));
            let rt = match &o.kind {
                HObjectKind::Instance { class, fields } => RtObject::Instance {
                    class: *class,
                    fields: fields.iter().map(|&v| convert_value(v)).collect(),
                },
                HObjectKind::Array { elem, elems } => RtObject::Array {
                    elem: elem.clone(),
                    elems: elems.iter().map(|&v| convert_value(v)).collect(),
                },
                HObjectKind::Str(s) => {
                    if heap.is_interned(ObjId(i as u32)) {
                        interned.insert(s.clone(), i as u32);
                    }
                    RtObject::Str(s.clone())
                }
                HObjectKind::Boxed(d) => RtObject::Boxed(*d),
                HObjectKind::Blob { name, size } => RtObject::Blob {
                    name: name.clone(),
                    size: *size,
                },
            };
            objects.push(rt);
        }
        let statics = heap.statics().map(|(f, v)| (f, convert_value(v))).collect();
        HeapTemplate {
            objects,
            statics,
            interned,
        }
    }

    /// Number of snapshot objects in the template.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the snapshot had no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

/// The runtime heap: an immutable shared [`HeapTemplate`] plus this run's
/// private state — copy-on-write copies of mutated snapshot objects,
/// runtime allocations, static-field writes and runtime-interned strings.
#[derive(Debug, Clone)]
pub struct RtHeap {
    base: Arc<HeapTemplate>,
    /// Copy-on-write overlay for mutated snapshot objects.
    overlay: HashMap<u32, RtObject>,
    /// Objects allocated at run time; reference `snapshot_len + i`.
    dynamic: Vec<RtObject>,
    /// Static-field writes of this run; reads fall back to the template.
    statics: HashMap<FieldId, RtValue>,
    /// Strings interned at run time (build-time literals live in the
    /// template and resolve to image objects).
    interned: HashMap<String, u32>,
    snapshot_len: u32,
}

impl RtHeap {
    /// Materializes the build heap for execution (private template).
    pub fn from_build_heap(heap: &BuildHeap) -> RtHeap {
        RtHeap::from_template(Arc::new(HeapTemplate::from_build_heap(heap)))
    }

    /// Creates a run-private heap over a shared snapshot template without
    /// copying any object.
    pub fn from_template(base: Arc<HeapTemplate>) -> RtHeap {
        RtHeap {
            snapshot_len: base.objects.len() as u32,
            base,
            overlay: HashMap::new(),
            dynamic: Vec::new(),
            statics: HashMap::new(),
            interned: HashMap::new(),
        }
    }

    /// Number of objects that originate from the build heap.
    pub fn snapshot_len(&self) -> u32 {
        self.snapshot_len
    }

    /// Whether `r` refers to a build-time (image) object.
    pub fn is_image_object(&self, r: u32) -> bool {
        r < self.snapshot_len
    }

    /// The build-time id of an image object reference.
    pub fn as_obj_id(&self, r: u32) -> Option<ObjId> {
        self.is_image_object(r).then_some(ObjId(r))
    }

    /// Immutable object access.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn get(&self, r: u32) -> &RtObject {
        if r < self.snapshot_len {
            self.overlay
                .get(&r)
                .unwrap_or(&self.base.objects[r as usize])
        } else {
            &self.dynamic[(r - self.snapshot_len) as usize]
        }
    }

    /// Mutable object access. The first mutation of a snapshot object
    /// copies it out of the shared template into this run's overlay.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn get_mut(&mut self, r: u32) -> &mut RtObject {
        if r < self.snapshot_len {
            self.overlay
                .entry(r)
                .or_insert_with(|| self.base.objects[r as usize].clone())
        } else {
            &mut self.dynamic[(r - self.snapshot_len) as usize]
        }
    }

    /// Allocates a runtime object, returning its reference.
    pub fn alloc(&mut self, o: RtObject) -> u32 {
        let r = self.snapshot_len + self.dynamic.len() as u32;
        self.dynamic.push(o);
        r
    }

    /// Allocates an instance with default field values.
    pub fn alloc_instance(&mut self, program: &Program, class: ClassId) -> u32 {
        let fields = program
            .all_instance_fields(class)
            .iter()
            .map(|&f| RtValue::default_for(&program.field(f).ty))
            .collect();
        self.alloc(RtObject::Instance { class, fields })
    }

    /// Interned string lookup/allocation. Literals already interned at
    /// build time resolve to their image object (and thus to `.svm_heap`
    /// pages); new literals intern into anonymous memory.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&r) = self.base.interned.get(s) {
            return r;
        }
        if let Some(&r) = self.interned.get(s) {
            return r;
        }
        let r = self.alloc(RtObject::Str(s.to_string()));
        self.interned.insert(s.to_string(), r);
        r
    }

    /// Reads a static field.
    pub fn static_value(&self, program: &Program, field: FieldId) -> RtValue {
        self.statics
            .get(&field)
            .or_else(|| self.base.statics.get(&field))
            .copied()
            .unwrap_or_else(|| RtValue::default_for(&program.field(field).ty))
    }

    /// Writes a static field.
    pub fn set_static(&mut self, field: FieldId, value: RtValue) {
        self.statics.insert(field, value);
    }

    /// Total number of live objects (image + dynamic).
    pub fn len(&self) -> usize {
        self.snapshot_len as usize + self.dynamic.len()
    }

    /// Whether the heap has no objects at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_heap_conversion_preserves_indices() {
        let mut bh = BuildHeap::new();
        let s = bh.intern("hi");
        let arr = bh.alloc_array(TypeRef::Int, 3);
        let rt = RtHeap::from_build_heap(&bh);
        assert_eq!(rt.snapshot_len(), 2);
        assert!(matches!(rt.get(s.0), RtObject::Str(x) if x == "hi"));
        assert!(matches!(rt.get(arr.0), RtObject::Array { elems, .. } if elems.len() == 3));
    }

    #[test]
    fn runtime_allocations_are_not_image_objects() {
        let bh = BuildHeap::new();
        let mut rt = RtHeap::from_build_heap(&bh);
        let r = rt.alloc(RtObject::Str("dyn".into()));
        assert!(!rt.is_image_object(r));
        assert_eq!(rt.as_obj_id(r), None);
    }

    #[test]
    fn interned_literals_resolve_to_image_objects() {
        let mut bh = BuildHeap::new();
        let s = bh.intern("lit");
        let mut rt = RtHeap::from_build_heap(&bh);
        assert_eq!(rt.intern("lit"), s.0);
        let fresh = rt.intern("new-at-runtime");
        assert!(!rt.is_image_object(fresh));
        // Interning is stable at runtime too.
        assert_eq!(rt.intern("new-at-runtime"), fresh);
    }

    #[test]
    fn shared_template_is_not_mutated_by_a_run() {
        let mut bh = BuildHeap::new();
        let arr = bh.alloc_array(TypeRef::Int, 2);
        let template = Arc::new(HeapTemplate::from_build_heap(&bh));

        let mut first = RtHeap::from_template(template.clone());
        if let RtObject::Array { elems, .. } = first.get_mut(arr.0) {
            elems[0] = RtValue::Int(42);
        }
        assert!(matches!(
            first.get(arr.0),
            RtObject::Array { elems, .. } if elems[0] == RtValue::Int(42)
        ));

        // A second run over the same template sees the pristine snapshot.
        let second = RtHeap::from_template(template);
        assert!(matches!(
            second.get(arr.0),
            RtObject::Array { elems, .. } if elems[0] == RtValue::Int(0)
        ));
    }

    #[test]
    fn static_writes_shadow_template_values() {
        let bh = BuildHeap::new();
        let template = Arc::new(HeapTemplate::from_build_heap(&bh));
        let mut rt = RtHeap::from_template(template);
        let program = Program::default();
        rt.set_static(FieldId(0), RtValue::Int(7));
        // The overlay value wins without consulting the program's field
        // table (the empty program has no field f0 to fall back to).
        assert_eq!(rt.static_value(&program, FieldId(0)), RtValue::Int(7));
    }
}
