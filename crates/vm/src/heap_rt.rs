//! Runtime heap: the snapshot contents materialized for execution, plus
//! dynamically allocated objects.
//!
//! Objects with indices below [`RtHeap::snapshot_len`] correspond one-to-one
//! to build-time objects ([`nimage_heap::ObjId`]); their first accesses are
//! what faults `.svm_heap` pages in. Objects allocated at run time live in
//! anonymous memory and never fault binary pages.

use std::collections::HashMap;

use nimage_heap::{BuildHeap, HObjectKind, HValue, ObjId};
use nimage_ir::{ClassId, FieldId, Program, TypeRef};

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RtValue {
    /// Null reference.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Double(f64),
    /// Reference into the [`RtHeap`] arena.
    Ref(u32),
}

impl RtValue {
    /// Default value for a declared type.
    pub fn default_for(ty: &TypeRef) -> RtValue {
        match ty {
            TypeRef::Bool => RtValue::Bool(false),
            TypeRef::Int => RtValue::Int(0),
            TypeRef::Double => RtValue::Double(0.0),
            _ => RtValue::Null,
        }
    }
}

/// A runtime object's payload.
#[derive(Debug, Clone, PartialEq)]
pub enum RtObject {
    /// Class instance with fields in layout order.
    Instance {
        /// Dynamic class.
        class: ClassId,
        /// Field slots.
        fields: Vec<RtValue>,
    },
    /// Array.
    Array {
        /// Element type.
        elem: TypeRef,
        /// Elements.
        elems: Vec<RtValue>,
    },
    /// Immutable string.
    Str(String),
    /// Boxed FP constant (from the data section).
    Boxed(f64),
    /// Resource blob.
    Blob {
        /// Resource path.
        name: String,
        /// Size in bytes.
        size: u32,
    },
}

/// The runtime heap.
#[derive(Debug, Clone)]
pub struct RtHeap {
    objects: Vec<RtObject>,
    statics: HashMap<FieldId, RtValue>,
    interned: HashMap<String, u32>,
    snapshot_len: u32,
}

fn convert_value(v: HValue) -> RtValue {
    match v {
        HValue::Null => RtValue::Null,
        HValue::Bool(b) => RtValue::Bool(b),
        HValue::Int(i) => RtValue::Int(i),
        HValue::Double(d) => RtValue::Double(d),
        HValue::Ref(o) => RtValue::Ref(o.0),
    }
}

impl RtHeap {
    /// Materializes the build heap for execution. Indices of build objects
    /// are preserved, so `RtValue::Ref(i)` with `i < snapshot_len` denotes
    /// the build object `ObjId(i)`.
    pub fn from_build_heap(heap: &BuildHeap) -> RtHeap {
        let mut objects = Vec::with_capacity(heap.len());
        let mut interned = HashMap::new();
        for i in 0..heap.len() {
            let o = heap.get(ObjId(i as u32));
            let rt = match &o.kind {
                HObjectKind::Instance { class, fields } => RtObject::Instance {
                    class: *class,
                    fields: fields.iter().map(|&v| convert_value(v)).collect(),
                },
                HObjectKind::Array { elem, elems } => RtObject::Array {
                    elem: elem.clone(),
                    elems: elems.iter().map(|&v| convert_value(v)).collect(),
                },
                HObjectKind::Str(s) => {
                    if heap.is_interned(ObjId(i as u32)) {
                        interned.insert(s.clone(), i as u32);
                    }
                    RtObject::Str(s.clone())
                }
                HObjectKind::Boxed(d) => RtObject::Boxed(*d),
                HObjectKind::Blob { name, size } => RtObject::Blob {
                    name: name.clone(),
                    size: *size,
                },
            };
            objects.push(rt);
        }
        let statics = heap.statics().map(|(f, v)| (f, convert_value(v))).collect();
        RtHeap {
            snapshot_len: objects.len() as u32,
            objects,
            statics,
            interned,
        }
    }

    /// Number of objects that originate from the build heap.
    pub fn snapshot_len(&self) -> u32 {
        self.snapshot_len
    }

    /// Whether `r` refers to a build-time (image) object.
    pub fn is_image_object(&self, r: u32) -> bool {
        r < self.snapshot_len
    }

    /// The build-time id of an image object reference.
    pub fn as_obj_id(&self, r: u32) -> Option<ObjId> {
        self.is_image_object(r).then_some(ObjId(r))
    }

    /// Immutable object access.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn get(&self, r: u32) -> &RtObject {
        &self.objects[r as usize]
    }

    /// Mutable object access.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn get_mut(&mut self, r: u32) -> &mut RtObject {
        &mut self.objects[r as usize]
    }

    /// Allocates a runtime object, returning its reference.
    pub fn alloc(&mut self, o: RtObject) -> u32 {
        let r = self.objects.len() as u32;
        self.objects.push(o);
        r
    }

    /// Allocates an instance with default field values.
    pub fn alloc_instance(&mut self, program: &Program, class: ClassId) -> u32 {
        let fields = program
            .all_instance_fields(class)
            .iter()
            .map(|&f| RtValue::default_for(&program.field(f).ty))
            .collect();
        self.alloc(RtObject::Instance { class, fields })
    }

    /// Interned string lookup/allocation. Literals already interned at
    /// build time resolve to their image object (and thus to `.svm_heap`
    /// pages); new literals intern into anonymous memory.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&r) = self.interned.get(s) {
            return r;
        }
        let r = self.alloc(RtObject::Str(s.to_string()));
        self.interned.insert(s.to_string(), r);
        r
    }

    /// Reads a static field.
    pub fn static_value(&self, program: &Program, field: FieldId) -> RtValue {
        self.statics
            .get(&field)
            .copied()
            .unwrap_or_else(|| RtValue::default_for(&program.field(field).ty))
    }

    /// Writes a static field.
    pub fn set_static(&mut self, field: FieldId, value: RtValue) {
        self.statics.insert(field, value);
    }

    /// Total number of live objects (image + dynamic).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the heap has no objects at all.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_heap_conversion_preserves_indices() {
        let mut bh = BuildHeap::new();
        let s = bh.intern("hi");
        let arr = bh.alloc_array(TypeRef::Int, 3);
        let rt = RtHeap::from_build_heap(&bh);
        assert_eq!(rt.snapshot_len(), 2);
        assert!(matches!(rt.get(s.0), RtObject::Str(x) if x == "hi"));
        assert!(matches!(rt.get(arr.0), RtObject::Array { elems, .. } if elems.len() == 3));
    }

    #[test]
    fn runtime_allocations_are_not_image_objects() {
        let bh = BuildHeap::new();
        let mut rt = RtHeap::from_build_heap(&bh);
        let r = rt.alloc(RtObject::Str("dyn".into()));
        assert!(!rt.is_image_object(r));
        assert_eq!(rt.as_obj_id(r), None);
    }

    #[test]
    fn interned_literals_resolve_to_image_objects() {
        let mut bh = BuildHeap::new();
        let s = bh.intern("lit");
        let mut rt = RtHeap::from_build_heap(&bh);
        assert_eq!(rt.intern("lit"), s.0);
        let fresh = rt.intern("new-at-runtime");
        assert!(!rt.is_image_object(fresh));
        // Interning is stable at runtime too.
        assert_eq!(rt.intern("new-at-runtime"), fresh);
    }
}
