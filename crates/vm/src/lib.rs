//! # nimage-vm
//!
//! The runtime half of the nimage toolchain: a deterministic interpreter
//! that executes a laid-out [`nimage_image::BinaryImage`] under a
//! demand-paging simulator, attributing major page faults to the `.text`
//! and `.svm_heap` sections exactly the way the paper measures them with
//! `perf` (Sec. 7.1).
//!
//! The VM also hosts the *runtime side* of the tracing profiler (Sec. 6.1):
//! when the image was compiled with instrumentation, the interpreter emits
//! CU-entry records, method-entry records and Ball–Larus path records (with
//! interleaved object identifiers) into per-thread
//! [`nimage_profiler::TraceSession`] buffers, and charges the corresponding
//! probe costs so that Sec. 7.4's overhead factors can be reproduced.
//!
//! Simulated time is `ops · ns_per_op + faults · fault_ns`
//! ([`CostModel`]); the *shape* of the paper's results (who wins, by what
//! factor) depends only on fault counts and op counts, both of which are
//! deterministic.

#![warn(missing_docs)]

mod exec;
mod faultmap;
mod heap_rt;
pub mod lower;
mod paging;
mod report;

pub use exec::{ExecMode, ProbeCosts, StopWhen, Vm, VmBuilder, VmConfig, VmError};
pub use faultmap::{render_ascii, summarize, touched_extent, PageMapSummary};
pub use heap_rt::{HeapTemplate, RtHeap, RtObject, RtValue};
pub use lower::{LoweredProgram, LoweredShard};
pub use paging::{PageState, PagingConfig, PagingConfigError, PagingSim, SectionFaults};
pub use report::{CostModel, ExitKind, ResponsePoint, RunReport};
