//! One-time lowering of a compiled program into dense, decoded instruction
//! arrays the interpreter can dispatch over by index.
//!
//! The tree-walking path of [`crate::Vm`] re-reads (and clones) an
//! [`nimage_ir::Instr`] out of `Program → Method → Block → Vec<Instr>` on
//! every step. A [`LoweredProgram`] flattens every method body once:
//!
//! * each method becomes one contiguous `Vec<LoweredInstr>` with the block
//!   terminators lowered to ordinary instructions, so the hot loop is a
//!   single bounds-checked index into a slice and a `match` on a reference —
//!   **no per-step allocation, no clone**;
//! * jump targets are pre-resolved to flat code indices (plus the original
//!   block index, which the Ball–Larus runtime still keys on);
//! * string literals are interned into a per-program table (`ConstStr`
//!   carries a `u32` index instead of an owned `String`);
//! * virtual dispatch reads a dense `class × selector → method` vtable and
//!   field access a dense `class × field → slot` table, both precomputed
//!   from the exact `resolve_virtual` / `all_instance_fields` semantics;
//! * the Ball–Larus path tables of every executable method (every method
//!   appearing in a compilation unit) are flattened into dense
//!   `(from_mini × target_block)` edge tables, replacing the per-run
//!   `HashMap` of `(ProfilingCfg, PathNumbering)` pairs.
//!
//! A `LoweredProgram` is immutable and shared across runs behind an `Arc`:
//! the evaluation engine lowers each compiled build once and every
//! (strategy, workload) cell of the matrix executes against the same copy.
//! Results are bit-identical to the tree-walking path by construction — the
//! lowered tables are pure reindexings of the structures the legacy
//! interpreter consults lazily.

use std::collections::HashMap;

use nimage_compiler::{CompiledProgram, CuId, PathNumbering, ProfilingCfg};
use nimage_ir::{
    BinOp, Callee, ClassId, FieldId, Instr, Intrinsic, Local, MethodId, Program, SelectorId,
    Terminator, TypeRef, UnOp,
};

use crate::heap_rt::RtValue;

/// Sentinel for "absent" entries in the dense u32 lookup tables.
pub const NO_ENTRY: u32 = u32::MAX;

/// Sentinel for "absent" entries in the dense field-slot table.
pub const NO_SLOT: u16 = u16::MAX;

/// A pre-resolved control-flow edge: the flat code index of the target
/// block's first instruction plus the original block index (the unit the
/// Ball–Larus tables are keyed on).
#[derive(Debug, Clone, Copy)]
pub struct JumpEdge {
    /// Flat index into [`LoweredMethod::code`] of the target block's head.
    pub pc: u32,
    /// Original basic-block index of the target.
    pub block: u32,
}

/// A decoded instruction of the lowered engine. Mirrors
/// [`nimage_ir::Instr`] with owned-data operands replaced by table indices,
/// plus the three block terminators lowered to ordinary instructions so the
/// step loop never consults `Block::terminator`.
#[derive(Debug, Clone)]
pub enum LoweredInstr {
    /// `dst = <int literal>`
    ConstInt(Local, i64),
    /// `dst = <double literal>`
    ConstDouble(Local, f64),
    /// `dst = <bool literal>`
    ConstBool(Local, bool),
    /// `dst = strings[idx]` (interned literal, by string-table index).
    ConstStr(Local, u32),
    /// `dst = null`
    ConstNull(Local),
    /// `dst = src`
    Move(Local, Local),
    /// `dst = a <op> b`
    Bin(BinOp, Local, Local, Local),
    /// `dst = <op> a`
    Un(UnOp, Local, Local),
    /// `dst = new C()`
    New(Local, ClassId),
    /// `dst = new elem[len]`
    NewArray(Local, TypeRef, Local),
    /// `dst = obj.field`
    GetField(Local, Local, FieldId),
    /// `obj.field = src`
    PutField(Local, FieldId, Local),
    /// `dst = C.field`
    GetStatic(Local, FieldId),
    /// `C.field = src`
    PutStatic(FieldId, Local),
    /// `dst = arr[idx]`
    ArrayGet(Local, Local, Local),
    /// `arr[idx] = src`
    ArraySet(Local, Local, Local),
    /// `dst = arr.length`
    ArrayLen(Local, Local),
    /// `dst = s.length()`
    StrLen(Local, Local),
    /// `dst = s.charAt(i)`
    StrCharAt(Local, Local, Local),
    /// `dst = a + b` (string concatenation)
    StrConcat(Local, Local, Local),
    /// `dst? = call(args...)` with the call site pre-baked for the inline
    /// lookup.
    Call {
        /// Destination local for the return value, if any.
        dst: Option<Local>,
        /// Pre-resolved call target.
        target: LoweredCallee,
        /// Argument locals.
        args: Box<[Local]>,
        /// Original block index of this call site.
        site_block: u32,
        /// Original instruction index within the block.
        site_instr: u32,
    },
    /// `dst? = intrinsic(args...)`
    Intrinsic {
        /// Destination local, if the intrinsic produces a value.
        dst: Option<Local>,
        /// Which intrinsic.
        op: Intrinsic,
        /// Argument locals.
        args: Box<[Local]>,
    },
    /// Spawn a new thread executing a static method.
    Spawn {
        /// Entry method of the new thread.
        method: MethodId,
        /// Argument locals.
        args: Box<[Local]>,
    },
    /// Lowered `Terminator::Ret`.
    Ret(Option<Local>),
    /// Lowered `Terminator::Jump`.
    Jump(JumpEdge),
    /// Lowered `Terminator::Br`.
    Br {
        /// Condition local.
        cond: Local,
        /// Edge taken when the condition is true.
        then_e: JumpEdge,
        /// Edge taken when the condition is false.
        else_e: JumpEdge,
    },
}

/// Call target of a lowered call.
#[derive(Debug, Clone, Copy)]
pub enum LoweredCallee {
    /// Direct call.
    Static(MethodId),
    /// Virtual dispatch through the dense vtable.
    Virtual(SelectorId),
}

/// One flattened Ball–Larus edge: whether `from_mini → head_of(target)` is
/// a cut edge, and its increment if it is not.
#[derive(Debug, Clone, Copy)]
pub struct PathEdge {
    /// The edge terminates the current path.
    pub cut: bool,
    /// Ball–Larus increment (0 for cut edges).
    pub inc: u64,
}

/// Flattened Ball–Larus tables of one method: the per-block head mini and
/// the dense `(from_mini × target_block)` edge table, precomputed from the
/// same [`ProfilingCfg`] / [`PathNumbering`] the legacy path builds lazily.
#[derive(Debug, Clone)]
pub struct LoweredPaths {
    /// Head mini-block index of each basic block.
    pub block_head: Vec<u32>,
    /// `edges[from_mini * n_blocks + target_block]`.
    edges: Vec<PathEdge>,
    n_blocks: u32,
}

impl LoweredPaths {
    fn build(cfg: &ProfilingCfg, num: &PathNumbering, n_blocks: usize) -> LoweredPaths {
        let block_head: Vec<u32> = (0..n_blocks).map(|b| cfg.head_of_block(b).0).collect();
        let n_minis = cfg.minis().len();
        let mut edges = Vec::with_capacity(n_minis * n_blocks);
        for from in 0..n_minis {
            let from = nimage_compiler::MiniBlockId(from as u32);
            for &head in &block_head {
                let head = nimage_compiler::MiniBlockId(head);
                edges.push(PathEdge {
                    cut: num.is_cut(from, head),
                    inc: num.increment(from, head),
                });
            }
        }
        LoweredPaths {
            block_head,
            edges,
            n_blocks: n_blocks as u32,
        }
    }

    /// The edge `from_mini → head_of(target_block)`.
    #[inline]
    pub fn edge(&self, from_mini: u32, target_block: u32) -> PathEdge {
        self.edges[(from_mini * self.n_blocks + target_block) as usize]
    }
}

/// One flattened method body.
#[derive(Debug, Clone)]
pub struct LoweredMethod {
    /// Flat decoded instruction array; terminators included, so
    /// `code[block_start[b]..]` starts at block `b`'s first instruction.
    pub code: Vec<LoweredInstr>,
    /// Flat code index of each basic block's first instruction.
    pub block_start: Vec<u32>,
    /// Local-slot count (copied from the IR method).
    pub n_locals: u16,
}

/// The one-time lowering of a (program, compiled build) pair. Immutable;
/// shared across VM runs behind an `Arc`.
#[derive(Debug)]
pub struct LoweredProgram {
    /// Flattened method bodies, indexed by dense method index.
    methods: Vec<LoweredMethod>,
    /// Interned string literals referenced by [`LoweredInstr::ConstStr`].
    strings: Vec<String>,
    /// Dense `class × selector → method` vtable ([`NO_ENTRY`] = miss),
    /// row-major by class.
    vtable: Vec<u32>,
    n_selectors: usize,
    /// Dense `class × field → instance-field slot` table ([`NO_SLOT`] =
    /// field not on that class), row-major by class.
    field_slots: Vec<u16>,
    n_fields: usize,
    /// Default field values per class, in `all_instance_fields` layout
    /// order (the `New` fast path).
    field_defaults: Vec<Box<[RtValue]>>,
    /// CU rooted at each method ([`NO_ENTRY`] = not a root).
    root_cu: Vec<u32>,
    /// Flattened Ball–Larus tables per method; built only for heap-tracing
    /// builds and only for methods that appear in a compilation unit.
    paths: Vec<Option<LoweredPaths>>,
}

impl LoweredProgram {
    /// Lowers every method body of `program` against a compiled build.
    ///
    /// `max_paths` must match the executing VM's configured Ball–Larus
    /// path limit (the numbering depends on it).
    pub fn build(program: &Program, compiled: &CompiledProgram, max_paths: u64) -> LoweredProgram {
        let n_methods = program.methods().len();
        let n_classes = program.classes().len();
        let n_fields = program.fields().len();
        let n_selectors = program.selectors().len();

        let mut strings: Vec<String> = vec![];
        let mut string_idx: HashMap<String, u32> = HashMap::new();
        let mut methods = Vec::with_capacity(n_methods);
        for mi in 0..n_methods {
            let m = program.method(MethodId(mi as u32));
            // First pass: flat start index of every block (instrs + one
            // lowered terminator each).
            let mut block_start = Vec::with_capacity(m.blocks.len());
            let mut off = 0u32;
            for b in &m.blocks {
                block_start.push(off);
                off += b.instrs.len() as u32 + 1;
            }
            // Second pass: emit.
            let mut code = Vec::with_capacity(off as usize);
            for (bi, b) in m.blocks.iter().enumerate() {
                for (ii, ins) in b.instrs.iter().enumerate() {
                    code.push(lower_instr(ins, bi, ii, &mut strings, &mut string_idx));
                }
                let edge = |t: nimage_ir::BlockId| JumpEdge {
                    pc: block_start[t.index()],
                    block: t.0,
                };
                code.push(match &b.terminator {
                    Terminator::Ret(v) => LoweredInstr::Ret(*v),
                    Terminator::Jump(t) => LoweredInstr::Jump(edge(*t)),
                    Terminator::Br {
                        cond,
                        then_blk,
                        else_blk,
                    } => LoweredInstr::Br {
                        cond: *cond,
                        then_e: edge(*then_blk),
                        else_e: edge(*else_blk),
                    },
                });
            }
            methods.push(LoweredMethod {
                code,
                block_start,
                n_locals: m.n_locals,
            });
        }

        // Dense vtable via the exact resolve_virtual walk.
        let mut vtable = vec![NO_ENTRY; n_classes * n_selectors];
        for c in 0..n_classes {
            for s in 0..n_selectors {
                if let Some(m) = program.resolve_virtual(ClassId(c as u32), SelectorId(s as u32)) {
                    vtable[c * n_selectors + s] = m.0;
                }
            }
        }

        // Dense field-slot table + per-class default field images, both in
        // all_instance_fields (superclass-first) layout order.
        let mut field_slots = vec![NO_SLOT; n_classes * n_fields];
        let mut field_defaults = Vec::with_capacity(n_classes);
        for c in 0..n_classes {
            let layout = program.all_instance_fields(ClassId(c as u32));
            for (slot, f) in layout.iter().enumerate() {
                field_slots[c * n_fields + f.index()] = slot as u16;
            }
            field_defaults.push(
                layout
                    .iter()
                    .map(|&f| RtValue::default_for(&program.field(f).ty))
                    .collect(),
            );
        }

        let mut root_cu = vec![NO_ENTRY; n_methods];
        for cu in &compiled.cus {
            root_cu[cu.root.index()] = cu.id.0;
        }

        // Ball–Larus tables only where a frame can actually execute: the
        // methods realized in some CU's inline tree.
        let mut paths = vec![None; n_methods];
        if compiled.instrumentation.trace_heap {
            let mut needed = vec![false; n_methods];
            for cu in &compiled.cus {
                for node in &cu.nodes {
                    needed[node.method.index()] = true;
                }
            }
            for (mi, need) in needed.iter().enumerate() {
                if !need {
                    continue;
                }
                let m = program.method(MethodId(mi as u32));
                let cfg = ProfilingCfg::build(m);
                let num = PathNumbering::compute(&cfg, max_paths);
                paths[mi] = Some(LoweredPaths::build(&cfg, &num, m.blocks.len()));
            }
        }

        LoweredProgram {
            methods,
            strings,
            vtable,
            n_selectors,
            field_slots,
            n_fields,
            field_defaults,
            root_cu,
            paths,
        }
    }

    /// The flattened body of a method.
    #[inline]
    pub fn method(&self, m: MethodId) -> &LoweredMethod {
        &self.methods[m.index()]
    }

    /// Number of interned string literals.
    pub fn n_strings(&self) -> usize {
        self.strings.len()
    }

    /// An interned string literal.
    #[inline]
    pub fn string(&self, idx: u32) -> &str {
        &self.strings[idx as usize]
    }

    /// Virtual dispatch through the dense vtable (same result as
    /// [`Program::resolve_virtual`]).
    #[inline]
    pub fn resolve_virtual(&self, class: ClassId, selector: SelectorId) -> Option<MethodId> {
        let m = self.vtable[class.index() * self.n_selectors + selector.index()];
        (m != NO_ENTRY).then_some(MethodId(m))
    }

    /// Instance-field slot of `field` on `class`, if the field is part of
    /// the class's layout.
    #[inline]
    pub fn field_slot(&self, class: ClassId, field: FieldId) -> Option<usize> {
        let s = self.field_slots[class.index() * self.n_fields + field.index()];
        (s != NO_SLOT).then_some(s as usize)
    }

    /// Default field values of a class, in layout order.
    #[inline]
    pub fn field_defaults(&self, class: ClassId) -> &[RtValue] {
        &self.field_defaults[class.index()]
    }

    /// The CU rooted at `method` (same result as
    /// [`CompiledProgram::cu_of_root`]).
    #[inline]
    pub fn cu_of_root(&self, method: MethodId) -> Option<CuId> {
        let c = self.root_cu[method.index()];
        (c != NO_ENTRY).then_some(CuId(c))
    }

    /// The flattened Ball–Larus tables of a method (present only for
    /// heap-tracing builds).
    #[inline]
    pub fn paths(&self, m: MethodId) -> Option<&LoweredPaths> {
        self.paths[m.index()].as_ref()
    }
}

fn lower_instr(
    ins: &Instr,
    block: usize,
    instr: usize,
    strings: &mut Vec<String>,
    string_idx: &mut HashMap<String, u32>,
) -> LoweredInstr {
    match ins {
        Instr::ConstInt(d, v) => LoweredInstr::ConstInt(*d, *v),
        Instr::ConstDouble(d, v) => LoweredInstr::ConstDouble(*d, *v),
        Instr::ConstBool(d, v) => LoweredInstr::ConstBool(*d, *v),
        Instr::ConstStr(d, s) => {
            let idx = match string_idx.get(s.as_str()) {
                Some(&i) => i,
                None => {
                    let i = strings.len() as u32;
                    strings.push(s.clone());
                    string_idx.insert(s.clone(), i);
                    i
                }
            };
            LoweredInstr::ConstStr(*d, idx)
        }
        Instr::ConstNull(d) => LoweredInstr::ConstNull(*d),
        Instr::Move(d, s) => LoweredInstr::Move(*d, *s),
        Instr::Bin(op, d, a, b) => LoweredInstr::Bin(*op, *d, *a, *b),
        Instr::Un(op, d, a) => LoweredInstr::Un(*op, *d, *a),
        Instr::New(d, c) => LoweredInstr::New(*d, *c),
        Instr::NewArray(d, elem, len) => LoweredInstr::NewArray(*d, elem.clone(), *len),
        Instr::GetField(d, o, f) => LoweredInstr::GetField(*d, *o, *f),
        Instr::PutField(o, f, s) => LoweredInstr::PutField(*o, *f, *s),
        Instr::GetStatic(d, f) => LoweredInstr::GetStatic(*d, *f),
        Instr::PutStatic(f, s) => LoweredInstr::PutStatic(*f, *s),
        Instr::ArrayGet(d, a, i) => LoweredInstr::ArrayGet(*d, *a, *i),
        Instr::ArraySet(a, i, s) => LoweredInstr::ArraySet(*a, *i, *s),
        Instr::ArrayLen(d, a) => LoweredInstr::ArrayLen(*d, *a),
        Instr::StrLen(d, s) => LoweredInstr::StrLen(*d, *s),
        Instr::StrCharAt(d, s, i) => LoweredInstr::StrCharAt(*d, *s, *i),
        Instr::StrConcat(d, a, b) => LoweredInstr::StrConcat(*d, *a, *b),
        Instr::Call { dst, callee, args } => LoweredInstr::Call {
            dst: *dst,
            target: match callee {
                Callee::Static(m) => LoweredCallee::Static(*m),
                Callee::Virtual { selector, .. } => LoweredCallee::Virtual(*selector),
            },
            args: args.clone().into_boxed_slice(),
            site_block: block as u32,
            site_instr: instr as u32,
        },
        Instr::Intrinsic { dst, op, args } => LoweredInstr::Intrinsic {
            dst: *dst,
            op: *op,
            args: args.clone().into_boxed_slice(),
        },
        Instr::Spawn { method, args } => LoweredInstr::Spawn {
            method: *method,
            args: args.clone().into_boxed_slice(),
        },
    }
}
