//! Lazy, per-CU sharded lowering of a compiled program into dense, decoded
//! instruction arrays the interpreter can dispatch over by index.
//!
//! The tree-walking path of [`crate::Vm`] re-reads (and clones) an
//! [`nimage_ir::Instr`] out of `Program → Method → Block → Vec<Instr>` on
//! every step. A [`LoweredProgram`] flattens method bodies:
//!
//! * each method becomes one contiguous `Vec<LoweredInstr>` with the block
//!   terminators lowered to ordinary instructions, so the hot loop is a
//!   single bounds-checked index into a slice and a `match` on a reference —
//!   **no per-step allocation, no clone**;
//! * jump targets are pre-resolved to flat code indices (plus the original
//!   block index, which the Ball–Larus runtime still keys on);
//! * string literals are interned into a per-program table (`ConstStr`
//!   carries a `u32` index instead of an owned `String`);
//! * virtual dispatch reads a dense `class × selector → method` vtable and
//!   field access a dense `class × field → slot` table, both precomputed
//!   from the exact `resolve_virtual` / `all_instance_fields` semantics;
//! * the Ball–Larus path tables of every executable method (every method
//!   appearing in a compilation unit) are flattened into dense
//!   `(from_mini × target_block)` edge tables, replacing the per-run
//!   `HashMap` of `(ProfilingCfg, PathNumbering)` pairs.
//!
//! # Sharding
//!
//! Method bodies are **not** lowered up front. [`LoweredProgram::new`]
//! builds only the cheap global tables (vtable, field slots, root→CU map,
//! and the frozen string table — see below); the per-method instruction
//! arrays live in `OnceLock` slots grouped into **per-CU shards** that are
//! realized on first call into the CU ([`LoweredProgram::ensure_cu`], the
//! interpreter's fault-in path) or ahead of time for CUs the profile says
//! are hot ([`LoweredProgram::prelower_cu`], the engine's parallel
//! pre-lowering wave). A shard can also be installed from a disk-cached
//! [`LoweredShard`] ([`LoweredProgram::install_shard`]), so warm runs skip
//! the lowering work entirely.
//!
//! The string table is frozen eagerly by a pre-scan that replays the exact
//! interning traversal whole-program lowering used (methods in index order,
//! blocks and instructions in order, first occurrence wins). Realization
//! order therefore can never change a `ConstStr` index, which keeps every
//! observable — including the trace string table and the run report —
//! bit-identical between lazy, pre-lowered and whole-program lowering.
//!
//! A `LoweredProgram` is shared across runs behind an `Arc`: the evaluation
//! engine creates one container per compiled build and every (strategy,
//! workload) cell of the matrix executes against the same copy, faulting
//! shards in exactly once (`OnceLock` guards make realization idempotent
//! and race-free). Results are bit-identical to the tree-walking path by
//! construction — the lowered tables are pure reindexings of the structures
//! the legacy interpreter consults lazily.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use nimage_compiler::{CompiledProgram, CuId, PathNumbering, ProfilingCfg};
use nimage_ir::{
    BinOp, Callee, ClassId, FieldId, Instr, Intrinsic, Local, MethodId, Program, SelectorId,
    Terminator, TypeRef, UnOp,
};

use crate::heap_rt::RtValue;

/// Sentinel for "absent" entries in the dense u32 lookup tables.
pub const NO_ENTRY: u32 = u32::MAX;

/// Sentinel for "absent" entries in the dense field-slot table.
pub const NO_SLOT: u16 = u16::MAX;

/// A pre-resolved control-flow edge: the flat code index of the target
/// block's first instruction plus the original block index (the unit the
/// Ball–Larus tables are keyed on).
#[derive(Debug, Clone, Copy)]
pub struct JumpEdge {
    /// Flat index into [`LoweredMethod::code`] of the target block's head.
    pub pc: u32,
    /// Original basic-block index of the target.
    pub block: u32,
}

/// A decoded instruction of the lowered engine. Mirrors
/// [`nimage_ir::Instr`] with owned-data operands replaced by table indices,
/// plus the three block terminators lowered to ordinary instructions so the
/// step loop never consults `Block::terminator`.
#[derive(Debug, Clone)]
pub enum LoweredInstr {
    /// `dst = <int literal>`
    ConstInt(Local, i64),
    /// `dst = <double literal>`
    ConstDouble(Local, f64),
    /// `dst = <bool literal>`
    ConstBool(Local, bool),
    /// `dst = strings[idx]` (interned literal, by string-table index).
    ConstStr(Local, u32),
    /// `dst = null`
    ConstNull(Local),
    /// `dst = src`
    Move(Local, Local),
    /// `dst = a <op> b`
    Bin(BinOp, Local, Local, Local),
    /// `dst = <op> a`
    Un(UnOp, Local, Local),
    /// `dst = new C()`
    New(Local, ClassId),
    /// `dst = new elem[len]`
    NewArray(Local, TypeRef, Local),
    /// `dst = obj.field`
    GetField(Local, Local, FieldId),
    /// `obj.field = src`
    PutField(Local, FieldId, Local),
    /// `dst = C.field`
    GetStatic(Local, FieldId),
    /// `C.field = src`
    PutStatic(FieldId, Local),
    /// `dst = arr[idx]`
    ArrayGet(Local, Local, Local),
    /// `arr[idx] = src`
    ArraySet(Local, Local, Local),
    /// `dst = arr.length`
    ArrayLen(Local, Local),
    /// `dst = s.length()`
    StrLen(Local, Local),
    /// `dst = s.charAt(i)`
    StrCharAt(Local, Local, Local),
    /// `dst = a + b` (string concatenation)
    StrConcat(Local, Local, Local),
    /// `dst? = call(args...)` with the call site pre-baked for the inline
    /// lookup.
    Call {
        /// Destination local for the return value, if any.
        dst: Option<Local>,
        /// Pre-resolved call target.
        target: LoweredCallee,
        /// Argument locals.
        args: Box<[Local]>,
        /// Original block index of this call site.
        site_block: u32,
        /// Original instruction index within the block.
        site_instr: u32,
    },
    /// `dst? = intrinsic(args...)`
    Intrinsic {
        /// Destination local, if the intrinsic produces a value.
        dst: Option<Local>,
        /// Which intrinsic.
        op: Intrinsic,
        /// Argument locals.
        args: Box<[Local]>,
    },
    /// Spawn a new thread executing a static method.
    Spawn {
        /// Entry method of the new thread.
        method: MethodId,
        /// Argument locals.
        args: Box<[Local]>,
    },
    /// Lowered `Terminator::Ret`.
    Ret(Option<Local>),
    /// Lowered `Terminator::Jump`.
    Jump(JumpEdge),
    /// Lowered `Terminator::Br`.
    Br {
        /// Condition local.
        cond: Local,
        /// Edge taken when the condition is true.
        then_e: JumpEdge,
        /// Edge taken when the condition is false.
        else_e: JumpEdge,
    },
}

/// Call target of a lowered call.
#[derive(Debug, Clone, Copy)]
pub enum LoweredCallee {
    /// Direct call.
    Static(MethodId),
    /// Virtual dispatch through the dense vtable.
    Virtual(SelectorId),
}

/// One flattened Ball–Larus edge: whether `from_mini → head_of(target)` is
/// a cut edge, and its increment if it is not.
#[derive(Debug, Clone, Copy)]
pub struct PathEdge {
    /// The edge terminates the current path.
    pub cut: bool,
    /// Ball–Larus increment (0 for cut edges).
    pub inc: u64,
}

/// Flattened Ball–Larus tables of one method: the per-block head mini and
/// the dense `(from_mini × target_block)` edge table, precomputed from the
/// same [`ProfilingCfg`] / [`PathNumbering`] the legacy path builds lazily.
#[derive(Debug, Clone)]
pub struct LoweredPaths {
    /// Head mini-block index of each basic block.
    pub block_head: Vec<u32>,
    /// `edges[from_mini * n_blocks + target_block]`.
    edges: Vec<PathEdge>,
    n_blocks: u32,
}

impl LoweredPaths {
    fn build(cfg: &ProfilingCfg, num: &PathNumbering, n_blocks: usize) -> LoweredPaths {
        let block_head: Vec<u32> = (0..n_blocks).map(|b| cfg.head_of_block(b).0).collect();
        let n_minis = cfg.minis().len();
        let mut edges = Vec::with_capacity(n_minis * n_blocks);
        for from in 0..n_minis {
            let from = nimage_compiler::MiniBlockId(from as u32);
            for &head in &block_head {
                let head = nimage_compiler::MiniBlockId(head);
                edges.push(PathEdge {
                    cut: num.is_cut(from, head),
                    inc: num.increment(from, head),
                });
            }
        }
        LoweredPaths {
            block_head,
            edges,
            n_blocks: n_blocks as u32,
        }
    }

    /// The edge `from_mini → head_of(target_block)`.
    #[inline]
    pub fn edge(&self, from_mini: u32, target_block: u32) -> PathEdge {
        self.edges[(from_mini * self.n_blocks + target_block) as usize]
    }

    /// The raw table parts, for serialization: `(block_head, edges,
    /// n_blocks)`.
    pub fn raw_parts(&self) -> (&[u32], &[PathEdge], u32) {
        (&self.block_head, &self.edges, self.n_blocks)
    }

    /// Rebuilds the table from raw parts, validating the shape invariants
    /// the lookup path indexes on. `None` on inconsistent parts (a corrupt
    /// disk entry must stay a miss, never a panic).
    pub fn from_raw(
        block_head: Vec<u32>,
        edges: Vec<PathEdge>,
        n_blocks: u32,
    ) -> Option<LoweredPaths> {
        if block_head.len() != n_blocks as usize {
            return None;
        }
        if n_blocks == 0 {
            return edges.is_empty().then_some(LoweredPaths {
                block_head,
                edges,
                n_blocks,
            });
        }
        if !edges.len().is_multiple_of(n_blocks as usize) {
            return None;
        }
        let rows = edges.len() / n_blocks as usize;
        // Every block head is a mini-block row the edge lookup may start
        // from.
        if block_head.iter().any(|&h| h as usize >= rows) {
            return None;
        }
        Some(LoweredPaths {
            block_head,
            edges,
            n_blocks,
        })
    }
}

/// One flattened method body.
#[derive(Debug, Clone)]
pub struct LoweredMethod {
    /// Flat decoded instruction array; terminators included, so
    /// `code[block_start[b]..]` starts at block `b`'s first instruction.
    pub code: Vec<LoweredInstr>,
    /// Flat code index of each basic block's first instruction.
    pub block_start: Vec<u32>,
    /// Local-slot count (copied from the IR method).
    pub n_locals: u16,
}

/// The serializable lowering of one compilation unit: the flattened bodies
/// (and, for heap-tracing builds, path tables) of every method in the CU's
/// inline tree, sorted by method index. This is the unit the engine
/// persists under the `lower` disk stage, keyed per `(compile, cu)`.
#[derive(Debug, Clone)]
pub struct LoweredShard {
    /// The compilation unit this shard lowers.
    pub cu: u32,
    /// `(method index, flattened body)`, strictly ascending by index.
    pub methods: Vec<(u32, LoweredMethod)>,
    /// `(method index, path tables)`, strictly ascending by index; empty
    /// for non-tracing builds.
    pub paths: Vec<(u32, LoweredPaths)>,
}

/// The sharded lowering of a (program, compiled build) pair. Global tables
/// are eager; method bodies are grouped into per-CU shards realized on
/// demand. Shared across VM runs behind an `Arc`.
pub struct LoweredProgram {
    /// Flattened method bodies, indexed by dense method index; realized
    /// when the owning CU's shard is.
    methods: Vec<OnceLock<LoweredMethod>>,
    /// Interned string literals referenced by [`LoweredInstr::ConstStr`].
    /// Frozen at construction (see the module docs), so shard realization
    /// order never perturbs an index.
    strings: Vec<String>,
    /// Frozen literal → index map the shard lowering reads.
    string_idx: HashMap<String, u32>,
    /// Dense `class × selector → method` vtable ([`NO_ENTRY`] = miss),
    /// row-major by class.
    vtable: Vec<u32>,
    n_selectors: usize,
    /// Dense `class × field → instance-field slot` table ([`NO_SLOT`] =
    /// field not on that class), row-major by class.
    field_slots: Vec<u16>,
    n_fields: usize,
    /// Default field values per class, in `all_instance_fields` layout
    /// order (the `New` fast path).
    field_defaults: Vec<Box<[RtValue]>>,
    /// CU rooted at each method ([`NO_ENTRY`] = not a root).
    root_cu: Vec<u32>,
    /// Flattened Ball–Larus tables per method; realized with the owning
    /// shard, and only for heap-tracing builds.
    paths: Vec<OnceLock<LoweredPaths>>,
    /// Shard guards, one per CU: set exactly once when the CU's methods
    /// are realized.
    cus: Vec<OnceLock<()>>,
    trace_heap: bool,
    max_paths: u64,
    /// Shards realized by the interpreter's fault-in path.
    lazy_shards: AtomicU64,
    /// Shards realized ahead of execution (pre-lowering wave, disk
    /// install, or whole-program [`LoweredProgram::build`]).
    eager_shards: AtomicU64,
}

// Deliberately constant, like `ExecMode` and `Parallelism`: which shards
// happen to be realized is interior-mutable scheduling state that must
// never leak into a content-cache fingerprint — the lowering itself is
// fully determined by the (program, compiled, max_paths) inputs.
impl std::fmt::Debug for LoweredProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("LoweredProgram(..)")
    }
}

impl LoweredProgram {
    /// Creates the lazy sharded container: global tables (vtable, field
    /// slots, defaults, root→CU map) and the frozen string table are built
    /// eagerly; no method body is lowered until its CU's shard is faulted
    /// in or pre-lowered.
    ///
    /// `max_paths` must match the executing VM's configured Ball–Larus
    /// path limit (the numbering depends on it).
    pub fn new(program: &Program, compiled: &CompiledProgram, max_paths: u64) -> LoweredProgram {
        let n_methods = program.methods().len();
        let n_classes = program.classes().len();
        let n_fields = program.fields().len();
        let n_selectors = program.selectors().len();

        // Freeze the string table by replaying the exact interning
        // traversal of whole-program lowering: methods in index order,
        // blocks and instructions in order, first occurrence appends.
        let mut strings: Vec<String> = vec![];
        let mut string_idx: HashMap<String, u32> = HashMap::new();
        for mi in 0..n_methods {
            let m = program.method(MethodId(mi as u32));
            for b in &m.blocks {
                for ins in &b.instrs {
                    if let Instr::ConstStr(_, s) = ins {
                        if !string_idx.contains_key(s.as_str()) {
                            let i = strings.len() as u32;
                            strings.push(s.clone());
                            string_idx.insert(s.clone(), i);
                        }
                    }
                }
            }
        }

        // Dense vtable via the exact resolve_virtual walk.
        let mut vtable = vec![NO_ENTRY; n_classes * n_selectors];
        for c in 0..n_classes {
            for s in 0..n_selectors {
                if let Some(m) = program.resolve_virtual(ClassId(c as u32), SelectorId(s as u32)) {
                    vtable[c * n_selectors + s] = m.0;
                }
            }
        }

        // Dense field-slot table + per-class default field images, both in
        // all_instance_fields (superclass-first) layout order.
        let mut field_slots = vec![NO_SLOT; n_classes * n_fields];
        let mut field_defaults = Vec::with_capacity(n_classes);
        for c in 0..n_classes {
            let layout = program.all_instance_fields(ClassId(c as u32));
            for (slot, f) in layout.iter().enumerate() {
                field_slots[c * n_fields + f.index()] = slot as u16;
            }
            field_defaults.push(
                layout
                    .iter()
                    .map(|&f| RtValue::default_for(&program.field(f).ty))
                    .collect(),
            );
        }

        let mut root_cu = vec![NO_ENTRY; n_methods];
        for cu in &compiled.cus {
            root_cu[cu.root.index()] = cu.id.0;
        }

        LoweredProgram {
            methods: (0..n_methods).map(|_| OnceLock::new()).collect(),
            strings,
            string_idx,
            vtable,
            n_selectors,
            field_slots,
            n_fields,
            field_defaults,
            root_cu,
            paths: (0..n_methods).map(|_| OnceLock::new()).collect(),
            cus: (0..compiled.cus.len()).map(|_| OnceLock::new()).collect(),
            trace_heap: compiled.instrumentation.trace_heap,
            max_paths,
            lazy_shards: AtomicU64::new(0),
            eager_shards: AtomicU64::new(0),
        }
    }

    /// Lowers every method body of `program` up front (every shard counts
    /// as eagerly lowered). The sharded container realizes the identical
    /// bits lazily; this whole-program variant is kept for callers that
    /// want the complete lowering immediately (and as the differential
    /// reference the lazy path is pinned against).
    pub fn build(program: &Program, compiled: &CompiledProgram, max_paths: u64) -> LoweredProgram {
        let lp = LoweredProgram::new(program, compiled, max_paths);
        for cu in &compiled.cus {
            lp.prelower_cu(program, compiled, cu.id);
        }
        // Whole-program lowering also covered methods outside every CU's
        // inline tree (never executable, but part of the full lowering).
        for mi in 0..program.methods().len() {
            lp.realize_method(program, MethodId(mi as u32));
        }
        lp
    }

    /// Lowers one method body into its slot (idempotent, race-free).
    fn realize_method(&self, program: &Program, m: MethodId) {
        self.methods[m.index()].get_or_init(|| lower_method(program, m, &self.string_idx));
    }

    /// Lowers every method of `cu`'s inline tree, plus its Ball–Larus
    /// tables on heap-tracing builds.
    fn realize_cu(&self, program: &Program, compiled: &CompiledProgram, cu: CuId) {
        for node in &compiled.cu(cu).nodes {
            self.realize_method(program, node.method);
            if self.trace_heap {
                self.paths[node.method.index()].get_or_init(|| {
                    let m = program.method(node.method);
                    let cfg = ProfilingCfg::build(m);
                    let num = PathNumbering::compute(&cfg, self.max_paths);
                    LoweredPaths::build(&cfg, &num, m.blocks.len())
                });
            }
        }
    }

    /// Realizes a CU's shard exactly once, crediting `counter` when this
    /// call did the work. Concurrent callers of the same CU block on the
    /// shard guard until the winner finishes, so a shard is never observed
    /// half-realized. Returns whether this call realized the shard — for
    /// exactly one caller per CU, so callers can attribute the fault.
    fn fault_cu(
        &self,
        program: &Program,
        compiled: &CompiledProgram,
        cu: CuId,
        counter: &AtomicU64,
    ) -> bool {
        let slot = &self.cus[cu.index()];
        if slot.get().is_some() {
            return false;
        }
        let mut fresh = false;
        slot.get_or_init(|| {
            self.realize_cu(program, compiled, cu);
            fresh = true;
        });
        if fresh {
            counter.fetch_add(1, Ordering::Relaxed);
        }
        fresh
    }

    /// The interpreter's fault-in path: realizes `cu`'s shard on first
    /// call into the CU. Counted as a lazily lowered shard; `true` when
    /// this call did the lowering (the VM's shard-fault trace event).
    #[inline]
    pub fn ensure_cu(&self, program: &Program, compiled: &CompiledProgram, cu: CuId) -> bool {
        self.fault_cu(program, compiled, cu, &self.lazy_shards)
    }

    /// Pre-lowers `cu`'s shard ahead of execution (the engine's hot-CU
    /// wave). Counted as an eagerly lowered shard; `true` when this call
    /// did the lowering.
    pub fn prelower_cu(&self, program: &Program, compiled: &CompiledProgram, cu: CuId) -> bool {
        self.fault_cu(program, compiled, cu, &self.eager_shards)
    }

    /// Installs a disk-decoded shard, validating every index the
    /// interpreter would otherwise panic on (method/string/local/jump
    /// bounds, full coverage of the CU's inline tree). Returns `false` —
    /// treat as a cache miss and re-lower — when the shard is inconsistent
    /// with this build. Counted as an eagerly lowered shard when it
    /// realized the CU.
    pub fn install_shard(&self, compiled: &CompiledProgram, shard: &LoweredShard) -> bool {
        if !self.validate_shard(compiled, shard) {
            return false;
        }
        let slot = &self.cus[shard.cu as usize];
        if slot.get().is_some() {
            return true;
        }
        let mut fresh = false;
        slot.get_or_init(|| {
            for (mi, m) in &shard.methods {
                let _ = self.methods[*mi as usize].set(m.clone());
            }
            for (mi, p) in &shard.paths {
                let _ = self.paths[*mi as usize].set(p.clone());
            }
            fresh = true;
        });
        if fresh {
            self.eager_shards.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Extracts the serializable shard of `cu`, realizing it first if
    /// needed (counted eager — this is the engine's write-back path).
    pub fn extract_shard(
        &self,
        program: &Program,
        compiled: &CompiledProgram,
        cu: CuId,
    ) -> LoweredShard {
        self.fault_cu(program, compiled, cu, &self.eager_shards);
        let mut mids: Vec<u32> = compiled.cu(cu).nodes.iter().map(|n| n.method.0).collect();
        mids.sort_unstable();
        mids.dedup();
        let methods = mids
            .iter()
            .map(|&mi| {
                let m = self.methods[mi as usize]
                    .get()
                    .expect("shard realized above")
                    .clone();
                (mi, m)
            })
            .collect();
        let paths = mids
            .iter()
            .filter_map(|&mi| self.paths[mi as usize].get().map(|p| (mi, p.clone())))
            .collect();
        LoweredShard {
            cu: cu.0,
            methods,
            paths,
        }
    }

    /// Full consistency check of a decoded shard against this build: CU in
    /// range, methods strictly sorted, covering the CU's whole inline tree,
    /// every local/string/jump index in bounds, and path tables present for
    /// exactly the tracing configuration of this build.
    fn validate_shard(&self, compiled: &CompiledProgram, shard: &LoweredShard) -> bool {
        if shard.cu as usize >= self.cus.len() {
            return false;
        }
        let sorted = |v: &[u32]| v.windows(2).all(|w| w[0] < w[1]);
        if !sorted(&shard.methods.iter().map(|(mi, _)| *mi).collect::<Vec<_>>())
            || !sorted(&shard.paths.iter().map(|(mi, _)| *mi).collect::<Vec<_>>())
        {
            return false;
        }
        if shard
            .methods
            .iter()
            .any(|(mi, _)| *mi as usize >= self.methods.len())
            || shard
                .paths
                .iter()
                .any(|(mi, _)| *mi as usize >= self.paths.len())
        {
            return false;
        }
        // The shard must lower the CU's entire inline tree — a frame can
        // enter any node method once the shard guard is set.
        let mut mids: Vec<u32> = compiled
            .cu(CuId(shard.cu))
            .nodes
            .iter()
            .map(|n| n.method.0)
            .collect();
        mids.sort_unstable();
        mids.dedup();
        let have: Vec<u32> = shard.methods.iter().map(|(mi, _)| *mi).collect();
        if have != mids {
            return false;
        }
        let want_paths: Vec<u32> = if self.trace_heap { mids } else { vec![] };
        let have_paths: Vec<u32> = shard.paths.iter().map(|(mi, _)| *mi).collect();
        if have_paths != want_paths {
            return false;
        }
        shard.methods.iter().all(|(_, m)| self.validate_method(m))
    }

    /// Bounds-checks one decoded method body against the container's
    /// tables (the interpreter indexes without checks on these paths).
    fn validate_method(&self, m: &LoweredMethod) -> bool {
        let n_code = m.code.len() as u32;
        let n_blocks = m.block_start.len() as u32;
        let local = |l: &Local| u32::from(l.0) < u32::from(m.n_locals);
        let opt_local = |l: &Option<Local>| l.as_ref().is_none_or(local);
        let edge = |e: &JumpEdge| e.pc < n_code && e.block < n_blocks;
        if m.block_start.iter().any(|&pc| pc > n_code) {
            return false;
        }
        m.code.iter().all(|ins| match ins {
            LoweredInstr::ConstInt(d, _)
            | LoweredInstr::ConstDouble(d, _)
            | LoweredInstr::ConstBool(d, _)
            | LoweredInstr::ConstNull(d) => local(d),
            LoweredInstr::ConstStr(d, s) => local(d) && (*s as usize) < self.strings.len(),
            LoweredInstr::Move(d, s)
            | LoweredInstr::Un(_, d, s)
            | LoweredInstr::ArrayLen(d, s)
            | LoweredInstr::StrLen(d, s) => local(d) && local(s),
            LoweredInstr::Bin(_, d, a, b)
            | LoweredInstr::ArrayGet(d, a, b)
            | LoweredInstr::ArraySet(d, a, b)
            | LoweredInstr::StrCharAt(d, a, b)
            | LoweredInstr::StrConcat(d, a, b) => local(d) && local(a) && local(b),
            LoweredInstr::New(d, c) => local(d) && c.index() < self.field_defaults.len(),
            LoweredInstr::NewArray(d, _, l) => local(d) && local(l),
            LoweredInstr::GetField(d, o, _) => local(d) && local(o),
            LoweredInstr::PutField(o, _, s) => local(o) && local(s),
            LoweredInstr::GetStatic(d, _) => local(d),
            LoweredInstr::PutStatic(_, s) => local(s),
            LoweredInstr::Call { dst, args, .. } => opt_local(dst) && args.iter().all(local),
            LoweredInstr::Intrinsic { dst, args, .. } => opt_local(dst) && args.iter().all(local),
            LoweredInstr::Spawn { method, args } => {
                method.index() < self.methods.len() && args.iter().all(local)
            }
            LoweredInstr::Ret(v) => opt_local(v),
            LoweredInstr::Jump(e) => edge(e),
            LoweredInstr::Br {
                cond,
                then_e,
                else_e,
            } => local(cond) && edge(then_e) && edge(else_e),
        })
    }

    /// Number of compilation units (= number of shards).
    pub fn n_cus(&self) -> usize {
        self.cus.len()
    }

    /// Whether `cu`'s shard has been realized.
    pub fn is_cu_lowered(&self, cu: CuId) -> bool {
        self.cus[cu.index()].get().is_some()
    }

    /// Shards realized by the interpreter's fault-in path so far.
    pub fn shards_lowered_lazy(&self) -> u64 {
        self.lazy_shards.load(Ordering::Relaxed)
    }

    /// Shards realized ahead of execution (pre-lowering wave, disk
    /// install, whole-program build) so far.
    pub fn shards_lowered_eager(&self) -> u64 {
        self.eager_shards.load(Ordering::Relaxed)
    }

    /// The flattened body of a method. The owning shard must have been
    /// realized — every out-of-line entry goes through
    /// [`LoweredProgram::ensure_cu`], and inlined frames stay within the
    /// entered CU.
    #[inline]
    pub fn method(&self, m: MethodId) -> &LoweredMethod {
        self.methods[m.index()]
            .get()
            .expect("method's CU shard faulted in before execution")
    }

    /// Number of interned string literals.
    pub fn n_strings(&self) -> usize {
        self.strings.len()
    }

    /// An interned string literal.
    #[inline]
    pub fn string(&self, idx: u32) -> &str {
        &self.strings[idx as usize]
    }

    /// Virtual dispatch through the dense vtable (same result as
    /// [`Program::resolve_virtual`]).
    #[inline]
    pub fn resolve_virtual(&self, class: ClassId, selector: SelectorId) -> Option<MethodId> {
        let m = self.vtable[class.index() * self.n_selectors + selector.index()];
        (m != NO_ENTRY).then_some(MethodId(m))
    }

    /// Instance-field slot of `field` on `class`, if the field is part of
    /// the class's layout.
    #[inline]
    pub fn field_slot(&self, class: ClassId, field: FieldId) -> Option<usize> {
        let s = self.field_slots[class.index() * self.n_fields + field.index()];
        (s != NO_SLOT).then_some(s as usize)
    }

    /// Default field values of a class, in layout order.
    #[inline]
    pub fn field_defaults(&self, class: ClassId) -> &[RtValue] {
        &self.field_defaults[class.index()]
    }

    /// The CU rooted at `method` (same result as
    /// [`CompiledProgram::cu_of_root`]).
    #[inline]
    pub fn cu_of_root(&self, method: MethodId) -> Option<CuId> {
        let c = self.root_cu[method.index()];
        (c != NO_ENTRY).then_some(CuId(c))
    }

    /// The flattened Ball–Larus tables of a method (present only for
    /// heap-tracing builds, once the owning shard is realized).
    #[inline]
    pub fn paths(&self, m: MethodId) -> Option<&LoweredPaths> {
        self.paths[m.index()].get()
    }
}

/// Flattens one method body against the frozen string table.
fn lower_method(
    program: &Program,
    mid: MethodId,
    string_idx: &HashMap<String, u32>,
) -> LoweredMethod {
    let m = program.method(mid);
    // First pass: flat start index of every block (instrs + one lowered
    // terminator each).
    let mut block_start = Vec::with_capacity(m.blocks.len());
    let mut off = 0u32;
    for b in &m.blocks {
        block_start.push(off);
        off += b.instrs.len() as u32 + 1;
    }
    // Second pass: emit.
    let mut code = Vec::with_capacity(off as usize);
    for (bi, b) in m.blocks.iter().enumerate() {
        for (ii, ins) in b.instrs.iter().enumerate() {
            code.push(lower_instr(ins, bi, ii, string_idx));
        }
        let edge = |t: nimage_ir::BlockId| JumpEdge {
            pc: block_start[t.index()],
            block: t.0,
        };
        code.push(match &b.terminator {
            Terminator::Ret(v) => LoweredInstr::Ret(*v),
            Terminator::Jump(t) => LoweredInstr::Jump(edge(*t)),
            Terminator::Br {
                cond,
                then_blk,
                else_blk,
            } => LoweredInstr::Br {
                cond: *cond,
                then_e: edge(*then_blk),
                else_e: edge(*else_blk),
            },
        });
    }
    LoweredMethod {
        code,
        block_start,
        n_locals: m.n_locals,
    }
}

fn lower_instr(
    ins: &Instr,
    block: usize,
    instr: usize,
    string_idx: &HashMap<String, u32>,
) -> LoweredInstr {
    match ins {
        Instr::ConstInt(d, v) => LoweredInstr::ConstInt(*d, *v),
        Instr::ConstDouble(d, v) => LoweredInstr::ConstDouble(*d, *v),
        Instr::ConstBool(d, v) => LoweredInstr::ConstBool(*d, *v),
        Instr::ConstStr(d, s) => {
            let idx = *string_idx
                .get(s.as_str())
                .expect("string table frozen by the construction pre-scan");
            LoweredInstr::ConstStr(*d, idx)
        }
        Instr::ConstNull(d) => LoweredInstr::ConstNull(*d),
        Instr::Move(d, s) => LoweredInstr::Move(*d, *s),
        Instr::Bin(op, d, a, b) => LoweredInstr::Bin(*op, *d, *a, *b),
        Instr::Un(op, d, a) => LoweredInstr::Un(*op, *d, *a),
        Instr::New(d, c) => LoweredInstr::New(*d, *c),
        Instr::NewArray(d, elem, len) => LoweredInstr::NewArray(*d, elem.clone(), *len),
        Instr::GetField(d, o, f) => LoweredInstr::GetField(*d, *o, *f),
        Instr::PutField(o, f, s) => LoweredInstr::PutField(*o, *f, *s),
        Instr::GetStatic(d, f) => LoweredInstr::GetStatic(*d, *f),
        Instr::PutStatic(f, s) => LoweredInstr::PutStatic(*f, *s),
        Instr::ArrayGet(d, a, i) => LoweredInstr::ArrayGet(*d, *a, *i),
        Instr::ArraySet(a, i, s) => LoweredInstr::ArraySet(*a, *i, *s),
        Instr::ArrayLen(d, a) => LoweredInstr::ArrayLen(*d, *a),
        Instr::StrLen(d, s) => LoweredInstr::StrLen(*d, *s),
        Instr::StrCharAt(d, s, i) => LoweredInstr::StrCharAt(*d, *s, *i),
        Instr::StrConcat(d, a, b) => LoweredInstr::StrConcat(*d, *a, *b),
        Instr::Call { dst, callee, args } => LoweredInstr::Call {
            dst: *dst,
            target: match callee {
                Callee::Static(m) => LoweredCallee::Static(*m),
                Callee::Virtual { selector, .. } => LoweredCallee::Virtual(*selector),
            },
            args: args.clone().into_boxed_slice(),
            site_block: block as u32,
            site_instr: instr as u32,
        },
        Instr::Intrinsic { dst, op, args } => LoweredInstr::Intrinsic {
            dst: *dst,
            op: *op,
            args: args.clone().into_boxed_slice(),
        },
        Instr::Spawn { method, args } => LoweredInstr::Spawn {
            method: *method,
            args: args.clone().into_boxed_slice(),
        },
    }
}
