//! The interpreter VM: executes a compiled image under the paging simulator
//! with optional profiling instrumentation.
//!
//! Execution is fully deterministic: threads are scheduled round-robin with
//! a fixed quantum, allocation order is program order, and every source of
//! time is an operation counter. Page faults arise exactly where a real
//! memory-mapped binary would fault: on first execution of a compilation
//! unit's bytes in `.text`, and on first access to a snapshot object's bytes
//! in `.svm_heap`.

use std::sync::Arc;

use nimage_compiler::{CallCountProfile, CompiledProgram, CuId, PathNumbering, ProfilingCfg};
use nimage_heap::HeapSnapshot;
use nimage_image::BinaryImage;
use nimage_ir::{BinOp, Callee, Instr, Intrinsic, Local, MethodId, Program, Terminator, UnOp};
use nimage_profiler::{DumpMode, ThreadHandle, TraceSession};
use nimage_trace::Tracer;

use crate::heap_rt::{RtHeap, RtObject, RtValue};
use crate::lower::{JumpEdge, LoweredCallee, LoweredInstr, LoweredProgram};
use crate::paging::{PagingConfig, PagingSim};
use crate::report::{ExitKind, ResponsePoint, RunReport};

/// Probe cost model: extra interpreter operations charged per
/// instrumentation action (the source of Sec. 7.4's overhead factors).
#[derive(Debug, Clone, Copy)]
pub struct ProbeCosts {
    /// Per CU-entry record.
    pub cu_entry: u64,
    /// Per method-entry record (method ordering instruments *every* method
    /// entry, including inlined copies, hence its higher overhead).
    pub method_entry: u64,
    /// Per path-record flush (heap tracing).
    pub path_flush: u64,
    /// Per traced object identifier (heap tracing).
    pub obj_id: u64,
}

impl Default for ProbeCosts {
    fn default() -> Self {
        ProbeCosts {
            cu_entry: 14,
            method_entry: 30,
            path_flush: 4,
            obj_id: 1,
        }
    }
}

/// Which interpreter core executes the program.
///
/// Both engines are bit-identical in every observable (report, trace,
/// faults); the lowered engine dispatches over pre-decoded flat instruction
/// arrays (see [`crate::lower`]) and is the default. The `Debug` rendering
/// is deliberately constant — like `Parallelism` in `nimage-par`, the
/// engine choice must never enter a content-cache fingerprint, precisely
/// because results are identical either way.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Index-driven dispatch over a pre-lowered program (default).
    #[default]
    Lowered,
    /// The legacy tree-walking path (reference semantics; kept for
    /// differential testing).
    Legacy,
}

impl std::fmt::Debug for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ExecMode(..)")
    }
}

/// VM configuration.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Paging behaviour.
    pub paging: PagingConfig,
    /// Instructions per thread scheduling slice.
    pub quantum: u32,
    /// Probe costs for instrumented runs.
    pub probe_costs: ProbeCosts,
    /// Hard operation budget (guards against runaway programs).
    pub max_ops: u64,
    /// Trace-buffer dump mode for instrumented runs.
    pub dump_mode: DumpMode,
    /// Trace-buffer capacity in bytes.
    pub trace_buffer: usize,
    /// Native-runtime startup pages touched before `main` (libc/VM init at
    /// the end of `.text`, cf. Fig. 6).
    pub startup_native_pages: u64,
    /// Maximum Ball–Larus paths per method before cutting.
    pub max_paths: u64,
    /// Interpreter core (results are identical either way).
    pub exec: ExecMode,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            paging: PagingConfig::default(),
            quantum: 64,
            probe_costs: ProbeCosts::default(),
            max_ops: 500_000_000,
            dump_mode: DumpMode::OnFull,
            trace_buffer: 64 * 1024,
            startup_native_pages: 6,
            max_paths: 1 << 14,
            exec: ExecMode::Lowered,
        }
    }
}

/// When to stop the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopWhen {
    /// Run until every thread terminates (AWFY workloads).
    Exit,
    /// Stop at the first `respond` intrinsic, then kill the process
    /// (microservice workloads, Sec. 7.1).
    FirstResponse,
}

/// A runtime error (mirrors the build-time [`nimage_heap::ClinitError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Null dereference.
    NullDeref {
        /// Signature of the executing method.
        method: String,
    },
    /// Out-of-bounds array or string index.
    IndexOutOfBounds {
        /// Signature of the executing method.
        method: String,
    },
    /// Division by zero.
    DivisionByZero {
        /// Signature of the executing method.
        method: String,
    },
    /// Operand kind mismatch (a workload-builder bug).
    TypeMismatch {
        /// Signature of the executing method.
        method: String,
        /// Details.
        detail: String,
    },
    /// Virtual dispatch failure.
    NoSuchMethod {
        /// Receiver class.
        class: String,
        /// Selector.
        selector: String,
    },
    /// A call target had no compilation unit (compiler invariant breach).
    MissingCu {
        /// Signature of the target method.
        method: String,
    },
    /// The VM configuration is invalid (e.g. a non-power-of-two
    /// fault-around window), detected before any execution.
    Config {
        /// Details.
        detail: String,
    },
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::NullDeref { method } => write!(f, "null dereference in {method}"),
            VmError::IndexOutOfBounds { method } => write!(f, "index out of bounds in {method}"),
            VmError::DivisionByZero { method } => write!(f, "division by zero in {method}"),
            VmError::TypeMismatch { method, detail } => {
                write!(f, "type mismatch in {method}: {detail}")
            }
            VmError::NoSuchMethod { class, selector } => {
                write!(f, "no method {selector} on {class}")
            }
            VmError::MissingCu { method } => write!(f, "no compilation unit for {method}"),
            VmError::Config { detail } => write!(f, "invalid VM configuration: {detail}"),
        }
    }
}

impl std::error::Error for VmError {}

struct Frame {
    method: MethodId,
    cu: CuId,
    node: u32,
    locals: Vec<RtValue>,
    block: usize,
    ip: usize,
    /// Caller local receiving this frame's return value.
    ret_slot: Option<Local>,
    // Ball–Larus state (meaningful only when heap tracing is on).
    mini: u32,
    path_start: u32,
    path_acc: u64,
    pending: Vec<u64>,
}

struct ThreadCtx {
    frames: Vec<Frame>,
    handle: Option<ThreadHandle>,
    done: bool,
}

/// The virtual machine for one image execution.
pub struct Vm<'a> {
    program: &'a Program,
    compiled: &'a CompiledProgram,
    snapshot: &'a HeapSnapshot,
    image: &'a BinaryImage,
    config: VmConfig,
    paging: PagingSim,
    heap: RtHeap,
    session: Option<TraceSession>,
    /// The pre-lowered program the index-driven engine dispatches over
    /// (`None` on the legacy path).
    lowered: Option<Arc<LoweredProgram>>,
    /// Trace string-table index per method (dense by method index;
    /// `u32::MAX` = not yet interned). Interning stays lazy so the string
    /// table's insertion order matches the legacy path exactly.
    sig_ids: Vec<u32>,
    /// Lazily built Ball–Larus tables of the legacy path (dense by method
    /// index).
    path_tables: Vec<Option<Box<(ProfilingCfg, PathNumbering)>>>,
    /// Heap refs of already-interned string literals, dense by
    /// string-table index (`u32::MAX` = not yet interned; interning is
    /// stable, so caching the ref skips the hash lookup).
    str_refs: Vec<u32>,
    threads: Vec<ThreadCtx>,
    ops: u64,
    probe_ops: u64,
    /// Dynamic call counts, dense by method index.
    call_counts: Vec<u64>,
    first_response: Option<ResponsePoint>,
    entry_return: Option<RtValue>,
    native_seen: std::collections::HashSet<u32>,
    native_touch_pages: Vec<u32>,
    /// Object-relative touched-byte spans per snapshot object, recorded on
    /// heap-traced runs (keyed by raw snapshot object index). Canonicalized
    /// — sorted, merged — into `RunReport::heap_touch_spans` at exit.
    heap_touch_spans: std::collections::HashMap<u32, Vec<(u64, u64)>>,
    /// Extra cost factor for memory-mapped (mode 2) trace writes: every
    /// record is made durable immediately instead of staged in a local
    /// buffer, which the paper's Sec. 7.4 shows costs roughly twice as
    /// much per event.
    probe_scale: u64,
    /// Observability sink for page-fault and shard-fault point events.
    /// Disabled by default (one branch per fault); never consulted on the
    /// per-op dispatch path, so a disabled tracer costs nothing there.
    trace: Tracer,
}

/// Builder for a [`Vm`]: the four mandatory inputs up front, everything
/// shareable or optional — heap template, pre-lowered program, tracer —
/// as chained setters. [`Vm::with_shared`] delegates here.
pub struct VmBuilder<'a> {
    program: &'a Program,
    compiled: &'a CompiledProgram,
    snapshot: &'a HeapSnapshot,
    image: &'a BinaryImage,
    config: VmConfig,
    template: Option<Arc<crate::HeapTemplate>>,
    lowered: Option<Arc<LoweredProgram>>,
    trace: Tracer,
}

impl<'a> VmBuilder<'a> {
    /// Starts a builder over the mandatory execution inputs.
    pub fn new(
        program: &'a Program,
        compiled: &'a CompiledProgram,
        snapshot: &'a HeapSnapshot,
        image: &'a BinaryImage,
        config: VmConfig,
    ) -> VmBuilder<'a> {
        VmBuilder {
            program,
            compiled,
            snapshot,
            image,
            config,
            template: None,
            lowered: None,
            trace: Tracer::disabled(),
        }
    }

    /// Shares a pre-materialized heap template (`None`: materialize a
    /// private heap from the snapshot).
    #[must_use]
    pub fn heap_template(mut self, template: Option<Arc<crate::HeapTemplate>>) -> VmBuilder<'a> {
        self.template = template;
        self
    }

    /// Shares a pre-lowered program (`None`: lower lazily per CU). Must
    /// have been built from the same `(program, compiled)` pair with the
    /// same `max_paths` as the config.
    #[must_use]
    pub fn lowered(mut self, lowered: Option<Arc<LoweredProgram>>) -> VmBuilder<'a> {
        self.lowered = lowered;
        self
    }

    /// Records page-fault and shard-fault instants into `trace`. The
    /// default is [`Tracer::disabled`] — zero events, one branch per
    /// fault. Tracing never changes results: the paging simulator runs
    /// identically either way, and the report is assembled from the same
    /// state (pinned by `core/tests/trace_neutral.rs`).
    #[must_use]
    pub fn tracer(mut self, trace: Tracer) -> VmBuilder<'a> {
        self.trace = trace;
        self
    }

    /// Builds the VM.
    #[must_use]
    pub fn build(self) -> Vm<'a> {
        let heap = match self.template {
            Some(t) => RtHeap::from_template(t),
            None => RtHeap::from_build_heap(self.snapshot.heap()),
        };
        Vm::with_heap(
            self.program,
            self.compiled,
            self.snapshot,
            self.image,
            self.config,
            heap,
            self.lowered,
            self.trace,
        )
    }
}

impl<'a> Vm<'a> {
    /// Creates a VM over a built image, materializing a private copy of the
    /// snapshot heap.
    pub fn new(
        program: &'a Program,
        compiled: &'a CompiledProgram,
        snapshot: &'a HeapSnapshot,
        image: &'a BinaryImage,
        config: VmConfig,
    ) -> Vm<'a> {
        let heap = RtHeap::from_build_heap(snapshot.heap());
        Vm::with_heap(
            program,
            compiled,
            snapshot,
            image,
            config,
            heap,
            None,
            Tracer::disabled(),
        )
    }

    /// Creates a VM over a built image whose snapshot was materialized once
    /// into a shared [`crate::HeapTemplate`]. Repeated runs of the same
    /// image (the evaluation engine runs one baseline per strategy matrix)
    /// reference the template copy-on-write instead of re-converting the
    /// whole snapshot per run.
    pub fn with_heap_template(
        program: &'a Program,
        compiled: &'a CompiledProgram,
        snapshot: &'a HeapSnapshot,
        image: &'a BinaryImage,
        config: VmConfig,
        template: std::sync::Arc<crate::HeapTemplate>,
    ) -> Vm<'a> {
        let heap = RtHeap::from_template(template);
        Vm::with_heap(
            program,
            compiled,
            snapshot,
            image,
            config,
            heap,
            None,
            Tracer::disabled(),
        )
    }

    /// Creates a VM sharing both the materialized heap template and the
    /// pre-lowered program across runs. The evaluation engine lowers each
    /// compiled build once and hands every (strategy, workload) cell the
    /// same `Arc` — repeated runs skip the lowering pass entirely.
    ///
    /// `lowered` must have been built from the same `(program, compiled)`
    /// pair with the same `max_paths` as `config`.
    pub fn with_shared(
        program: &'a Program,
        compiled: &'a CompiledProgram,
        snapshot: &'a HeapSnapshot,
        image: &'a BinaryImage,
        config: VmConfig,
        template: Option<Arc<crate::HeapTemplate>>,
        lowered: Option<Arc<LoweredProgram>>,
    ) -> Vm<'a> {
        VmBuilder::new(program, compiled, snapshot, image, config)
            .heap_template(template)
            .lowered(lowered)
            .build()
    }

    #[allow(clippy::too_many_arguments)]
    fn with_heap(
        program: &'a Program,
        compiled: &'a CompiledProgram,
        snapshot: &'a HeapSnapshot,
        image: &'a BinaryImage,
        config: VmConfig,
        heap: RtHeap,
        lowered: Option<Arc<LoweredProgram>>,
        trace: Tracer,
    ) -> Vm<'a> {
        let session = if compiled.instrumentation.any() {
            Some(TraceSession::new(config.dump_mode, config.trace_buffer))
        } else {
            None
        };
        let probe_scale = match config.dump_mode {
            DumpMode::OnFull => 1,
            DumpMode::MemoryMapped => 2,
        };
        let lowered = match config.exec {
            ExecMode::Legacy => None,
            ExecMode::Lowered => Some(lowered.unwrap_or_else(|| {
                // Standalone runs get the lazy sharded container; shards
                // fault in per CU as execution first enters them.
                Arc::new(LoweredProgram::new(program, compiled, config.max_paths))
            })),
        };
        let n_methods = program.methods().len();
        let str_refs = match &lowered {
            Some(lp) => vec![u32::MAX; lp.n_strings()],
            None => vec![],
        };
        Vm {
            paging: PagingSim::new(image, config.paging.clone()),
            heap,
            program,
            compiled,
            snapshot,
            image,
            config,
            session,
            lowered,
            sig_ids: vec![u32::MAX; n_methods],
            path_tables: vec![None; n_methods],
            str_refs,
            threads: vec![],
            ops: 0,
            probe_ops: 0,
            call_counts: vec![0; n_methods],
            first_response: None,
            entry_return: None,
            native_seen: std::collections::HashSet::new(),
            native_touch_pages: Vec::new(),
            heap_touch_spans: std::collections::HashMap::new(),
            probe_scale,
            trace,
        }
    }

    fn sig_idx(&mut self, m: MethodId) -> u32 {
        let cached = self.sig_ids[m.index()];
        if cached != u32::MAX {
            return cached;
        }
        let sig = self.program.method_signature(m);
        let i = self
            .session
            .as_mut()
            .expect("sig interning requires a session")
            .intern(&sig);
        self.sig_ids[m.index()] = i;
        i
    }

    fn trace_heap(&self) -> bool {
        self.compiled.instrumentation.trace_heap
    }

    fn path_table(&mut self, m: MethodId) -> &(ProfilingCfg, PathNumbering) {
        let i = m.index();
        if self.path_tables[i].is_none() {
            let cfg = ProfilingCfg::build(self.program.method(m));
            let num = PathNumbering::compute(&cfg, self.config.max_paths);
            self.path_tables[i] = Some(Box::new((cfg, num)));
        }
        self.path_tables[i].as_deref().expect("just filled")
    }

    /// Records `n` major-fault instants against `section` (no-op — one
    /// branch — when the tracer is disabled; faults are rare next to ops,
    /// so the enabled path never shows up on the run either).
    #[inline]
    fn fault_instants(&self, section: &'static str, n: u64) {
        if n == 0 || !self.trace.is_enabled() {
            return;
        }
        for _ in 0..n {
            self.trace
                .instant("page-fault", || format!("section={section}"));
        }
    }

    /// Touches the code bytes of an inline node.
    fn touch_code(&mut self, cu: CuId, node: u32) {
        let cu_ref = self.compiled.cu(cu);
        let n = &cu_ref.nodes[node as usize];
        let off = self.image.cu_offset(cu) + u64::from(n.offset);
        let faults = self
            .paging
            .touch_range(self.image, off, u64::from(n.size.max(1)));
        self.fault_instants(".text", faults);
    }

    /// Runtime error helper.
    fn err_sig(&self, m: MethodId) -> String {
        self.program.method_signature(m)
    }

    /// Pushes a new frame for `method` executing inside `(cu, node)`.
    fn push_frame(
        &mut self,
        thread: usize,
        method: MethodId,
        cu: CuId,
        node: u32,
        args: Vec<RtValue>,
        ret_slot: Option<Local>,
    ) {
        self.touch_code(cu, node);
        self.call_counts[method.index()] += 1;
        if self.compiled.instrumentation.trace_methods {
            let sig = self.sig_idx(method);
            let th = self.threads[thread].handle.expect("traced thread");
            self.session
                .as_mut()
                .expect("session")
                .record_method_entry(th, sig);
            self.probe_ops += self.config.probe_costs.method_entry * self.probe_scale;
        }
        let m = self.program.method(method);
        let mut locals = vec![RtValue::Null; m.n_locals as usize];
        locals[..args.len()].copy_from_slice(&args);
        // The entry mini-block is the head of block 0, which ProfilingCfg
        // numbers 0 unconditionally.
        let mini = 0;
        self.threads[thread].frames.push(Frame {
            method,
            cu,
            node,
            locals,
            block: 0,
            ip: 0,
            ret_slot,
            mini,
            path_start: mini,
            path_acc: 0,
            pending: vec![],
        });
    }

    /// Enters a CU out-of-line (thread start or non-inlined call).
    fn enter_cu(
        &mut self,
        thread: usize,
        method: MethodId,
        args: Vec<RtValue>,
        ret_slot: Option<Local>,
    ) -> Result<(), VmError> {
        let cu = match &self.lowered {
            Some(lp) => lp.cu_of_root(method),
            None => self.compiled.cu_of_root(method),
        }
        .ok_or_else(|| VmError::MissingCu {
            method: self.err_sig(method),
        })?;
        // Fault the CU's lowering shard in on first entry (no-op once
        // realized; pre-lowered shards never hit the slow path). The
        // realizing call is unique per CU, so the instant fires exactly
        // once per lazily lowered shard — but on whichever sharing run got
        // there first, hence the *root* (logically detached) event.
        if let Some(lp) = &self.lowered {
            if lp.ensure_cu(self.program, self.compiled, cu) {
                self.trace
                    .root_instant("shard-fault", || format!("cu={}", cu.index()));
            }
        }
        if self.compiled.instrumentation.trace_cu {
            let sig = self.sig_idx(method);
            let th = self.threads[thread].handle.expect("traced thread");
            self.session
                .as_mut()
                .expect("session")
                .record_cu_entry(th, sig);
            self.probe_ops += self.config.probe_costs.cu_entry * self.probe_scale;
        }
        self.push_frame(thread, method, cu, 0, args, ret_slot);
        Ok(())
    }

    fn flush_path(&mut self, thread: usize) {
        if !self.trace_heap() {
            return;
        }
        let frame = self.threads[thread]
            .frames
            .last_mut()
            .expect("flush with live frame");
        let method = frame.method;
        let start = frame.path_start;
        let acc = frame.path_acc;
        let pending = std::mem::take(&mut frame.pending);
        let th = self.threads[thread].handle.expect("traced thread");
        let sig = self.sig_idx(method);
        self.probe_ops += (self.config.probe_costs.path_flush
            + self.config.probe_costs.obj_id * pending.len() as u64)
            * self.probe_scale;
        self.session
            .as_mut()
            .expect("session")
            .record_path(th, sig, start, acc, pending);
    }

    /// Advances Ball–Larus state across the intra-block cut edge after a
    /// call instruction.
    fn path_after_call(&mut self, thread: usize) {
        if !self.trace_heap() {
            return;
        }
        self.flush_path(thread);
        let frame = self.threads[thread].frames.last_mut().expect("frame");
        frame.mini += 1; // minis of a block are contiguous
        frame.path_start = frame.mini;
        frame.path_acc = 0;
    }

    /// Advances Ball–Larus state across a block transition.
    fn path_block_edge(&mut self, thread: usize, target_block: usize) {
        if !self.trace_heap() {
            return;
        }
        let (method, from_mini) = {
            let f = self.threads[thread].frames.last().expect("frame");
            (f.method, f.mini)
        };
        let (head, cut, inc) = {
            let (cfg, num) = self.path_table(method);
            let from = nimage_compiler::MiniBlockId(from_mini);
            let head = cfg.head_of_block(target_block);
            (head, num.is_cut(from, head), num.increment(from, head))
        };
        if cut {
            self.flush_path(thread);
            let frame = self.threads[thread].frames.last_mut().unwrap();
            frame.mini = head.0;
            frame.path_start = head.0;
            frame.path_acc = 0;
        } else {
            let frame = self.threads[thread].frames.last_mut().unwrap();
            frame.path_acc += inc;
            frame.mini = head.0;
        }
    }

    /// The 64-bit profile identifier traced for an object access (0 when the
    /// accessed object is not part of the heap snapshot).
    fn trace_id_of(&self, r: u32) -> u64 {
        match self.heap.as_obj_id(r) {
            Some(obj) if self.snapshot.index_of(obj).is_some() => u64::from(r) + 1,
            _ => 0,
        }
    }

    /// Touches bytes of the native tail: records the logical first-touch
    /// order (the profile of the native-reordering extension) and routes the
    /// access through the tail's page permutation, if one was applied.
    fn touch_native(&mut self, logical_offset: u64) {
        let ps = self.image.options.page_size;
        if logical_offset >= self.image.native_start && logical_offset < self.image.text.size {
            let page = ((logical_offset - self.image.native_start) / ps) as u32;
            if self.native_seen.insert(page) {
                self.native_touch_pages.push(page);
            }
        }
        let mapped = self.image.map_native_offset(logical_offset);
        if self.paging.touch(self.image, mapped) {
            self.fault_instants(".text", 1);
        }
    }

    /// Touches the `.svm_heap` bytes of an image object access.
    fn touch_object(&mut self, r: u32, byte_offset: u64) {
        if let Some(obj) = self.heap.as_obj_id(r) {
            if let Some(off) = self.image.object_offset(obj) {
                if self.paging.touch(self.image, off + byte_offset) {
                    self.fault_instants(".svm_heap", 1);
                }
                if self.trace_heap() {
                    // Grow the last span when accesses walk forward (the
                    // common field/array scan); anything else opens a new
                    // span and is merged at report time.
                    let spans = self.heap_touch_spans.entry(obj.0).or_default();
                    match spans.last_mut() {
                        Some(s) if byte_offset >= s.0 && byte_offset <= s.1 => {
                            s.1 = s.1.max(byte_offset + 1);
                        }
                        _ => spans.push((byte_offset, byte_offset + 1)),
                    }
                }
            }
        }
    }

    /// Records a traced heap access (paging + pending trace id + probe cost).
    fn heap_access(&mut self, thread: usize, r: u32, byte_offset: u64) {
        self.touch_object(r, byte_offset);
        if self.trace_heap() {
            let id = self.trace_id_of(r);
            self.probe_ops += self.config.probe_costs.obj_id * self.probe_scale;
            self.threads[thread]
                .frames
                .last_mut()
                .expect("frame")
                .pending
                .push(id);
        }
    }

    /// Runs the program.
    ///
    /// # Errors
    /// Returns a [`VmError`] if the program performs an illegal operation.
    ///
    /// # Panics
    /// Panics if the program has no entry point.
    pub fn run(mut self, stop: StopWhen) -> Result<RunReport, VmError> {
        let entry = self.program.entry.expect("program has an entry point");

        // Native runtime startup: the dynamic loader, libc init and VM
        // runtime touch entry points scattered across the statically linked
        // libraries before main (relocations, TLS setup, locale tables…).
        let ps = self.image.options.page_size;
        let tail_pages = (self.image.options.native_tail / ps).max(1);
        for p in 0..self.config.startup_native_pages {
            let page = if p == 0 { 0 } else { (p * 53 + 7) % tail_pages };
            self.touch_native(self.image.native_start + page * ps);
        }

        // Main thread.
        self.threads.push(ThreadCtx {
            frames: vec![],
            handle: None,
            done: false,
        });
        if let Some(s) = self.session.as_mut() {
            self.threads[0].handle = Some(s.start_thread());
        }
        self.enter_cu(0, entry, vec![], None)?;

        let quantum = self.config.quantum;
        // Clone the Arc out of `self` so the lowered step can borrow
        // instruction references without aliasing `&mut self`.
        let lowered = self.lowered.clone();
        let mut killed = false;
        'sched: loop {
            let mut any_live = false;
            for t in 0..self.threads.len() {
                if self.threads[t].done {
                    continue;
                }
                any_live = true;
                for _ in 0..quantum {
                    if self.threads[t].frames.is_empty() {
                        if let (Some(s), Some(h)) = (self.session.as_mut(), self.threads[t].handle)
                        {
                            s.end_thread(h);
                        }
                        self.threads[t].done = true;
                        break;
                    }
                    if self.ops >= self.config.max_ops {
                        break 'sched;
                    }
                    match &lowered {
                        Some(lp) => self.step_lowered(lp, t)?,
                        None => self.step(t)?,
                    }
                    if stop == StopWhen::FirstResponse && self.first_response.is_some() {
                        killed = true;
                        break 'sched;
                    }
                }
            }
            if !any_live {
                break;
            }
        }

        if killed {
            if let Some(s) = self.session.as_mut() {
                s.kill();
            }
        } else if let Some(s) = self.session.as_mut() {
            // Normal exit: terminate any still-live threads (server threads
            // of exited programs are torn down by the runtime).
            s.kill();
        }

        let mut call_counts = CallCountProfile::new();
        for (i, &n) in self.call_counts.iter().enumerate() {
            if n > 0 {
                call_counts.record(&self.program.method_signature(MethodId(i as u32)), n);
            }
        }

        let exit = if killed {
            ExitKind::FirstResponse
        } else if self.ops >= self.config.max_ops {
            ExitKind::OpsBudget
        } else {
            ExitKind::Exited
        };

        let text_first = self.image.text.offset / self.image.options.page_size;
        let text_pages = self.image.text_pages();
        let heap_first = self.image.svm_heap.offset / self.image.options.page_size;
        let heap_pages = self
            .image
            .svm_heap
            .size
            .div_ceil(self.image.options.page_size);

        let mut heap_touch_spans: Vec<(u32, Vec<(u64, u64)>)> = self
            .heap_touch_spans
            .iter()
            .map(|(&obj, spans)| (obj, merge_spans(spans)))
            .collect();
        heap_touch_spans.sort_unstable_by_key(|&(obj, _)| obj);

        let session_stats = self.session.as_ref().map(|s| s.stats());
        let trace = self.session.take().map(|s| s.into_trace());
        Ok(RunReport {
            heap_touch_spans,
            ops: self.ops,
            probe_ops: self.probe_ops,
            native_touch_pages: self.native_touch_pages,
            faults: self.paging.faults(),
            first_response: self.first_response,
            call_counts,
            trace,
            session_stats,
            exit,
            entry_return: self.entry_return,
            text_page_states: self.paging.page_states(text_first, text_pages),
            heap_page_states: self.paging.page_states(heap_first, heap_pages),
        })
    }

    /// Executes one instruction or terminator on thread `t`.
    fn step(&mut self, t: usize) -> Result<(), VmError> {
        self.ops += 1;
        let frame = self.threads[t].frames.last().expect("live frame");
        let method = frame.method;
        let block = frame.block;
        let ip = frame.ip;
        let m = self.program.method(method);
        if ip < m.blocks[block].instrs.len() {
            // Clone is avoided: instructions are small except Call/Spawn
            // argument vectors.
            let ins = m.blocks[block].instrs[ip].clone();
            self.exec_instr(t, method, &ins)?;
            // exec_instr may have pushed a frame; ip of *this* frame was
            // already advanced inside exec_instr for calls. For non-calls,
            // advance here.
            if !matches!(ins, Instr::Call { .. }) {
                if let Some(f) = self.threads[t].frames.last_mut() {
                    if f.method == method && f.block == block && f.ip == ip {
                        f.ip += 1;
                    }
                }
            }
            Ok(())
        } else {
            self.exec_terminator(t, method, block)
        }
    }

    /// Executes one lowered instruction on thread `t`: a single index into
    /// the method's flat code array and a `match` on a reference — no
    /// clone, no per-step allocation. `lp` is borrowed from the `Arc`
    /// clone held by [`Vm::run`], so instruction references never alias
    /// `&mut self`.
    fn step_lowered(&mut self, lp: &LoweredProgram, t: usize) -> Result<(), VmError> {
        self.ops += 1;
        let (method, pc) = {
            let f = self.threads[t].frames.last().expect("live frame");
            (f.method, f.ip)
        };
        match &lp.method(method).code[pc] {
            LoweredInstr::ConstInt(d, v) => self.set_local(t, *d, RtValue::Int(*v)),
            LoweredInstr::ConstDouble(d, v) => self.set_local(t, *d, RtValue::Double(*v)),
            LoweredInstr::ConstBool(d, v) => self.set_local(t, *d, RtValue::Bool(*v)),
            LoweredInstr::ConstNull(d) => self.set_local(t, *d, RtValue::Null),
            LoweredInstr::ConstStr(d, sidx) => {
                let cached = self.str_refs[*sidx as usize];
                let r = if cached != u32::MAX {
                    cached
                } else {
                    let r = self.heap.intern(lp.string(*sidx));
                    self.str_refs[*sidx as usize] = r;
                    r
                };
                self.touch_object(r, 0);
                self.set_local(t, *d, RtValue::Ref(r));
            }
            LoweredInstr::Move(d, s) => {
                let v = self.local(t, *s);
                self.set_local(t, *d, v);
            }
            LoweredInstr::Bin(op, d, a, b) => {
                let va = self.local(t, *a);
                let vb = self.local(t, *b);
                let r = eval_bin(*op, va, vb).ok_or_else(|| match op {
                    BinOp::Div | BinOp::Rem => VmError::DivisionByZero {
                        method: self.err_sig(method),
                    },
                    _ => VmError::TypeMismatch {
                        method: self.err_sig(method),
                        detail: format!("{op:?} on {va:?}, {vb:?}"),
                    },
                })?;
                self.set_local(t, *d, r);
            }
            LoweredInstr::Un(op, d, a) => {
                let va = self.local(t, *a);
                let r = eval_un(*op, va).ok_or_else(|| VmError::TypeMismatch {
                    method: self.err_sig(method),
                    detail: format!("{op:?} on {va:?}"),
                })?;
                self.set_local(t, *d, r);
            }
            LoweredInstr::New(d, c) => {
                let fields = lp.field_defaults(*c).to_vec();
                let r = self.heap.alloc(RtObject::Instance { class: *c, fields });
                self.set_local(t, *d, RtValue::Ref(r));
            }
            LoweredInstr::NewArray(d, elem, len) => {
                let n = self.as_int(t, *len, method)?;
                if n < 0 {
                    return Err(VmError::IndexOutOfBounds {
                        method: self.err_sig(method),
                    });
                }
                let r = self.heap.alloc(RtObject::Array {
                    elem: elem.clone(),
                    elems: vec![RtValue::default_for(elem); n as usize],
                });
                self.set_local(t, *d, RtValue::Ref(r));
            }
            LoweredInstr::GetField(d, obj, fid) => {
                let r = self.as_ref_val(t, *obj, method)?;
                let (slot, v) = self.field_slot_lowered(lp, r, *fid, method)?;
                self.heap_access(t, r, 16 + 8 * slot as u64);
                self.set_local(t, *d, v);
            }
            LoweredInstr::PutField(obj, fid, src) => {
                let r = self.as_ref_val(t, *obj, method)?;
                let v = self.local(t, *src);
                let slot = self.field_slot_lowered(lp, r, *fid, method)?.0;
                self.heap_access(t, r, 16 + 8 * slot as u64);
                match self.heap.get_mut(r) {
                    RtObject::Instance { fields, .. } => fields[slot] = v,
                    _ => unreachable!("field_slot validated"),
                }
            }
            LoweredInstr::GetStatic(d, fid) => {
                let v = self.heap.static_value(self.program, *fid);
                self.set_local(t, *d, v);
            }
            LoweredInstr::PutStatic(fid, src) => {
                let v = self.local(t, *src);
                self.heap.set_static(*fid, v);
            }
            LoweredInstr::ArrayGet(d, arr, idx) => {
                let r = self.as_ref_val(t, *arr, method)?;
                let i = self.as_int(t, *idx, method)?;
                let v = match self.heap.get(r) {
                    RtObject::Array { elems, .. } => *elems
                        .get(usize::try_from(i).map_err(|_| VmError::IndexOutOfBounds {
                            method: self.err_sig(method),
                        })?)
                        .ok_or_else(|| VmError::IndexOutOfBounds {
                            method: self.err_sig(method),
                        })?,
                    other => {
                        return Err(VmError::TypeMismatch {
                            method: self.err_sig(method),
                            detail: format!("array access on {other:?}"),
                        })
                    }
                };
                self.heap_access(t, r, 24 + 8 * i as u64);
                self.set_local(t, *d, v);
            }
            LoweredInstr::ArraySet(arr, idx, src) => {
                let r = self.as_ref_val(t, *arr, method)?;
                let i = self.as_int(t, *idx, method)?;
                let v = self.local(t, *src);
                self.heap_access(t, r, 24 + 8 * i.max(0) as u64);
                let program = self.program;
                match self.heap.get_mut(r) {
                    RtObject::Array { elems, .. } => {
                        let len = elems.len();
                        *elems
                            .get_mut(usize::try_from(i).unwrap_or(len))
                            .ok_or_else(|| VmError::IndexOutOfBounds {
                                method: program.method_signature(method),
                            })? = v;
                    }
                    other => {
                        return Err(VmError::TypeMismatch {
                            method: program.method_signature(method),
                            detail: format!("array access on {other:?}"),
                        })
                    }
                }
            }
            LoweredInstr::ArrayLen(d, arr) => {
                let r = self.as_ref_val(t, *arr, method)?;
                let n = match self.heap.get(r) {
                    RtObject::Array { elems, .. } => elems.len() as i64,
                    other => {
                        return Err(VmError::TypeMismatch {
                            method: self.err_sig(method),
                            detail: format!("array length on {other:?}"),
                        })
                    }
                };
                self.touch_object(r, 0);
                self.set_local(t, *d, RtValue::Int(n));
            }
            LoweredInstr::StrLen(d, s) => {
                let r = self.as_ref_val(t, *s, method)?;
                let n = self.str_content(r, method)?.len() as i64;
                self.touch_object(r, 0);
                self.set_local(t, *d, RtValue::Int(n));
            }
            LoweredInstr::StrCharAt(d, s, i) => {
                let r = self.as_ref_val(t, *s, method)?;
                let idx = self.as_int(t, *i, method)?;
                let content = self.str_content(r, method)?;
                let ch = content
                    .as_bytes()
                    .get(usize::try_from(idx).map_err(|_| VmError::IndexOutOfBounds {
                        method: self.err_sig(method),
                    })?)
                    .copied()
                    .ok_or_else(|| VmError::IndexOutOfBounds {
                        method: self.err_sig(method),
                    })?;
                self.touch_object(r, 24 + idx as u64);
                self.set_local(t, *d, RtValue::Int(i64::from(ch)));
            }
            LoweredInstr::StrConcat(d, a, b) => {
                let sa = self.display_value(self.local(t, *a));
                let sb = self.display_value(self.local(t, *b));
                let r = self.heap.alloc(RtObject::Str(format!("{sa}{sb}")));
                self.set_local(t, *d, RtValue::Ref(r));
            }
            LoweredInstr::Call {
                dst,
                target,
                args,
                site_block,
                site_instr,
            } => {
                self.ops += 1; // calls cost an extra op
                let argv: Vec<RtValue> = args.iter().map(|&l| self.local(t, l)).collect();
                let target_m = match target {
                    LoweredCallee::Static(m2) => *m2,
                    LoweredCallee::Virtual(sel) => {
                        let recv = match argv.first() {
                            Some(RtValue::Ref(r)) => *r,
                            _ => {
                                return Err(VmError::NullDeref {
                                    method: self.err_sig(method),
                                })
                            }
                        };
                        let class = match self.heap.get(recv) {
                            RtObject::Instance { class, .. } => *class,
                            other => {
                                return Err(VmError::TypeMismatch {
                                    method: self.err_sig(method),
                                    detail: format!("virtual call on {other:?}"),
                                })
                            }
                        };
                        lp.resolve_virtual(class, *sel)
                            .ok_or_else(|| VmError::NoSuchMethod {
                                class: self.program.class(class).name.clone(),
                                selector: self.program.selector_name(*sel).to_string(),
                            })?
                    }
                };
                // End the caller's current path at the call boundary.
                self.path_after_call(t);
                // Advance the caller past the call before pushing the callee.
                let (cu, node);
                {
                    let f = self.threads[t].frames.last_mut().expect("frame");
                    f.ip += 1;
                    cu = f.cu;
                    node = f.node;
                }
                // Inlined at this exact (pre-baked) site?
                let site = nimage_analysis::CallSite {
                    method,
                    block: *site_block as usize,
                    instr: *site_instr as usize,
                };
                let child = self.compiled.cu(cu).nodes[node as usize]
                    .child_at(site)
                    .filter(|&c| self.compiled.cu(cu).nodes[c as usize].method == target_m);
                match child {
                    Some(c) => self.push_frame(t, target_m, cu, c, argv, *dst),
                    None => self.enter_cu(t, target_m, argv, *dst)?,
                }
                return Ok(());
            }
            LoweredInstr::Intrinsic { dst, op, args } => {
                let ps = self.image.options.page_size;
                let tail_pages = (self.image.options.native_tail / ps).max(1);
                let page = (*op as u64 + 2) * 131 % tail_pages;
                self.touch_native(self.image.native_start + page * ps);
                let argv: Vec<RtValue> = args.iter().map(|&l| self.local(t, l)).collect();
                if *op == Intrinsic::Respond && self.first_response.is_none() {
                    self.first_response = Some(ResponsePoint {
                        ops: self.ops,
                        probe_ops: self.probe_ops,
                        faults: self.paging.faults(),
                    });
                }
                let v = eval_intrinsic(*op, &argv);
                if let Some(d) = dst {
                    self.set_local(t, *d, v.unwrap_or(RtValue::Null));
                }
            }
            LoweredInstr::Spawn { method: m2, args } => {
                let argv: Vec<RtValue> = args.iter().map(|&l| self.local(t, l)).collect();
                self.threads.push(ThreadCtx {
                    frames: vec![],
                    handle: None,
                    done: false,
                });
                let nt = self.threads.len() - 1;
                if let Some(s) = self.session.as_mut() {
                    self.threads[nt].handle = Some(s.start_thread());
                }
                self.enter_cu(nt, *m2, argv, None)?;
            }
            LoweredInstr::Ret(v) => {
                self.flush_path(t);
                let frame = self.threads[t].frames.pop().expect("frame");
                let value = v.map(|l| frame.locals[l.index()]);
                if let Some(parent) = self.threads[t].frames.last_mut() {
                    if let Some(slot) = frame.ret_slot {
                        parent.locals[slot.index()] = value.unwrap_or(RtValue::Null);
                    }
                } else if t == 0 && self.entry_return.is_none() {
                    self.entry_return = value;
                }
                return Ok(());
            }
            LoweredInstr::Jump(e) => {
                self.path_block_edge_lowered(lp, t, e);
                self.threads[t].frames.last_mut().expect("frame").ip = e.pc as usize;
                return Ok(());
            }
            LoweredInstr::Br {
                cond,
                then_e,
                else_e,
            } => {
                let c = match self.local(t, *cond) {
                    RtValue::Bool(b) => b,
                    other => {
                        return Err(VmError::TypeMismatch {
                            method: self.err_sig(method),
                            detail: format!("branch on {other:?}"),
                        })
                    }
                };
                let e = if c { then_e } else { else_e };
                self.path_block_edge_lowered(lp, t, e);
                self.threads[t].frames.last_mut().expect("frame").ip = e.pc as usize;
                return Ok(());
            }
        }
        // Straight-line instruction: advance this frame's flat pc. Only
        // calls and terminators (handled above) change the frame stack of
        // thread `t`, so the top frame is still the executing one.
        self.threads[t].frames.last_mut().expect("frame").ip += 1;
        Ok(())
    }

    /// Ball–Larus block transition on the lowered path: the same cut /
    /// increment decision as [`Vm::path_block_edge`], read from the dense
    /// pre-lowered edge table instead of the lazy `HashMap`s.
    fn path_block_edge_lowered(&mut self, lp: &LoweredProgram, t: usize, edge: &JumpEdge) {
        if !self.trace_heap() {
            return;
        }
        let (method, from_mini) = {
            let f = self.threads[t].frames.last().expect("frame");
            (f.method, f.mini)
        };
        let p = lp
            .paths(method)
            .expect("path tables built for traced builds");
        let head = p.block_head[edge.block as usize];
        let e = p.edge(from_mini, edge.block);
        if e.cut {
            self.flush_path(t);
            let frame = self.threads[t].frames.last_mut().expect("frame");
            frame.mini = head;
            frame.path_start = head;
            frame.path_acc = 0;
        } else {
            let frame = self.threads[t].frames.last_mut().expect("frame");
            frame.path_acc += e.inc;
            frame.mini = head;
        }
    }

    /// Field-slot lookup through the pre-lowered `class × field` table;
    /// error messages match [`Vm::field_slot`] byte for byte.
    fn field_slot_lowered(
        &self,
        lp: &LoweredProgram,
        r: u32,
        fid: nimage_ir::FieldId,
        method: MethodId,
    ) -> Result<(usize, RtValue), VmError> {
        match self.heap.get(r) {
            RtObject::Instance { class, fields } => match lp.field_slot(*class, fid) {
                Some(slot) => Ok((slot, fields[slot])),
                None => Err(VmError::TypeMismatch {
                    method: self.err_sig(method),
                    detail: format!(
                        "field {} not on {}",
                        self.program.field_signature(fid),
                        self.program.class(*class).name
                    ),
                }),
            },
            other => Err(VmError::TypeMismatch {
                method: self.err_sig(method),
                detail: format!("field access on {other:?}"),
            }),
        }
    }

    fn local(&self, t: usize, l: Local) -> RtValue {
        self.threads[t].frames.last().expect("frame").locals[l.index()]
    }

    fn set_local(&mut self, t: usize, l: Local, v: RtValue) {
        self.threads[t].frames.last_mut().expect("frame").locals[l.index()] = v;
    }

    fn as_ref_val(&self, t: usize, l: Local, m: MethodId) -> Result<u32, VmError> {
        match self.local(t, l) {
            RtValue::Ref(r) => Ok(r),
            RtValue::Null => Err(VmError::NullDeref {
                method: self.err_sig(m),
            }),
            other => Err(VmError::TypeMismatch {
                method: self.err_sig(m),
                detail: format!("expected reference, got {other:?}"),
            }),
        }
    }

    fn as_int(&self, t: usize, l: Local, m: MethodId) -> Result<i64, VmError> {
        match self.local(t, l) {
            RtValue::Int(i) => Ok(i),
            other => Err(VmError::TypeMismatch {
                method: self.err_sig(m),
                detail: format!("expected int, got {other:?}"),
            }),
        }
    }

    fn exec_instr(&mut self, t: usize, method: MethodId, ins: &Instr) -> Result<(), VmError> {
        match ins {
            Instr::ConstInt(d, v) => self.set_local(t, *d, RtValue::Int(*v)),
            Instr::ConstDouble(d, v) => self.set_local(t, *d, RtValue::Double(*v)),
            Instr::ConstBool(d, v) => self.set_local(t, *d, RtValue::Bool(*v)),
            Instr::ConstNull(d) => self.set_local(t, *d, RtValue::Null),
            Instr::ConstStr(d, s) => {
                let r = self.heap.intern(s);
                // Loading an interned literal reads its String object from
                // the image heap.
                self.touch_object(r, 0);
                self.set_local(t, *d, RtValue::Ref(r));
            }
            Instr::Move(d, s) => {
                let v = self.local(t, *s);
                self.set_local(t, *d, v);
            }
            Instr::Bin(op, d, a, b) => {
                let va = self.local(t, *a);
                let vb = self.local(t, *b);
                let r = eval_bin(*op, va, vb).ok_or_else(|| match op {
                    BinOp::Div | BinOp::Rem => VmError::DivisionByZero {
                        method: self.err_sig(method),
                    },
                    _ => VmError::TypeMismatch {
                        method: self.err_sig(method),
                        detail: format!("{op:?} on {va:?}, {vb:?}"),
                    },
                })?;
                self.set_local(t, *d, r);
            }
            Instr::Un(op, d, a) => {
                let va = self.local(t, *a);
                let r = eval_un(*op, va).ok_or_else(|| VmError::TypeMismatch {
                    method: self.err_sig(method),
                    detail: format!("{op:?} on {va:?}"),
                })?;
                self.set_local(t, *d, r);
            }
            Instr::New(d, c) => {
                let r = self.heap.alloc_instance(self.program, *c);
                self.set_local(t, *d, RtValue::Ref(r));
            }
            Instr::NewArray(d, elem, len) => {
                let n = self.as_int(t, *len, method)?;
                if n < 0 {
                    return Err(VmError::IndexOutOfBounds {
                        method: self.err_sig(method),
                    });
                }
                let r = self.heap.alloc(RtObject::Array {
                    elem: elem.clone(),
                    elems: vec![RtValue::default_for(elem); n as usize],
                });
                self.set_local(t, *d, RtValue::Ref(r));
            }
            Instr::GetField(d, obj, fid) => {
                let r = self.as_ref_val(t, *obj, method)?;
                let (slot, v) = self.field_slot(r, *fid, method)?;
                self.heap_access(t, r, 16 + 8 * slot as u64);
                self.set_local(t, *d, v);
            }
            Instr::PutField(obj, fid, src) => {
                let r = self.as_ref_val(t, *obj, method)?;
                let v = self.local(t, *src);
                let slot = self.field_slot(r, *fid, method)?.0;
                self.heap_access(t, r, 16 + 8 * slot as u64);
                match self.heap.get_mut(r) {
                    RtObject::Instance { fields, .. } => fields[slot] = v,
                    _ => unreachable!("field_slot validated"),
                }
            }
            Instr::GetStatic(d, fid) => {
                let v = self.heap.static_value(self.program, *fid);
                self.set_local(t, *d, v);
            }
            Instr::PutStatic(fid, src) => {
                let v = self.local(t, *src);
                self.heap.set_static(*fid, v);
            }
            Instr::ArrayGet(d, arr, idx) => {
                let r = self.as_ref_val(t, *arr, method)?;
                let i = self.as_int(t, *idx, method)?;
                let v = match self.heap.get(r) {
                    RtObject::Array { elems, .. } => *elems
                        .get(usize::try_from(i).map_err(|_| VmError::IndexOutOfBounds {
                            method: self.err_sig(method),
                        })?)
                        .ok_or_else(|| VmError::IndexOutOfBounds {
                            method: self.err_sig(method),
                        })?,
                    other => {
                        return Err(VmError::TypeMismatch {
                            method: self.err_sig(method),
                            detail: format!("array access on {other:?}"),
                        })
                    }
                };
                self.heap_access(t, r, 24 + 8 * i as u64);
                self.set_local(t, *d, v);
            }
            Instr::ArraySet(arr, idx, src) => {
                let r = self.as_ref_val(t, *arr, method)?;
                let i = self.as_int(t, *idx, method)?;
                let v = self.local(t, *src);
                self.heap_access(t, r, 24 + 8 * i.max(0) as u64);
                let sig = self.err_sig(method);
                match self.heap.get_mut(r) {
                    RtObject::Array { elems, .. } => {
                        let len = elems.len();
                        *elems
                            .get_mut(usize::try_from(i).unwrap_or(len))
                            .ok_or(VmError::IndexOutOfBounds { method: sig })? = v;
                    }
                    other => {
                        return Err(VmError::TypeMismatch {
                            method: sig,
                            detail: format!("array access on {other:?}"),
                        })
                    }
                }
            }
            Instr::ArrayLen(d, arr) => {
                let r = self.as_ref_val(t, *arr, method)?;
                let n = match self.heap.get(r) {
                    RtObject::Array { elems, .. } => elems.len() as i64,
                    other => {
                        return Err(VmError::TypeMismatch {
                            method: self.err_sig(method),
                            detail: format!("array length on {other:?}"),
                        })
                    }
                };
                self.touch_object(r, 0);
                self.set_local(t, *d, RtValue::Int(n));
            }
            Instr::StrLen(d, s) => {
                let r = self.as_ref_val(t, *s, method)?;
                let n = self.str_content(r, method)?.len() as i64;
                self.touch_object(r, 0);
                self.set_local(t, *d, RtValue::Int(n));
            }
            Instr::StrCharAt(d, s, i) => {
                let r = self.as_ref_val(t, *s, method)?;
                let idx = self.as_int(t, *i, method)?;
                let content = self.str_content(r, method)?;
                let ch = content
                    .as_bytes()
                    .get(usize::try_from(idx).map_err(|_| VmError::IndexOutOfBounds {
                        method: self.err_sig(method),
                    })?)
                    .copied()
                    .ok_or_else(|| VmError::IndexOutOfBounds {
                        method: self.err_sig(method),
                    })?;
                self.touch_object(r, 24 + idx as u64);
                self.set_local(t, *d, RtValue::Int(i64::from(ch)));
            }
            Instr::StrConcat(d, a, b) => {
                let sa = self.display_value(self.local(t, *a));
                let sb = self.display_value(self.local(t, *b));
                let r = self.heap.alloc(RtObject::Str(format!("{sa}{sb}")));
                self.set_local(t, *d, RtValue::Ref(r));
            }
            Instr::Call { dst, callee, args } => {
                self.ops += 1; // calls cost an extra op
                let argv: Vec<RtValue> = args.iter().map(|&l| self.local(t, l)).collect();
                let target = match callee {
                    Callee::Static(m2) => *m2,
                    Callee::Virtual { selector, .. } => {
                        let recv = match argv.first() {
                            Some(RtValue::Ref(r)) => *r,
                            _ => {
                                return Err(VmError::NullDeref {
                                    method: self.err_sig(method),
                                })
                            }
                        };
                        let class = match self.heap.get(recv) {
                            RtObject::Instance { class, .. } => *class,
                            other => {
                                return Err(VmError::TypeMismatch {
                                    method: self.err_sig(method),
                                    detail: format!("virtual call on {other:?}"),
                                })
                            }
                        };
                        self.program
                            .resolve_virtual(class, *selector)
                            .ok_or_else(|| VmError::NoSuchMethod {
                                class: self.program.class(class).name.clone(),
                                selector: self.program.selector_name(*selector).to_string(),
                            })?
                    }
                };
                // End the caller's current path at the call boundary.
                self.path_after_call(t);
                // Advance the caller past the call before pushing the callee.
                let (cu, node, block, ip);
                {
                    let f = self.threads[t].frames.last_mut().expect("frame");
                    f.ip += 1;
                    cu = f.cu;
                    node = f.node;
                    block = f.block;
                    ip = f.ip - 1;
                }
                // Inlined at this exact site?
                let site = nimage_analysis::CallSite {
                    method,
                    block,
                    instr: ip,
                };
                let child = self.compiled.cu(cu).nodes[node as usize]
                    .child_at(site)
                    .filter(|&c| self.compiled.cu(cu).nodes[c as usize].method == target);
                match child {
                    Some(c) => self.push_frame(t, target, cu, c, argv, *dst),
                    None => self.enter_cu(t, target, argv, *dst)?,
                }
            }
            Instr::Intrinsic { dst, op, args } => {
                // Intrinsics execute native code at the end of .text; each
                // lands on its own (scattered) page of the statically
                // linked libraries, like libm entry points do.
                let ps = self.image.options.page_size;
                let tail_pages = (self.image.options.native_tail / ps).max(1);
                let page = (*op as u64 + 2) * 131 % tail_pages;
                self.touch_native(self.image.native_start + page * ps);
                let argv: Vec<RtValue> = args.iter().map(|&l| self.local(t, l)).collect();
                if *op == Intrinsic::Respond && self.first_response.is_none() {
                    self.first_response = Some(ResponsePoint {
                        ops: self.ops,
                        probe_ops: self.probe_ops,
                        faults: self.paging.faults(),
                    });
                }
                let v = eval_intrinsic(*op, &argv);
                if let Some(d) = dst {
                    self.set_local(t, *d, v.unwrap_or(RtValue::Null));
                }
            }
            Instr::Spawn { method: m2, args } => {
                let argv: Vec<RtValue> = args.iter().map(|&l| self.local(t, l)).collect();
                self.threads.push(ThreadCtx {
                    frames: vec![],
                    handle: None,
                    done: false,
                });
                let nt = self.threads.len() - 1;
                if let Some(s) = self.session.as_mut() {
                    self.threads[nt].handle = Some(s.start_thread());
                }
                self.enter_cu(nt, *m2, argv, None)?;
            }
        }
        Ok(())
    }

    fn exec_terminator(&mut self, t: usize, method: MethodId, block: usize) -> Result<(), VmError> {
        let m = self.program.method(method);
        match m.blocks[block].terminator.clone() {
            Terminator::Ret(v) => {
                self.flush_path(t);
                let frame = self.threads[t].frames.pop().expect("frame");
                let value = v.map(|l| frame.locals[l.index()]);
                if let Some(parent) = self.threads[t].frames.last_mut() {
                    if let Some(slot) = frame.ret_slot {
                        parent.locals[slot.index()] = value.unwrap_or(RtValue::Null);
                    }
                } else if t == 0 && self.entry_return.is_none() {
                    self.entry_return = value;
                }
            }
            Terminator::Jump(target) => {
                self.path_block_edge(t, target.index());
                let frame = self.threads[t].frames.last_mut().expect("frame");
                frame.block = target.index();
                frame.ip = 0;
            }
            Terminator::Br {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = match self.local(t, cond) {
                    RtValue::Bool(b) => b,
                    other => {
                        return Err(VmError::TypeMismatch {
                            method: self.err_sig(method),
                            detail: format!("branch on {other:?}"),
                        })
                    }
                };
                let target = if c { then_blk } else { else_blk };
                self.path_block_edge(t, target.index());
                let frame = self.threads[t].frames.last_mut().expect("frame");
                frame.block = target.index();
                frame.ip = 0;
            }
        }
        Ok(())
    }

    fn field_slot(
        &self,
        r: u32,
        fid: nimage_ir::FieldId,
        method: MethodId,
    ) -> Result<(usize, RtValue), VmError> {
        match self.heap.get(r) {
            RtObject::Instance { class, fields } => {
                let layout = self.program.all_instance_fields(*class);
                let slot =
                    layout
                        .iter()
                        .position(|&f| f == fid)
                        .ok_or_else(|| VmError::TypeMismatch {
                            method: self.err_sig(method),
                            detail: format!(
                                "field {} not on {}",
                                self.program.field_signature(fid),
                                self.program.class(*class).name
                            ),
                        })?;
                Ok((slot, fields[slot]))
            }
            other => Err(VmError::TypeMismatch {
                method: self.err_sig(method),
                detail: format!("field access on {other:?}"),
            }),
        }
    }

    fn str_content(&self, r: u32, method: MethodId) -> Result<&str, VmError> {
        match self.heap.get(r) {
            RtObject::Str(s) => Ok(s),
            other => Err(VmError::TypeMismatch {
                method: self.err_sig(method),
                detail: format!("string op on {other:?}"),
            }),
        }
    }

    fn display_value(&self, v: RtValue) -> String {
        match v {
            RtValue::Null => "null".to_string(),
            RtValue::Bool(b) => b.to_string(),
            RtValue::Int(i) => i.to_string(),
            RtValue::Double(d) => format!("{d}"),
            RtValue::Ref(r) => match self.heap.get(r) {
                RtObject::Str(s) => s.clone(),
                other => format!("<{other:?}>"),
            },
        }
    }
}

/// Canonicalizes a recorded span list: sorted by start, overlapping or
/// adjacent spans merged. The recording fast path only extends the last
/// span, so revisits out of order leave duplicates this pass removes.
fn merge_spans(spans: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut v = spans.to_vec();
    v.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(v.len());
    for (s, e) in v {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

fn eval_bin(op: BinOp, a: RtValue, b: RtValue) -> Option<RtValue> {
    use RtValue::*;
    Some(match (op, a, b) {
        (BinOp::Add, Int(x), Int(y)) => Int(x.wrapping_add(y)),
        (BinOp::Sub, Int(x), Int(y)) => Int(x.wrapping_sub(y)),
        (BinOp::Mul, Int(x), Int(y)) => Int(x.wrapping_mul(y)),
        (BinOp::Div, Int(x), Int(y)) => {
            if y == 0 {
                return None;
            }
            Int(x.wrapping_div(y))
        }
        (BinOp::Rem, Int(x), Int(y)) => {
            if y == 0 {
                return None;
            }
            Int(x.wrapping_rem(y))
        }
        (BinOp::And, Int(x), Int(y)) => Int(x & y),
        (BinOp::Or, Int(x), Int(y)) => Int(x | y),
        (BinOp::Xor, Int(x), Int(y)) => Int(x ^ y),
        (BinOp::Shl, Int(x), Int(y)) => Int(x.wrapping_shl(y as u32)),
        (BinOp::Shr, Int(x), Int(y)) => Int(x.wrapping_shr(y as u32)),
        (BinOp::And, Bool(x), Bool(y)) => Bool(x && y),
        (BinOp::Or, Bool(x), Bool(y)) => Bool(x || y),
        (BinOp::Xor, Bool(x), Bool(y)) => Bool(x ^ y),
        (BinOp::Add, Double(x), Double(y)) => Double(x + y),
        (BinOp::Sub, Double(x), Double(y)) => Double(x - y),
        (BinOp::Mul, Double(x), Double(y)) => Double(x * y),
        (BinOp::Div, Double(x), Double(y)) => Double(x / y),
        (BinOp::Rem, Double(x), Double(y)) => Double(x % y),
        (BinOp::Lt, Int(x), Int(y)) => Bool(x < y),
        (BinOp::Le, Int(x), Int(y)) => Bool(x <= y),
        (BinOp::Gt, Int(x), Int(y)) => Bool(x > y),
        (BinOp::Ge, Int(x), Int(y)) => Bool(x >= y),
        (BinOp::Eq, Int(x), Int(y)) => Bool(x == y),
        (BinOp::Ne, Int(x), Int(y)) => Bool(x != y),
        (BinOp::Lt, Double(x), Double(y)) => Bool(x < y),
        (BinOp::Le, Double(x), Double(y)) => Bool(x <= y),
        (BinOp::Gt, Double(x), Double(y)) => Bool(x > y),
        (BinOp::Ge, Double(x), Double(y)) => Bool(x >= y),
        (BinOp::Eq, Double(x), Double(y)) => Bool(x == y),
        (BinOp::Ne, Double(x), Double(y)) => Bool(x != y),
        (BinOp::Eq, Bool(x), Bool(y)) => Bool(x == y),
        (BinOp::Ne, Bool(x), Bool(y)) => Bool(x != y),
        (BinOp::Eq, Ref(x), Ref(y)) => Bool(x == y),
        (BinOp::Ne, Ref(x), Ref(y)) => Bool(x != y),
        (BinOp::Eq, Null, Null) => Bool(true),
        (BinOp::Ne, Null, Null) => Bool(false),
        (BinOp::Eq, Ref(_), Null) | (BinOp::Eq, Null, Ref(_)) => Bool(false),
        (BinOp::Ne, Ref(_), Null) | (BinOp::Ne, Null, Ref(_)) => Bool(true),
        _ => return None,
    })
}

fn eval_un(op: UnOp, a: RtValue) -> Option<RtValue> {
    use RtValue::*;
    Some(match (op, a) {
        (UnOp::Neg, Int(x)) => Int(x.wrapping_neg()),
        (UnOp::Neg, Double(x)) => Double(-x),
        (UnOp::Not, Bool(x)) => Bool(!x),
        (UnOp::IntToDouble, Int(x)) => Double(x as f64),
        (UnOp::DoubleToInt, Double(x)) => Int(x as i64),
        _ => return None,
    })
}

fn eval_intrinsic(op: Intrinsic, args: &[RtValue]) -> Option<RtValue> {
    let d = |i: usize| match args.get(i) {
        Some(RtValue::Double(v)) => Some(*v),
        _ => None,
    };
    Some(match op {
        Intrinsic::Sqrt => RtValue::Double(d(0)?.sqrt()),
        Intrinsic::Abs => RtValue::Double(d(0)?.abs()),
        Intrinsic::Floor => RtValue::Double(d(0)?.floor()),
        Intrinsic::Cos => RtValue::Double(d(0)?.cos()),
        Intrinsic::Sin => RtValue::Double(d(0)?.sin()),
        Intrinsic::Respond => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arithmetic_semantics() {
        use RtValue::Int;
        assert_eq!(eval_bin(BinOp::Add, Int(2), Int(3)), Some(Int(5)));
        assert_eq!(eval_bin(BinOp::Sub, Int(2), Int(3)), Some(Int(-1)));
        assert_eq!(eval_bin(BinOp::Mul, Int(4), Int(3)), Some(Int(12)));
        assert_eq!(eval_bin(BinOp::Div, Int(7), Int(2)), Some(Int(3)));
        assert_eq!(eval_bin(BinOp::Rem, Int(7), Int(2)), Some(Int(1)));
        assert_eq!(eval_bin(BinOp::Div, Int(7), Int(0)), None);
        assert_eq!(eval_bin(BinOp::Rem, Int(7), Int(0)), None);
        // Wrapping, not panicking.
        assert_eq!(
            eval_bin(BinOp::Add, Int(i64::MAX), Int(1)),
            Some(Int(i64::MIN))
        );
    }

    #[test]
    fn comparison_and_reference_equality() {
        use RtValue::*;
        assert_eq!(eval_bin(BinOp::Lt, Int(1), Int(2)), Some(Bool(true)));
        assert_eq!(eval_bin(BinOp::Ge, Int(2), Int(2)), Some(Bool(true)));
        assert_eq!(eval_bin(BinOp::Eq, Ref(3), Ref(3)), Some(Bool(true)));
        assert_eq!(eval_bin(BinOp::Eq, Ref(3), Ref(4)), Some(Bool(false)));
        assert_eq!(eval_bin(BinOp::Eq, Ref(3), Null), Some(Bool(false)));
        assert_eq!(eval_bin(BinOp::Ne, Null, Null), Some(Bool(false)));
        // Mixed kinds are type errors, not coercions.
        assert_eq!(eval_bin(BinOp::Add, Int(1), Double(2.0)), None);
        assert_eq!(eval_bin(BinOp::Lt, Bool(true), Bool(false)), None);
    }

    #[test]
    fn unary_and_conversions() {
        use RtValue::*;
        assert_eq!(eval_un(UnOp::Neg, Int(5)), Some(Int(-5)));
        assert_eq!(eval_un(UnOp::Not, Bool(true)), Some(Bool(false)));
        assert_eq!(eval_un(UnOp::IntToDouble, Int(3)), Some(Double(3.0)));
        assert_eq!(eval_un(UnOp::DoubleToInt, Double(3.9)), Some(Int(3)));
        assert_eq!(eval_un(UnOp::DoubleToInt, Double(-3.9)), Some(Int(-3)));
        assert_eq!(eval_un(UnOp::Not, Int(1)), None);
    }

    #[test]
    fn intrinsic_math() {
        use RtValue::Double;
        assert_eq!(
            eval_intrinsic(Intrinsic::Sqrt, &[Double(9.0)]),
            Some(Double(3.0))
        );
        assert_eq!(
            eval_intrinsic(Intrinsic::Abs, &[Double(-2.5)]),
            Some(Double(2.5))
        );
        assert_eq!(
            eval_intrinsic(Intrinsic::Floor, &[Double(2.7)]),
            Some(Double(2.0))
        );
        // Respond produces no value.
        assert_eq!(
            eval_intrinsic(Intrinsic::Respond, &[RtValue::Int(200)]),
            None
        );
        // Type mismatch yields None rather than a panic.
        assert_eq!(eval_intrinsic(Intrinsic::Sqrt, &[RtValue::Int(9)]), None);
    }

    #[test]
    fn probe_costs_default_order_matches_the_paper() {
        let c = ProbeCosts::default();
        assert!(c.method_entry > c.cu_entry);
        assert!(c.cu_entry > c.path_flush);
        assert!(c.path_flush >= c.obj_id);
    }
}
