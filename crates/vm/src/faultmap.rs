//! Fig. 6-style visual representation of per-page fault states.
//!
//! The paper's appendix renders the `.text` section as a grid of cells:
//! green = the page caused a fault, red = the page was paged in by the OS
//! without a fault, black = the page was never mapped. [`render_ascii`]
//! produces the same map with characters (`#`, `+`, `.`), suitable for
//! terminals and for diffing in tests.

use crate::paging::PageState;

/// Renders a page-state sequence as an ASCII grid of `width` cells per row.
///
/// `#` = faulted (green), `+` = resident without fault (red), `.` =
/// untouched (black).
///
/// ```
/// use nimage_vm::{render_ascii, PageState};
///
/// let row = render_ascii(
///     &[PageState::Faulted, PageState::Resident, PageState::Untouched],
///     3,
/// );
/// assert_eq!(row, "#+.\n");
/// ```
///
/// # Panics
/// Panics if `width` is zero.
pub fn render_ascii(states: &[PageState], width: usize) -> String {
    assert!(width > 0, "row width must be positive");
    let mut out = String::with_capacity(states.len() + states.len() / width + 1);
    for (i, s) in states.iter().enumerate() {
        out.push(match s {
            PageState::Faulted => '#',
            PageState::Resident => '+',
            PageState::Untouched => '.',
        });
        if (i + 1) % width == 0 {
            out.push('\n');
        }
    }
    if !out.ends_with('\n') && !out.is_empty() {
        out.push('\n');
    }
    out
}

/// Summary statistics of a page map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageMapSummary {
    /// Pages that caused a major fault.
    pub faulted: usize,
    /// Pages resident without their own fault.
    pub resident: usize,
    /// Pages never mapped.
    pub untouched: usize,
}

/// Computes counts per page state.
pub fn summarize(states: &[PageState]) -> PageMapSummary {
    let mut s = PageMapSummary::default();
    for st in states {
        match st {
            PageState::Faulted => s.faulted += 1,
            PageState::Resident => s.resident += 1,
            PageState::Untouched => s.untouched += 1,
        }
    }
    s
}

/// Index of the last page (in `states`) that is faulted or resident, if any.
/// Used to show how compact the hot prefix of a section is after reordering.
pub fn touched_extent(states: &[PageState]) -> Option<usize> {
    states
        .iter()
        .rposition(|s| !matches!(s, PageState::Untouched))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rows_of_width() {
        let states = vec![
            PageState::Faulted,
            PageState::Resident,
            PageState::Untouched,
            PageState::Faulted,
        ];
        assert_eq!(render_ascii(&states, 2), "#+\n.#\n");
    }

    #[test]
    fn trailing_partial_row_gets_newline() {
        let states = vec![PageState::Faulted; 3];
        assert_eq!(render_ascii(&states, 2), "##\n#\n");
    }

    #[test]
    fn summary_counts_each_state() {
        let states = vec![
            PageState::Faulted,
            PageState::Faulted,
            PageState::Resident,
            PageState::Untouched,
        ];
        assert_eq!(
            summarize(&states),
            PageMapSummary {
                faulted: 2,
                resident: 1,
                untouched: 1
            }
        );
    }

    #[test]
    fn extent_finds_last_touched_page() {
        let states = vec![
            PageState::Faulted,
            PageState::Untouched,
            PageState::Resident,
            PageState::Untouched,
        ];
        assert_eq!(touched_extent(&states), Some(2));
        assert_eq!(touched_extent(&[PageState::Untouched]), None);
    }
}
