//! Demand-paging simulator with fault-around/readahead.
//!
//! The binary "is memory-mapped when the program starts, hence each page is
//! lazily copied to memory on the first access" (Sec. 2). The simulator
//! tracks, per image page:
//!
//! * **faulted** — the page's first touch raised a major page fault
//!   (Fig. 6's green cells);
//! * **resident without fault** — the page was mapped in by the kernel's
//!   fault-around/readahead as a side effect of a neighbouring fault
//!   (Fig. 6's red cells);
//! * **untouched** — never mapped (Fig. 6's black cells).
//!
//! Faults are attributed to the section containing the faulting offset, the
//! way the paper extracts per-section fault counts from `perf` (Sec. 7.1).
//! The fault-around window is aligned, like Linux's `fault_around_order`
//! window; packing the hot bytes densely therefore amortizes a single fault
//! over many soon-needed pages — the entire mechanism the paper's ordering
//! strategies exploit.

use nimage_image::{BinaryImage, SectionKind};

/// Dense page bitmap. The simulator consults page residency on every
/// interpreter heap/code touch, so membership must be a bit test, not a
/// hashed probe. Grows on demand for touches past the sized range.
#[derive(Debug, Clone, Default)]
struct PageSet {
    bits: Vec<u64>,
    len: u64,
}

impl PageSet {
    fn with_capacity(pages: u64) -> Self {
        PageSet {
            bits: vec![0; pages.div_ceil(64) as usize],
            len: 0,
        }
    }

    #[inline]
    fn contains(&self, page: u64) -> bool {
        match self.bits.get((page / 64) as usize) {
            Some(w) => w & (1 << (page % 64)) != 0,
            None => false,
        }
    }

    #[inline]
    fn insert(&mut self, page: u64) {
        let word = (page / 64) as usize;
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        let mask = 1 << (page % 64);
        if self.bits[word] & mask == 0 {
            self.bits[word] |= mask;
            self.len += 1;
        }
    }
}

/// Paging behaviour knobs.
#[derive(Debug, Clone)]
pub struct PagingConfig {
    /// Pages mapped around a fault (aligned window; Linux defaults to 16
    /// with `fault_around_order = 4`). Must be a power of two.
    pub fault_around_pages: u64,
}

/// An invalid [`PagingConfig`]: the fault-around window was not a power of
/// two. The simulator aligns windows by masking, so any other value would
/// silently map wrong page ranges — it is rejected up front instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagingConfigError {
    /// The rejected window size.
    pub fault_around_pages: u64,
}

impl std::fmt::Display for PagingConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fault-around window must be a power of two, got {}",
            self.fault_around_pages
        )
    }
}

impl std::error::Error for PagingConfigError {}

impl PagingConfig {
    /// Validated constructor: rejects a window that is not a power of two
    /// (Linux's `fault_around_order` is an order for the same reason).
    ///
    /// # Errors
    /// Returns [`PagingConfigError`] for a non-power-of-two window.
    pub fn new(fault_around_pages: u64) -> Result<PagingConfig, PagingConfigError> {
        let config = PagingConfig { fault_around_pages };
        config.validate()?;
        Ok(config)
    }

    /// Checks the power-of-two invariant on an already-built config (the
    /// fields are public, so a struct literal can bypass [`Self::new`]).
    ///
    /// # Errors
    /// Returns [`PagingConfigError`] for a non-power-of-two window.
    pub fn validate(&self) -> Result<(), PagingConfigError> {
        if self.fault_around_pages.is_power_of_two() {
            Ok(())
        } else {
            Err(PagingConfigError {
                fault_around_pages: self.fault_around_pages,
            })
        }
    }
}

impl Default for PagingConfig {
    fn default() -> Self {
        PagingConfig {
            fault_around_pages: 16,
        }
    }
}

/// Major page faults per binary section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SectionFaults {
    /// Faults on `.text` pages.
    pub text: u64,
    /// Faults on `.svm_heap` pages.
    pub svm_heap: u64,
}

impl SectionFaults {
    /// Total faults across both sections.
    pub fn total(&self) -> u64 {
        self.text + self.svm_heap
    }
}

/// State of one image page, for the Fig. 6 visualization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Never mapped (black).
    Untouched,
    /// Mapped by fault-around without its own fault (red).
    Resident,
    /// Caused a major fault (green).
    Faulted,
}

/// The demand-paging simulator for one process execution.
#[derive(Debug, Clone)]
pub struct PagingSim {
    config: PagingConfig,
    page_size: u64,
    total_pages: u64,
    resident: PageSet,
    faulted: PageSet,
    faults: SectionFaults,
}

impl PagingSim {
    /// Creates a simulator for an image.
    ///
    /// # Panics
    /// Panics if the fault-around window is not a power of two.
    pub fn new(image: &BinaryImage, config: PagingConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("{e}");
        }
        PagingSim {
            page_size: image.options.page_size,
            total_pages: image.total_pages(),
            config,
            resident: PageSet::with_capacity(image.total_pages()),
            faulted: PageSet::with_capacity(image.total_pages()),
            faults: SectionFaults::default(),
        }
    }

    /// Touches one byte offset; returns `true` if this touch raised a major
    /// fault.
    pub fn touch(&mut self, image: &BinaryImage, offset: u64) -> bool {
        let page = offset / self.page_size;
        if self.resident.contains(page) {
            return false;
        }
        // Major fault: account to the section of the faulting offset.
        self.faulted.insert(page);
        match image.section_of(offset) {
            Some(SectionKind::Text) => self.faults.text += 1,
            Some(SectionKind::SvmHeap) => self.faults.svm_heap += 1,
            None => {}
        }
        // Fault-around: map the aligned window containing the page.
        let window = self.config.fault_around_pages;
        let start = page & !(window - 1);
        for p in start..(start + window).min(self.total_pages) {
            self.resident.insert(p);
        }
        self.resident.insert(page);
        true
    }

    /// Touches every page overlapping `[offset, offset + len)`.
    pub fn touch_range(&mut self, image: &BinaryImage, offset: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let mut faults = 0;
        if self.touch(image, offset) {
            faults += 1;
        }
        let first = offset / self.page_size + 1;
        let last = (offset + len - 1) / self.page_size;
        for p in first..=last {
            if self.touch(image, p * self.page_size) {
                faults += 1;
            }
        }
        faults
    }

    /// Fault counts so far.
    pub fn faults(&self) -> SectionFaults {
        self.faults
    }

    /// Number of resident pages (faulted + faulted-around).
    pub fn resident_pages(&self) -> u64 {
        self.resident.len
    }

    /// The per-page state of the page range `[first, first + count)`.
    pub fn page_states(&self, first: u64, count: u64) -> Vec<PageState> {
        (first..first + count)
            .map(|p| {
                if self.faulted.contains(p) {
                    PageState::Faulted
                } else if self.resident.contains(p) {
                    PageState::Resident
                } else {
                    PageState::Untouched
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimage_analysis::{analyze, AnalysisConfig};
    use nimage_compiler::{compile, InlineConfig, InstrumentConfig};
    use nimage_heap::{snapshot, HeapBuildConfig};
    use nimage_image::ImageOptions;
    use nimage_ir::{ProgramBuilder, TypeRef};

    fn tiny_image() -> BinaryImage {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.Main", None);
        let fld = pb.add_static_field(c, "A", TypeRef::array_of(TypeRef::Int));
        let cl = pb.declare_clinit(c);
        let mut f = pb.body(cl);
        let n = f.iconst(4096);
        let a = f.new_array(TypeRef::Int, n);
        f.put_static(fld, a);
        f.ret(None);
        pb.finish_body(cl, f);
        let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
        let mut f = pb.body(main);
        let a = f.get_static(fld);
        let z = f.iconst(0);
        let v = f.array_get(a, z);
        f.ret(Some(v));
        pb.finish_body(main, f);
        pb.set_entry(main);
        let p = pb.build().unwrap();
        let reach = analyze(&p, &AnalysisConfig::default());
        let cp = compile(
            &p,
            reach,
            &InlineConfig::default(),
            InstrumentConfig::NONE,
            None,
        );
        let snap = snapshot(&p, &cp, &HeapBuildConfig::default()).unwrap();
        BinaryImage::build(&cp, &snap, None, None, ImageOptions::default())
    }

    #[test]
    fn config_rejects_non_power_of_two_window() {
        for bad in [0, 3, 6, 15, 17] {
            let err = PagingConfig::new(bad).unwrap_err();
            assert_eq!(err.fault_around_pages, bad);
            assert!(err.to_string().contains("power of two"));
        }
        for good in [1, 2, 16, 64] {
            assert_eq!(PagingConfig::new(good).unwrap().fault_around_pages, good);
        }
        // A struct literal bypasses `new`; `validate` catches it.
        let literal = PagingConfig {
            fault_around_pages: 12,
        };
        assert!(literal.validate().is_err());
        assert!(PagingConfig::default().validate().is_ok());
    }

    #[test]
    fn first_touch_faults_second_does_not() {
        let img = tiny_image();
        let mut sim = PagingSim::new(&img, PagingConfig::default());
        assert!(sim.touch(&img, 0));
        assert!(!sim.touch(&img, 0));
        assert_eq!(sim.faults().text, 1);
    }

    #[test]
    fn fault_around_maps_neighbours_without_faults() {
        let img = tiny_image();
        let mut sim = PagingSim::new(
            &img,
            PagingConfig {
                fault_around_pages: 16,
            },
        );
        sim.touch(&img, 0);
        // Pages 1..16 are resident without their own fault.
        assert!(!sim.touch(&img, img.options.page_size * 5));
        assert_eq!(sim.faults().total(), 1);
        let states = sim.page_states(0, 16);
        assert_eq!(states[0], PageState::Faulted);
        assert!(states[1..].iter().all(|&s| s == PageState::Resident));
    }

    #[test]
    fn window_is_aligned_not_centered() {
        let img = tiny_image();
        let mut sim = PagingSim::new(
            &img,
            PagingConfig {
                fault_around_pages: 16,
            },
        );
        // Fault at page 17 → window [16, 32).
        sim.touch(&img, img.options.page_size * 17);
        let states = sim.page_states(0, 32);
        assert_eq!(states[15], PageState::Untouched);
        assert_eq!(states[16], PageState::Resident);
        assert_eq!(states[17], PageState::Faulted);
        assert_eq!(states[31], PageState::Resident);
    }

    #[test]
    fn faults_attributed_to_sections() {
        let img = tiny_image();
        let mut sim = PagingSim::new(
            &img,
            PagingConfig {
                fault_around_pages: 1,
            },
        );
        sim.touch(&img, img.text.offset);
        sim.touch(&img, img.svm_heap.offset);
        let f = sim.faults();
        assert_eq!(f.text, 1);
        assert_eq!(f.svm_heap, 1);
        assert_eq!(f.total(), 2);
    }

    #[test]
    fn scattered_touches_fault_more_than_dense_ones() {
        let img = tiny_image();
        let ps = img.options.page_size;
        // Dense: 32 consecutive pages.
        let mut dense = PagingSim::new(
            &img,
            PagingConfig {
                fault_around_pages: 16,
            },
        );
        for p in 0..32 {
            dense.touch(&img, p * ps);
        }
        // Scattered: 32 pages spread with a stride of 16 pages.
        let mut scattered = PagingSim::new(
            &img,
            PagingConfig {
                fault_around_pages: 16,
            },
        );
        let span = img.total_pages();
        for i in 0..32u64 {
            scattered.touch(&img, ((i * 16) % span) * ps);
        }
        assert!(dense.faults().total() < scattered.faults().total());
    }

    #[test]
    fn touch_range_covers_every_page() {
        let img = tiny_image();
        let ps = img.options.page_size;
        let mut sim = PagingSim::new(
            &img,
            PagingConfig {
                fault_around_pages: 1,
            },
        );
        sim.touch_range(&img, ps / 2, 3 * ps);
        // Range spans pages 0..=3.
        let states = sim.page_states(0, 4);
        assert!(states.iter().all(|&s| s == PageState::Faulted));
    }
}
