//! End-to-end interpreter tests: program → analysis → compile → snapshot →
//! image → run.

use nimage_analysis::{analyze, AnalysisConfig};
use nimage_compiler::{compile, CompiledProgram, InlineConfig, InstrumentConfig};
use nimage_heap::{snapshot, HeapBuildConfig, HeapSnapshot};
use nimage_image::{BinaryImage, ImageOptions};
use nimage_ir::{Program, ProgramBuilder, TypeRef};
use nimage_profiler::TraceRecord;
use nimage_vm::{ExitKind, RtValue, StopWhen, Vm, VmConfig};

fn build(
    program: &Program,
    instr: InstrumentConfig,
) -> (CompiledProgram, HeapSnapshot, BinaryImage) {
    let reach = analyze(program, &AnalysisConfig::default());
    let cp = compile(program, reach, &InlineConfig::default(), instr, None);
    let snap = snapshot(program, &cp, &HeapBuildConfig::default()).unwrap();
    let img = BinaryImage::build(&cp, &snap, None, None, ImageOptions::default());
    (cp, snap, img)
}

fn run(program: &Program, instr: InstrumentConfig, stop: StopWhen) -> nimage_vm::RunReport {
    let (cp, snap, img) = build(program, instr);
    Vm::new(program, &cp, &snap, &img, VmConfig::default())
        .run(stop)
        .unwrap()
}

/// Recursive fibonacci: exercises calls, branches and recursion handling
/// across CU boundaries (recursion is never inlined).
fn fib_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("t.Fib", None);
    let fib = pb.declare_static(c, "fib", &[TypeRef::Int], Some(TypeRef::Int));
    let mut f = pb.body(fib);
    let n = f.param(0);
    let two = f.iconst(2);
    let small = f.lt(n, two);
    f.if_then_else(
        small,
        |f| {
            f.ret(Some(n));
        },
        |f| {
            let one = f.iconst(1);
            let n1 = f.sub(n, one);
            let a = f.call_static(fib, &[n1], true).unwrap();
            let two = f.iconst(2);
            let n2 = f.sub(n, two);
            let b = f.call_static(fib, &[n2], true).unwrap();
            let s = f.add(a, b);
            f.ret(Some(s));
        },
    );
    pb.finish_body(fib, f);
    let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(main);
    let ten = f.iconst(10);
    let v = f.call_static(fib, &[ten], true).unwrap();
    f.ret(Some(v));
    pb.finish_body(main, f);
    pb.set_entry(main);
    pb.build().unwrap()
}

#[test]
fn fib_computes_correctly() {
    let p = fib_program();
    let r = run(&p, InstrumentConfig::NONE, StopWhen::Exit);
    assert_eq!(r.exit, ExitKind::Exited);
    assert_eq!(r.entry_return, Some(RtValue::Int(55)));
}

#[test]
fn execution_is_deterministic() {
    let p = fib_program();
    let a = run(&p, InstrumentConfig::NONE, StopWhen::Exit);
    let b = run(&p, InstrumentConfig::NONE, StopWhen::Exit);
    assert_eq!(a.ops, b.ops);
    assert_eq!(a.faults, b.faults);
}

#[test]
fn virtual_dispatch_selects_dynamic_target() {
    let mut pb = ProgramBuilder::new();
    let base = pb.add_class("t.Shape", None);
    let square = pb.add_class("t.Square", Some(base));
    let circle = pb.add_class("t.Circle", Some(base));
    let area_b = pb.declare_virtual(base, "area", &[], Some(TypeRef::Int));
    let area_s = pb.declare_virtual(square, "area", &[], Some(TypeRef::Int));
    let area_c = pb.declare_virtual(circle, "area", &[], Some(TypeRef::Int));
    for (m, v) in [(area_b, 0i64), (area_s, 4), (area_c, 3)] {
        let mut f = pb.body(m);
        let r = f.iconst(v);
        f.ret(Some(r));
        pb.finish_body(m, f);
    }
    let holder = pb.add_class("t.Main", None);
    let main = pb.declare_static(holder, "main", &[], Some(TypeRef::Int));
    let sel = pb.intern_selector("area", 0);
    let mut f = pb.body(main);
    let s = f.new_object(square);
    let c = f.new_object(circle);
    let a1 = f.call_virtual(base, sel, &[s], true).unwrap();
    let a2 = f.call_virtual(base, sel, &[c], true).unwrap();
    let sum = f.add(a1, a2);
    f.ret(Some(sum));
    pb.finish_body(main, f);
    pb.set_entry(main);
    let p = pb.build().unwrap();
    let r = run(&p, InstrumentConfig::NONE, StopWhen::Exit);
    assert_eq!(r.entry_return, Some(RtValue::Int(7)));
}

/// A microservice-shaped program: main spawns a worker that responds.
fn service_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("svc.Server", None);
    let worker = pb.declare_static(c, "worker", &[], None);
    let mut f = pb.body(worker);
    // Do some request handling work first.
    let from = f.iconst(0);
    let to = f.iconst(100);
    let acc = f.iconst(0);
    f.for_range(from, to, |f, i| {
        let s = f.add(acc, i);
        f.assign(acc, s);
    });
    let status = f.iconst(200);
    f.intrinsic(nimage_ir::Intrinsic::Respond, &[status], false);
    f.ret(None);
    pb.finish_body(worker, f);

    let main = pb.declare_static(c, "main", &[], None);
    let mut f = pb.body(main);
    f.spawn(worker, &[]);
    // The server loop would run forever; FirstResponse stops it.
    f.while_loop(|f| f.bconst(true), |_f| {});
    f.ret(None);
    pb.finish_body(main, f);
    pb.set_entry(main);
    pb.build().unwrap()
}

#[test]
fn first_response_stops_the_service() {
    let p = service_program();
    let r = run(&p, InstrumentConfig::NONE, StopWhen::FirstResponse);
    assert_eq!(r.exit, ExitKind::FirstResponse);
    let rp = r.first_response.expect("response observed");
    assert!(rp.ops > 0);
    assert!(rp.faults.total() > 0);
}

#[test]
fn service_without_stop_hits_ops_budget() {
    let p = service_program();
    let (cp, snap, img) = build(&p, InstrumentConfig::NONE);
    let cfg = VmConfig {
        max_ops: 50_000,
        ..VmConfig::default()
    };
    let r = Vm::new(&p, &cp, &snap, &img, cfg)
        .run(StopWhen::Exit)
        .unwrap();
    assert_eq!(r.exit, ExitKind::OpsBudget);
}

/// Heap accesses to snapshot objects fault `.svm_heap` pages; runtime
/// allocations do not.
#[test]
fn snapshot_accesses_fault_heap_pages() {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("t.Data", None);
    let fld = pb.add_static_field(c, "BIG", TypeRef::array_of(TypeRef::Int));
    let cl = pb.declare_clinit(c);
    let mut f = pb.body(cl);
    let n = f.iconst(8192); // 64 KiB array: 16 pages
    let arr = f.new_array(TypeRef::Int, n);
    f.put_static(fld, arr);
    f.ret(None);
    pb.finish_body(cl, f);
    let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(main);
    let arr = f.get_static(fld);
    let from = f.iconst(0);
    let to = f.iconst(8192);
    let acc = f.iconst(0);
    f.for_range(from, to, |f, i| {
        let v = f.array_get(arr, i);
        let s = f.add(acc, v);
        f.assign(acc, s);
    });
    f.ret(Some(acc));
    pb.finish_body(main, f);
    pb.set_entry(main);
    let p = pb.build().unwrap();
    let r = run(&p, InstrumentConfig::NONE, StopWhen::Exit);
    assert!(
        r.faults.svm_heap >= 1,
        "touching a 16-page array must fault the heap section"
    );
}

#[test]
fn runtime_allocations_do_not_fault_heap_pages() {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("t.Dyn", None);
    let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(main);
    let n = f.iconst(8192);
    let arr = f.new_array(TypeRef::Int, n);
    let from = f.iconst(0);
    let to = f.iconst(8192);
    let acc = f.iconst(0);
    f.for_range(from, to, |f, i| {
        let v = f.array_get(arr, i);
        let s = f.add(acc, v);
        f.assign(acc, s);
    });
    f.ret(Some(acc));
    pb.finish_body(main, f);
    pb.set_entry(main);
    let p = pb.build().unwrap();
    let r = run(&p, InstrumentConfig::NONE, StopWhen::Exit);
    assert_eq!(
        r.faults.svm_heap, 0,
        "anonymous memory never faults the image"
    );
}

#[test]
fn instrumented_run_collects_trace_and_counts() {
    let p = fib_program();
    let r = run(&p, InstrumentConfig::FULL, StopWhen::Exit);
    let trace = r.trace.expect("instrumented run yields a trace");
    assert_eq!(trace.threads.len(), 1);
    let records = &trace.threads[0];
    let methods = records
        .iter()
        .filter(|r| matches!(r, TraceRecord::MethodEntry { .. }))
        .count();
    let cus = records
        .iter()
        .filter(|r| matches!(r, TraceRecord::CuEntry { .. }))
        .count();
    let paths = records
        .iter()
        .filter(|r| matches!(r, TraceRecord::Path { .. }))
        .count();
    assert!(methods > 0 && cus > 0 && paths > 0);
    // fib(10) performs 177 fib calls plus main.
    assert!(methods >= 177);
    // Every method entry implies at least its CU entry or inlining; CU
    // entries cannot exceed method entries.
    assert!(cus <= methods);
    // Probe ops were charged.
    assert!(r.probe_ops > 0);
    // The PGO profile saw the hot method.
    assert!(r.call_counts.count(&p, nimage_ir::MethodId(0)) >= 170);
}

#[test]
fn uninstrumented_run_has_no_trace_and_no_probe_ops() {
    let p = fib_program();
    let r = run(&p, InstrumentConfig::NONE, StopWhen::Exit);
    assert!(r.trace.is_none());
    assert_eq!(r.probe_ops, 0);
}

#[test]
fn instrumentation_does_not_change_program_semantics() {
    let p = fib_program();
    let plain = run(&p, InstrumentConfig::NONE, StopWhen::Exit);
    let inst = run(&p, InstrumentConfig::FULL, StopWhen::Exit);
    assert_eq!(plain.entry_return, inst.entry_return);
    // But it does cost time.
    assert!(inst.probe_ops > plain.probe_ops);
}

/// Reordering CUs so the hot ones are first reduces .text faults — the
/// core mechanism of the paper, at VM level.
#[test]
fn packing_hot_cus_first_reduces_text_faults() {
    // Many alphabetically interleaved CUs, only a few of which execute.
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("t.Many", None);
    let mut all = vec![];
    for i in 0..60 {
        let m = pb.declare_static(c, &format!("m{i:02}"), &[], Some(TypeRef::Int));
        let mut f = pb.body(m);
        let mut v = f.iconst(i);
        // Pad every method so CUs span real bytes.
        for _ in 0..200 {
            let one = f.iconst(1);
            v = f.add(v, one);
        }
        f.ret(Some(v));
        pb.finish_body(m, f);
        all.push(m);
    }
    // A runtime-false flag keeps the cold methods reachable (the analysis
    // is conservative) without ever executing them.
    let cond = pb.add_static_field(c, "COND", TypeRef::Bool);
    let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(main);
    let acc = f.iconst(0);
    let take_cold = f.get_static(cond);
    let mut hot = vec![main];
    let cold_calls: Vec<_> = all
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 7 != 0)
        .map(|(_, &m)| m)
        .collect();
    f.if_then(take_cold, |f| {
        for &m in &cold_calls {
            let v = f.call_static(m, &[], true).unwrap();
            let s = f.add(acc, v);
            f.assign(acc, s);
        }
    });
    // Execute every 7th method only, scattered across the alphabet.
    for (i, &m) in all.iter().enumerate() {
        if i % 7 == 0 {
            let v = f.call_static(m, &[], true).unwrap();
            let s = f.add(acc, v);
            f.assign(acc, s);
            hot.push(m);
        }
    }
    f.ret(Some(acc));
    pb.finish_body(main, f);
    pb.set_entry(main);
    let p = pb.build().unwrap();

    let reach = analyze(&p, &AnalysisConfig::default());
    // Small CU budget so each method is its own CU.
    let cfg = InlineConfig {
        inline_threshold: 0,
        ..InlineConfig::default()
    };
    let cp = compile(&p, reach, &cfg, InstrumentConfig::NONE, None);
    let snap = snapshot(&p, &cp, &HeapBuildConfig::default()).unwrap();

    // Disable fault-around so fault counts equal distinct pages touched;
    // the workload here is far smaller than a real binary.
    let vm_cfg = VmConfig {
        paging: nimage_vm::PagingConfig {
            fault_around_pages: 1,
        },
        ..VmConfig::default()
    };
    let baseline_img = BinaryImage::build(&cp, &snap, None, None, ImageOptions::default());
    let base = Vm::new(&p, &cp, &snap, &baseline_img, vm_cfg.clone())
        .run(StopWhen::Exit)
        .unwrap();

    // Hot-first order.
    let mut order: Vec<_> = hot.iter().filter_map(|&m| cp.cu_of_root(m)).collect();
    for cu in &cp.cus {
        if !order.contains(&cu.id) {
            order.push(cu.id);
        }
    }
    let opt_img = BinaryImage::build(&cp, &snap, Some(order), None, ImageOptions::default());
    let opt = Vm::new(&p, &cp, &snap, &opt_img, vm_cfg)
        .run(StopWhen::Exit)
        .unwrap();

    assert_eq!(base.entry_return, opt.entry_return);
    assert!(
        opt.faults.text < base.faults.text,
        "hot-first layout must reduce .text faults ({} vs {})",
        opt.faults.text,
        base.faults.text
    );
}

/// Path records reconstruct exactly the traced heap accesses: the number of
/// object ids in the trace equals the number of field/array accesses
/// executed.
#[test]
fn path_records_carry_one_id_per_heap_access() {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("t.Acc", None);
    let fld = pb.add_static_field(c, "ARR", TypeRef::array_of(TypeRef::Int));
    let cl = pb.declare_clinit(c);
    let mut f = pb.body(cl);
    let n = f.iconst(10);
    let a = f.new_array(TypeRef::Int, n);
    f.put_static(fld, a);
    f.ret(None);
    pb.finish_body(cl, f);
    let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(main);
    let arr = f.get_static(fld);
    let from = f.iconst(0);
    let to = f.iconst(10);
    let acc = f.iconst(0);
    f.for_range(from, to, |f, i| {
        let v = f.array_get(arr, i); // 10 traced accesses
        let s = f.add(acc, v);
        f.assign(acc, s);
    });
    f.ret(Some(acc));
    pb.finish_body(main, f);
    pb.set_entry(main);
    let p = pb.build().unwrap();

    let r = run(
        &p,
        InstrumentConfig {
            trace_heap: true,
            ..InstrumentConfig::NONE
        },
        StopWhen::Exit,
    );
    let trace = r.trace.unwrap();
    let total_ids: usize = trace.threads[0]
        .iter()
        .filter_map(|r| match r {
            TraceRecord::Path { obj_ids, .. } => Some(obj_ids.len()),
            _ => None,
        })
        .sum();
    assert_eq!(total_ids, 10, "one traced id per executed array access");
    // All ids refer to the snapshot array (non-zero).
    let nonzero: usize = trace.threads[0]
        .iter()
        .filter_map(|r| match r {
            TraceRecord::Path { obj_ids, .. } => Some(obj_ids.iter().filter(|&&i| i != 0).count()),
            _ => None,
        })
        .sum();
    assert_eq!(nonzero, 10);
}

#[test]
fn spawned_threads_trace_in_creation_order() {
    let p = service_program();
    let r = run(&p, InstrumentConfig::FULL, StopWhen::FirstResponse);
    let trace = r.trace.unwrap();
    assert_eq!(trace.threads.len(), 2, "main + worker");
}
