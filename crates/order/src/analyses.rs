//! The post-processing framework of Sec. 6.2: trace decoding and
//! visitor-pattern ordering analyses producing CSV profiles.

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

use nimage_compiler::{PathNumbering, ProfilingCfg, StaticEvent};
use nimage_heap::ObjId;
use nimage_ir::{MethodId, Program};
use nimage_par::parallel_map;
use nimage_profiler::{Trace, TraceRecord};

/// One event reconstructed from the trace, in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A compilation unit was entered (root-method signature).
    CuEntry(String),
    /// A method was entered (signature; includes inlined copies).
    MethodEntry(String),
    /// An object in the heap snapshot was accessed (its strategy-specific
    /// 64-bit identity).
    ObjectAccess(u64),
}

/// A visitor-pattern ordering analysis: accepts events in execution order
/// and produces a CSV ordering profile (Sec. 6.2).
pub trait OrderingAnalysis {
    /// Consumes the next event.
    fn visit(&mut self, event: &Event);
    /// Serializes the analysis result as CSV.
    fn to_csv(&self) -> String;
}

/// Collects the first-execution order of CU entries (for *cu ordering*).
#[derive(Debug, Default)]
pub struct CuOrderAnalysis {
    seen: HashSet<String>,
    order: Vec<String>,
}

/// Collects the first-execution order of method entries (for *method
/// ordering*).
#[derive(Debug, Default)]
pub struct MethodOrderAnalysis {
    seen: HashSet<String>,
    order: Vec<String>,
}

/// Collects the first-access order of object identities (for the heap
/// strategies).
#[derive(Debug, Default)]
pub struct HeapOrderAnalysis {
    seen: HashSet<u64>,
    order: Vec<u64>,
}

impl CuOrderAnalysis {
    /// Creates an empty analysis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes into a code-ordering profile.
    pub fn into_profile(self) -> CodeOrderProfile {
        CodeOrderProfile { sigs: self.order }
    }
}

impl MethodOrderAnalysis {
    /// Creates an empty analysis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes into a code-ordering profile.
    pub fn into_profile(self) -> CodeOrderProfile {
        CodeOrderProfile { sigs: self.order }
    }
}

impl HeapOrderAnalysis {
    /// Creates an empty analysis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes into a heap-ordering profile. Event replay carries no
    /// touched-byte measurements, so every entry gets an empty span list
    /// (consumers fall back to the full-extent touch model).
    pub fn into_profile(self) -> HeapOrderProfile {
        let spans = vec![Vec::new(); self.order.len()];
        HeapOrderProfile {
            ids: self.order,
            spans,
        }
    }
}

impl OrderingAnalysis for CuOrderAnalysis {
    fn visit(&mut self, event: &Event) {
        if let Event::CuEntry(sig) = event {
            if self.seen.insert(sig.clone()) {
                self.order.push(sig.clone());
            }
        }
    }

    fn to_csv(&self) -> String {
        let mut s = String::new();
        for sig in &self.order {
            s.push_str(sig);
            s.push('\n');
        }
        s
    }
}

impl OrderingAnalysis for MethodOrderAnalysis {
    fn visit(&mut self, event: &Event) {
        if let Event::MethodEntry(sig) = event {
            if self.seen.insert(sig.clone()) {
                self.order.push(sig.clone());
            }
        }
    }

    fn to_csv(&self) -> String {
        let mut s = String::new();
        for sig in &self.order {
            s.push_str(sig);
            s.push('\n');
        }
        s
    }
}

impl OrderingAnalysis for HeapOrderAnalysis {
    fn visit(&mut self, event: &Event) {
        if let Event::ObjectAccess(id) = event {
            if self.seen.insert(*id) {
                self.order.push(*id);
            }
        }
    }

    fn to_csv(&self) -> String {
        let mut s = String::new();
        for id in &self.order {
            s.push_str(&format!("{id:016x}\n"));
        }
        s
    }
}

/// A code-ordering profile: method/CU-root signatures in first-execution
/// order (the CSV consumed by the optimizing build).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CodeOrderProfile {
    /// Signatures in first-execution order.
    pub sigs: Vec<String>,
}

impl CodeOrderProfile {
    /// Parses the one-signature-per-line CSV.
    ///
    /// ```
    /// use nimage_order::CodeOrderProfile;
    ///
    /// let p = CodeOrderProfile::from_csv("a.B.c(0)\nd.E.f(2)\n");
    /// assert_eq!(p.sigs, vec!["a.B.c(0)", "d.E.f(2)"]);
    /// ```
    pub fn from_csv(text: &str) -> Self {
        CodeOrderProfile {
            sigs: text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty())
                .map(str::to_string)
                .collect(),
        }
    }
}

/// The measured touched-byte spans of one object: `[start, end)` byte
/// ranges relative to the object's start, sorted and non-overlapping.
/// Empty means unmeasured — consumers fall back to the full-extent touch
/// model.
pub type ObjectSpans = Vec<(u64, u64)>;

/// A heap-ordering profile: 64-bit object identities in first-access order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeapOrderProfile {
    /// Identities in first-access order.
    pub ids: Vec<u64>,
    /// Measured [`ObjectSpans`] parallel to `ids` (`spans[i]` belongs to
    /// `ids[i]`). An empty inner list — or an empty outer list on
    /// profiles that predate span measurement — means the entry is
    /// unmeasured.
    pub spans: Vec<ObjectSpans>,
}

impl HeapOrderProfile {
    /// Parses the one-id-per-line CSV. Each line carries the 16-hex-digit
    /// identity, optionally followed by comma-separated `start:end`
    /// touched-byte spans measured on the profiling run.
    ///
    /// ```
    /// use nimage_order::HeapOrderProfile;
    ///
    /// let p = HeapOrderProfile::from_csv("00000000000000ff,16:24\n0000000000000010\n");
    /// assert_eq!(p.ids, vec![0xff, 0x10]);
    /// assert_eq!(p.spans, vec![vec![(16, 24)], vec![]]);
    /// ```
    pub fn from_csv(text: &str) -> Self {
        let mut ids = vec![];
        let mut spans = vec![];
        for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
            let mut fields = line.split(',');
            let Some(id) = fields.next().and_then(|f| u64::from_str_radix(f, 16).ok()) else {
                continue;
            };
            ids.push(id);
            spans.push(
                fields
                    .filter_map(|f| {
                        let (a, b) = f.split_once(':')?;
                        Some((a.parse().ok()?, b.parse().ok()?))
                    })
                    .collect(),
            );
        }
        HeapOrderProfile { ids, spans }
    }
}

/// Errors raised while replaying a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// A trace record named a signature not present in the program.
    UnknownSignature(String),
    /// A path record's object-id count disagreed with the number of
    /// heap-access sites on the decoded path.
    IdCountMismatch {
        /// Signature of the method.
        method: String,
        /// Ids stored in the record.
        stored: usize,
        /// Heap-access sites on the decoded path.
        expected: usize,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::UnknownSignature(s) => write!(f, "unknown signature {s}"),
            ReplayError::IdCountMismatch {
                method,
                stored,
                expected,
            } => write!(
                f,
                "path record in {method} stores {stored} ids but path has {expected} sites"
            ),
        }
    }
}

impl Error for ReplayError {}

/// Replays a trace into the given analyses: decodes records thread by
/// thread (in creation order, per Sec. 7.1's multi-thread handling) and
/// dispatches events in execution order.
///
/// `id_map` maps the build-local raw identities stored in the trace
/// (`ObjId + 1`) to the strategy-specific 64-bit identities; raw id 0
/// denotes an access to an object outside the heap snapshot and is skipped.
/// `max_paths` must match the VM's path-numbering limit.
///
/// Method-entry events are taken from the explicit method-entry records
/// (emitted by the method-ordering instrumentation); the `MethodEntry`
/// static events on decoded paths are ignored to avoid double counting.
///
/// # Errors
/// Returns [`ReplayError`] if the trace is inconsistent with the program.
pub fn replay(
    program: &Program,
    trace: &Trace,
    id_map: &HashMap<ObjId, u64>,
    max_paths: u64,
    analyses: &mut [&mut dyn OrderingAnalysis],
) -> Result<(), ReplayError> {
    // Signature → method table for path decoding.
    let mut by_sig: HashMap<String, MethodId> = HashMap::new();
    for i in 0..program.methods().len() {
        let mid = MethodId::from(i);
        by_sig.insert(program.method_signature(mid), mid);
    }
    let mut tables: HashMap<MethodId, (ProfilingCfg, PathNumbering)> = HashMap::new();

    let emit = |event: Event, analyses: &mut [&mut dyn OrderingAnalysis]| {
        for a in analyses.iter_mut() {
            a.visit(&event);
        }
    };

    for thread in &trace.threads {
        for record in thread {
            match record {
                TraceRecord::CuEntry { sig } => {
                    emit(Event::CuEntry(trace.string(*sig).to_string()), analyses);
                }
                TraceRecord::MethodEntry { sig } => {
                    emit(Event::MethodEntry(trace.string(*sig).to_string()), analyses);
                }
                TraceRecord::Path {
                    method,
                    start,
                    path_id,
                    obj_ids,
                } => {
                    let sig = trace.string(*method);
                    let mid = *by_sig
                        .get(sig)
                        .ok_or_else(|| ReplayError::UnknownSignature(sig.to_string()))?;
                    let (cfg, num) = tables.entry(mid).or_insert_with(|| {
                        let cfg = ProfilingCfg::build(program.method(mid));
                        let num = PathNumbering::compute(&cfg, max_paths);
                        (cfg, num)
                    });
                    let seq = num.decode(cfg, nimage_compiler::MiniBlockId(*start), *path_id);
                    let expected: usize = seq
                        .iter()
                        .map(|&m| {
                            cfg.mini(m)
                                .events
                                .iter()
                                .filter(|e| matches!(e, StaticEvent::HeapAccess { .. }))
                                .count()
                        })
                        .sum();
                    if expected != obj_ids.len() {
                        return Err(ReplayError::IdCountMismatch {
                            method: sig.to_string(),
                            stored: obj_ids.len(),
                            expected,
                        });
                    }
                    for &raw in obj_ids {
                        if raw == 0 {
                            continue; // access outside the heap snapshot
                        }
                        let obj = ObjId((raw - 1) as u32);
                        if let Some(&id) = id_map.get(&obj) {
                            emit(Event::ObjectAccess(id), analyses);
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// The strategy-independent first-occurrence summary of one trace:
/// CU-entry and method-entry signatures in first-execution order, and
/// snapshot objects (raw build-local identities) in first-access order.
///
/// Per-strategy heap profiles derive from `object_order` by mapping each
/// object through the strategy's identity map and deduplicating: the
/// first access of a strategy identity is the first access of some raw
/// object mapping to it, and that access is the raw object's own first
/// occurrence, so mapping the raw first-occurrence list preserves every
/// identity's first-access position.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// CU-root signatures in first-execution order.
    pub cu_order: Vec<String>,
    /// Method signatures in first-execution order.
    pub method_order: Vec<String>,
    /// Snapshot objects in first-access order.
    pub object_order: Vec<ObjId>,
}

impl ReplaySummary {
    /// Maps `object_order` through a strategy identity map into the
    /// strategy's first-access heap profile.
    pub fn heap_profile(&self, id_map: &HashMap<ObjId, u64>) -> HeapOrderProfile {
        self.heap_profile_with_spans(id_map, &HashMap::new())
    }

    /// Like [`Self::heap_profile`], but attaches measured touched-byte
    /// spans to each identity's first-access entry. `touch_spans` is keyed
    /// by raw snapshot object index (the `RunReport::heap_touch_spans`
    /// convention); an identity kept from object `o` carries `o`'s spans.
    /// Identities without a measurement get an empty span list, so the
    /// profile's `spans` stays parallel to its `ids`.
    pub fn heap_profile_with_spans(
        &self,
        id_map: &HashMap<ObjId, u64>,
        touch_spans: &HashMap<u32, Vec<(u64, u64)>>,
    ) -> HeapOrderProfile {
        let mut seen: HashSet<u64> = HashSet::new();
        let mut ids: Vec<u64> = vec![];
        let mut spans: Vec<Vec<(u64, u64)>> = vec![];
        for obj in &self.object_order {
            if let Some(&id) = id_map.get(obj) {
                if seen.insert(id) {
                    ids.push(id);
                    spans.push(touch_spans.get(&obj.0).cloned().unwrap_or_default());
                }
            }
        }
        HeapOrderProfile { ids, spans }
    }
}

/// First-occurrence collectors of one trace chunk, merged in chunk order.
#[derive(Debug, Default)]
struct ChunkSummary {
    cu: Vec<String>,
    methods: Vec<String>,
    objects: Vec<ObjId>,
}

/// Decodes one contiguous run of records from a single trace thread,
/// collecting chunk-local first occurrences.
fn decode_chunk(
    program: &Program,
    trace: &Trace,
    by_sig: &HashMap<String, MethodId>,
    in_snapshot: &HashMap<ObjId, u64>,
    max_paths: u64,
    records: &[TraceRecord],
) -> Result<ChunkSummary, ReplayError> {
    let mut out = ChunkSummary::default();
    let mut cu_seen: HashSet<u32> = HashSet::new();
    let mut method_seen: HashSet<u32> = HashSet::new();
    let mut obj_seen: HashSet<ObjId> = HashSet::new();
    let mut tables: HashMap<MethodId, (ProfilingCfg, PathNumbering)> = HashMap::new();
    for record in records {
        match record {
            TraceRecord::CuEntry { sig } => {
                if cu_seen.insert(*sig) {
                    out.cu.push(trace.string(*sig).to_string());
                }
            }
            TraceRecord::MethodEntry { sig } => {
                if method_seen.insert(*sig) {
                    out.methods.push(trace.string(*sig).to_string());
                }
            }
            TraceRecord::Path {
                method,
                start,
                path_id,
                obj_ids,
            } => {
                let sig = trace.string(*method);
                let mid = *by_sig
                    .get(sig)
                    .ok_or_else(|| ReplayError::UnknownSignature(sig.to_string()))?;
                let (cfg, num) = tables.entry(mid).or_insert_with(|| {
                    let cfg = ProfilingCfg::build(program.method(mid));
                    let num = PathNumbering::compute(&cfg, max_paths);
                    (cfg, num)
                });
                let seq = num.decode(cfg, nimage_compiler::MiniBlockId(*start), *path_id);
                let expected: usize = seq
                    .iter()
                    .map(|&m| {
                        cfg.mini(m)
                            .events
                            .iter()
                            .filter(|e| matches!(e, StaticEvent::HeapAccess { .. }))
                            .count()
                    })
                    .sum();
                if expected != obj_ids.len() {
                    return Err(ReplayError::IdCountMismatch {
                        method: sig.to_string(),
                        stored: obj_ids.len(),
                        expected,
                    });
                }
                for &raw in obj_ids {
                    if raw == 0 {
                        continue; // access outside the heap snapshot
                    }
                    let obj = ObjId((raw - 1) as u32);
                    if in_snapshot.contains_key(&obj) && obj_seen.insert(obj) {
                        out.objects.push(obj);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Replays a trace into a [`ReplaySummary`], decoding disjoint contiguous
/// chunks of the record stream in parallel and merging the chunk-local
/// first-occurrence lists in chunk order.
///
/// The merge `A ++ (B \ A)` is associative and reproduces the serial
/// first-occurrence order exactly: an element's global first occurrence
/// lies in the earliest chunk containing it, at that chunk's local first
/// occurrence. Chunk boundaries therefore do not affect the result, so
/// any thread count (including 1) produces bit-identical output. Errors
/// keep serial semantics too: the earliest erroring chunk's first error
/// *is* the stream's first error, because chunks partition the stream in
/// order.
///
/// `in_snapshot` gates object accesses exactly like `replay`'s `id_map`:
/// only its keys matter, and every strategy's identity map shares the
/// same key set (the snapshot's objects).
///
/// # Errors
/// Returns [`ReplayError`] if the trace is inconsistent with the program.
pub fn replay_first_access(
    program: &Program,
    trace: &Trace,
    in_snapshot: &HashMap<ObjId, u64>,
    max_paths: u64,
    n_threads: usize,
) -> Result<ReplaySummary, ReplayError> {
    let mut by_sig: HashMap<String, MethodId> = HashMap::new();
    for i in 0..program.methods().len() {
        let mid = MethodId::from(i);
        by_sig.insert(program.method_signature(mid), mid);
    }

    // Chunk descriptors: contiguous runs within one thread's records, in
    // stream order (thread creation order, then record order). A floor on
    // the chunk size keeps the per-chunk decode-table overhead small.
    let total: usize = trace.threads.iter().map(Vec::len).sum();
    // Record decode is a few ns each; small traces don't amortize worker
    // spawn, so gate the fan-out on the measured record-count cutoff.
    let n_threads =
        nimage_par::workers_for(n_threads, total, nimage_par::cutoff::REPLAY_MIN_RECORDS);
    let workers = n_threads.max(1);
    let chunk_len = total.div_ceil(workers * 4).max(256);
    let mut chunks: Vec<(usize, usize, usize)> = vec![];
    for (ti, t) in trace.threads.iter().enumerate() {
        let mut start = 0;
        while start < t.len() {
            let end = (start + chunk_len).min(t.len());
            chunks.push((ti, start, end));
            start = end;
        }
    }

    let outs = parallel_map(n_threads, chunks.len(), |ci| {
        let (ti, start, end) = chunks[ci];
        decode_chunk(
            program,
            trace,
            &by_sig,
            in_snapshot,
            max_paths,
            &trace.threads[ti][start..end],
        )
    });

    let mut summary = ReplaySummary::default();
    let mut cu_seen: HashSet<String> = HashSet::new();
    let mut method_seen: HashSet<String> = HashSet::new();
    let mut obj_seen: HashSet<ObjId> = HashSet::new();
    for out in outs {
        let chunk = out?;
        for sig in chunk.cu {
            if cu_seen.insert(sig.clone()) {
                summary.cu_order.push(sig);
            }
        }
        for sig in chunk.methods {
            if method_seen.insert(sig.clone()) {
                summary.method_order.push(sig);
            }
        }
        for obj in chunk.objects {
            if obj_seen.insert(obj) {
                summary.object_order.push(obj);
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyses_keep_first_occurrence_order() {
        let events = [
            Event::CuEntry("b".into()),
            Event::CuEntry("a".into()),
            Event::CuEntry("b".into()),
            Event::MethodEntry("m1".into()),
            Event::MethodEntry("m2".into()),
            Event::MethodEntry("m1".into()),
            Event::ObjectAccess(7),
            Event::ObjectAccess(3),
            Event::ObjectAccess(7),
        ];
        let mut cu = CuOrderAnalysis::new();
        let mut me = MethodOrderAnalysis::new();
        let mut he = HeapOrderAnalysis::new();
        for e in &events {
            cu.visit(e);
            me.visit(e);
            he.visit(e);
        }
        assert_eq!(cu.into_profile().sigs, vec!["b", "a"]);
        assert_eq!(me.into_profile().sigs, vec!["m1", "m2"]);
        assert_eq!(he.into_profile().ids, vec![7, 3]);
    }

    #[test]
    fn csv_roundtrips() {
        let mut cu = CuOrderAnalysis::new();
        cu.visit(&Event::CuEntry("x.Y.z(0)".into()));
        cu.visit(&Event::CuEntry("a.B.c(2)".into()));
        let csv = cu.to_csv();
        assert_eq!(
            CodeOrderProfile::from_csv(&csv).sigs,
            vec!["x.Y.z(0)", "a.B.c(2)"]
        );

        let mut he = HeapOrderAnalysis::new();
        he.visit(&Event::ObjectAccess(0xdead_beef));
        he.visit(&Event::ObjectAccess(1));
        let csv = he.to_csv();
        assert_eq!(HeapOrderProfile::from_csv(&csv).ids, vec![0xdead_beef, 1]);
    }

    #[test]
    fn heap_csv_ignores_garbage_lines() {
        let p = HeapOrderProfile::from_csv("00000000000000ff\nnot-hex\n\n10\n");
        assert_eq!(p.ids, vec![0xff, 0x10]);
    }
}
