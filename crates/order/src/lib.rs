//! # nimage-order
//!
//! The paper's primary contribution: profile-guided **code ordering**
//! (Sec. 4) and **heap-snapshot ordering** (Sec. 5), plus the
//! post-processing framework that turns raw traces into ordering profiles
//! (Sec. 6.2).
//!
//! * [`murmur3`] — a from-scratch MurmurHash3 (x64, 128-bit, truncated to
//!   64 bits), the hash function both hashing strategies rely on.
//! * [`HeapStrategy`] — the three object-identity schemes: *incremental id*
//!   (Algorithm 1), *structural hash* (Algorithm 2, bounded by
//!   `MAX_DEPTH`), and *heap path* (Algorithm 3, hashing the first
//!   root-to-object path plus the root's inclusion reason).
//! * [`replay`] + [`OrderingAnalysis`] — the visitor-pattern
//!   post-processing framework: decodes per-thread trace records (including
//!   Ball–Larus path records) back into an event stream and feeds the
//!   ordering analyses, which produce CSV profiles.
//! * [`order_cus`] / [`order_objects`] — apply a profile to a (different!)
//!   build: CU orders are matched by root/method *signature*; heap orders
//!   are matched by re-computing the strategy's 64-bit IDs on the new
//!   build's snapshot and aligning them with the profile's IDs — the
//!   cross-build object-identity matching that Sec. 5 is about.
//! * [`optimize_layout`] — beyond the paper: candidate search under the
//!   demand-paging cost model (hot/cold splitting of the native tail,
//!   fault-around-window clustering, page-boundary packing), anchored by
//!   first-touch order as candidate 0 so it never predicts worse than the
//!   paper's ordering.

#![warn(missing_docs)]

mod analyses;
mod entity;
pub mod murmur3;
mod optimize;
mod ordering;
mod quality;
mod strategies;

pub use analyses::{
    replay, replay_first_access, CodeOrderProfile, CuOrderAnalysis, Event, HeapOrderAnalysis,
    HeapOrderProfile, MethodOrderAnalysis, ObjectSpans, OrderingAnalysis, ReplayError,
    ReplaySummary,
};
pub use optimize::{
    optimize_layout, predict_faults, CodeInput, CostParams, HeapInput, OrderPlan, PredictedFaults,
};
pub use ordering::{
    match_rate, order_cus, order_cus_split, order_objects, order_objects_split,
    order_objects_split_spans, CodeGranularity,
};
pub use quality::{layout_quality, matched_object_ratio, predicted_faults, LayoutQuality};
pub use strategies::{assign_global_incremental_ids, assign_ids, HeapStrategy};
