//! The *entity* abstraction of Algorithms 1–3: a wrapper around a value
//! (object reference, array reference or primitive) exposing the metadata
//! the ID strategies inspect.

use nimage_heap::{HObjectKind, HValue, HeapSnapshot, ObjId};
use nimage_ir::Program;

/// A wrapper around a snapshot value, as consumed by the ID algorithms.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Entity<'a> {
    pub program: &'a Program,
    pub snapshot: &'a HeapSnapshot,
    pub value: HValue,
}

impl<'a> Entity<'a> {
    pub fn new(program: &'a Program, snapshot: &'a HeapSnapshot, value: HValue) -> Self {
        Entity {
            program,
            snapshot,
            value,
        }
    }

    pub fn of_object(program: &'a Program, snapshot: &'a HeapSnapshot, obj: ObjId) -> Self {
        Self::new(program, snapshot, HValue::Ref(obj))
    }

    pub fn is_null(&self) -> bool {
        matches!(self.value, HValue::Null)
    }

    pub fn is_primitive(&self) -> bool {
        matches!(
            self.value,
            HValue::Bool(_) | HValue::Int(_) | HValue::Double(_)
        )
    }

    /// Whether the wrapped value is (a reference to) a string — strings get
    /// the same special treatment as `java.lang.String` in the paper.
    pub fn is_string(&self) -> bool {
        match self.value {
            HValue::Ref(o) => matches!(self.snapshot.heap().get(o).kind, HObjectKind::Str(_)),
            _ => false,
        }
    }

    pub fn is_object_instance(&self) -> bool {
        match self.value {
            HValue::Ref(o) => {
                matches!(
                    self.snapshot.heap().get(o).kind,
                    HObjectKind::Instance { .. }
                )
            }
            _ => false,
        }
    }

    pub fn is_array(&self) -> bool {
        match self.value {
            HValue::Ref(o) => matches!(self.snapshot.heap().get(o).kind, HObjectKind::Array { .. }),
            _ => false,
        }
    }

    pub fn as_obj(&self) -> Option<ObjId> {
        self.value.as_ref()
    }

    /// Fully qualified name of the value's dynamic type.
    pub fn type_name(&self) -> String {
        match self.value {
            HValue::Null => "null".to_string(),
            HValue::Bool(_) => "bool".to_string(),
            HValue::Int(_) => "int".to_string(),
            HValue::Double(_) => "double".to_string(),
            HValue::Ref(o) => self.snapshot.heap().get(o).type_name(self.program),
        }
    }

    /// Appends the primitive/string payload bytes (Algorithm 2 lines 7–8).
    pub fn append_scalar_bytes(&self, out: &mut Vec<u8>) {
        match self.value {
            HValue::Bool(b) => out.push(u8::from(b)),
            HValue::Int(i) => out.extend_from_slice(&i.to_le_bytes()),
            HValue::Double(d) => out.extend_from_slice(&d.to_bits().to_le_bytes()),
            HValue::Ref(o) => match &self.snapshot.heap().get(o).kind {
                HObjectKind::Str(s) => out.extend_from_slice(s.as_bytes()),
                HObjectKind::Boxed(d) => out.extend_from_slice(&d.to_bits().to_le_bytes()),
                HObjectKind::Blob { name, size } => {
                    out.extend_from_slice(name.as_bytes());
                    out.extend_from_slice(&size.to_le_bytes());
                }
                _ => {}
            },
            HValue::Null => out.push(0),
        }
    }

    /// The instance fields of the wrapped object, as `(static type name,
    /// value entity)` in source definition (layout) order.
    pub fn fields(&self) -> Vec<(String, Entity<'a>)> {
        let Some(o) = self.as_obj() else {
            return vec![];
        };
        match &self.snapshot.heap().get(o).kind {
            HObjectKind::Instance { class, fields } => {
                let layout = self.program.all_instance_fields(*class);
                layout
                    .iter()
                    .zip(fields.iter())
                    .map(|(&fid, &v)| {
                        (
                            self.program.type_name(&self.program.field(fid).ty),
                            Entity::new(self.program, self.snapshot, v),
                        )
                    })
                    .collect()
            }
            _ => vec![],
        }
    }

    /// Array element type name and element entities.
    pub fn array_parts(&self) -> Option<(String, Vec<Entity<'a>>)> {
        let o = self.as_obj()?;
        match &self.snapshot.heap().get(o).kind {
            HObjectKind::Array { elem, elems } => Some((
                self.program.type_name(elem),
                elems
                    .iter()
                    .map(|&v| Entity::new(self.program, self.snapshot, v))
                    .collect(),
            )),
            _ => None,
        }
    }

    /// Whether the array's *element type* is primitive or string.
    pub fn element_type_is_scalar(&self) -> bool {
        let Some(o) = self.as_obj() else {
            return false;
        };
        match &self.snapshot.heap().get(o).kind {
            HObjectKind::Array { elem, .. } => {
                elem.is_primitive() || matches!(elem, nimage_ir::TypeRef::Str)
            }
            _ => false,
        }
    }
}
