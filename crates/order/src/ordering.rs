//! Applying ordering profiles to a (possibly different) build: the
//! cross-build matching of Sec. 4 and Sec. 5.

use std::collections::{BTreeMap, HashMap};

use nimage_compiler::{CompiledProgram, CuId};
use nimage_heap::{HeapSnapshot, ObjId};
use nimage_ir::Program;

use crate::analyses::{CodeOrderProfile, HeapOrderProfile, ObjectSpans};

/// Which code-ordering strategy produced the profile (Sec. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeGranularity {
    /// *cu ordering*: profile entries are CU root-method signatures
    /// (Sec. 4.1).
    Cu,
    /// *method ordering*: profile entries are method signatures, including
    /// inlined methods (Sec. 4.2). A profile entry places the first CU (in
    /// default order) that *contains* the method.
    Method,
}

/// Computes the `.text` CU order of the optimized build from a
/// code-ordering profile gathered on the instrumented build.
///
/// Profile entries are matched by signature — the only identity that is
/// stable across builds with different inlining. Signatures that do not
/// resolve in this build (e.g. a CU root of the instrumented build that got
/// fully inlined here) are skipped. CUs not named by the profile keep their
/// default (alphabetical) relative order after the profiled ones, so cold
/// code moves to the back.
pub fn order_cus(
    program: &Program,
    compiled: &CompiledProgram,
    profile: &CodeOrderProfile,
    granularity: CodeGranularity,
) -> Vec<CuId> {
    order_cus_split(program, compiled, profile, granularity).0
}

/// Like [`order_cus`], but also returns the length of the hot prefix: the
/// number of CUs placed from the profile (the rest are the never-touched
/// CUs exiled past the hot frontier). This is the hot/cold split the
/// layout optimizer consumes.
pub fn order_cus_split(
    program: &Program,
    compiled: &CompiledProgram,
    profile: &CodeOrderProfile,
    granularity: CodeGranularity,
) -> (Vec<CuId>, usize) {
    // Signature → CU to place for that signature. A `BTreeMap` keeps this
    // ordering-sensitive path independent of hasher state.
    let mut sig_to_cu: BTreeMap<String, CuId> = BTreeMap::new();
    match granularity {
        CodeGranularity::Cu => {
            for cu in &compiled.cus {
                sig_to_cu.insert(program.method_signature(cu.root), cu.id);
            }
        }
        CodeGranularity::Method => {
            // First CU (in default order) containing each method.
            for cu in &compiled.cus {
                for m in cu.methods() {
                    sig_to_cu
                        .entry(program.method_signature(m))
                        .or_insert(cu.id);
                }
            }
        }
    }

    let mut placed = vec![false; compiled.cus.len()];
    let mut order: Vec<CuId> = vec![];
    for sig in &profile.sigs {
        if let Some(&cu) = sig_to_cu.get(sig) {
            if !placed[cu.index()] {
                placed[cu.index()] = true;
                order.push(cu);
            }
        }
    }
    let hot = order.len();
    for cu in &compiled.cus {
        if !placed[cu.id.index()] {
            order.push(cu.id);
        }
    }
    debug_assert_eq!(
        order.len(),
        compiled.cus.len(),
        "CU order must be a permutation of the compiled CUs"
    );
    (order, hot)
}

/// Computes the `.svm_heap` object order of the optimized build from a
/// heap-ordering profile.
///
/// `ids` are the strategy identities computed on *this* build's snapshot
/// (same strategy as the profile). Objects whose identity appears in the
/// profile are placed first, in profile order (stable on identity ties:
/// objects sharing an identity keep their default relative order); the
/// remaining objects follow in default order.
pub fn order_objects(
    snapshot: &HeapSnapshot,
    ids: &HashMap<ObjId, u64>,
    profile: &HeapOrderProfile,
) -> Vec<ObjId> {
    order_objects_split(snapshot, ids, profile).0
}

/// Like [`order_objects`], but also returns the length of the hot prefix:
/// the number of objects matched by the profile (the rest follow in
/// default order). This is the hot/cold split the layout optimizer
/// consumes.
pub fn order_objects_split(
    snapshot: &HeapSnapshot,
    ids: &HashMap<ObjId, u64>,
    profile: &HeapOrderProfile,
) -> (Vec<ObjId>, usize) {
    let (order, hot, _) = order_objects_split_spans(snapshot, ids, profile);
    (order, hot)
}

/// Like [`order_objects_split`], but also carries each matched object's
/// measured touched-byte spans out of the profile: the third element is
/// parallel to the hot prefix of the returned order (`spans[i]` belongs
/// to `order[i]`), empty per object when the profile carries no
/// measurement for its identity. This is the span channel into the layout
/// optimizer's fault predictor (`HeapInput::spans`); objects sharing an
/// identity all inherit that identity's spans.
pub fn order_objects_split_spans(
    snapshot: &HeapSnapshot,
    ids: &HashMap<ObjId, u64>,
    profile: &HeapOrderProfile,
) -> (Vec<ObjId>, usize, Vec<ObjectSpans>) {
    let mut rank: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, &id) in profile.ids.iter().enumerate() {
        rank.entry(id).or_insert(i);
    }
    let mut matched: Vec<(usize, ObjId)> = vec![];
    let mut unmatched: Vec<ObjId> = vec![];
    for e in snapshot.entries() {
        match ids.get(&e.obj).and_then(|id| rank.get(id)) {
            Some(&r) => matched.push((r, e.obj)),
            None => unmatched.push(e.obj),
        }
    }
    matched.sort_by_key(|&(r, _)| r); // stable: ties keep default order
    let hot = matched.len();
    let hot_spans: Vec<ObjectSpans> = matched
        .iter()
        .map(|&(r, _)| profile.spans.get(r).cloned().unwrap_or_default())
        .collect();
    let order: Vec<ObjId> = matched
        .into_iter()
        .map(|(_, o)| o)
        .chain(unmatched)
        .collect();
    debug_assert_eq!(
        order.len(),
        snapshot.entries().len(),
        "object order must be a permutation of the snapshot"
    );
    (order, hot, hot_spans)
}

/// Fraction of profile identities that resolve to an object of this build's
/// snapshot — the matching accuracy that separates the three strategies in
/// Sec. 7.2.
pub fn match_rate(ids: &HashMap<ObjId, u64>, profile: &HeapOrderProfile) -> f64 {
    if profile.ids.is_empty() {
        return 1.0;
    }
    let present: std::collections::HashSet<u64> = ids.values().copied().collect();
    let hits = profile.ids.iter().filter(|id| present.contains(id)).count();
    hits as f64 / profile.ids.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{assign_ids, HeapStrategy};
    use nimage_analysis::{analyze, AnalysisConfig};
    use nimage_compiler::{compile, InlineConfig, InstrumentConfig};
    use nimage_heap::{snapshot, HeapBuildConfig};
    use nimage_ir::{Program, ProgramBuilder, TypeRef};

    /// Many single-method CUs (no inlining) plus one helper that gets
    /// inlined in the regular build.
    fn many_cu_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.Many", None);
        let mut methods = vec![];
        for name in ["alpha", "beta", "gamma", "delta"] {
            let m = pb.declare_static(c, name, &[], Some(TypeRef::Int));
            let mut f = pb.body(m);
            let mut v = f.iconst(1);
            for _ in 0..100 {
                let one = f.iconst(1);
                v = f.add(v, one);
            }
            f.ret(Some(v));
            pb.finish_body(m, f);
            methods.push(m);
        }
        let cond = pb.add_static_field(c, "COND", TypeRef::Bool);
        let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
        let mut f = pb.body(main);
        let acc = f.iconst(0);
        let take = f.get_static(cond);
        let ms = methods.clone();
        f.if_then(take, |f| {
            for &m in &ms {
                let v = f.call_static(m, &[], true).unwrap();
                let s = f.add(acc, v);
                f.assign(acc, s);
            }
        });
        // Hot path: call gamma then alpha.
        let v = f.call_static(methods[2], &[], true).unwrap();
        let s = f.add(acc, v);
        f.assign(acc, s);
        let v = f.call_static(methods[0], &[], true).unwrap();
        let s = f.add(acc, v);
        f.assign(acc, s);
        f.ret(Some(acc));
        pb.finish_body(main, f);
        pb.set_entry(main);
        pb.build().unwrap()
    }

    fn compiled(p: &Program) -> CompiledProgram {
        let reach = analyze(p, &AnalysisConfig::default());
        let cfg = InlineConfig {
            inline_threshold: 0,
            ..InlineConfig::default()
        };
        compile(p, reach, &cfg, InstrumentConfig::NONE, None)
    }

    #[test]
    fn cu_order_places_profiled_roots_first() {
        let p = many_cu_program();
        let cp = compiled(&p);
        let profile = CodeOrderProfile {
            sigs: vec![
                "t.Many.main(0)".into(),
                "t.Many.gamma(0)".into(),
                "t.Many.alpha(0)".into(),
            ],
        };
        let order = order_cus(&p, &cp, &profile, CodeGranularity::Cu);
        let sig = |cu: CuId| p.method_signature(cp.cu(cu).root);
        assert_eq!(sig(order[0]), "t.Many.main(0)");
        assert_eq!(sig(order[1]), "t.Many.gamma(0)");
        assert_eq!(sig(order[2]), "t.Many.alpha(0)");
        // The rest keep alphabetical order.
        assert_eq!(sig(order[3]), "t.Many.beta(0)");
        assert_eq!(sig(order[4]), "t.Many.delta(0)");
        assert_eq!(order.len(), cp.cus.len());
    }

    #[test]
    fn unknown_profile_signatures_are_skipped() {
        let p = many_cu_program();
        let cp = compiled(&p);
        let profile = CodeOrderProfile {
            sigs: vec!["ghost.Klass.gone(0)".into(), "t.Many.beta(0)".into()],
        };
        let order = order_cus(&p, &cp, &profile, CodeGranularity::Cu);
        assert_eq!(p.method_signature(cp.cu(order[0]).root), "t.Many.beta(0)");
        assert_eq!(order.len(), cp.cus.len());
    }

    #[test]
    fn method_granularity_resolves_inlined_methods_to_containing_cu() {
        // helper is small and inlined into main; a method profile naming
        // helper must place main's CU.
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.In", None);
        let helper = pb.declare_static(c, "helper", &[], Some(TypeRef::Int));
        let mut f = pb.body(helper);
        let v = f.iconst(3);
        f.ret(Some(v));
        pb.finish_body(helper, f);
        let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
        let mut f = pb.body(main);
        let v = f.call_static(helper, &[], true).unwrap();
        f.ret(Some(v));
        pb.finish_body(main, f);
        pb.set_entry(main);
        let p = pb.build().unwrap();
        let reach = analyze(&p, &AnalysisConfig::default());
        let cp = compile(
            &p,
            reach,
            &InlineConfig::default(),
            InstrumentConfig::NONE,
            None,
        );
        // helper has no own CU.
        assert!(cp.cu_of_root(helper).is_none());
        let profile = CodeOrderProfile {
            sigs: vec!["t.In.helper(0)".into()],
        };
        let order = order_cus(&p, &cp, &profile, CodeGranularity::Method);
        assert_eq!(cp.cu(order[0]).root, main);
    }

    /// A wide registry of same-type nodes; PEA folding in the "optimized"
    /// build removes some nodes, shifting incremental counters of every
    /// later node onto the *wrong* object, while heap paths (array index +
    /// root) still pin down the survivors. This is Sec. 7.2's finding:
    /// "one cannot rely on the encounter order when traversing the heap
    /// object graph … hashing the heap paths is more robust".
    #[test]
    fn heap_path_matching_survives_divergence_better_than_incremental() {
        let mut pb = ProgramBuilder::new();
        let node = pb.add_class("t.Node", None);
        let f_val = pb.add_instance_field(node, "val", TypeRef::Int);
        let holder = pb.add_class("t.Holder", None);
        let f_reg =
            pb.add_static_field(holder, "REGISTRY", TypeRef::array_of(TypeRef::Object(node)));
        let cl = pb.declare_clinit(holder);
        let mut f = pb.body(cl);
        let n = f.iconst(40);
        let arr = f.new_array(TypeRef::Object(node), n);
        let from = f.iconst(0);
        f.for_range(from, n, |f, i| {
            let o = f.new_object(node);
            f.put_field(o, f_val, i);
            f.array_set(arr, i, o);
        });
        f.put_static(f_reg, arr);
        f.ret(None);
        pb.finish_body(cl, f);
        let mc = pb.add_class("t.Main", None);
        let main = pb.declare_static(mc, "main", &[], Some(TypeRef::Int));
        let mut f = pb.body(main);
        let a = f.get_static(f_reg);
        let z = f.iconst(0);
        let h = f.array_get(a, z);
        let v = f.get_field(h, f_val);
        f.ret(Some(v));
        pb.finish_body(main, f);
        pb.set_entry(main);
        let p = pb.build().unwrap();

        let reach = analyze(&p, &AnalysisConfig::default());
        let cp = compile(
            &p,
            reach,
            &InlineConfig::default(),
            InstrumentConfig::NONE,
            None,
        );
        // "Instrumented" snapshot: no folding.
        let snap_a = snapshot(&p, &cp, &HeapBuildConfig::default()).unwrap();
        // "Optimized" snapshot: PEA folds some registry nodes.
        let cfg_b = HeapBuildConfig {
            pea_fold: true,
            pea_seed: 11,
            pea_fold_ratio: 6,
            ..HeapBuildConfig::default()
        };
        let snap_b = snapshot(&p, &cp, &cfg_b).unwrap();
        assert!(
            snap_b.entries().len() < snap_a.entries().len(),
            "folding must remove entries"
        );

        // `val` of a node object, used as its semantic identity.
        let val_of = |snap: &nimage_heap::HeapSnapshot, o: nimage_heap::ObjId| -> Option<i64> {
            match &snap.heap().get(o).kind {
                nimage_heap::HObjectKind::Instance { class, fields }
                    if p.class(*class).name == "t.Node" =>
                {
                    match fields[0] {
                        nimage_heap::HValue::Int(v) => Some(v),
                        _ => None,
                    }
                }
                _ => None,
            }
        };

        // Fraction of B's nodes whose profile match (by id) is the
        // semantically same object in A.
        let aligned_rate = |strategy: HeapStrategy| -> f64 {
            let ids_a = assign_ids(&p, &snap_a, strategy);
            let ids_b = assign_ids(&p, &snap_b, strategy);
            let mut by_id_a: HashMap<u64, nimage_heap::ObjId> = HashMap::new();
            for e in snap_a.entries() {
                by_id_a.insert(ids_a[&e.obj], e.obj);
            }
            let mut total = 0;
            let mut aligned = 0;
            for e in snap_b.entries() {
                let Some(vb) = val_of(&snap_b, e.obj) else {
                    continue;
                };
                total += 1;
                if let Some(&oa) = by_id_a.get(&ids_b[&e.obj]) {
                    if val_of(&snap_a, oa) == Some(vb) {
                        aligned += 1;
                    }
                }
            }
            aligned as f64 / total as f64
        };

        let incr = aligned_rate(HeapStrategy::IncrementalId);
        let path = aligned_rate(HeapStrategy::HeapPath);
        let hash = aligned_rate(HeapStrategy::structural_default());
        assert!(
            path > incr,
            "heap path ({path}) must align better than incremental ({incr})"
        );
        assert!(
            hash > incr,
            "structural hash ({hash}) must align better than incremental ({incr})"
        );
        // Surviving nodes keep their array slot, so heap path aligns all.
        assert!(path > 0.95, "heap path aligned rate was {path}");
    }

    #[test]
    fn order_objects_places_profiled_first_in_profile_order() {
        let p = many_cu_program();
        let cp = compiled(&p);
        let snap = snapshot(&p, &cp, &HeapBuildConfig::default()).unwrap();
        if snap.entries().len() < 2 {
            return; // nothing to reorder in this tiny snapshot
        }
        let ids = assign_ids(&p, &snap, HeapStrategy::HeapPath);
        // Profile accesses the last object first.
        let last = snap.entries().last().unwrap().obj;
        let profile = HeapOrderProfile {
            ids: vec![ids[&last]],
            spans: vec![],
        };
        let order = order_objects(&snap, &ids, &profile);
        assert_eq!(order[0], last);
        assert_eq!(order.len(), snap.entries().len());
        // All objects present exactly once.
        let set: std::collections::HashSet<_> = order.iter().collect();
        assert_eq!(set.len(), order.len());
    }

    #[test]
    fn empty_profile_keeps_default_order() {
        let p = many_cu_program();
        let cp = compiled(&p);
        let snap = snapshot(&p, &cp, &HeapBuildConfig::default()).unwrap();
        let ids = assign_ids(&p, &snap, HeapStrategy::HeapPath);
        let order = order_objects(&snap, &ids, &HeapOrderProfile::default());
        let default: Vec<_> = snap.entries().iter().map(|e| e.obj).collect();
        assert_eq!(order, default);
        assert_eq!(match_rate(&ids, &HeapOrderProfile::default()), 1.0);
    }
}
