//! MurmurHash3 (x64 variant, 128-bit output), implemented from the public
//! domain reference; the paper uses MurmurHash3 as "a fast hash function
//! that produces well-distributed hash values" for both the structural-hash
//! and heap-path strategies (Sec. 5.2, 5.3).
//!
//! [`hash64`] returns the low 64 bits of the 128-bit digest — the 64-bit
//! object identities the paper's strategies compute.

const C1: u64 = 0x87c3_7b91_1142_53d5;
const C2: u64 = 0x4cf5_ad43_2745_937f;

#[inline]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// Computes the 128-bit MurmurHash3 (x64) of `data` with the given seed.
pub fn hash128(data: &[u8], seed: u64) -> (u64, u64) {
    let mut h1 = seed;
    let mut h2 = seed;
    let n_blocks = data.len() / 16;

    for i in 0..n_blocks {
        let b = &data[i * 16..i * 16 + 16];
        let mut k1 = u64::from_le_bytes(b[0..8].try_into().expect("8 bytes"));
        let mut k2 = u64::from_le_bytes(b[8..16].try_into().expect("8 bytes"));

        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52dc_e729);

        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5ab5);
    }

    let tail = &data[n_blocks * 16..];
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    for i in (8..tail.len()).rev() {
        k2 ^= u64::from(tail[i]) << ((i - 8) * 8);
    }
    if tail.len() > 8 {
        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
    }
    for i in (0..tail.len().min(8)).rev() {
        k1 ^= u64::from(tail[i]) << (i * 8);
    }
    if !tail.is_empty() {
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    let len = data.len() as u64;
    h1 ^= len;
    h2 ^= len;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    (h1, h2)
}

/// The 64-bit object identity used throughout Sec. 5: the low half of the
/// 128-bit digest, seed 0.
///
/// ```
/// use nimage_order::murmur3::hash64;
///
/// // Deterministic and content-sensitive — the properties the identity
/// // matching of Sec. 5 relies on.
/// assert_eq!(hash64(b"rt.Meta"), hash64(b"rt.Meta"));
/// assert_ne!(hash64(b"rt.Meta"), hash64(b"rt.Mode"));
/// ```
pub fn hash64(data: &[u8]) -> u64 {
    hash128(data, 0).0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors computed with the canonical C++
    /// `MurmurHash3_x64_128` implementation (seed 0).
    #[test]
    fn reference_vectors() {
        assert_eq!(hash128(b"", 0), (0, 0));
        assert_eq!(
            hash128(b"hello", 0),
            (0xcbd8_a7b3_41bd_9b02, 0x5b1e_906a_48ae_1d19)
        );
        assert_eq!(
            hash128(b"hello, world", 0),
            (0x342f_ac62_3a5e_bc8e, 0x4cdc_bc07_9642_414d)
        );
        assert_eq!(
            hash128(b"The quick brown fox jumps over the lazy dog", 0),
            (0xe34b_bc7b_bc07_1b6c, 0x7a43_3ca9_c49a_9347)
        );
    }

    #[test]
    fn seed_changes_output() {
        assert_ne!(hash128(b"hello", 0), hash128(b"hello", 1));
    }

    #[test]
    fn distinct_inputs_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(hash64(&i.to_le_bytes())), "collision at {i}");
        }
    }

    #[test]
    fn all_tail_lengths_are_covered() {
        // Exercise every 0..16 tail length against basic sanity.
        let data: Vec<u8> = (0u8..64).collect();
        let mut outs = std::collections::HashSet::new();
        for len in 0..=32 {
            assert!(outs.insert(hash64(&data[..len])));
        }
    }
}
