//! Page-fault-cost-aware layout optimization: hot/cold splitting plus
//! fault-around-window clustering.
//!
//! The paper's orderings (`order_cus` / `order_objects`) linearize entities
//! in plain first-touch order. That is the right *hot/cold split* — touched
//! entities form a dense prefix, never-touched ones are exiled past the hot
//! frontier — but it leaves two costs of the demand-paging model on the
//! table (`nimage_vm::paging`, the aligned fault-around window of
//! `PagingConfig::fault_around_pages`):
//!
//! 1. **The native tail is not split.** The startup-touched native pages
//!    are scattered across the whole tail, so each one faults its own
//!    fault-around window. Packing them to the front of the tail (hot/cold
//!    splitting at page granularity) collapses those faults into the one or
//!    two windows that cover the packed prefix.
//! 2. **The hot prefix is packed by accident, not by cost.** Alignment
//!    padding between hot entities and hot entities straddling a window
//!    boundary can push the hot span over one more fault-around window than
//!    its bytes need. Clustering co-accessed entities into window-sized
//!    chains and packing chains against alignment waste shaves that slack
//!    where it exists.
//!
//! The optimizer works by *candidate search under an exact cost model*: it
//! generates a fixed, deterministic list of candidate placements — the
//! first-touch order itself is always candidate 0 — scores each one with
//! [`predict_faults`] (a byte-exact replica of the image-layout arithmetic
//! and the simulator's window-counting rule), and keeps the argmin, ties
//! broken toward the lowest candidate index. Because first-touch is in the
//! candidate set, the chosen placement never predicts more faults than the
//! paper's ordering, and on workloads where neither the native split nor
//! the clustering finds slack the optimizer *degenerates to first-touch
//! order exactly* (see DESIGN.md §12).
//!
//! Candidate scoring fans out over `nimage_par::parallel_map` gated by
//! [`nimage_par::cutoff::OPTIMIZE_MIN_ENTITIES`]; every candidate is
//! generated and scored by pure deterministic code, so the result is
//! bit-identical across thread counts.

use nimage_compiler::CuId;
use nimage_heap::ObjId;
use nimage_par::{cutoff, parallel_map, workers_for};

use crate::analyses::ObjectSpans;

/// Geometry and paging-cost constants of the target image, mirrored from
/// `nimage_image::ImageOptions` and `nimage_vm::PagingConfig` (the order
/// crate deliberately depends on neither; the caller copies the numbers).
///
/// [`predict_faults`] replicates the layout arithmetic of
/// `BinaryImage::build` from these five values; `order/tests` cross-checks
/// the replica against the real image + simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostParams {
    /// Page size in bytes (`ImageOptions::page_size`).
    pub page_size: u64,
    /// Pages mapped around a major fault, power of two
    /// (`PagingConfig::fault_around_pages`).
    pub fault_around_pages: u64,
    /// CU placement alignment (`ImageOptions::cu_align`).
    pub cu_align: u64,
    /// Object placement alignment (`ImageOptions::obj_align`).
    pub obj_align: u64,
    /// Native tail size in bytes (`ImageOptions::native_tail`).
    pub native_tail: u64,
}

impl CostParams {
    /// Bytes covered by one fault-around window.
    fn window_bytes(&self) -> u64 {
        self.page_size * self.fault_around_pages
    }

    /// Pages in the native tail.
    fn tail_pages(&self) -> u64 {
        self.native_tail / self.page_size
    }
}

/// The `.text` half of the optimizer's input.
#[derive(Debug, Clone)]
pub struct CodeInput<'a> {
    /// All CUs in first-touch order: the `hot` profiled CUs first (in
    /// first-entry order), then the never-touched rest.
    pub first_touch: &'a [CuId],
    /// Length of the hot prefix of `first_touch`.
    pub hot: usize,
    /// CU sizes in bytes, indexed by `CuId::index()`.
    pub sizes: &'a [u64],
    /// Native-tail pages in first-touch order (the profiling run's
    /// `native_touch_pages`; may contain repeats or out-of-range pages,
    /// which are ignored).
    pub native_pages: &'a [u32],
}

/// The `.svm_heap` half of the optimizer's input.
#[derive(Debug, Clone)]
pub struct HeapInput<'a> {
    /// All snapshot objects in first-touch order: the `hot` matched
    /// objects first (in first-access order), then the unmatched rest.
    pub first_touch: &'a [ObjId],
    /// Length of the hot prefix of `first_touch`.
    pub hot: usize,
    /// Object sizes in bytes, indexed by `ObjId::index()`.
    pub sizes: &'a [u64],
    /// Measured object-relative touched-byte spans per object, indexed by
    /// `ObjId::index()` like `sizes`. An empty span list means the object
    /// is unmeasured and the predictor falls back to its full extent;
    /// pass `&[]` when no measurements exist at all (e.g. profiles from
    /// legacy CSVs).
    pub spans: &'a [ObjectSpans],
}

/// Predicted major faults of one placement under the cost model, split by
/// section like the simulator's `FaultCounts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PredictedFaults {
    /// Predicted `.text` major faults (CU windows + native-tail windows).
    pub text: u64,
    /// Predicted `.svm_heap` major faults.
    pub heap: u64,
}

impl PredictedFaults {
    /// Both sections combined.
    pub fn total(&self) -> u64 {
        self.text + self.heap
    }
}

/// The optimizer's output: a full placement plan plus its predicted cost
/// next to the first-touch reference cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderPlan {
    /// CU order (a permutation of the input's `first_touch`).
    pub cu_order: Vec<CuId>,
    /// Object order (a permutation), when a heap input was given.
    pub object_order: Option<Vec<ObjId>>,
    /// Native-tail page permutation: `native_order[i]` is the physical
    /// tail page of logical page `i` (the `set_native_page_order`
    /// contract).
    pub native_order: Vec<u32>,
    /// Predicted faults of plain first-touch order (candidate 0).
    pub first_touch_faults: PredictedFaults,
    /// Predicted faults of the chosen placement (never more than
    /// `first_touch_faults` in any section total).
    pub predicted_faults: PredictedFaults,
}

fn align_up(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

/// Hot logical native pages: first-touch order, deduplicated, out-of-range
/// entries dropped.
fn hot_native_pages(native_pages: &[u32], tail_pages: u64) -> Vec<u32> {
    let mut seen = vec![false; tail_pages as usize];
    let mut hot = vec![];
    for &p in native_pages {
        if u64::from(p) < tail_pages && !seen[p as usize] {
            seen[p as usize] = true;
            hot.push(p);
        }
    }
    hot
}

/// The identity native-tail permutation (candidate 0: no native split).
fn identity_native_order(tail_pages: u64) -> Vec<u32> {
    (0..tail_pages as u32).collect()
}

/// The hot/cold-split native-tail permutation: touched pages move to the
/// front of the tail in first-touch order, untouched pages follow in their
/// original order. Returns the position array `pos[logical] = physical`.
fn packed_native_order(native_pages: &[u32], tail_pages: u64) -> Vec<u32> {
    let mut pos = vec![u32::MAX; tail_pages as usize];
    let mut next = 0u32;
    for p in hot_native_pages(native_pages, tail_pages) {
        pos[p as usize] = next;
        next += 1;
    }
    for slot in pos.iter_mut() {
        if *slot == u32::MAX {
            *slot = next;
            next += 1;
        }
    }
    pos
}

/// One fully specified candidate placement.
#[derive(Debug, Clone)]
struct Candidate {
    cu_order: Vec<CuId>,
    native_order: Vec<u32>,
    object_order: Option<Vec<ObjId>>,
}

/// A page-interval set that counts distinct fault-around windows: the
/// simulator charges exactly one major fault per aligned window containing
/// at least one touched page, so predicted faults reduce to counting the
/// distinct values of `page / fault_around_pages` over all touched pages.
struct WindowSet {
    window_pages: u64,
    /// Sorted, disjoint touched-window intervals `[first, last]`.
    windows: Vec<(u64, u64)>,
}

impl WindowSet {
    fn new(window_pages: u64) -> WindowSet {
        WindowSet {
            window_pages,
            windows: vec![],
        }
    }

    /// Marks the byte range `[start, end)` as touched.
    fn touch_bytes(&mut self, start: u64, end: u64, page_size: u64) {
        if start >= end {
            return;
        }
        let first = start / page_size / self.window_pages;
        let last = (end - 1) / page_size / self.window_pages;
        self.windows.push((first, last));
    }

    /// Number of distinct touched windows, consumed.
    fn count(mut self) -> u64 {
        self.windows.sort_unstable();
        let mut n = 0u64;
        let mut covered_to: Option<u64> = None;
        for (first, last) in self.windows {
            let from = match covered_to {
                Some(c) if first <= c => c + 1,
                _ => first,
            };
            if from <= last {
                n += last - from + 1;
            }
            covered_to = Some(covered_to.map_or(last, |c| c.max(last)));
        }
        n
    }
}

/// Scores one candidate placement: a byte-exact replica of
/// `BinaryImage::build`'s cursor arithmetic plus the simulator's
/// window-counting rule. Hot CUs are costed under the *full-extent* touch
/// model (every hot CU touches all of its bytes; cold entities touch
/// none); hot heap objects use their measured touched-byte spans when the
/// profiling run recorded them (`HeapInput::spans`), falling back to full
/// extent per unmeasured object.
///
/// The full-extent model is an upper bound on the real run's touched byte
/// set — the VM touches inline nodes and object fields individually — but
/// it is the *same* upper bound for every candidate, and the native-tail
/// part is page-exact (startup touches whole pages), so the comparison is
/// meaningful and the native savings are exact. Measured heap spans
/// tighten that bound to the bytes startup actually read or wrote, which
/// lets the heap half stop charging for the cold interiors of large
/// arrays. See DESIGN.md §12 for when the model's remaining slack makes
/// the optimizer fall back to first-touch order.
fn predict(
    candidate: &Candidate,
    code: &CodeInput<'_>,
    heap: Option<&HeapInput<'_>>,
    params: &CostParams,
) -> PredictedFaults {
    let ps = params.page_size;
    let mut hot_cu = vec![false; code.sizes.len()];
    for &cu in &code.first_touch[..code.hot] {
        hot_cu[cu.index()] = true;
    }

    let mut text = WindowSet::new(params.fault_around_pages);
    let mut cursor = 0u64;
    for &cu in &candidate.cu_order {
        cursor = align_up(cursor, params.cu_align);
        let size = code.sizes[cu.index()];
        if hot_cu[cu.index()] {
            text.touch_bytes(cursor, cursor + size, ps);
        }
        cursor += size;
    }
    let native_start = align_up(cursor, ps);
    let tail_page0 = native_start / ps;
    for p in hot_native_pages(code.native_pages, params.tail_pages()) {
        let phys = u64::from(candidate.native_order[p as usize]);
        let page_off = (tail_page0 + phys) * ps;
        text.touch_bytes(page_off, page_off + ps, ps);
    }
    let text_end = native_start + params.native_tail;

    let mut heap_faults = 0u64;
    if let Some(h) = heap {
        let order = candidate
            .object_order
            .as_deref()
            .expect("heap input requires a candidate object order");
        let mut hot_obj = vec![false; h.sizes.len()];
        for &o in &h.first_touch[..h.hot] {
            hot_obj[o.index()] = true;
        }
        let mut heap_set = WindowSet::new(params.fault_around_pages);
        let heap_start = align_up(text_end, ps);
        let mut cursor = heap_start;
        for &obj in order {
            cursor = align_up(cursor, params.obj_align);
            let size = h.sizes[obj.index()];
            if hot_obj[obj.index()] {
                let spans = h.spans.get(obj.index()).map_or(&[][..], Vec::as_slice);
                if spans.is_empty() {
                    heap_set.touch_bytes(cursor, cursor + size, ps);
                } else {
                    // Spans are object-relative; clamp to the object's
                    // extent in *this* build (the measurement came from
                    // the instrumented build, whose object may be larger).
                    for &(s, e) in spans {
                        let e = e.min(size);
                        if s < e {
                            heap_set.touch_bytes(cursor + s, cursor + e, ps);
                        }
                    }
                }
            }
            cursor += size;
        }
        heap_faults = heap_set.count();
    }

    PredictedFaults {
        text: text.count(),
        heap: heap_faults,
    }
}

/// Weighted co-access graph over the hot first-touch sequence: two hot
/// entities are *startup-window neighbors* when their first accesses fall
/// within one fault-around window's worth of bytes of each other (measured
/// along the first-touch layout), and the edge weight grows the closer
/// they are. Built per-entity and merged in index order, so the edge list
/// is independent of thread count.
fn co_access_edges(
    hot_sizes: &[u64],
    window_bytes: u64,
    threads: usize,
) -> Vec<(u64, usize, usize)> {
    let n = hot_sizes.len();
    // Prefix byte positions along the first-touch sequence.
    let mut pos = Vec::with_capacity(n + 1);
    let mut acc = 0u64;
    pos.push(0u64);
    for &s in hot_sizes {
        acc += s;
        pos.push(acc);
    }
    let workers = workers_for(threads, n, cutoff::OPTIMIZE_MIN_ENTITIES);
    let per_entity = parallel_map(workers, n, |i| {
        let mut edges = vec![];
        for j in i + 1..n {
            let dist = pos[j] - pos[i + 1];
            if dist >= window_bytes {
                break;
            }
            // Closer first accesses weigh more; +1 keeps every
            // window-neighbor edge above zero.
            edges.push((window_bytes - dist, i, j));
        }
        edges
    });
    per_entity.into_iter().flatten().collect()
}

/// Ext-TSP-style chain clustering (greedy Pettis–Hansen merge): entities
/// start as singleton chains; edges are taken by descending weight (ties:
/// lower endpoint indices first) and merge two chains end-to-end when the
/// edge connects the tail of one to the head of the other and the merged
/// chain still fits one fault-around window. Chains are then emitted by
/// the earliest first-touch rank of their members, so clustering never
/// moves an entity far from its startup position.
fn cluster_hot(hot_sizes: &[u64], window_bytes: u64, threads: usize) -> Vec<usize> {
    let n = hot_sizes.len();
    if n <= 2 {
        return (0..n).collect();
    }
    let mut edges = co_access_edges(hot_sizes, window_bytes, threads);
    edges.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    // Chain bookkeeping: each entity points at its chain id; chains keep
    // member lists, byte sizes, head and tail.
    let mut chain_of: Vec<usize> = (0..n).collect();
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut bytes: Vec<u64> = hot_sizes.to_vec();
    for (_, a, b) in edges {
        let (ca, cb) = (chain_of[a], chain_of[b]);
        if ca == cb || bytes[ca] + bytes[cb] > window_bytes {
            continue;
        }
        // Merge only tail(ca) → head(cb): preserves intra-chain first-touch
        // direction, which keeps the emitted order close to startup order.
        if *members[ca].last().unwrap() != a || *members[cb].first().unwrap() != b {
            continue;
        }
        let moved = std::mem::take(&mut members[cb]);
        for &m in &moved {
            chain_of[m] = ca;
        }
        members[ca].extend(moved);
        bytes[ca] += bytes[cb];
        bytes[cb] = 0;
    }

    let mut chains: Vec<Vec<usize>> = members.into_iter().filter(|m| !m.is_empty()).collect();
    // Emit by earliest first-touch rank of any member (head is not
    // necessarily the minimum when merges chained).
    chains.sort_by_key(|m| *m.iter().min().unwrap());
    chains.into_iter().flatten().collect()
}

/// Page-boundary-aware packing: walks the hot prefix in order and, when
/// the next hot entity would straddle a page boundary, moves the best-fit
/// cold entity (largest that fits the gap to the boundary, ties: first in
/// cold order) in front of it as a filler. Cold entities are untouched, so
/// a filler costs nothing where the page is already hot — but it does push
/// later hot bytes back, which is why the result is only *kept* when the
/// predictor scores it no worse than the unpacked candidate.
fn pack_page_boundaries<T: Copy>(
    hot: &[T],
    cold: &[T],
    size_of: impl Fn(T) -> u64,
    align: u64,
    page_size: u64,
) -> Vec<T> {
    let mut used = vec![false; cold.len()];
    let mut out = Vec::with_capacity(hot.len() + cold.len());
    let mut cursor = 0u64;
    for &h in hot {
        let mut at = align_up(cursor, align);
        let size = size_of(h);
        let gap = align_up(at, page_size) - at;
        if gap > 0 && size > gap && !at.is_multiple_of(page_size) {
            // Find the largest unused cold entity that fits the gap.
            let mut best: Option<(u64, usize)> = None;
            for (i, &c) in cold.iter().enumerate() {
                if used[i] {
                    continue;
                }
                let cs = size_of(c);
                if cs <= gap && best.is_none_or(|(bs, _)| cs > bs) {
                    best = Some((cs, i));
                }
            }
            if let Some((_, i)) = best {
                used[i] = true;
                out.push(cold[i]);
                cursor = at + size_of(cold[i]);
                at = align_up(cursor, align);
            }
        }
        out.push(h);
        cursor = at + size;
    }
    for (i, &c) in cold.iter().enumerate() {
        if !used[i] {
            out.push(c);
        }
    }
    out
}

/// Builds the candidate CU orders for the code section. Candidate 0 is
/// always plain first-touch with the identity native permutation.
fn code_candidates(code: &CodeInput<'_>, params: &CostParams, threads: usize) -> Vec<Candidate> {
    let tail = params.tail_pages();
    let identity = identity_native_order(tail);
    let packed_native = packed_native_order(code.native_pages, tail);
    let hot = &code.first_touch[..code.hot];
    let cold = &code.first_touch[code.hot..];
    let size_of = |cu: CuId| code.sizes[cu.index()];

    let mut candidates = vec![
        // 0: the paper's ordering, untouched.
        Candidate {
            cu_order: code.first_touch.to_vec(),
            native_order: identity,
            object_order: None,
        },
        // 1: first-touch + native-tail hot/cold split.
        Candidate {
            cu_order: code.first_touch.to_vec(),
            native_order: packed_native.clone(),
            object_order: None,
        },
    ];

    // 2: window-clustered hot prefix + native split.
    let hot_sizes: Vec<u64> = hot.iter().map(|&cu| size_of(cu)).collect();
    let perm = cluster_hot(&hot_sizes, params.window_bytes(), threads);
    let clustered: Vec<CuId> = perm.iter().map(|&i| hot[i]).collect();
    let clustered_order: Vec<CuId> = clustered.iter().chain(cold.iter()).copied().collect();
    candidates.push(Candidate {
        cu_order: clustered_order,
        native_order: packed_native.clone(),
        object_order: None,
    });

    // 3: clustered + page-boundary packing with cold fillers.
    let packed = pack_page_boundaries(&clustered, cold, size_of, params.cu_align, params.page_size);
    candidates.push(Candidate {
        cu_order: packed,
        native_order: packed_native,
        object_order: None,
    });

    candidates
}

/// Builds the candidate object orders for the heap section (no native
/// component). Candidate 0 is plain first-touch.
fn heap_candidates(heap: &HeapInput<'_>, params: &CostParams, threads: usize) -> Vec<Vec<ObjId>> {
    let hot = &heap.first_touch[..heap.hot];
    let cold = &heap.first_touch[heap.hot..];
    let size_of = |o: ObjId| heap.sizes[o.index()];

    let hot_sizes: Vec<u64> = hot.iter().map(|&o| size_of(o)).collect();
    let perm = cluster_hot(&hot_sizes, params.window_bytes(), threads);
    let clustered: Vec<ObjId> = perm.iter().map(|&i| hot[i]).collect();
    let clustered_order: Vec<ObjId> = clustered.iter().chain(cold.iter()).copied().collect();
    let packed = pack_page_boundaries(
        &clustered,
        cold,
        size_of,
        params.obj_align,
        params.page_size,
    );

    vec![heap.first_touch.to_vec(), clustered_order, packed]
}

/// Optimizes the placement of CUs (and objects, when `heap` is given)
/// against the fault-cost model: generates the deterministic candidate
/// set, scores every candidate with [`predict_faults`]'s model, and keeps
/// the argmin — ties broken toward the lowest candidate index, so the plan
/// degenerates to plain first-touch order (plus, always, the native-tail
/// hot/cold split when it helps) whenever clustering finds no slack.
///
/// The output is bit-deterministic across `threads` values: candidate
/// generation is pure, and scoring fans out via `parallel_map`, whose
/// results come back in candidate-index order.
pub fn optimize_layout(
    code: &CodeInput<'_>,
    heap: Option<&HeapInput<'_>>,
    params: &CostParams,
    threads: usize,
) -> OrderPlan {
    assert!(
        params.fault_around_pages.is_power_of_two(),
        "fault_around_pages must be a power of two"
    );
    let code_cands = code_candidates(code, params, threads);
    let heap_cands = heap.map(|h| heap_candidates(h, params, threads));

    // Cross product of code × heap candidates (heap absent: code only).
    let mut cands: Vec<Candidate> = vec![];
    for c in &code_cands {
        match &heap_cands {
            None => cands.push(c.clone()),
            Some(hs) => {
                for h in hs {
                    let mut cc = c.clone();
                    cc.object_order = Some(h.clone());
                    cands.push(cc);
                }
            }
        }
    }

    let work = code.first_touch.len() + heap.map_or(0, |h| h.first_touch.len());
    let workers = workers_for(threads, work, cutoff::OPTIMIZE_MIN_ENTITIES);
    let scores = parallel_map(workers, cands.len(), |i| {
        predict(&cands[i], code, heap, params)
    });

    let first_touch_faults = scores[0];
    let best = scores
        .iter()
        .enumerate()
        .min_by_key(|&(i, s)| (s.total(), i))
        .map(|(i, _)| i)
        .expect("candidate set is never empty");
    let chosen = cands.swap_remove(best);

    OrderPlan {
        cu_order: chosen.cu_order,
        object_order: chosen.object_order,
        native_order: chosen.native_order,
        first_touch_faults,
        predicted_faults: scores[best],
    }
}

/// Predicts the major-fault counts of one placement under the cost model —
/// the same scoring [`optimize_layout`] uses for its candidates, exposed
/// for reporting (see `quality::predicted_faults`): the caller passes any
/// CU/object orders (e.g. a strategy's first-touch orders) and gets the
/// per-section predicted fault counts of that placement.
pub fn predict_faults(
    code: &CodeInput<'_>,
    heap: Option<&HeapInput<'_>>,
    cu_order: &[CuId],
    object_order: Option<&[ObjId]>,
    native_order: Option<&[u32]>,
    params: &CostParams,
) -> PredictedFaults {
    let candidate = Candidate {
        cu_order: cu_order.to_vec(),
        native_order: native_order.map_or_else(
            || identity_native_order(params.tail_pages()),
            <[u32]>::to_vec,
        ),
        object_order: object_order.map(<[ObjId]>::to_vec),
    };
    predict(&candidate, code, heap, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CostParams {
        CostParams {
            page_size: 4096,
            fault_around_pages: 16,
            cu_align: 16,
            obj_align: 8,
            native_tail: 768 * 1024,
        }
    }

    fn cus(n: u32) -> Vec<CuId> {
        (0..n).map(CuId).collect()
    }

    #[test]
    fn window_set_counts_distinct_windows() {
        let mut w = WindowSet::new(16);
        w.touch_bytes(0, 4096, 4096); // window 0
        w.touch_bytes(4096, 8192, 4096); // window 0 again
        w.touch_bytes(16 * 4096, 16 * 4096 + 1, 4096); // window 1
        w.touch_bytes(40 * 4096, 80 * 4096, 4096); // windows 2..=4
        assert_eq!(w.count(), 5);
    }

    #[test]
    fn native_split_packs_hot_pages_to_front() {
        let order = packed_native_order(&[5, 2, 7, 2, 900], 192);
        assert_eq!(order[5], 0);
        assert_eq!(order[2], 1);
        assert_eq!(order[7], 2);
        // Untouched pages keep their relative order after the hot ones.
        assert_eq!(order[0], 3);
        assert_eq!(order[1], 4);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..192).collect::<Vec<u32>>());
    }

    #[test]
    fn optimizer_beats_first_touch_via_native_split() {
        let order = cus(4);
        let sizes = vec![100, 200, 300, 400];
        let code = CodeInput {
            first_touch: &order,
            hot: 2,
            sizes: &sizes,
            // Scattered startup pages: 4 separate windows under identity.
            native_pages: &[0, 40, 90, 150],
        };
        let plan = optimize_layout(&code, None, &params(), 1);
        assert!(plan.predicted_faults.text < plan.first_touch_faults.text);
        // The tail starts on page 1 (CUs fill < a page), so the packed hot
        // tail pages land in the same fault-around window as the hot CUs:
        // one window total. Under the identity permutation, tail page 0
        // shares that window, and pages 40/90/150 each fault their own.
        assert_eq!(plan.predicted_faults.text, 1);
        assert_eq!(plan.first_touch_faults.text, 4);
    }

    #[test]
    fn optimizer_output_is_permutation_and_thread_invariant() {
        let order = cus(9);
        let sizes: Vec<u64> = (0..9).map(|i| 1000 + i * 777).collect();
        let objs: Vec<ObjId> = (0..7).map(ObjId).collect();
        let osizes: Vec<u64> = (0..7).map(|i| 24 + i * 321).collect();
        let code = CodeInput {
            first_touch: &order,
            hot: 5,
            sizes: &sizes,
            native_pages: &[3, 99],
        };
        let heap = HeapInput {
            first_touch: &objs,
            hot: 4,
            sizes: &osizes,
            spans: &[],
        };
        let base = optimize_layout(&code, Some(&heap), &params(), 1);
        let mut sorted = base.cu_order.clone();
        sorted.sort();
        assert_eq!(sorted, cus(9));
        let mut osorted = base.object_order.clone().unwrap();
        osorted.sort();
        assert_eq!(osorted, objs);
        for threads in [2, 4, 8] {
            assert_eq!(
                optimize_layout(&code, Some(&heap), &params(), threads),
                base
            );
        }
    }

    #[test]
    fn measured_spans_charge_fewer_heap_faults_than_full_extent() {
        // One huge hot object spanning many fault-around windows, of which
        // startup touches only the first and last few bytes. Full extent
        // charges every window it covers; the measured spans charge two.
        let objs: Vec<ObjId> = (0..2).map(ObjId).collect();
        let p = params();
        let window = p.page_size * p.fault_around_pages;
        let osizes = vec![10 * window, 64];
        let code = CodeInput {
            first_touch: &[],
            hot: 0,
            sizes: &[],
            native_pages: &[],
        };
        let full = HeapInput {
            first_touch: &objs,
            hot: 1,
            sizes: &osizes,
            spans: &[],
        };
        let spans = vec![vec![(0, 8), (10 * window - 8, 10 * window)], vec![]];
        let measured = HeapInput {
            first_touch: &objs,
            hot: 1,
            sizes: &osizes,
            spans: &spans,
        };
        let order = objs.clone();
        let full_cost = predict_faults(&code, Some(&full), &[], Some(&order), None, &p);
        let span_cost = predict_faults(&code, Some(&measured), &[], Some(&order), None, &p);
        assert_eq!(full_cost.heap, 10);
        assert_eq!(span_cost.heap, 2);
        // Spans past the object's extent in this build are clamped away.
        let stale = vec![vec![(20 * window, 21 * window)], vec![]];
        let clamped = HeapInput {
            first_touch: &objs,
            hot: 1,
            sizes: &osizes,
            spans: &stale,
        };
        let c = predict_faults(&code, Some(&clamped), &[], Some(&order), None, &p);
        assert_eq!(c.heap, 0);
    }

    #[test]
    fn degenerates_to_first_touch_when_no_slack() {
        // One hot CU, no native touches: every candidate predicts the same
        // cost, so the tie-break keeps candidate 0 (plain first-touch,
        // identity native order).
        let order = cus(3);
        let sizes = vec![64, 64, 64];
        let code = CodeInput {
            first_touch: &order,
            hot: 1,
            sizes: &sizes,
            native_pages: &[],
        };
        let plan = optimize_layout(&code, None, &params(), 1);
        assert_eq!(plan.cu_order, order);
        assert_eq!(plan.native_order, identity_native_order(192));
        assert_eq!(plan.predicted_faults, plan.first_touch_faults);
    }
}
