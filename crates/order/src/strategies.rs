//! The three heap-ordering identity strategies of Sec. 5.

use std::collections::HashMap;

use nimage_heap::{HObjectKind, HeapSnapshot, InclusionReason, ObjId, ParentLink};
use nimage_ir::Program;

use crate::entity::Entity;
use crate::murmur3;

/// Which 64-bit object-identity scheme to use (Sec. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeapStrategy {
    /// Algorithm 1: per-type incremental counters in heap-traversal
    /// encounter order; the type id occupies the most-significant 32 bits.
    IncrementalId,
    /// Algorithm 2: MurmurHash3 over a depth-bounded structural encoding of
    /// the object (type names, field values, array contents).
    StructuralHash {
        /// The `MAX_DEPTH` recursion bound (the paper evaluates with 2).
        max_depth: u32,
    },
    /// Algorithm 3: MurmurHash3 over the first root-to-object path and the
    /// root's heap-inclusion reason.
    HeapPath,
    /// [`HeapStrategy::HeapPath`] with per-type collision salting: objects
    /// sharing a `(type, path)` hash — e.g. same-type siblings re-rooted
    /// under one `MethodConstant` reason by PEA folding, the source of the
    /// `profile::id-collision` multiplicities flagged on Bounce — get an
    /// occurrence counter (encounter order, per colliding group) mixed
    /// into the hash. Unique paths keep the plain heap-path identity, and
    /// like Algorithm 1's per-type counters, an extra or missing object
    /// only perturbs later members of its own colliding group.
    HeapPathSalted,
}

impl HeapStrategy {
    /// The paper's evaluated configuration of the structural hash
    /// (`MAX_DEPTH = 2`, Sec. 7.1).
    pub fn structural_default() -> Self {
        HeapStrategy::StructuralHash { max_depth: 2 }
    }

    /// Short display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            HeapStrategy::IncrementalId => "incremental id",
            HeapStrategy::StructuralHash { .. } => "structural hash",
            HeapStrategy::HeapPath => "heap path",
            HeapStrategy::HeapPathSalted => "heap path salted",
        }
    }
}

/// Computes the 64-bit identity of every snapshot object under `strategy`,
/// in snapshot (encounter) order.
pub fn assign_ids(
    program: &Program,
    snapshot: &HeapSnapshot,
    strategy: HeapStrategy,
) -> HashMap<ObjId, u64> {
    match strategy {
        HeapStrategy::IncrementalId => incremental_ids(program, snapshot),
        HeapStrategy::StructuralHash { max_depth } => snapshot
            .entries()
            .iter()
            .map(|e| {
                (
                    e.obj,
                    structural_hash(&Entity::of_object(program, snapshot, e.obj), max_depth),
                )
            })
            .collect(),
        HeapStrategy::HeapPath => snapshot
            .entries()
            .iter()
            .map(|e| (e.obj, heap_path_hash(program, snapshot, e.obj)))
            .collect(),
        HeapStrategy::HeapPathSalted => salted_heap_path_ids(program, snapshot),
    }
}

/// The salted variant of Algorithm 3: disambiguates heap-path collisions
/// with a per-`(type, path)` occurrence counter in snapshot encounter
/// order. The first object of each group keeps the plain heap-path hash
/// (unique paths are unaffected); later members mix the type name and
/// their occurrence index into the hash, so the k-th member of a group
/// in the profiling build matches the k-th member in the optimized build.
fn salted_heap_path_ids(program: &Program, snapshot: &HeapSnapshot) -> HashMap<ObjId, u64> {
    let mut occurrence: HashMap<(u64, u64), u32> = HashMap::new();
    let mut ids = HashMap::new();
    for e in snapshot.entries() {
        let base = heap_path_hash(program, snapshot, e.obj);
        let type_name = snapshot.heap().get(e.obj).type_name(program);
        let type_id = murmur3::hash64(type_name.as_bytes());
        let n = occurrence.entry((type_id, base)).or_insert(0);
        *n += 1;
        let id = if *n == 1 {
            base
        } else {
            let mut bytes = Vec::with_capacity(12 + type_name.len());
            bytes.extend_from_slice(&base.to_le_bytes());
            bytes.extend_from_slice(type_name.as_bytes());
            bytes.extend_from_slice(&n.to_le_bytes());
            murmur3::hash64(&bytes)
        };
        ids.insert(e.obj, id);
    }
    ids
}

/// Algorithm 1: incremental IDs. "The most-significant 32 bits store a
/// unique ID associated with the type while the least-significant 32 bits
/// store an incremental ID"; types are identified by fully qualified name
/// so the type half is stable across builds, and objects are numbered
/// within their type so one extra object only shifts its own type's ids.
fn incremental_ids(program: &Program, snapshot: &HeapSnapshot) -> HashMap<ObjId, u64> {
    let mut counters: HashMap<u64, u32> = HashMap::new();
    let mut ids = HashMap::new();
    for e in snapshot.entries() {
        let type_name = snapshot.heap().get(e.obj).type_name(program);
        let type_id = murmur3::hash64(type_name.as_bytes()) & 0xffff_ffff;
        let counter = counters.entry(type_id).or_insert(0);
        *counter += 1;
        ids.insert(e.obj, (type_id << 32) | u64::from(*counter));
    }
    ids
}

/// Ablation variant of Algorithm 1: one **global** counter instead of
/// per-type counters. The paper segregates counters by type precisely
/// because "in this way the inaccuracies introduced by an object affect
/// only the ordering of the objects of the same type" — with a global
/// counter, any extra/missing object shifts *every* later identity.
pub fn assign_global_incremental_ids(
    _program: &Program,
    snapshot: &HeapSnapshot,
) -> HashMap<ObjId, u64> {
    snapshot
        .entries()
        .iter()
        .enumerate()
        .map(|(i, e)| (e.obj, i as u64 + 1))
        .collect()
}

/// Algorithm 2: the structural hash.
pub(crate) fn structural_hash(entity: &Entity<'_>, max_depth: u32) -> u64 {
    let mut bytes = Vec::with_capacity(64);
    encode_to_bytes(entity, 0, max_depth, &mut bytes);
    murmur3::hash64(&bytes)
}

/// Algorithm 2's `encodeToBytes`: encodes the value wrapped by `entity`
/// into `out`, recursing up to `max_depth` through references.
fn encode_to_bytes(entity: &Entity<'_>, depth: u32, max_depth: u32, out: &mut Vec<u8>) {
    if entity.is_null() {
        out.push(0);
        return;
    }
    out.extend_from_slice(entity.type_name().as_bytes());
    let should_recurse = depth < max_depth;
    if entity.is_primitive() || entity.is_string() {
        entity.append_scalar_bytes(out);
    } else if entity.is_object_instance() {
        for (static_type, field) in entity.fields() {
            if should_recurse || field.is_primitive() || field.is_string() {
                out.extend_from_slice(static_type.as_bytes());
                encode_to_bytes(&field, depth + 1, max_depth, out);
            }
        }
    } else if entity.is_array() {
        let (elem_type, elems) = entity.array_parts().expect("checked is_array");
        out.extend_from_slice(elem_type.as_bytes());
        out.extend_from_slice(&(elems.len() as u64).to_le_bytes());
        if should_recurse || entity.element_type_is_scalar() {
            for (k, elem) in elems.iter().enumerate() {
                out.extend_from_slice(&(k as u64).to_le_bytes());
                encode_to_bytes(elem, depth + 1, max_depth, out);
            }
        }
    } else {
        // Boxed constants and resource blobs hash by payload.
        entity.append_scalar_bytes(out);
    }
}

/// Algorithm 3: the heap-path hash — walks the first discovery path from
/// the object to its root and hashes type names, field descriptors / array
/// indices, and the root's heap-inclusion reason. Interned-string roots
/// hash their content instead (the path would be identical for all of
/// them).
pub(crate) fn heap_path_hash(program: &Program, snapshot: &HeapSnapshot, obj: ObjId) -> u64 {
    let Some(entry) = snapshot.entry(obj) else {
        return 0;
    };
    let mut bytes: Vec<u8> = vec![];
    let is_interned_root = matches!(entry.root, Some(InclusionReason::InternedString));
    if is_interned_root {
        if let HObjectKind::Str(s) = &snapshot.heap().get(obj).kind {
            bytes.extend_from_slice(s.as_bytes());
        }
    } else {
        let mut current = entry;
        loop {
            bytes.extend_from_slice(
                snapshot
                    .heap()
                    .get(current.obj)
                    .type_name(program)
                    .as_bytes(),
            );
            match (&current.root, current.parent) {
                (Some(reason), _) => {
                    bytes.extend_from_slice(reason.label().as_bytes());
                    break;
                }
                (None, Some((parent, link))) => {
                    match link {
                        ParentLink::Index(i) => bytes.extend_from_slice(&i.to_le_bytes()),
                        ParentLink::Field(fid) => {
                            // Field descriptor: signature plus declared type.
                            bytes.extend_from_slice(program.field_signature(fid).as_bytes());
                            bytes.extend_from_slice(
                                program.type_name(&program.field(fid).ty).as_bytes(),
                            );
                        }
                    }
                    current = snapshot.entry(parent).expect("parents are in snapshot");
                }
                (None, None) => break, // defensive: orphan entry
            }
        }
    }
    murmur3::hash64(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimage_analysis::{analyze, AnalysisConfig};
    use nimage_compiler::{compile, InlineConfig, InstrumentConfig};
    use nimage_heap::{snapshot, HeapBuildConfig};
    use nimage_ir::{Program, ProgramBuilder, TypeRef};

    /// clinit builds: HEAD -> Node(val=1) -> Node(val=2); a string; an array.
    fn sample() -> (Program, HeapSnapshot) {
        let mut pb = ProgramBuilder::new();
        let node = pb.add_class("s.Node", None);
        let f_next = pb.add_instance_field(node, "next", TypeRef::Object(node));
        let f_val = pb.add_instance_field(node, "val", TypeRef::Int);
        let holder = pb.add_class("s.Holder", None);
        let f_head = pb.add_static_field(holder, "HEAD", TypeRef::Object(node));
        let f_arr = pb.add_static_field(holder, "ARR", TypeRef::array_of(TypeRef::Int));
        let cl = pb.declare_clinit(holder);
        let mut f = pb.body(cl);
        let n1 = f.new_object(node);
        let n2 = f.new_object(node);
        let v1 = f.iconst(1);
        let v2 = f.iconst(2);
        f.put_field(n1, f_val, v1);
        f.put_field(n2, f_val, v2);
        f.put_field(n1, f_next, n2);
        f.put_static(f_head, n1);
        let len = f.iconst(3);
        let arr = f.new_array(TypeRef::Int, len);
        f.put_static(f_arr, arr);
        f.ret(None);
        pb.finish_body(cl, f);
        let mainc = pb.add_class("s.Main", None);
        let main = pb.declare_static(mainc, "main", &[], Some(TypeRef::Int));
        let mut f = pb.body(main);
        let _s = f.sconst("greeting");
        let h = f.get_static(f_head);
        let a = f.get_static(f_arr);
        let _ = a;
        let v = f.get_field(h, f_val);
        f.ret(Some(v));
        pb.finish_body(main, f);
        pb.set_entry(main);
        let p = pb.build().unwrap();
        let reach = analyze(&p, &AnalysisConfig::default());
        let cp = compile(
            &p,
            reach,
            &InlineConfig::default(),
            InstrumentConfig::NONE,
            None,
        );
        let snap = snapshot(&p, &cp, &HeapBuildConfig::default()).unwrap();
        (p, snap)
    }

    #[test]
    fn global_incremental_ids_are_sequential() {
        let (p, snap) = sample();
        let ids = assign_global_incremental_ids(&p, &snap);
        let mut values: Vec<u64> = snap.entries().iter().map(|e| ids[&e.obj]).collect();
        assert_eq!(
            values,
            (1..=snap.entries().len() as u64).collect::<Vec<_>>()
        );
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), snap.entries().len());
    }

    #[test]
    fn incremental_ids_are_per_type() {
        let (p, snap) = sample();
        let ids = assign_ids(&p, &snap, HeapStrategy::IncrementalId);
        // Two s.Node objects share a type id and have counters 1, 2.
        let node_ids: Vec<u64> = snap
            .entries()
            .iter()
            .filter(|e| snap.heap().get(e.obj).type_name(&p) == "s.Node")
            .map(|e| ids[&e.obj])
            .collect();
        assert_eq!(node_ids.len(), 2);
        assert_eq!(node_ids[0] >> 32, node_ids[1] >> 32, "same type half");
        assert_eq!(node_ids[0] & 0xffff_ffff, 1);
        assert_eq!(node_ids[1] & 0xffff_ffff, 2);
    }

    #[test]
    fn structural_hash_distinguishes_field_values() {
        let (p, snap) = sample();
        let ids = assign_ids(&p, &snap, HeapStrategy::structural_default());
        let node_ids: Vec<u64> = snap
            .entries()
            .iter()
            .filter(|e| snap.heap().get(e.obj).type_name(&p) == "s.Node")
            .map(|e| ids[&e.obj])
            .collect();
        // val=1 vs val=2 → different hashes.
        assert_ne!(node_ids[0], node_ids[1]);
    }

    #[test]
    fn structural_hash_depth_zero_merges_structurally_similar() {
        let (p, snap) = sample();
        let d0 = assign_ids(&p, &snap, HeapStrategy::StructuralHash { max_depth: 0 });
        let d2 = assign_ids(&p, &snap, HeapStrategy::structural_default());
        // Depth 0 still sees primitive fields (line 13 checks the dynamic
        // type), so Node hashes still differ; but the deeper hash must
        // incorporate more data — check they are not identical maps.
        assert_ne!(d0, d2);
    }

    #[test]
    fn heap_path_distinguishes_chain_positions() {
        let (p, snap) = sample();
        let ids = assign_ids(&p, &snap, HeapStrategy::HeapPath);
        let node_ids: Vec<u64> = snap
            .entries()
            .iter()
            .filter(|e| snap.heap().get(e.obj).type_name(&p) == "s.Node")
            .map(|e| ids[&e.obj])
            .collect();
        // Root node path: [Node, StaticField]; child: [Node, next, Node,
        // StaticField] → distinct.
        assert_ne!(node_ids[0], node_ids[1]);
    }

    #[test]
    fn interned_string_roots_hash_their_content() {
        let (p, snap) = sample();
        let ids = assign_ids(&p, &snap, HeapStrategy::HeapPath);
        let s_entry = snap
            .entries()
            .iter()
            .find(|e| matches!(e.root, Some(InclusionReason::InternedString)))
            .expect("interned string root");
        assert_eq!(ids[&s_entry.obj], murmur3::hash64(b"greeting"));
    }

    /// The whole point of hashing strategies: identities survive a rebuild
    /// with different non-determinism, where incremental ids may not.
    #[test]
    fn hash_strategies_are_stable_across_identical_rebuilds() {
        let (p, snap_a) = sample();
        let (_, snap_b) = sample();
        for strat in [
            HeapStrategy::IncrementalId,
            HeapStrategy::structural_default(),
            HeapStrategy::HeapPath,
            HeapStrategy::HeapPathSalted,
        ] {
            let a = assign_ids(&p, &snap_a, strat);
            let b = assign_ids(&p, &snap_b, strat);
            // Same build config → identical snapshots → identical ids.
            assert_eq!(a, b, "{}", strat.name());
        }
    }

    #[test]
    fn ids_cover_every_snapshot_entry() {
        let (p, snap) = sample();
        for strat in [
            HeapStrategy::IncrementalId,
            HeapStrategy::structural_default(),
            HeapStrategy::HeapPath,
            HeapStrategy::HeapPathSalted,
        ] {
            let ids = assign_ids(&p, &snap, strat);
            assert_eq!(ids.len(), snap.entries().len(), "{}", strat.name());
        }
    }

    /// Profiling-shaped and optimized-shaped Bounce snapshots: same
    /// compiled program, different clinit seeds, PEA folding only in the
    /// optimized build — the divergence the pipeline actually faces.
    fn bounce_snapshots() -> (Program, HeapSnapshot, HeapSnapshot) {
        let p = nimage_workloads::Awfy::Bounce.program();
        let reach = analyze(&p, &AnalysisConfig::default());
        let cp = compile(
            &p,
            reach,
            &InlineConfig::default(),
            InstrumentConfig::NONE,
            None,
        );
        let snap_prof = snapshot(
            &p,
            &cp,
            &HeapBuildConfig {
                clinit_seed: 1,
                ..HeapBuildConfig::default()
            },
        )
        .unwrap();
        let snap_opt = snapshot(
            &p,
            &cp,
            &HeapBuildConfig {
                clinit_seed: 2,
                pea_fold: true,
                pea_seed: 3,
                ..HeapBuildConfig::default()
            },
        )
        .unwrap();
        (p, snap_prof, snap_opt)
    }

    fn id_multiset(ids: &HashMap<ObjId, u64>) -> HashMap<u64, usize> {
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for v in ids.values() {
            *counts.entry(*v).or_default() += 1;
        }
        counts
    }

    /// The `profile::id-collision` finding on Bounce: heap-path hashes
    /// collide (objects whose first discovery path is structurally
    /// identical — e.g. data-section constants sharing a root reason, or
    /// PEA-rerooted same-type siblings). Salting must fully disambiguate
    /// within a snapshot.
    #[test]
    fn salting_removes_heap_path_collisions_on_bounce() {
        let (p, _, snap_opt) = bounce_snapshots();
        let plain = id_multiset(&assign_ids(&p, &snap_opt, HeapStrategy::HeapPath));
        let salted = id_multiset(&assign_ids(&p, &snap_opt, HeapStrategy::HeapPathSalted));
        let plain_max = plain.values().copied().max().unwrap_or(0);
        let salted_max = salted.values().copied().max().unwrap_or(0);
        assert!(
            plain_max > 1,
            "expected heap-path collisions on Bounce, max multiplicity was {plain_max}"
        );
        assert_eq!(
            salted_max, 1,
            "salted ids must be collision-free within a snapshot"
        );
    }

    /// An object is *matchable* only if its id is unambiguous in both
    /// builds: unique within its own snapshot and unique within the other
    /// build's snapshot. Colliding groups are unusable for cross-build
    /// ordering; salting recovers them (the k-th member of a group matches
    /// the k-th member on the other side), so the matched-object ratio
    /// must strictly improve.
    #[test]
    fn salting_improves_matched_object_ratio_on_bounce() {
        let (p, snap_prof, snap_opt) = bounce_snapshots();
        let matched_ratio = |strategy: HeapStrategy| -> f64 {
            let ids_prof: Vec<u64> = assign_ids(&p, &snap_prof, strategy).into_values().collect();
            let ids_opt: Vec<u64> = assign_ids(&p, &snap_opt, strategy).into_values().collect();
            crate::quality::matched_object_ratio(&ids_prof, &ids_opt)
        };
        let plain = matched_ratio(HeapStrategy::HeapPath);
        let salted = matched_ratio(HeapStrategy::HeapPathSalted);
        assert!(
            salted > plain,
            "salted matched ratio ({salted:.3}) must beat plain heap path ({plain:.3})"
        );
    }
}
