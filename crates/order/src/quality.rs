//! Layout-quality metrics: how well an object order packs an access set.
//!
//! These are the diagnostics behind the paper's Fig. 6 intuition, exposed
//! as a library so tools (and the `nimage` CLI) can quantify a layout
//! without running the paging simulator: a layout is good when the
//! accessed objects sit in a **dense prefix** and the **scatter** — the
//! number of contiguous accessed runs — is small.

use std::collections::{HashMap, HashSet};

use nimage_heap::{HeapSnapshot, ObjId};

use crate::optimize::{self, CodeInput, CostParams, HeapInput, PredictedFaults};

/// Predicted per-section major-fault counts of one strategy's placement
/// under the demand-paging cost model — the quality metric the layout
/// optimizer minimizes, exposed so reports can put a predicted fault
/// number next to every strategy (including plain first-touch, whose
/// orders are just another placement to score).
///
/// `cu_order` / `object_order` / `native_order` describe the placement
/// (`None` object order scores the code section only; `None` native order
/// is the identity tail). The inputs carry the hot/cold split and entity
/// sizes; `params` the image geometry and fault-around window.
pub fn predicted_faults(
    code: &CodeInput<'_>,
    heap: Option<&HeapInput<'_>>,
    cu_order: &[nimage_compiler::CuId],
    object_order: Option<&[ObjId]>,
    native_order: Option<&[u32]>,
    params: &CostParams,
) -> PredictedFaults {
    optimize::predict_faults(code, heap, cu_order, object_order, native_order, params)
}

/// Metrics of one `(layout order, accessed set)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayoutQuality {
    /// Number of accessed objects found in the layout.
    pub accessed: usize,
    /// Bytes of accessed objects.
    pub accessed_bytes: u64,
    /// Bytes from the start of the section up to and including the last
    /// accessed object — the "span" a prefetcher must cover.
    pub span_bytes: u64,
    /// Density of the span: `accessed_bytes / span_bytes` (1.0 = perfectly
    /// packed prefix; → 0 = scattered across the whole section).
    pub density: f64,
    /// Number of maximal contiguous runs of accessed objects (1 = one
    /// block; higher = fragmented).
    pub runs: usize,
}

/// Computes layout quality for `order` (a permutation of the snapshot's
/// objects) against the set of objects the program accesses.
///
/// Objects in `accessed` that are not part of the snapshot are ignored
/// (e.g. PEA-folded objects, which cost nothing at run time).
pub fn layout_quality(
    snapshot: &HeapSnapshot,
    order: &[ObjId],
    accessed: &HashSet<ObjId>,
) -> LayoutQuality {
    let mut accessed_count = 0usize;
    let mut accessed_bytes = 0u64;
    let mut span_bytes = 0u64;
    let mut cursor = 0u64;
    let mut runs = 0usize;
    let mut prev_accessed = false;
    for &obj in order {
        let Some(entry) = snapshot.entry(obj) else {
            continue;
        };
        let size = u64::from(entry.size);
        let is_accessed = accessed.contains(&obj);
        if is_accessed {
            accessed_count += 1;
            accessed_bytes += size;
            span_bytes = cursor + size;
            if !prev_accessed {
                runs += 1;
            }
        }
        prev_accessed = is_accessed;
        cursor += size;
    }
    let density = if span_bytes == 0 {
        1.0
    } else {
        accessed_bytes as f64 / span_bytes as f64
    };
    LayoutQuality {
        accessed: accessed_count,
        accessed_bytes,
        span_bytes,
        density,
        runs,
    }
}

/// Fraction of the optimized build's objects whose identity matches the
/// instrumented build unambiguously.
///
/// An object is *matched* only if its id occurs exactly once in the
/// optimized build **and** exactly once in the instrumented build — a
/// colliding id group is unusable for cross-build ordering, because the
/// orderer cannot tell which member the profile meant (Sec. 5's matching
/// problem). This is the metric behind the ROADMAP's salted-heap-ids
/// question: salting trades id stability for collision freedom, and this
/// ratio quantifies whether the trade pays.
pub fn matched_object_ratio(instrumented_ids: &[u64], optimized_ids: &[u64]) -> f64 {
    if optimized_ids.is_empty() {
        return 1.0;
    }
    let count = |ids: &[u64]| -> HashMap<u64, u32> {
        let mut m = HashMap::new();
        for &v in ids {
            *m.entry(v).or_insert(0) += 1;
        }
        m
    };
    let instr = count(instrumented_ids);
    let opt = count(optimized_ids);
    let matched = optimized_ids
        .iter()
        .filter(|v| opt[v] == 1 && instr.get(v) == Some(&1))
        .count();
    matched as f64 / optimized_ids.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimage_analysis::{analyze, AnalysisConfig};
    use nimage_compiler::{compile, InlineConfig, InstrumentConfig};
    use nimage_heap::{snapshot, HeapBuildConfig};
    use nimage_ir::{ProgramBuilder, TypeRef};

    fn cells(n: i64) -> (nimage_ir::Program, HeapSnapshot) {
        let mut pb = ProgramBuilder::new();
        let cell = pb.add_class("q.Cell", None);
        let val = pb.add_instance_field(cell, "v", TypeRef::Int);
        let holder = pb.add_class("q.Holder", None);
        let field = pb.add_static_field(holder, "C", TypeRef::array_of(TypeRef::Object(cell)));
        let cl = pb.declare_clinit(holder);
        let mut f = pb.body(cl);
        let len = f.iconst(n);
        let arr = f.new_array(TypeRef::Object(cell), len);
        let from = f.iconst(0);
        f.for_range(from, len, |f, i| {
            let o = f.new_object(cell);
            f.put_field(o, val, i);
            f.array_set(arr, i, o);
        });
        f.put_static(field, arr);
        f.ret(None);
        pb.finish_body(cl, f);
        let mc = pb.add_class("q.Main", None);
        let main = pb.declare_static(mc, "main", &[], Some(TypeRef::Int));
        let mut f = pb.body(main);
        let a = f.get_static(field);
        let z = f.iconst(0);
        let c = f.array_get(a, z);
        let v = f.get_field(c, val);
        f.ret(Some(v));
        pb.finish_body(main, f);
        pb.set_entry(main);
        let p = pb.build().unwrap();
        let reach = analyze(&p, &AnalysisConfig::default());
        let cp = compile(
            &p,
            reach,
            &InlineConfig::default(),
            InstrumentConfig::NONE,
            None,
        );
        let snap = snapshot(&p, &cp, &HeapBuildConfig::default()).unwrap();
        (p, snap)
    }

    #[test]
    fn packed_prefix_has_density_one_and_one_run() {
        let (_p, snap) = cells(20);
        let order: Vec<ObjId> = snap.entries().iter().map(|e| e.obj).collect();
        // Access the first three objects of the layout.
        let accessed: HashSet<ObjId> = order[..3].iter().copied().collect();
        let q = layout_quality(&snap, &order, &accessed);
        assert_eq!(q.accessed, 3);
        assert_eq!(q.runs, 1);
        assert!((q.density - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scattered_accesses_have_low_density_and_many_runs() {
        let (_p, snap) = cells(20);
        let order: Vec<ObjId> = snap.entries().iter().map(|e| e.obj).collect();
        // Access every 5th object.
        let accessed: HashSet<ObjId> = order.iter().step_by(5).copied().collect();
        let q = layout_quality(&snap, &order, &accessed);
        assert!(q.runs > 1);
        assert!(q.density < 0.5, "density {:.3}", q.density);
    }

    #[test]
    fn reordering_improves_the_metric() {
        let (_p, snap) = cells(40);
        let default: Vec<ObjId> = snap.entries().iter().map(|e| e.obj).collect();
        let accessed: HashSet<ObjId> = default.iter().step_by(7).copied().collect();
        let scattered_q = layout_quality(&snap, &default, &accessed);
        // Pack accessed first.
        let mut packed: Vec<ObjId> = default
            .iter()
            .copied()
            .filter(|o| accessed.contains(o))
            .collect();
        packed.extend(default.iter().copied().filter(|o| !accessed.contains(o)));
        let packed_q = layout_quality(&snap, &packed, &accessed);
        assert!(packed_q.density > scattered_q.density);
        assert_eq!(packed_q.runs, 1);
        assert_eq!(packed_q.accessed, scattered_q.accessed);
    }

    #[test]
    fn matched_ratio_requires_uniqueness_on_both_sides() {
        // id 1: unique both sides -> matched. id 2: collides in optimized.
        // id 3: unique in optimized but collides in instrumented.
        // id 4: only in optimized.
        let instrumented = [1u64, 2, 3, 3];
        let optimized = [1u64, 2, 2, 3, 4];
        let r = matched_object_ratio(&instrumented, &optimized);
        assert!((r - 0.2).abs() < 1e-9, "ratio {r}");
        assert_eq!(matched_object_ratio(&[], &[]), 1.0);
    }

    #[test]
    fn unknown_objects_are_ignored() {
        let (_p, snap) = cells(5);
        let order: Vec<ObjId> = snap.entries().iter().map(|e| e.obj).collect();
        let mut accessed = HashSet::new();
        accessed.insert(ObjId(9999)); // not in snapshot
        let q = layout_quality(&snap, &order, &accessed);
        assert_eq!(q.accessed, 0);
        assert_eq!(q.runs, 0);
        assert_eq!(q.density, 1.0);
    }
}
