//! Property tests of the ordering/matching laws of `nimage-order`.

use std::collections::HashMap;

use proptest::prelude::*;

use nimage_analysis::{analyze, AnalysisConfig};
use nimage_compiler::{compile, InlineConfig, InstrumentConfig};
use nimage_heap::{snapshot, HeapBuildConfig, HeapSnapshot, ObjId};
use nimage_ir::{Program, ProgramBuilder, TypeRef};
use nimage_order::{assign_ids, order_objects, HeapOrderProfile, HeapStrategy};

/// A registry-of-cells snapshot of parameterizable size.
fn cells_snapshot(n: i64) -> (Program, HeapSnapshot) {
    let mut pb = ProgramBuilder::new();
    let cell = pb.add_class("prop.Cell", None);
    let val = pb.add_instance_field(cell, "v", TypeRef::Int);
    let holder = pb.add_class("prop.Holder", None);
    let field = pb.add_static_field(holder, "CELLS", TypeRef::array_of(TypeRef::Object(cell)));
    let cl = pb.declare_clinit(holder);
    let mut f = pb.body(cl);
    let len = f.iconst(n);
    let arr = f.new_array(TypeRef::Object(cell), len);
    let from = f.iconst(0);
    f.for_range(from, len, |f, i| {
        let o = f.new_object(cell);
        f.put_field(o, val, i);
        f.array_set(arr, i, o);
    });
    f.put_static(field, arr);
    f.ret(None);
    pb.finish_body(cl, f);
    let mainc = pb.add_class("prop.Main", None);
    let main = pb.declare_static(mainc, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(main);
    let a = f.get_static(field);
    let z = f.iconst(0);
    let c = f.array_get(a, z);
    let v = f.get_field(c, val);
    f.ret(Some(v));
    pb.finish_body(main, f);
    pb.set_entry(main);
    let p = pb.build().unwrap();
    let reach = analyze(&p, &AnalysisConfig::default());
    let cp = compile(
        &p,
        reach,
        &InlineConfig::default(),
        InstrumentConfig::NONE,
        None,
    );
    let snap = snapshot(&p, &cp, &HeapBuildConfig::default()).unwrap();
    (p, snap)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Matched objects always precede unmatched ones, and matched objects
    /// appear in non-decreasing profile-rank order.
    #[test]
    fn matched_prefix_in_rank_order(
        n in 4i64..32,
        picks in proptest::collection::vec(0usize..64, 1..16),
    ) {
        let (p, snap) = cells_snapshot(n);
        let ids = assign_ids(&p, &snap, HeapStrategy::HeapPath);
        // Build a profile from a random subset of real ids (dedup keeps
        // first occurrence, like the analyses do).
        let all: Vec<u64> = snap.entries().iter().map(|e| ids[&e.obj]).collect();
        let profile_ids: Vec<u64> = picks.iter().map(|&i| all[i % all.len()]).collect();
        let profile = HeapOrderProfile { ids: profile_ids.clone(), spans: vec![] };

        let rank: HashMap<u64, usize> = {
            let mut m = HashMap::new();
            for (i, &id) in profile_ids.iter().enumerate() {
                m.entry(id).or_insert(i);
            }
            m
        };
        let order = order_objects(&snap, &ids, &profile);
        let ranks: Vec<Option<usize>> = order
            .iter()
            .map(|o| ids.get(o).and_then(|id| rank.get(id)).copied())
            .collect();
        // No Some after the first None.
        let first_none = ranks.iter().position(Option::is_none).unwrap_or(ranks.len());
        prop_assert!(ranks[first_none..].iter().all(Option::is_none));
        // Matched prefix is sorted by rank.
        let matched: Vec<usize> = ranks[..first_none].iter().map(|r| r.unwrap()).collect();
        prop_assert!(matched.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Identity assignment is a function of the snapshot alone: same
    /// snapshot, same ids; and every strategy covers every entry.
    #[test]
    fn ids_are_total_and_deterministic(n in 4i64..24) {
        let (p, snap) = cells_snapshot(n);
        for strat in [
            HeapStrategy::IncrementalId,
            HeapStrategy::structural_default(),
            HeapStrategy::HeapPath,
        ] {
            let a = assign_ids(&p, &snap, strat);
            let b = assign_ids(&p, &snap, strat);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(a.len(), snap.entries().len());
        }
    }

    /// Structural hashes of content-distinct cells never collide in these
    /// small populations (the hash is 64-bit and the contents differ in
    /// `v`).
    #[test]
    fn structural_ids_distinguish_distinct_content(n in 2i64..48) {
        let (p, snap) = cells_snapshot(n);
        let ids = assign_ids(&p, &snap, HeapStrategy::structural_default());
        let mut seen: HashMap<u64, ObjId> = HashMap::new();
        for e in snap.entries() {
            if let nimage_heap::HObjectKind::Instance { class, .. } =
                &snap.heap().get(e.obj).kind
            {
                if p.class(*class).name == "prop.Cell" {
                    let id = ids[&e.obj];
                    prop_assert!(
                        seen.insert(id, e.obj).is_none(),
                        "collision between cells at id {id:#x}"
                    );
                }
            }
        }
    }
}
