//! Property tests of the layout optimizer's contract: whatever the input,
//! the output is a permutation of it, never predicts worse than first
//! touch, reports predictions consistent with the scorer, and is
//! bit-identical across worker-thread counts.

use proptest::prelude::*;

use nimage_compiler::CuId;
use nimage_heap::ObjId;
use nimage_order::{optimize_layout, predict_faults, CodeInput, CostParams, HeapInput};

/// Native-tail pages of the test geometry (`native_tail / page_size`).
const TAIL_PAGES: u32 = 64;

/// A small image geometry (64-page native tail) so the candidate search
/// exercises window sharing without megabyte-sized inputs.
fn params() -> CostParams {
    CostParams {
        page_size: 4096,
        fault_around_pages: 16,
        cu_align: 16,
        obj_align: 8,
        native_tail: u64::from(TAIL_PAGES) * 4096,
    }
}

/// Derives a permutation of `0..n` from a list of generated swaps
/// (Fisher–Yates with externally supplied randomness, so the proptest
/// input fully determines it).
fn permutation(n: usize, swaps: &[usize]) -> Vec<u32> {
    let mut p: Vec<u32> = (0..n as u32).collect();
    for (i, &s) in swaps.iter().enumerate() {
        let a = i % n;
        let b = s % n;
        p.swap(a, b);
    }
    p
}

fn sorted(ids: Vec<u32>) -> Vec<u32> {
    let mut ids = ids;
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The optimizer returns permutations of its inputs, its chosen
    /// placement never predicts more faults than first touch (candidate 0
    /// of its own search), its reported prediction matches a re-score of
    /// the returned orders, and every worker-thread count produces the
    /// bit-identical plan.
    #[test]
    fn optimizer_is_a_thread_invariant_permutation(
        cu_sizes in proptest::collection::vec(1u64..3000, 1..48),
        cu_swaps in proptest::collection::vec(0usize..4096, 0..64),
        (cu_hot_pct, obj_hot_pct) in (0usize..=100, 0usize..=100),
        obj_sizes in proptest::collection::vec(1u64..600, 1..80),
        obj_swaps in proptest::collection::vec(0usize..4096, 0..96),
        native in proptest::collection::vec(0u32..TAIL_PAGES, 0..12),
    ) {
        let first_touch: Vec<CuId> =
            permutation(cu_sizes.len(), &cu_swaps).into_iter().map(CuId).collect();
        let cu_hot = cu_sizes.len() * cu_hot_pct / 100;
        let code = CodeInput {
            first_touch: &first_touch,
            hot: cu_hot,
            sizes: &cu_sizes,
            native_pages: &native,
        };
        let obj_first: Vec<ObjId> =
            permutation(obj_sizes.len(), &obj_swaps).into_iter().map(ObjId).collect();
        let obj_hot = obj_sizes.len() * obj_hot_pct / 100;
        let heap = HeapInput {
            first_touch: &obj_first,
            hot: obj_hot,
            sizes: &obj_sizes,
            spans: &[],
        };
        let p = params();
        let plan = optimize_layout(&code, Some(&heap), &p, 1);

        // Permutation of the CU input.
        prop_assert_eq!(
            sorted(plan.cu_order.iter().map(|c| c.0).collect()),
            (0..cu_sizes.len() as u32).collect::<Vec<_>>()
        );
        // Permutation of the object input.
        let object_order = plan.object_order.as_ref().expect("heap side was given");
        prop_assert_eq!(
            sorted(object_order.iter().map(|o| o.0).collect()),
            (0..obj_sizes.len() as u32).collect::<Vec<_>>()
        );
        // Permutation of the native-tail pages.
        prop_assert_eq!(
            sorted(plan.native_order.clone()),
            (0..TAIL_PAGES).collect::<Vec<_>>()
        );

        // Anchored by first touch: never predicted worse.
        prop_assert!(plan.predicted_faults.total() <= plan.first_touch_faults.total());

        // The reported prediction is the scorer's verdict on the
        // returned orders, not a stale candidate's.
        let rescored = predict_faults(
            &code,
            Some(&heap),
            &plan.cu_order,
            Some(object_order),
            Some(&plan.native_order),
            &p,
        );
        prop_assert_eq!(rescored, plan.predicted_faults);

        // Bit-determinism across worker counts.
        for threads in [2, 4, 8] {
            let other = optimize_layout(&code, Some(&heap), &p, threads);
            prop_assert_eq!(&other, &plan);
        }
    }

    /// Code-only planning (no heap side) upholds the same contract.
    #[test]
    fn code_only_plan_is_anchored_and_deterministic(
        cu_sizes in proptest::collection::vec(1u64..5000, 1..64),
        cu_swaps in proptest::collection::vec(0usize..4096, 0..64),
        cu_hot_pct in 0usize..=100,
        native in proptest::collection::vec(0u32..TAIL_PAGES, 0..10),
    ) {
        let first_touch: Vec<CuId> =
            permutation(cu_sizes.len(), &cu_swaps).into_iter().map(CuId).collect();
        let code = CodeInput {
            first_touch: &first_touch,
            hot: cu_sizes.len() * cu_hot_pct / 100,
            sizes: &cu_sizes,
            native_pages: &native,
        };
        let p = params();
        let plan = optimize_layout(&code, None, &p, 1);
        prop_assert!(plan.object_order.is_none());
        prop_assert_eq!(
            sorted(plan.cu_order.iter().map(|c| c.0).collect()),
            (0..cu_sizes.len() as u32).collect::<Vec<_>>()
        );
        prop_assert!(plan.predicted_faults.total() <= plan.first_touch_faults.total());
        for threads in [2, 8] {
            prop_assert_eq!(optimize_layout(&code, None, &p, threads), plan.clone());
        }
    }
}
