//! Lint tests: one hand-crafted bad program per lint, the seeded
//! acceptance case (overlapping placement + use-before-def), and a
//! property test that every builder-produced workload lints error-free.

use proptest::prelude::*;

use nimage_analysis::{analyze, AnalysisConfig, CallSite};
use nimage_compiler::{compile, InlineConfig, InstrumentConfig};
use nimage_heap::{snapshot, HeapBuildConfig};
use nimage_ir::{Instr, Local, MethodId, Program, ProgramBuilder, TypeRef};
use nimage_order::{assign_ids, order_objects, HeapOrderProfile, HeapStrategy};
use nimage_verify::{
    audit_determinism, audit_profiling_determinism,
    determinism::DeterminismInputs,
    has_errors, irlint,
    pipeline::{
        audit_ids, check_layout, check_matching, check_trace, id_collision_diagnostics, LayoutView,
        Placement,
    },
    Severity,
};
use nimage_workloads::{Awfy, Microservice, RuntimeScale};

fn codes(diags: &[nimage_verify::Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code).collect()
}

/// `main` reads a local that is never assigned on any path.
fn use_before_def_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("bad.Main", None);
    let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(main);
    let unset = f.local();
    let v = f.add(unset, unset);
    f.ret(Some(v));
    pb.finish_body(main, f);
    pb.set_entry(main);
    pb.build().expect("structurally valid")
}

#[test]
fn use_before_def_fires() {
    let diags = irlint::lint_program(&use_before_def_program());
    assert!(codes(&diags).contains(&"ir::use-before-def"), "{diags:?}");
    assert!(has_errors(&diags));
}

#[test]
fn branch_local_dataflow_is_path_sensitive() {
    // Assigned in only one branch → flagged after the join.
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("bad.Branch", None);
    let flag = pb.add_static_field(c, "F", TypeRef::Bool);
    let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(main);
    let v = f.local();
    let cond = f.get_static(flag);
    let then_blk = f.new_block();
    let join = f.new_block();
    f.br(cond, then_blk, join);
    f.switch_to(then_blk);
    let one = f.iconst(1);
    f.assign(v, one);
    f.jump(join);
    f.switch_to(join);
    f.ret(Some(v));
    pb.finish_body(main, f);
    pb.set_entry(main);
    let program = pb.build().expect("structurally valid");
    let diags = irlint::lint_program(&program);
    assert!(codes(&diags).contains(&"ir::use-before-def"), "{diags:?}");

    // Assigned in both branches → clean.
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("good.Branch", None);
    let flag = pb.add_static_field(c, "F", TypeRef::Bool);
    let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(main);
    let v = f.local();
    let cond = f.get_static(flag);
    let then_blk = f.new_block();
    let else_blk = f.new_block();
    let join = f.new_block();
    f.br(cond, then_blk, else_blk);
    f.switch_to(then_blk);
    let one = f.iconst(1);
    f.assign(v, one);
    f.jump(join);
    f.switch_to(else_blk);
    let two = f.iconst(2);
    f.assign(v, two);
    f.jump(join);
    f.switch_to(join);
    f.ret(Some(v));
    pb.finish_body(main, f);
    pb.set_entry(main);
    let program = pb.build().expect("structurally valid");
    assert!(!has_errors(&irlint::lint_program(&program)));
}

#[test]
fn unreachable_block_warns_without_error() {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("bad.Unreach", None);
    let main = pb.declare_static(c, "main", &[], None);
    let mut f = pb.body(main);
    f.ret(None);
    let island = f.new_block();
    f.switch_to(island);
    f.ret(None);
    pb.finish_body(main, f);
    pb.set_entry(main);
    let program = pb.build().expect("structurally valid");
    let diags = irlint::lint_program(&program);
    let unreachable: Vec<_> = diags
        .iter()
        .filter(|d| d.code == "ir::unreachable-block")
        .collect();
    assert_eq!(unreachable.len(), 1, "{diags:?}");
    assert_eq!(unreachable[0].severity, Severity::Warning);
    assert!(!has_errors(&diags));
}

#[test]
fn dead_store_warns_without_error() {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("bad.Dead", None);
    let main = pb.declare_static(c, "main", &[], None);
    let mut f = pb.body(main);
    let _unused = f.iconst(42);
    f.ret(None);
    pb.finish_body(main, f);
    pb.set_entry(main);
    let program = pb.build().expect("structurally valid");
    let diags = irlint::lint_program(&program);
    assert!(codes(&diags).contains(&"ir::dead-store"), "{diags:?}");
    assert!(!has_errors(&diags));
}

/// Pins the dead-store warning count on Bounce at evaluation scale: the
/// 125 warnings that used to come from builder-generated class
/// initializers are suppressed (the lint is scoped to hand-reachable
/// code), leaving only the genuine discarded-binding sites.
#[test]
fn dead_store_lint_skips_generated_clinits_on_bounce() {
    let program = Awfy::Bounce.program();
    let diags = irlint::lint_program(&program);
    let dead: Vec<_> = diags
        .iter()
        .filter(|d| d.code == "ir::dead-store")
        .collect();
    assert!(
        dead.iter().all(|d| !d.entity.contains("<clinit>")),
        "clinit dead stores must be suppressed: {dead:?}"
    );
    assert_eq!(dead.len(), 3, "{dead:?}");
}

#[test]
fn call_arity_and_void_result_errors() {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("bad.Calls", None);
    let unary = pb.declare_static(c, "unary", &[TypeRef::Int], Some(TypeRef::Int));
    let mut f = pb.body(unary);
    f.ret(Some(f.param(0)));
    pb.finish_body(unary, f);
    let void = pb.declare_static(c, "void", &[], None);
    let mut f = pb.body(void);
    f.ret(None);
    pb.finish_body(void, f);
    let main = pb.declare_static(c, "main", &[], None);
    let mut f = pb.body(main);
    f.call_static(unary, &[], true); // missing argument
    let got = f.call_static(void, &[], true).unwrap(); // void result stored
    let two = f.add(got, got);
    let _ = f.add(two, two);
    f.ret(None);
    pb.finish_body(main, f);
    pb.set_entry(main);
    let program = pb.build().expect("structurally valid");
    let diags = irlint::lint_program(&program);
    assert!(codes(&diags).contains(&"ir::call-arity"), "{diags:?}");
    assert!(codes(&diags).contains(&"ir::call-ret"), "{diags:?}");
}

#[test]
fn field_kind_polarity_errors() {
    // `ir::validate` rejects kind-confused field accesses at build time, so a
    // program like this cannot come out of the builder; the lint exists as
    // defense in depth for IR produced outside the validated path. Build a
    // valid program, then hand-mutate a copy of the method body.
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("bad.Fields", None);
    let stat = pb.add_static_field(c, "S", TypeRef::Int);
    let inst = pb.add_instance_field(c, "i", TypeRef::Int);
    let main = pb.declare_static(c, "main", &[], None);
    let mut f = pb.body(main);
    let obj = f.new_object(c);
    let _ = f.get_static(stat); // correct polarity: validates
    let _ = f.get_field(obj, inst);
    f.ret(None);
    pb.finish_body(main, f);
    pb.set_entry(main);
    let program = pb.build().expect("structurally valid");

    let mut bad = program.method(main).clone();
    for instr in &mut bad.blocks[0].instrs {
        match instr {
            Instr::GetStatic(dst, fid) if *fid == stat => {
                *instr = Instr::GetField(*dst, Local(0), stat); // instance access to static field
            }
            Instr::GetField(dst, _, fid) if *fid == inst => {
                *instr = Instr::GetStatic(*dst, inst); // static access to instance field
            }
            _ => {}
        }
    }
    let mut diags = Vec::new();
    irlint::lint_method(&program, main, &bad, &mut diags);
    let kinds = diags.iter().filter(|d| d.code == "ir::field-kind").count();
    assert_eq!(kinds, 2, "{diags:?}");
}

#[test]
fn ret_mismatch_on_reachable_blocks_only() {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("bad.Ret", None);
    let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(main);
    f.ret(None); // declared to return Int
    pb.finish_body(main, f);
    pb.set_entry(main);
    let program = pb.build().expect("structurally valid");
    let diags = irlint::lint_program(&program);
    assert!(codes(&diags).contains(&"ir::ret-mismatch"), "{diags:?}");
}

#[test]
fn vtable_lint_accepts_real_analysis_and_rejects_bogus_targets() {
    let mut pb = ProgramBuilder::new();
    let base = pb.add_class("v.Base", None);
    let derived = pb.add_class("v.Derived", Some(base));
    let m_base = pb.declare_virtual(base, "step", &[], Some(TypeRef::Int));
    let mut f = pb.body(m_base);
    let one = f.iconst(1);
    f.ret(Some(one));
    pb.finish_body(m_base, f);
    let m_derived = pb.declare_virtual(derived, "step", &[], Some(TypeRef::Int));
    let mut f = pb.body(m_derived);
    let two = f.iconst(2);
    f.ret(Some(two));
    pb.finish_body(m_derived, f);
    let selector = pb.intern_selector("step", 0);
    let helper = pb.declare_static(base, "helper", &[], None);
    let mut f = pb.body(helper);
    f.ret(None);
    pb.finish_body(helper, f);
    let main = pb.declare_static(base, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(main);
    let recv = f.new_object(derived);
    let v = f.call_virtual(base, selector, &[recv], true).unwrap();
    f.ret(Some(v));
    pb.finish_body(main, f);
    pb.set_entry(main);
    let program = pb.build().expect("structurally valid");

    let mut reach = analyze(&program, &AnalysisConfig::default());
    assert!(
        !reach.virtual_targets.is_empty(),
        "analysis records the virtual site"
    );
    assert!(!has_errors(&irlint::lint_virtual_targets(&program, &reach)));

    // Corrupt the analysis: record the static helper as a devirtualization
    // target of the site.
    let site = *reach.virtual_targets.keys().next().unwrap();
    reach.virtual_targets.get_mut(&site).unwrap().push(helper);
    let diags = irlint::lint_virtual_targets(&program, &reach);
    assert!(codes(&diags).contains(&"ir::vtable"), "{diags:?}");

    // And a site pointing at a non-call instruction.
    let mut reach2 = analyze(&program, &AnalysisConfig::default());
    reach2.virtual_targets.insert(
        CallSite {
            method: MethodId(0),
            block: 0,
            instr: 0,
        },
        vec![m_base],
    );
    assert!(has_errors(&irlint::lint_virtual_targets(&program, &reach2)));
}

fn place(label: &str, offset: u64, size: u64) -> Placement {
    Placement {
        label: label.to_string(),
        offset,
        size,
    }
}

fn clean_view() -> LayoutView {
    LayoutView {
        page_size: 4096,
        text_offset: 0,
        text_size: 8192,
        heap_offset: 8192,
        heap_size: 4096,
        native_start: 4096,
        cus: vec![place("a", 0, 100), place("b", 128, 200)],
        objects: vec![place("o0", 8192, 64), place("o1", 8256, 32)],
        expected_cus: 2,
        expected_objects: 2,
    }
}

#[test]
fn clean_layout_passes() {
    assert!(check_layout(&clean_view()).is_empty());
}

#[test]
fn layout_overlap_and_alignment_detected() {
    let mut v = clean_view();
    v.cus = vec![place("a", 0, 200), place("b", 128, 200)]; // overlap
    let diags = check_layout(&v);
    assert!(codes(&diags).contains(&"layout::overlap"), "{diags:?}");

    let mut v = clean_view();
    v.heap_offset = 8200; // not page-aligned, and leaves text unchanged
    let diags = check_layout(&v);
    assert!(codes(&diags).contains(&"layout::align"), "{diags:?}");

    let mut v = clean_view();
    v.cus[1] = place("b", 4000, 200); // reaches into the native tail
    let diags = check_layout(&v);
    assert!(codes(&diags).contains(&"layout::native-tail"), "{diags:?}");

    let mut v = clean_view();
    v.objects.pop(); // missing placement
    let diags = check_layout(&v);
    assert!(codes(&diags).contains(&"layout::coverage"), "{diags:?}");

    let mut v = clean_view();
    v.objects[1] = place("o0", 8256, 32); // duplicate label
    let diags = check_layout(&v);
    assert!(codes(&diags).contains(&"layout::coverage"), "{diags:?}");
}

/// The ISSUE's acceptance case: a seeded bad program (use-before-def)
/// plus an overlapping placement must both surface as errors in one lint
/// pass.
#[test]
fn acceptance_seeded_bad_program_and_overlap_both_fire() {
    let mut diags = irlint::lint_program(&use_before_def_program());
    let mut view = clean_view();
    view.cus = vec![place("a", 0, 300), place("b", 128, 200)];
    diags.extend(check_layout(&view));

    let codes = codes(&diags);
    assert!(codes.contains(&"ir::use-before-def"), "{diags:?}");
    assert!(codes.contains(&"layout::overlap"), "{diags:?}");
    assert!(has_errors(&diags));
}

#[test]
fn trace_checks_string_indices_and_event_order() {
    use nimage_profiler::{Trace, TraceRecord};
    let trace = Trace {
        strings: vec!["a.M.run(0)".to_string()],
        threads: vec![vec![
            TraceRecord::Path {
                method: 0,
                start: 0,
                path_id: 0,
                obj_ids: vec![],
            },
            TraceRecord::CuEntry { sig: 0 },
            TraceRecord::CuEntry { sig: 7 }, // out of range
        ]],
    };
    let diags = check_trace(&trace);
    assert!(
        codes(&diags).contains(&"profile::string-index"),
        "{diags:?}"
    );
    let order: Vec<_> = diags
        .iter()
        .filter(|d| d.code == "profile::order")
        .collect();
    assert_eq!(order.len(), 1, "{diags:?}");
    assert_eq!(order[0].severity, Severity::Warning);
}

#[test]
fn id_audit_counts_collisions() {
    let audit = audit_ids([1u64, 2, 2, 2, 3, 3]);
    assert_eq!(audit.total, 6);
    assert_eq!(audit.distinct, 3);
    assert_eq!(audit.colliding, 2);
    assert_eq!(audit.max_multiplicity, 3);
    assert!(!id_collision_diagnostics(&audit, "test ids").is_empty());
    assert!(id_collision_diagnostics(&audit_ids([1u64, 2, 3]), "test ids").is_empty());
}

#[test]
fn matching_contract_verified_on_real_snapshot() {
    let program = Awfy::Bounce.program_at(&RuntimeScale::small());
    let reach = analyze(&program, &AnalysisConfig::default());
    let compiled = compile(
        &program,
        reach,
        &InlineConfig::default(),
        InstrumentConfig::NONE,
        None,
    );
    let snap = snapshot(&program, &compiled, &HeapBuildConfig::default()).expect("snapshot");
    let ids = assign_ids(&program, &snap, HeapStrategy::IncrementalId);
    assert!(snap.entries().len() >= 4, "snapshot too small for the test");

    // Rank two real identities, reversed relative to snapshot order.
    let o2 = snap.entries()[2].obj;
    let o0 = snap.entries()[0].obj;
    let profile = HeapOrderProfile {
        ids: vec![ids[&o2], ids[&o0]],
        spans: vec![],
    };
    let order = order_objects(&snap, &ids, &profile);
    assert!(
        check_matching(&snap, &ids, &profile, &order).is_empty(),
        "order_objects output satisfies its own contract"
    );

    // Swapping the matched prefix breaks rank order.
    let mut bad = order.clone();
    bad.swap(0, 1);
    let diags = check_matching(&snap, &ids, &profile, &bad);
    assert!(has_errors(&diags), "{diags:?}");

    // Truncation breaks the permutation requirement.
    let diags = check_matching(&snap, &ids, &profile, &order[1..]);
    assert!(codes(&diags).contains(&"match::permutation"), "{diags:?}");

    // Swapping two unmatched objects breaks default order.
    let mut bad = order.clone();
    let n = bad.len();
    bad.swap(n - 2, n - 1);
    let diags = check_matching(&snap, &ids, &profile, &bad);
    assert!(has_errors(&diags), "{diags:?}");
}

#[test]
fn determinism_audit_passes_on_builder_program() {
    let program = Awfy::Sieve.program_at(&RuntimeScale::small());
    let report = audit_determinism(&program, &DeterminismInputs::default());
    assert!(
        report.is_deterministic(),
        "default pipeline must be deterministic: {:?}",
        report.diagnostics
    );
}

#[test]
fn profiling_determinism_audit_passes_on_builder_program() {
    let program = Awfy::Sieve.program_at(&RuntimeScale::small());
    let report = audit_profiling_determinism(&program, nimage_vm::StopWhen::Exit);
    assert!(report.trace_identical);
    assert!(report.parallel_replay_identical);
    assert!(
        report.is_deterministic(),
        "profiling build must be deterministic: {:?}",
        report.diagnostics
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Every builder-produced workload program lints error-free (warnings
    /// such as dead stores are expected; errors are not).
    #[test]
    fn awfy_workloads_lint_clean(idx in 0usize..17) {
        let all_awfy = Awfy::all();
        let program = if idx < 14 {
            all_awfy[idx].program_at(&RuntimeScale::small())
        } else {
            Microservice::all()[idx - 14].program_at(&RuntimeScale::small())
        };
        let diags = irlint::lint_program(&program);
        let errors: Vec<_> = diags.iter().filter(|d| d.severity == Severity::Error).collect();
        prop_assert!(errors.is_empty(), "workload {} has lint errors: {:?}", idx, errors);

        let reach = analyze(&program, &AnalysisConfig::default());
        let vt = irlint::lint_virtual_targets(&program, &reach);
        prop_assert!(!has_errors(&vt), "workload {} vtable errors: {:?}", idx, vt);
    }
}
