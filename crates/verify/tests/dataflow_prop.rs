//! Property tests for the worklist dataflow solver: the lattice contract
//! (join algebra, monotone transfers) and the solver's fixpoint guarantee
//! on randomly generated structured CFGs, plus the interprocedural
//! driver's closure property on random call graphs.

use proptest::prelude::*;

use nimage_ir::{
    BodyBuilder, Cfg, Instr, Local, Method, MethodId, Program, ProgramBuilder, Terminator, TypeRef,
};
use nimage_verify::dataflow::{
    solve, solve_interprocedural, Analysis, BitFact, Direction, SummaryLattice,
};

// ---------------------------------------------------------------------------
// Random structured CFGs (same shape family as the IR builder's own
// property tests: sequences, ifs and bounded loops over an accumulator).

#[derive(Debug, Clone)]
enum Stmt {
    AddConst(i8),
    If(Vec<Stmt>, Vec<Stmt>),
    Loop(u8, Vec<Stmt>),
}

fn stmt_strategy() -> impl Strategy<Value = Vec<Stmt>> {
    let leaf = any::<i8>().prop_map(Stmt::AddConst);
    let stmt = leaf.prop_recursive(3, 24, 4, |inner| {
        let block = proptest::collection::vec(inner.clone(), 0..4);
        prop_oneof![
            (block.clone(), block.clone()).prop_map(|(t, e)| Stmt::If(t, e)),
            (1u8..4, block).prop_map(|(n, b)| Stmt::Loop(n, b)),
        ]
    });
    proptest::collection::vec(stmt, 0..6)
}

fn emit(f: &mut BodyBuilder, acc: Local, stmts: &[Stmt]) {
    for s in stmts {
        match s {
            Stmt::AddConst(c) => {
                let v = f.iconst(i64::from(*c));
                let n = f.add(acc, v);
                f.assign(acc, n);
            }
            Stmt::If(t, e) => {
                let zero = f.iconst(0);
                let cond = f.ge(acc, zero);
                f.if_then_else(cond, |f| emit(f, acc, t), |f| emit(f, acc, e));
            }
            Stmt::Loop(n, b) => {
                let from = f.iconst(0);
                let to = f.iconst(i64::from(*n));
                f.for_range(from, to, |f, _i| emit(f, acc, b));
            }
        }
    }
}

fn build(stmts: &[Stmt]) -> Program {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("prop.P", None);
    let m = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(m);
    let acc = f.iconst(0);
    emit(&mut f, acc, stmts);
    f.ret(Some(acc));
    pb.finish_body(m, f);
    pb.set_entry(m);
    pb.build().expect("structured builders always validate")
}

// ---------------------------------------------------------------------------
// Two reference analyses exercising both directions.

/// Forward may-be-unassigned (union lattice over locals).
struct MayUnassigned;

impl Analysis for MayUnassigned {
    type Fact = BitFact;
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn boundary(&self, method: &Method) -> BitFact {
        let mut f = BitFact::full(method.n_locals as usize);
        for p in 0..method.param_locals() as usize {
            f.remove(p);
        }
        f
    }
    fn bottom(&self, method: &Method) -> BitFact {
        BitFact::empty(method.n_locals as usize)
    }
    fn join(&self, into: &mut BitFact, from: &BitFact) -> bool {
        into.union(from)
    }
    fn transfer_instr(&self, instr: &Instr, fact: &mut BitFact) {
        if let Some(d) = instr.dst() {
            fact.remove(d.index());
        }
    }
}

/// Backward liveness (union lattice over locals).
struct Liveness;

fn terminator_use(t: &Terminator) -> Option<Local> {
    match t {
        Terminator::Ret(l) => *l,
        Terminator::Br { cond, .. } => Some(*cond),
        _ => None,
    }
}

impl Analysis for Liveness {
    type Fact = BitFact;
    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn boundary(&self, method: &Method) -> BitFact {
        BitFact::empty(method.n_locals as usize)
    }
    fn bottom(&self, method: &Method) -> BitFact {
        BitFact::empty(method.n_locals as usize)
    }
    fn join(&self, into: &mut BitFact, from: &BitFact) -> bool {
        into.union(from)
    }
    fn transfer_instr(&self, instr: &Instr, fact: &mut BitFact) {
        if let Some(d) = instr.dst() {
            fact.remove(d.index());
        }
        for s in instr.sources() {
            fact.insert(s.index());
        }
    }
    fn transfer_terminator(&self, term: &Terminator, fact: &mut BitFact) {
        if let Some(l) = terminator_use(term) {
            fact.insert(l.index());
        }
    }
}

/// Applies a whole block's transfer in the analysis direction.
fn block_transfer<A: Analysis>(a: &A, m: &Method, b: usize, fact: &mut A::Fact) {
    match a.direction() {
        Direction::Forward => {
            for i in &m.blocks[b].instrs {
                a.transfer_instr(i, fact);
            }
            a.transfer_terminator(&m.blocks[b].terminator, fact);
        }
        Direction::Backward => {
            a.transfer_terminator(&m.blocks[b].terminator, fact);
            for i in m.blocks[b].instrs.iter().rev() {
                a.transfer_instr(i, fact);
            }
        }
    }
}

/// Checks that a solution satisfies the dataflow equations — i.e. it is a
/// genuine fixpoint, not just whatever state the worklist stopped in.
fn assert_is_fixpoint<A: Analysis<Fact = BitFact>>(a: &A, m: &Method) {
    let cfg = Cfg::new(m);
    let sol = solve(a, m);
    for b in 0..m.blocks.len() {
        if !cfg.reachable[b] {
            continue;
        }
        match a.direction() {
            Direction::Forward => {
                let mut expect = if b == 0 { a.boundary(m) } else { a.bottom(m) };
                for &p in &cfg.preds[b] {
                    a.join(&mut expect, &sol.after[p]);
                }
                assert_eq!(sol.before[b], expect, "before[{b}] violates the equations");
                let mut out = sol.before[b].clone();
                block_transfer(a, m, b, &mut out);
                assert_eq!(sol.after[b], out, "after[{b}] is not transfer(before[{b}])");
            }
            Direction::Backward => {
                let mut expect = if matches!(m.blocks[b].terminator, Terminator::Ret(_)) {
                    a.boundary(m)
                } else {
                    a.bottom(m)
                };
                for &s in &cfg.succs[b] {
                    a.join(&mut expect, &sol.before[s]);
                }
                assert_eq!(sol.after[b], expect, "after[{b}] violates the equations");
                let mut out = sol.after[b].clone();
                block_transfer(a, m, b, &mut out);
                assert_eq!(
                    sol.before[b], out,
                    "before[{b}] is not transfer(after[{b}])"
                );
            }
        }
    }
}

/// A naive reference solver: round-robin over all blocks until nothing
/// changes. Same equations, no worklist — the solver must agree with it.
fn naive_solve<A: Analysis<Fact = BitFact>>(a: &A, m: &Method) -> Vec<BitFact> {
    let cfg = Cfg::new(m);
    let n = m.blocks.len();
    let mut before: Vec<BitFact> = (0..n).map(|_| a.bottom(m)).collect();
    let mut after: Vec<BitFact> = (0..n).map(|_| a.bottom(m)).collect();
    loop {
        let mut changed = false;
        for b in 0..n {
            if !cfg.reachable[b] {
                continue;
            }
            match a.direction() {
                Direction::Forward => {
                    let mut fact = if b == 0 { a.boundary(m) } else { a.bottom(m) };
                    for &p in &cfg.preds[b] {
                        a.join(&mut fact, &after[p]);
                    }
                    before[b] = fact.clone();
                    block_transfer(a, m, b, &mut fact);
                    if fact != after[b] {
                        after[b] = fact;
                        changed = true;
                    }
                }
                Direction::Backward => {
                    let mut fact = if matches!(m.blocks[b].terminator, Terminator::Ret(_)) {
                        a.boundary(m)
                    } else {
                        a.bottom(m)
                    };
                    for &s in &cfg.succs[b] {
                        a.join(&mut fact, &before[s]);
                    }
                    after[b] = fact.clone();
                    block_transfer(a, m, b, &mut fact);
                    if fact != before[b] {
                        before[b] = fact;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    match a.direction() {
        Direction::Forward => after,
        Direction::Backward => before,
    }
}

fn bitfact_of(bits: &[bool]) -> BitFact {
    let mut f = BitFact::empty(bits.len());
    for (i, &b) in bits.iter().enumerate() {
        if b {
            f.insert(i);
        }
    }
    f
}

proptest! {
    /// Union join is commutative, associative and idempotent.
    #[test]
    fn join_is_commutative_associative_idempotent(
        a in proptest::collection::vec(any::<bool>(), 130),
        b in proptest::collection::vec(any::<bool>(), 130),
        c in proptest::collection::vec(any::<bool>(), 130),
    ) {
        let (fa, fb, fc) = (bitfact_of(&a), bitfact_of(&b), bitfact_of(&c));
        // a ∪ b == b ∪ a
        let mut ab = fa.clone();
        ab.union(&fb);
        let mut ba = fb.clone();
        ba.union(&fa);
        prop_assert_eq!(&ab, &ba);
        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let mut abc1 = ab.clone();
        abc1.union(&fc);
        let mut bc = fb.clone();
        bc.union(&fc);
        let mut abc2 = fa.clone();
        abc2.union(&bc);
        prop_assert_eq!(&abc1, &abc2);
        // a ∪ a == a, and the join reports no change.
        let mut aa = fa.clone();
        prop_assert!(!aa.union(&fa));
        prop_assert_eq!(&aa, &fa);
    }

    /// The lints' transfer functions are monotone: a ⊆ b implies
    /// transfer(a) ⊆ transfer(b), blockwise, on random bodies.
    #[test]
    fn transfers_are_monotone(stmts in stmt_strategy(), mask in proptest::collection::vec(any::<bool>(), 200)) {
        let p = build(&stmts);
        let m = &p.methods()[0];
        let n = m.n_locals as usize;
        // b = random set, a = b minus some random bits → a ⊆ b.
        let big = bitfact_of(&mask[..n.min(mask.len())]);
        let mut big_padded = BitFact::empty(n);
        big_padded.union(&big);
        let mut small = big_padded.clone();
        for i in (0..n).step_by(3) {
            small.remove(i);
        }
        for b in 0..m.blocks.len() {
            let (mut sa, mut sb) = (small.clone(), big_padded.clone());
            block_transfer(&MayUnassigned, m, b, &mut sa);
            block_transfer(&MayUnassigned, m, b, &mut sb);
            prop_assert!(sa.is_subset(&sb), "forward transfer not monotone at b{b}");
            let (mut la, mut lb) = (small.clone(), big_padded.clone());
            block_transfer(&Liveness, m, b, &mut la);
            block_transfer(&Liveness, m, b, &mut lb);
            prop_assert!(la.is_subset(&lb), "backward transfer not monotone at b{b}");
        }
    }

    /// The worklist solver terminates on random CFGs and lands on a real
    /// fixpoint of the dataflow equations, in both directions.
    #[test]
    fn solver_reaches_a_fixpoint(stmts in stmt_strategy()) {
        let p = build(&stmts);
        let m = &p.methods()[0];
        assert_is_fixpoint(&MayUnassigned, m);
        assert_is_fixpoint(&Liveness, m);
    }

    /// The worklist solver agrees with a naive round-robin solver — same
    /// least fixpoint regardless of iteration order.
    #[test]
    fn solver_matches_naive_round_robin(stmts in stmt_strategy()) {
        let p = build(&stmts);
        let m = &p.methods()[0];
        let sol = solve(&MayUnassigned, m);
        prop_assert_eq!(sol.after, naive_solve(&MayUnassigned, m));
        let sol = solve(&Liveness, m);
        prop_assert_eq!(sol.before, naive_solve(&Liveness, m));
    }

    /// The interprocedural driver computes the transitive closure:
    /// summary[m] ⊇ locals[m], ⊇ every callee's summary, and equals the
    /// union of locals over the transitively callable set.
    #[test]
    fn interprocedural_summaries_close_over_random_graphs(
        edges in proptest::collection::vec((0usize..12, 0usize..12), 0..40),
    ) {
        #[derive(Clone, PartialEq, Debug)]
        struct Set(std::collections::BTreeSet<u32>);
        impl SummaryLattice for Set {
            fn join(&mut self, other: &Self) -> bool {
                let before = self.0.len();
                self.0.extend(other.0.iter().copied());
                self.0.len() != before
            }
        }
        let n = 12usize;
        let mut callees: Vec<Vec<MethodId>> = vec![vec![]; n];
        for &(a, b) in &edges {
            callees[a].push(MethodId(b as u32));
        }
        let locals: Vec<Set> = (0..n as u32).map(|i| Set(std::iter::once(i).collect())).collect();
        let out = solve_interprocedural(&locals, &callees);
        // Reference: DFS transitive closure.
        for m in 0..n {
            let mut seen = vec![false; n];
            let mut stack = vec![m];
            while let Some(v) = stack.pop() {
                if std::mem::replace(&mut seen[v], true) {
                    continue;
                }
                stack.extend(callees[v].iter().map(|c| c.index()).filter(|&c| !seen[c]));
            }
            let expect: std::collections::BTreeSet<u32> =
                (0..n).filter(|&v| seen[v]).map(|v| v as u32).collect();
            prop_assert_eq!(&out[m].0, &expect, "summary[{}] is not the closure", m);
            for c in &callees[m] {
                prop_assert!(out[c.index()].0.is_subset(&out[m].0));
            }
        }
    }
}
