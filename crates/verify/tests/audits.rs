//! Seeded-violation tests for the three paper-assumption audits: PEA fold
//! soundness, clinit purity (static vs. dynamic effects), and the
//! reachability cross-check. Each audit gets at least one fabricated
//! violation it must flag and a clean fixture it must pass.

use std::collections::HashSet;

use nimage_analysis::{analyze, AnalysisConfig, CallGraph};
use nimage_compiler::{compile, InlineConfig, InstrumentConfig};
use nimage_heap::{
    run_initializers_logged, snapshot, ClinitEffects, EffectLog, HeapBuildConfig, HeapSnapshot,
    ObjId, StepBudget,
};
use nimage_ir::{Intrinsic, MethodId, Program, ProgramBuilder, TypeRef};
use nimage_profiler::{Trace, TraceRecord};
use nimage_verify::{
    pea::check_pea_soundness,
    purity::{check_clinit_purity, check_effect_log, effect_summaries},
    reachcheck::check_reachability,
    Diagnostic, Severity,
};

fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code).collect()
}

// ---------------------------------------------------------------------------
// PEA fold soundness

/// A clinit building a small aliased object graph:
///
/// ```text
/// Holder.A ──► a ──next──► shared ◄──next── b ◄── Holder.B
///              └──alt───► solo
/// ```
///
/// `solo` has in-degree 1 (the only sound fold candidate); `shared` has
/// in-degree 2; `a` and `b` are root-reachable with in-degree 0.
fn alias_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let node = pb.add_class("q.Node", None);
    let next = pb.add_instance_field(node, "next", TypeRef::Object(node));
    let alt = pb.add_instance_field(node, "alt", TypeRef::Object(node));
    let holder = pb.add_class("q.Holder", None);
    let fa = pb.add_static_field(holder, "A", TypeRef::Object(node));
    let fb = pb.add_static_field(holder, "B", TypeRef::Object(node));
    let cl = pb.declare_clinit(holder);
    let mut f = pb.body(cl);
    let a = f.new_object(node);
    let b = f.new_object(node);
    let shared = f.new_object(node);
    let solo = f.new_object(node);
    f.put_field(a, next, shared);
    f.put_field(b, next, shared);
    f.put_field(a, alt, solo);
    f.put_static(fa, a);
    f.put_static(fb, b);
    f.ret(None);
    pb.finish_body(cl, f);
    let mc = pb.add_class("q.Main", None);
    let main = pb.declare_static(mc, "main", &[], None);
    let mut f = pb.body(main);
    let _ = f.get_static(fa);
    let _ = f.get_static(fb);
    f.ret(None);
    pb.finish_body(main, f);
    pb.set_entry(main);
    pb.build().expect("structurally valid")
}

fn alias_snapshot(p: &Program) -> HeapSnapshot {
    let reach = analyze(p, &AnalysisConfig::default());
    let cp = compile(
        p,
        reach,
        &InlineConfig::default(),
        InstrumentConfig::NONE,
        None,
    );
    snapshot(p, &cp, &HeapBuildConfig::default()).expect("snapshot")
}

/// Rebuilds `snap` with every object satisfying `pick` force-folded —
/// removed from the entry list and recorded in the folded set — bypassing
/// the folding pass's own eligibility filter.
fn force_fold(p: &Program, snap: &HeapSnapshot, pick: &dyn Fn(u32) -> bool) -> HeapSnapshot {
    let mut folded: HashSet<ObjId> = snap.folded().clone();
    let entries: Vec<_> = snap
        .entries()
        .iter()
        .filter(|e| {
            if pick(count_inbound(p, snap, e.obj)) {
                folded.insert(e.obj);
                false
            } else {
                true
            }
        })
        .cloned()
        .collect();
    HeapSnapshot::from_parts(snap.heap().clone(), entries, folded)
}

fn count_inbound(_p: &Program, snap: &HeapSnapshot, obj: ObjId) -> u32 {
    let mut n = 0;
    for e in snap.entries() {
        for (_, child) in snap.heap().get(e.obj).references() {
            if child == obj {
                n += 1;
            }
        }
    }
    n
}

#[test]
fn sound_single_use_fold_passes() {
    let p = alias_program();
    let snap = alias_snapshot(&p);
    // Fold only `solo` (in-degree exactly 1, non-root).
    let snap = force_fold(&p, &snap, &|inbound| inbound == 1);
    assert!(!snap.folded().is_empty(), "fixture folded nothing");
    let diags = check_pea_soundness(&p, &snap);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn aliased_fold_is_flagged() {
    let p = alias_program();
    let snap = alias_snapshot(&p);
    // Fold `shared` (in-degree 2): two surviving objects still point at it.
    let snap = force_fold(&p, &snap, &|inbound| inbound == 2);
    let diags = check_pea_soundness(&p, &snap);
    assert_eq!(codes(&diags), vec!["pea::aliased-fold"], "{diags:?}");
    assert_eq!(diags[0].severity, Severity::Error);
    assert!(diags[0].message.contains("2 inbound references"));
}

#[test]
fn root_only_fold_is_flagged() {
    let p = alias_program();
    let snap = alias_snapshot(&p);
    // Fold the root-reachable `a`/`b` (in-degree 0): the static fields'
    // materialized pointers would dangle.
    let snap = force_fold(&p, &snap, &|inbound| inbound == 0);
    let diags = check_pea_soundness(&p, &snap);
    assert!(!diags.is_empty());
    assert!(
        diags.iter().all(|d| d.code == "pea::folded-root"),
        "{diags:?}"
    );
}

#[test]
fn folded_but_still_listed_is_flagged() {
    let p = alias_program();
    let snap = alias_snapshot(&p);
    // Mark an object folded without removing its entry.
    let victim = snap.entries()[0].obj;
    let mut folded = snap.folded().clone();
    folded.insert(victim);
    let snap = HeapSnapshot::from_parts(snap.heap().clone(), snap.entries().to_vec(), folded);
    let diags = check_pea_soundness(&p, &snap);
    assert!(codes(&diags).contains(&"pea::folded-entry"), "{diags:?}");
}

#[test]
fn pipeline_folds_are_audited_clean() {
    // The real folding pass (optimized config) must produce only folds the
    // audit accepts.
    let p = alias_program();
    let reach = analyze(&p, &AnalysisConfig::default());
    let cp = compile(
        &p,
        reach,
        &InlineConfig::default(),
        InstrumentConfig::NONE,
        None,
    );
    let cfg = HeapBuildConfig {
        pea_fold: true,
        pea_fold_ratio: 1,
        ..HeapBuildConfig::default()
    };
    let snap = snapshot(&p, &cp, &cfg).expect("snapshot");
    let diags = check_pea_soundness(&p, &snap);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// Clinit purity

/// Two classes in one parallel-init group communicating through a static
/// field: `P.<clinit>` writes `P.F`, `Q.<clinit>` reads it — the snapshot
/// depends on which runs first.
fn order_dependent_program() -> (Program, Vec<MethodId>) {
    let mut pb = ProgramBuilder::new();
    let pc = pb.add_class("g.P", None);
    let f_shared = pb.add_static_field(pc, "F", TypeRef::Int);
    let p_init = pb.declare_clinit(pc);
    let mut f = pb.body(p_init);
    let one = f.iconst(1);
    f.put_static(f_shared, one);
    f.ret(None);
    pb.finish_body(p_init, f);

    let qc = pb.add_class("g.Q", None);
    let f_own = pb.add_static_field(qc, "G", TypeRef::Int);
    let q_init = pb.declare_clinit(qc);
    let mut f = pb.body(q_init);
    let v = f.get_static(f_shared);
    f.put_static(f_own, v);
    f.ret(None);
    pb.finish_body(q_init, f);

    // Same parallel-init group → permutable by the snapshot stage.
    pb.set_init_group(qc, 0);
    pb.set_init_group(pc, 0);

    let mc = pb.add_class("g.Main", None);
    let main = pb.declare_static(mc, "main", &[], None);
    let mut f = pb.body(main);
    let _ = f.get_static(f_own);
    f.ret(None);
    pb.finish_body(main, f);
    pb.set_entry(main);
    let p = pb.build().expect("structurally valid");
    (p, vec![p_init, q_init])
}

#[test]
fn order_dependent_group_is_flagged_as_warning() {
    let (p, inits) = order_dependent_program();
    let cg = CallGraph::build(&p);
    let summaries = effect_summaries(&p, &cg);
    let diags = check_clinit_purity(&p, &inits, &summaries);
    let od: Vec<_> = diags
        .iter()
        .filter(|d| d.code == "clinit::order-dependent")
        .collect();
    assert_eq!(od.len(), 1, "{diags:?}");
    assert_eq!(od[0].severity, Severity::Warning);
    assert!(od[0].entity.contains("g.P.F"), "{:?}", od[0]);
}

#[test]
fn impure_initializer_effects_are_classified() {
    // One clinit with every impure effect: writes another class's static,
    // writes a foreign object's field, performs build-time I/O, spawns.
    let mut pb = ProgramBuilder::new();
    let node = pb.add_class("i.Node", None);
    let val = pb.add_instance_field(node, "v", TypeRef::Int);
    let owner = pb.add_class("i.Owner", None);
    let f_obj = pb.add_static_field(owner, "O", TypeRef::Object(node));
    let f_other = pb.add_static_field(owner, "X", TypeRef::Int);
    let o_init = pb.declare_clinit(owner);
    let mut f = pb.body(o_init);
    let o = f.new_object(node);
    f.put_static(f_obj, o);
    f.ret(None);
    pb.finish_body(o_init, f);

    let bad = pb.add_class("i.Bad", None);
    let b_init = pb.declare_clinit(bad);
    let worker = pb.declare_static(bad, "work", &[], None);
    let mut f = pb.body(worker);
    f.ret(None);
    pb.finish_body(worker, f);
    let mut f = pb.body(b_init);
    let one = f.iconst(1);
    f.put_static(f_other, one); // foreign static write
    let o = f.get_static(f_obj); // foreign object …
    f.put_field(o, val, one); // … written
    f.intrinsic(Intrinsic::Respond, &[one], false); // build-time I/O
    f.spawn(worker, &[]); // build-time spawn
    f.ret(None);
    pb.finish_body(b_init, f);

    let mc = pb.add_class("i.Main", None);
    let main = pb.declare_static(mc, "main", &[], None);
    let mut f = pb.body(main);
    let _ = f.get_static(f_obj);
    f.ret(None);
    pb.finish_body(main, f);
    pb.set_entry(main);
    let p = pb.build().expect("structurally valid");

    let cg = CallGraph::build(&p);
    let summaries = effect_summaries(&p, &cg);
    let diags = check_clinit_purity(&p, &[o_init, b_init], &summaries);
    let got = codes(&diags);
    for want in [
        "clinit::foreign-static-write",
        "clinit::escaped-heap-write",
        "clinit::build-time-io",
        "clinit::spawn",
    ] {
        assert!(got.contains(&want), "missing {want} in {got:?}");
    }
    assert!(diags.iter().all(|d| d.severity == Severity::Warning));
}

#[test]
fn unpredicted_dynamic_effect_is_an_error() {
    let (p, inits) = order_dependent_program();
    let cg = CallGraph::build(&p);
    let summaries = effect_summaries(&p, &cg);
    // Fabricate a log claiming the first clinit performed I/O — the static
    // summary says it cannot.
    let log = EffectLog {
        per_init: vec![(
            inits[0],
            ClinitEffects {
                io_events: 1,
                ..ClinitEffects::default()
            },
        )],
    };
    let diags = check_effect_log(&p, &summaries, &log);
    assert_eq!(codes(&diags), vec!["clinit::effects-unsound"], "{diags:?}");
    assert_eq!(diags[0].severity, Severity::Error);
}

#[test]
fn static_summaries_cover_real_execution() {
    // Run the real build-time interpreter with effect logging and check
    // the static summaries over-approximate everything it observed.
    for p in [alias_program(), order_dependent_program().0] {
        let reach = analyze(&p, &AnalysisConfig::default());
        let inits: Vec<MethodId> = nimage_heap::init_order(&p, &reach, &HeapBuildConfig::default());
        let (_heap, log) =
            run_initializers_logged(&p, &inits, StepBudget::default()).expect("inits run");
        let cg = CallGraph::build(&p);
        let summaries = effect_summaries(&p, &cg);
        let diags = check_effect_log(&p, &summaries, &log);
        assert!(diags.is_empty(), "{diags:?}");
    }
}

// ---------------------------------------------------------------------------
// Reachability cross-check

#[test]
fn trace_escape_and_unknown_cu_are_errors() {
    let p = alias_program();
    let reach = analyze(&p, &AnalysisConfig::default());
    let cp = compile(
        &p,
        reach,
        &InlineConfig::default(),
        InstrumentConfig::FULL,
        None,
    );

    let trace = Trace {
        strings: vec![
            "ghost.Phantom.run()".to_string(),
            "ghost.Phantom.cu()".to_string(),
        ],
        threads: vec![vec![
            TraceRecord::MethodEntry { sig: 0 },
            TraceRecord::CuEntry { sig: 1 },
        ]],
    };
    let diags = check_reachability(&p, &cp, &trace);
    let got = codes(&diags);
    assert!(got.contains(&"reach::trace-escape"), "{diags:?}");
    assert!(got.contains(&"reach::unknown-cu"), "{diags:?}");
    assert!(diags
        .iter()
        .filter(|d| d.code.starts_with("reach::"))
        .all(|d| d.severity == Severity::Error || d.code == "reach::cold-cu"));
}

/// A program with two run-time methods and inlining off, so the compile
/// stage produces one CU per method.
fn two_cu_parts() -> (Program, nimage_compiler::CompiledProgram) {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("r.Main", None);
    let helper = pb.declare_static(c, "helper", &[], Some(TypeRef::Int));
    let mut f = pb.body(helper);
    let v = f.iconst(7);
    f.ret(Some(v));
    pb.finish_body(helper, f);
    let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(main);
    let v = f.call_static(helper, &[], true).expect("ret");
    f.ret(Some(v));
    pb.finish_body(main, f);
    pb.set_entry(main);
    let p = pb.build().expect("structurally valid");
    let reach = analyze(&p, &AnalysisConfig::default());
    let inline = InlineConfig {
        inline_threshold: 0,
        ..InlineConfig::default()
    };
    let cp = compile(&p, reach, &inline, InstrumentConfig::FULL, None);
    (p, cp)
}

#[test]
fn cold_cus_are_reported_once_as_layout_waste() {
    let (p, cp) = two_cu_parts();
    let roots = cp.root_signatures(&p);
    assert!(roots.len() >= 2, "fixture needs ≥2 CUs, got {roots:?}");

    // Enter exactly one CU; the rest are cold.
    let trace = Trace {
        strings: vec![roots[0].clone()],
        threads: vec![vec![TraceRecord::CuEntry { sig: 0 }]],
    };
    let diags = check_reachability(&p, &cp, &trace);
    let cold: Vec<_> = diags
        .iter()
        .filter(|d| d.code == "reach::cold-cu")
        .collect();
    assert_eq!(cold.len(), 1, "{diags:?}");
    assert_eq!(cold[0].severity, Severity::Warning);
    assert!(
        cold[0]
            .message
            .contains(&format!("{} of {} CUs", roots.len() - 1, roots.len())),
        "{:?}",
        cold[0]
    );
    assert!(!codes(&diags).contains(&"reach::unknown-cu"));
}

#[test]
fn consistent_trace_is_clean() {
    let (p, cp) = two_cu_parts();
    let roots = cp.root_signatures(&p);
    let main_sig = p.method_signature(p.entry.expect("entry"));
    assert!(roots.contains(&main_sig));
    let trace = Trace {
        strings: vec![main_sig],
        threads: vec![vec![
            TraceRecord::CuEntry { sig: 0 },
            TraceRecord::MethodEntry { sig: 0 },
        ]],
    };
    let diags = check_reachability(&p, &cp, &trace);
    let errors: Vec<_> = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert!(errors.is_empty(), "{errors:?}");
}
