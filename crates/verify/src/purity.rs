//! Clinit purity analysis.
//!
//! Native Image executes class initializers at build time, possibly in
//! parallel — the paper identifies this as a source of build
//! non-determinism (Sec. 2) and the snapshot stage models it by permuting
//! initializers within a parallel-init group. Snapshotting is only
//! *order-independent* if initializers sharing a group do not communicate:
//! no initializer writes state another one reads, writes heap objects an
//! earlier one created, or performs I/O-like effects whose order is
//! observable.
//!
//! This module classifies initializer side effects statically — a
//! [`MayForeign`] forward dataflow per body (which locals may reference
//! objects the method did not allocate itself) composed over the
//! conservative call graph by the interprocedural summary driver — and
//! checks the classification two ways:
//!
//! * [`check_clinit_purity`] reports impure initializers and
//!   order-dependent parallel groups as warnings (the grouped workload
//!   clinits are *deliberately* order-dependent: they model the paper's
//!   divergence, so they flag but do not fail the build);
//! * [`check_effect_log`] compares the static summaries against a dynamic
//!   [`EffectLog`] recorded by the build-time interpreter; a dynamic
//!   effect the static summary missed is an **error** — the analysis
//!   under-approximated, and every conclusion drawn from it is suspect.

use std::collections::{BTreeMap, BTreeSet};

use nimage_analysis::CallGraph;
use nimage_heap::EffectLog;
use nimage_ir::{FieldId, Instr, Intrinsic, Method, MethodId, Program, Terminator};

use crate::dataflow::{self, Analysis, BitFact, Direction, SummaryLattice};
use crate::Diagnostic;

/// Static side-effect summary of one method, transitively including its
/// callees once closed by [`effect_summaries`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EffectSummary {
    /// Static fields possibly read.
    pub statics_read: BTreeSet<FieldId>,
    /// Static fields possibly written.
    pub statics_written: BTreeSet<FieldId>,
    /// Whether a field/array write may target an object the method (or a
    /// callee) did not allocate itself.
    pub may_foreign_write: bool,
    /// Whether an I/O-like intrinsic (`respond`) may execute.
    pub io: bool,
    /// Whether a `spawn` may execute.
    pub spawns: bool,
}

impl SummaryLattice for EffectSummary {
    fn join(&mut self, other: &Self) -> bool {
        let reads = self.statics_read.len();
        let writes = self.statics_written.len();
        self.statics_read.extend(other.statics_read.iter().copied());
        self.statics_written
            .extend(other.statics_written.iter().copied());
        let flags = (self.may_foreign_write, self.io, self.spawns);
        self.may_foreign_write |= other.may_foreign_write;
        self.io |= other.io;
        self.spawns |= other.spawns;
        reads != self.statics_read.len()
            || writes != self.statics_written.len()
            || flags != (self.may_foreign_write, self.io, self.spawns)
    }
}

/// Forward may-hold-foreign-reference analysis: a local is in the fact if
/// it may reference an object the method did not allocate during its own
/// execution. Parameters, static loads, field/array loads and call results
/// are foreign; fresh allocations and scalars are not.
struct MayForeign;

impl Analysis for MayForeign {
    type Fact = BitFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, m: &Method) -> BitFact {
        let mut f = BitFact::empty(m.n_locals as usize);
        for p in 0..m.param_locals() as usize {
            f.insert(p);
        }
        f
    }

    fn bottom(&self, m: &Method) -> BitFact {
        BitFact::empty(m.n_locals as usize)
    }

    fn join(&self, into: &mut BitFact, from: &BitFact) -> bool {
        into.union(from)
    }

    fn transfer_instr(&self, instr: &Instr, fact: &mut BitFact) {
        match instr {
            // Fresh allocations and scalar producers yield non-foreign
            // destinations.
            Instr::New(d, _)
            | Instr::NewArray(d, _, _)
            | Instr::StrConcat(d, _, _)
            | Instr::ConstInt(d, _)
            | Instr::ConstDouble(d, _)
            | Instr::ConstBool(d, _)
            | Instr::ConstNull(d)
            | Instr::Bin(_, d, _, _)
            | Instr::Un(_, d, _)
            | Instr::ArrayLen(d, _)
            | Instr::StrLen(d, _)
            | Instr::StrCharAt(d, _, _) => fact.remove(d.index()),
            // Loads out of shared state, interned literals and call
            // results may all reference pre-existing objects.
            Instr::ConstStr(d, _)
            | Instr::GetStatic(d, _)
            | Instr::GetField(d, _, _)
            | Instr::ArrayGet(d, _, _) => fact.insert(d.index()),
            Instr::Move(d, s) => {
                if fact.contains(s.index()) {
                    fact.insert(d.index());
                } else {
                    fact.remove(d.index());
                }
            }
            Instr::Call { dst, .. } => {
                if let Some(d) = dst {
                    fact.insert(d.index());
                }
            }
            // Intrinsics return scalars (or nothing).
            Instr::Intrinsic { dst, .. } => {
                if let Some(d) = dst {
                    fact.remove(d.index());
                }
            }
            Instr::PutField(..)
            | Instr::PutStatic(..)
            | Instr::ArraySet(..)
            | Instr::Spawn { .. } => {}
        }
    }
}

/// Computes the intraprocedural effect summary of one method body.
fn local_summary(m: &Method) -> EffectSummary {
    let mut s = EffectSummary::default();
    if m.blocks.is_empty() {
        return s;
    }
    let cfg = nimage_ir::Cfg::new(m);
    let sol = dataflow::solve_with_cfg(&MayForeign, m, &cfg);
    for (b, block) in m.blocks.iter().enumerate() {
        if !cfg.reachable[b] {
            continue;
        }
        let mut fact = sol.before[b].clone();
        for instr in &block.instrs {
            match instr {
                Instr::GetStatic(_, f) => {
                    s.statics_read.insert(*f);
                }
                Instr::PutStatic(f, _) => {
                    s.statics_written.insert(*f);
                }
                Instr::PutField(obj, _, _) if fact.contains(obj.index()) => {
                    s.may_foreign_write = true;
                }
                Instr::ArraySet(arr, _, _) if fact.contains(arr.index()) => {
                    s.may_foreign_write = true;
                }
                Instr::Intrinsic { op, .. } if *op == Intrinsic::Respond => {
                    s.io = true;
                }
                Instr::Spawn { .. } => {
                    s.spawns = true;
                }
                _ => {}
            }
            MayForeign.transfer_instr(instr, &mut fact);
        }
        let _: &Terminator = &block.terminator; // terminators have no effects
    }
    s
}

/// Closes the per-method effect summaries over the call graph: each
/// method's summary absorbs its callees' (spawned methods are *not*
/// absorbed — a build-time spawn is a recorded no-op whose target never
/// runs; the spawn itself is flagged via [`EffectSummary::spawns`]).
pub fn effect_summaries(program: &Program, cg: &CallGraph) -> Vec<EffectSummary> {
    let locals: Vec<EffectSummary> = program.methods().iter().map(local_summary).collect();
    dataflow::solve_interprocedural(&locals, &cg.callees)
}

/// Classifies the build-time initializers of `inits` (in snapshot
/// execution order) against their static summaries.
///
/// Emitted codes (all warnings — the grouped workload initializers are
/// deliberately order-dependent, modelling the paper's divergence):
///
/// * `clinit::foreign-static-write` — an initializer writes a static field
///   owned by another class;
/// * `clinit::escaped-heap-write` — an initializer may write fields of
///   objects it did not allocate (state created by earlier initializers);
/// * `clinit::build-time-io` — an I/O-like intrinsic may run at build time;
/// * `clinit::spawn` — an initializer reaches a `spawn` (a build-time
///   no-op, silently diverging from run-time semantics);
/// * `clinit::order-dependent` — within one parallel-init group, a static
///   field is written by one member and accessed by another, so the
///   snapshot depends on the permutation the build seed picks.
pub fn check_clinit_purity(
    program: &Program,
    inits: &[MethodId],
    summaries: &[EffectSummary],
) -> Vec<Diagnostic> {
    let mut out = vec![];
    for &m in inits {
        let s = &summaries[m.index()];
        let sig = program.method_signature(m);
        let owner = program.method(m).owner;
        let foreign_writes: Vec<FieldId> = s
            .statics_written
            .iter()
            .copied()
            .filter(|&f| program.field(f).owner != owner)
            .collect();
        if !foreign_writes.is_empty() {
            let names: Vec<String> = foreign_writes
                .iter()
                .map(|&f| program.field_signature(f))
                .collect();
            out.push(Diagnostic::warning(
                "clinit::foreign-static-write",
                &sig,
                format!(
                    "initializer writes static field(s) of other classes: {}",
                    names.join(", ")
                ),
            ));
        }
        if s.may_foreign_write {
            out.push(Diagnostic::warning(
                "clinit::escaped-heap-write",
                &sig,
                "initializer may write fields of objects it did not allocate \
                 (heap state from earlier initializers)",
            ));
        }
        if s.io {
            out.push(Diagnostic::warning(
                "clinit::build-time-io",
                &sig,
                "initializer may perform an I/O-like intrinsic at image build time",
            ));
        }
        if s.spawns {
            out.push(Diagnostic::warning(
                "clinit::spawn",
                &sig,
                "initializer reaches a spawn, which is a no-op at build time \
                 (silent behavioral divergence from run time)",
            ));
        }
    }

    // Order dependence inside parallel-init groups: a field written by one
    // member and accessed by another makes the group's snapshot contents
    // depend on the seed-chosen permutation.
    let mut groups: BTreeMap<u32, Vec<MethodId>> = BTreeMap::new();
    for &m in inits {
        let g = program.class(program.method(m).owner).init_group;
        groups.entry(g).or_default().push(m);
    }
    for (g, members) in groups {
        if members.len() < 2 {
            continue;
        }
        // field -> (writers, accessors) among the group's members.
        let mut by_field: BTreeMap<FieldId, (u32, u32)> = BTreeMap::new();
        for &m in &members {
            let s = &summaries[m.index()];
            for &f in &s.statics_written {
                let e = by_field.entry(f).or_insert((0, 0));
                e.0 += 1;
                e.1 += 1;
            }
            for &f in &s.statics_read {
                if !s.statics_written.contains(&f) {
                    by_field.entry(f).or_insert((0, 0)).1 += 1;
                }
            }
        }
        for (f, (writers, accessors)) in by_field {
            if writers >= 1 && accessors >= 2 {
                out.push(Diagnostic::warning(
                    "clinit::order-dependent",
                    program.field_signature(f),
                    format!(
                        "static field is written by {writers} and accessed by {accessors} \
                         initializer(s) of parallel-init group {g}; snapshot contents depend \
                         on their execution order"
                    ),
                ));
            }
        }
    }
    out
}

/// Checks that the static summaries over-approximate a dynamic
/// [`EffectLog`] recorded by the build-time interpreter.
///
/// Any effect observed at build time that the static analysis did not
/// predict is an **error** (`clinit::effects-unsound`): the purity
/// classification — and anything trusting it — under-approximates real
/// behavior.
pub fn check_effect_log(
    program: &Program,
    summaries: &[EffectSummary],
    log: &EffectLog,
) -> Vec<Diagnostic> {
    let mut out = vec![];
    for (m, fx) in &log.per_init {
        let s = &summaries[m.index()];
        let sig = program.method_signature(*m);
        let mut unsound = |what: String| {
            out.push(Diagnostic::error(
                "clinit::effects-unsound",
                &sig,
                format!("dynamic effect not predicted by the static summary: {what}"),
            ));
        };
        for &f in fx.statics_read.difference(&s.statics_read) {
            unsound(format!("read of {}", program.field_signature(f)));
        }
        for &f in fx.statics_written.difference(&s.statics_written) {
            unsound(format!("write of {}", program.field_signature(f)));
        }
        if fx.foreign_writes > 0 && !s.may_foreign_write {
            unsound(format!(
                "{} write(s) to objects allocated by earlier initializers",
                fx.foreign_writes
            ));
        }
        if fx.io_events > 0 && !s.io {
            unsound(format!("{} I/O intrinsic invocation(s)", fx.io_events));
        }
        if fx.spawn_events > 0 && !s.spawns {
            unsound(format!("{} spawn(s)", fx.spawn_events));
        }
    }
    out
}
