//! Determinism audit: run ordering and layout twice under perturbed
//! allocation and diff the results.
//!
//! `HashMap`'s iteration order varies between instances (`RandomState` is
//! seeded per map), so any pipeline stage that iterates a `HashMap` to
//! produce an order leaks nondeterminism into the image. The audit
//! executes the analyze → compile → snapshot → order → layout chain twice
//! — with deliberately different intervening heap activity, so allocator
//! state and hasher seeds differ between runs — and requires byte-identical
//! image files plus identical ordering CSVs.
//!
//! [`audit_profiling_determinism`] extends the same discipline to the
//! *profiling* build (steps 1–3 of the paper's Fig. 1): instrumented
//! compile, VM run, and trace replay each execute twice around allocator
//! perturbation, requiring byte-identical trace files and identical
//! ordering profiles — and the replay additionally runs chunk-parallel,
//! which must merge to the serial result.

use std::collections::HashMap;

use nimage_analysis::{analyze, AnalysisConfig};
use nimage_compiler::{compile, InlineConfig, InstrumentConfig};
use nimage_heap::{snapshot, HeapBuildConfig};
use nimage_image::{write_image_file, BinaryImage, ImageOptions};
use nimage_ir::Program;
use nimage_order::{
    assign_ids, order_cus, order_objects, replay_first_access, CodeGranularity, CodeOrderProfile,
    HeapOrderProfile, HeapStrategy,
};
use nimage_profiler::write_trace;
use nimage_vm::{StopWhen, Vm, VmConfig};

use crate::Diagnostic;

/// Profiles to replay during the audit, if any. With `None` profiles the
/// audit still exercises the default (alphabetical / snapshot) orders.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeterminismInputs<'a> {
    /// Code-ordering profile applied via `order_cus`.
    pub cu_profile: Option<&'a CodeOrderProfile>,
    /// Heap-ordering profile applied via `order_objects`.
    pub heap_profile: Option<&'a HeapOrderProfile>,
    /// Identity strategy for heap matching.
    pub heap_strategy: Option<HeapStrategy>,
}

/// Outcome of [`audit_determinism`].
#[derive(Debug, Clone)]
pub struct DeterminismReport {
    /// Serialized image files of both runs are byte-identical.
    pub image_identical: bool,
    /// CU-order CSVs (index, cu, offset, signature) are identical.
    pub cu_order_identical: bool,
    /// Object-order CSVs (index, object, offset, identity) are identical.
    pub object_order_identical: bool,
    /// One error per differing artifact; empty when deterministic. A run
    /// failure (build-time execution error) is also reported here.
    pub diagnostics: Vec<Diagnostic>,
}

impl DeterminismReport {
    /// Whether both runs agreed on everything.
    pub fn is_deterministic(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Artifacts of one pipeline run the audit compares.
struct RunArtifacts {
    image_bytes: Vec<u8>,
    cu_csv: String,
    object_csv: String,
}

/// Runs the back half of the pipeline twice and diffs the results.
pub fn audit_determinism(program: &Program, inputs: &DeterminismInputs<'_>) -> DeterminismReport {
    let first = run_once(program, inputs);
    perturb_allocator(0x35);
    let second = run_once(program, inputs);

    let (a, b) = match (first, second) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            return DeterminismReport {
                image_identical: false,
                cu_order_identical: false,
                object_order_identical: false,
                diagnostics: vec![Diagnostic::error(
                    "determinism::run-failed",
                    "pipeline",
                    format!("audit run failed: {e}"),
                )],
            }
        }
    };

    let mut diagnostics = vec![];
    let image_identical = a.image_bytes == b.image_bytes;
    if !image_identical {
        diagnostics.push(Diagnostic::error(
            "determinism::image",
            "image file",
            format!(
                "serialized images differ between identical runs ({} vs {} bytes, first \
                 difference at byte {})",
                a.image_bytes.len(),
                b.image_bytes.len(),
                first_difference(&a.image_bytes, &b.image_bytes),
            ),
        ));
    }
    let cu_order_identical = a.cu_csv == b.cu_csv;
    if !cu_order_identical {
        diagnostics.push(Diagnostic::error(
            "determinism::cu-order",
            ".text order",
            format!(
                "CU orders differ between identical runs; first differing line: {}",
                first_differing_line(&a.cu_csv, &b.cu_csv),
            ),
        ));
    }
    let object_order_identical = a.object_csv == b.object_csv;
    if !object_order_identical {
        diagnostics.push(Diagnostic::error(
            "determinism::object-order",
            ".svm_heap order",
            format!(
                "object orders differ between identical runs; first differing line: {}",
                first_differing_line(&a.object_csv, &b.object_csv),
            ),
        ));
    }
    DeterminismReport {
        image_identical,
        cu_order_identical,
        object_order_identical,
        diagnostics,
    }
}

fn run_once(program: &Program, inputs: &DeterminismInputs<'_>) -> Result<RunArtifacts, String> {
    let reach = analyze(program, &AnalysisConfig::default());
    let compiled = compile(
        program,
        reach,
        &InlineConfig::default(),
        InstrumentConfig::NONE,
        None,
    );
    let snap = snapshot(program, &compiled, &HeapBuildConfig::default())
        .map_err(|e| format!("heap snapshot failed: {e:?}"))?;

    let cu_order = inputs
        .cu_profile
        .map(|p| order_cus(program, &compiled, p, CodeGranularity::Cu));
    let strategy = inputs.heap_strategy.unwrap_or(HeapStrategy::HeapPath);
    let ids = assign_ids(program, &snap, strategy);
    let object_order = inputs.heap_profile.map(|p| order_objects(&snap, &ids, p));

    let image = BinaryImage::build(
        &compiled,
        &snap,
        cu_order,
        object_order,
        ImageOptions::default(),
    );
    let image_bytes = write_image_file(&image).to_vec();

    let mut cu_csv = String::from("index,cu,offset,signature\n");
    for (i, &cu) in image.cu_order.iter().enumerate() {
        cu_csv.push_str(&format!(
            "{i},{cu},{},{}\n",
            image.cu_offset(cu),
            program.method_signature(compiled.cu(cu).root),
        ));
    }
    let mut object_csv = String::from("index,object,offset,identity\n");
    for (i, &obj) in image.object_order.iter().enumerate() {
        object_csv.push_str(&format!(
            "{i},{obj},{},{}\n",
            image.object_offset(obj).unwrap_or(u64::MAX),
            ids.get(&obj).copied().unwrap_or(0),
        ));
    }
    Ok(RunArtifacts {
        image_bytes,
        cu_csv,
        object_csv,
    })
}

/// Outcome of [`audit_profiling_determinism`].
#[derive(Debug, Clone)]
pub struct ProfilingDeterminismReport {
    /// Serialized trace files of both instrumented runs are byte-identical.
    pub trace_identical: bool,
    /// Replayed ordering profiles (CU, method, heap) are identical.
    pub profiles_identical: bool,
    /// The chunk-parallel replay merged to the serial replay's profiles
    /// (checked within each run).
    pub parallel_replay_identical: bool,
    /// One error per differing artifact; empty when deterministic.
    pub diagnostics: Vec<Diagnostic>,
}

impl ProfilingDeterminismReport {
    /// Whether both instrumented runs agreed on everything.
    pub fn is_deterministic(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Profiling-run artifacts the audit compares.
struct ProfilingArtifacts {
    trace_bytes: Vec<u8>,
    /// `cu_order.csv` ++ `method_order.csv` ++ heap ids, one artifact per
    /// line, exactly what the post-processing framework would persist.
    profile_csv: String,
    parallel_matches_serial: bool,
}

/// Runs the profiling build (instrumented compile → VM run → trace
/// replay) twice under allocator perturbation and diffs trace bytes and
/// ordering profiles. The replay runs both serially and chunk-parallel
/// on four workers; a merge that depends on chunk interleaving fails the
/// audit even if it is stable across the two runs.
///
/// `stop` must match the workload class: server-style programs park in
/// an accept loop and never exit, so auditing them under
/// [`StopWhen::Exit`] would spin forever — pass the same stop condition
/// the measured profiling run uses (e.g. `StopWhen::FirstResponse`).
pub fn audit_profiling_determinism(
    program: &Program,
    stop: StopWhen,
) -> ProfilingDeterminismReport {
    let first = profiling_run_once(program, stop);
    perturb_allocator(0x2b);
    let second = profiling_run_once(program, stop);

    let (a, b) = match (first, second) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            return ProfilingDeterminismReport {
                trace_identical: false,
                profiles_identical: false,
                parallel_replay_identical: false,
                diagnostics: vec![Diagnostic::error(
                    "determinism::run-failed",
                    "profiling build",
                    format!("audit run failed: {e}"),
                )],
            }
        }
    };

    let mut diagnostics = vec![];
    let trace_identical = a.trace_bytes == b.trace_bytes;
    if !trace_identical {
        diagnostics.push(Diagnostic::error(
            "determinism::trace",
            "trace file",
            format!(
                "serialized traces differ between identical profiling runs ({} vs {} bytes, \
                 first difference at byte {})",
                a.trace_bytes.len(),
                b.trace_bytes.len(),
                first_difference(&a.trace_bytes, &b.trace_bytes),
            ),
        ));
    }
    let profiles_identical = a.profile_csv == b.profile_csv;
    if !profiles_identical {
        diagnostics.push(Diagnostic::error(
            "determinism::profiles",
            "ordering profiles",
            format!(
                "replayed profiles differ between identical profiling runs; first differing \
                 line: {}",
                first_differing_line(&a.profile_csv, &b.profile_csv),
            ),
        ));
    }
    let parallel_replay_identical = a.parallel_matches_serial && b.parallel_matches_serial;
    if !parallel_replay_identical {
        diagnostics.push(Diagnostic::error(
            "determinism::parallel-replay",
            "trace replay",
            "chunk-parallel replay does not merge to the serial replay's profiles".to_string(),
        ));
    }
    ProfilingDeterminismReport {
        trace_identical,
        profiles_identical,
        parallel_replay_identical,
        diagnostics,
    }
}

fn profiling_run_once(program: &Program, stop: StopWhen) -> Result<ProfilingArtifacts, String> {
    let reach = analyze(program, &AnalysisConfig::default());
    let compiled = compile(
        program,
        reach,
        &InlineConfig::default(),
        InstrumentConfig::FULL,
        None,
    );
    let snap = snapshot(program, &compiled, &HeapBuildConfig::default())
        .map_err(|e| format!("heap snapshot failed: {e:?}"))?;
    let image = BinaryImage::build(&compiled, &snap, None, None, ImageOptions::default());

    let cfg = VmConfig::default();
    let vm = Vm::new(program, &compiled, &snap, &image, cfg.clone());
    let report = vm
        .run(stop)
        .map_err(|e| format!("instrumented run failed: {e:?}"))?;
    let trace = report.trace.ok_or("instrumented run produced no trace")?;
    let trace_bytes = write_trace(&trace).to_vec();

    let ids = assign_ids(program, &snap, HeapStrategy::HeapPath);
    let serial = replay_first_access(program, &trace, &ids, cfg.max_paths, 1)
        .map_err(|e| format!("serial replay failed: {e:?}"))?;
    let parallel = replay_first_access(program, &trace, &ids, cfg.max_paths, 4)
        .map_err(|e| format!("parallel replay failed: {e:?}"))?;
    let parallel_matches_serial = serial.cu_order == parallel.cu_order
        && serial.method_order == parallel.method_order
        && serial.object_order == parallel.object_order;

    let mut profile_csv = String::from("artifact,value\n");
    for sig in &serial.cu_order {
        profile_csv.push_str(&format!("cu,{sig}\n"));
    }
    for sig in &serial.method_order {
        profile_csv.push_str(&format!("method,{sig}\n"));
    }
    for id in &serial.heap_profile(&ids).ids {
        profile_csv.push_str(&format!("heap,{id:016x}\n"));
    }
    Ok(ProfilingArtifacts {
        trace_bytes,
        profile_csv,
        parallel_matches_serial,
    })
}

/// Shifts allocator and hasher state between runs: performs `n` heap
/// allocations of varying sizes and builds a few `HashMap`s so subsequent
/// `RandomState` seeds and allocation addresses differ from the first
/// run's. `std::hint::black_box` keeps the allocations live.
fn perturb_allocator(n: usize) {
    let mut keep: Vec<Vec<u8>> = Vec::with_capacity(n);
    for i in 0..n {
        keep.push(vec![0u8; 17 + 31 * i]);
    }
    let mut maps: Vec<HashMap<usize, usize>> = vec![];
    for _ in 0..4 {
        let mut m = HashMap::new();
        for i in 0..n {
            m.insert(i, i.wrapping_mul(0x9e37_79b9));
        }
        maps.push(m);
    }
    std::hint::black_box(&keep);
    std::hint::black_box(&maps);
}

fn first_difference(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

fn first_differing_line(a: &str, b: &str) -> String {
    for (la, lb) in a.lines().zip(b.lines()) {
        if la != lb {
            return format!("{la:?} vs {lb:?}");
        }
    }
    "(lengths differ)".to_string()
}
