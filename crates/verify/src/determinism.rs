//! Determinism audit: run ordering and layout twice under perturbed
//! allocation and diff the results.
//!
//! `HashMap`'s iteration order varies between instances (`RandomState` is
//! seeded per map), so any pipeline stage that iterates a `HashMap` to
//! produce an order leaks nondeterminism into the image. The audit
//! executes the analyze → compile → snapshot → order → layout chain twice
//! — with deliberately different intervening heap activity, so allocator
//! state and hasher seeds differ between runs — and requires byte-identical
//! image files plus identical ordering CSVs.

use std::collections::HashMap;

use nimage_analysis::{analyze, AnalysisConfig};
use nimage_compiler::{compile, InlineConfig, InstrumentConfig};
use nimage_heap::{snapshot, HeapBuildConfig};
use nimage_image::{write_image_file, BinaryImage, ImageOptions};
use nimage_ir::Program;
use nimage_order::{
    assign_ids, order_cus, order_objects, CodeGranularity, CodeOrderProfile, HeapOrderProfile,
    HeapStrategy,
};

use crate::Diagnostic;

/// Profiles to replay during the audit, if any. With `None` profiles the
/// audit still exercises the default (alphabetical / snapshot) orders.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeterminismInputs<'a> {
    /// Code-ordering profile applied via `order_cus`.
    pub cu_profile: Option<&'a CodeOrderProfile>,
    /// Heap-ordering profile applied via `order_objects`.
    pub heap_profile: Option<&'a HeapOrderProfile>,
    /// Identity strategy for heap matching.
    pub heap_strategy: Option<HeapStrategy>,
}

/// Outcome of [`audit_determinism`].
#[derive(Debug, Clone)]
pub struct DeterminismReport {
    /// Serialized image files of both runs are byte-identical.
    pub image_identical: bool,
    /// CU-order CSVs (index, cu, offset, signature) are identical.
    pub cu_order_identical: bool,
    /// Object-order CSVs (index, object, offset, identity) are identical.
    pub object_order_identical: bool,
    /// One error per differing artifact; empty when deterministic. A run
    /// failure (build-time execution error) is also reported here.
    pub diagnostics: Vec<Diagnostic>,
}

impl DeterminismReport {
    /// Whether both runs agreed on everything.
    pub fn is_deterministic(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Artifacts of one pipeline run the audit compares.
struct RunArtifacts {
    image_bytes: Vec<u8>,
    cu_csv: String,
    object_csv: String,
}

/// Runs the back half of the pipeline twice and diffs the results.
pub fn audit_determinism(program: &Program, inputs: &DeterminismInputs<'_>) -> DeterminismReport {
    let first = run_once(program, inputs);
    perturb_allocator(0x35);
    let second = run_once(program, inputs);

    let (a, b) = match (first, second) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            return DeterminismReport {
                image_identical: false,
                cu_order_identical: false,
                object_order_identical: false,
                diagnostics: vec![Diagnostic::error(
                    "determinism::run-failed",
                    "pipeline",
                    format!("audit run failed: {e}"),
                )],
            }
        }
    };

    let mut diagnostics = vec![];
    let image_identical = a.image_bytes == b.image_bytes;
    if !image_identical {
        diagnostics.push(Diagnostic::error(
            "determinism::image",
            "image file",
            format!(
                "serialized images differ between identical runs ({} vs {} bytes, first \
                 difference at byte {})",
                a.image_bytes.len(),
                b.image_bytes.len(),
                first_difference(&a.image_bytes, &b.image_bytes),
            ),
        ));
    }
    let cu_order_identical = a.cu_csv == b.cu_csv;
    if !cu_order_identical {
        diagnostics.push(Diagnostic::error(
            "determinism::cu-order",
            ".text order",
            format!(
                "CU orders differ between identical runs; first differing line: {}",
                first_differing_line(&a.cu_csv, &b.cu_csv),
            ),
        ));
    }
    let object_order_identical = a.object_csv == b.object_csv;
    if !object_order_identical {
        diagnostics.push(Diagnostic::error(
            "determinism::object-order",
            ".svm_heap order",
            format!(
                "object orders differ between identical runs; first differing line: {}",
                first_differing_line(&a.object_csv, &b.object_csv),
            ),
        ));
    }
    DeterminismReport {
        image_identical,
        cu_order_identical,
        object_order_identical,
        diagnostics,
    }
}

fn run_once(program: &Program, inputs: &DeterminismInputs<'_>) -> Result<RunArtifacts, String> {
    let reach = analyze(program, &AnalysisConfig::default());
    let compiled = compile(
        program,
        reach,
        &InlineConfig::default(),
        InstrumentConfig::NONE,
        None,
    );
    let snap = snapshot(program, &compiled, &HeapBuildConfig::default())
        .map_err(|e| format!("heap snapshot failed: {e:?}"))?;

    let cu_order = inputs
        .cu_profile
        .map(|p| order_cus(program, &compiled, p, CodeGranularity::Cu));
    let strategy = inputs.heap_strategy.unwrap_or(HeapStrategy::HeapPath);
    let ids = assign_ids(program, &snap, strategy);
    let object_order = inputs.heap_profile.map(|p| order_objects(&snap, &ids, p));

    let image = BinaryImage::build(
        &compiled,
        &snap,
        cu_order,
        object_order,
        ImageOptions::default(),
    );
    let image_bytes = write_image_file(&image).to_vec();

    let mut cu_csv = String::from("index,cu,offset,signature\n");
    for (i, &cu) in image.cu_order.iter().enumerate() {
        cu_csv.push_str(&format!(
            "{i},{cu},{},{}\n",
            image.cu_offset(cu),
            program.method_signature(compiled.cu(cu).root),
        ));
    }
    let mut object_csv = String::from("index,object,offset,identity\n");
    for (i, &obj) in image.object_order.iter().enumerate() {
        object_csv.push_str(&format!(
            "{i},{obj},{},{}\n",
            image.object_offset(obj).unwrap_or(u64::MAX),
            ids.get(&obj).copied().unwrap_or(0),
        ));
    }
    Ok(RunArtifacts {
        image_bytes,
        cu_csv,
        object_csv,
    })
}

/// Shifts allocator and hasher state between runs: performs `n` heap
/// allocations of varying sizes and builds a few `HashMap`s so subsequent
/// `RandomState` seeds and allocation addresses differ from the first
/// run's. `std::hint::black_box` keeps the allocations live.
fn perturb_allocator(n: usize) {
    let mut keep: Vec<Vec<u8>> = Vec::with_capacity(n);
    for i in 0..n {
        keep.push(vec![0u8; 17 + 31 * i]);
    }
    let mut maps: Vec<HashMap<usize, usize>> = vec![];
    for _ in 0..4 {
        let mut m = HashMap::new();
        for i in 0..n {
            m.insert(i, i.wrapping_mul(0x9e37_79b9));
        }
        maps.push(m);
    }
    std::hint::black_box(&keep);
    std::hint::black_box(&maps);
}

fn first_difference(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

fn first_differing_line(a: &str, b: &str) -> String {
    for (la, lb) in a.lines().zip(b.lines()) {
        if la != lb {
            return format!("{la:?} vs {lb:?}");
        }
    }
    "(lengths differ)".to_string()
}
