//! IR dataflow lints.
//!
//! These go beyond the structural checks of `ir::validate`: they reason
//! about the control-flow graph of each method body. Severity policy:
//! use-before-def, call/field/return inconsistencies and vtable
//! unsoundness are errors; unreachable blocks and dead stores are
//! warnings, because the program builder legitimately emits both (e.g.
//! the join block after an `if` whose branches both return, or a
//! `get_static` whose result feeds only a discarded binding).
//!
//! Dead-store analysis is suppressed in class initializers: builder
//! generators materialize static state there through idiomatic
//! local-per-constant sequences (`iconst`/`new_object` results threaded
//! into `put_static`/`array_set` chains), leaving a tail local per
//! constant that nothing reads. Flagging those drowned real findings —
//! on Bounce they were 125 of 128 dead-store warnings — so the lint
//! scopes itself to hand-reachable code (`Static`/`Virtual` methods).

use std::collections::BTreeSet;

use nimage_analysis::Reachability;
use nimage_ir::{Callee, Cfg, Instr, Local, Method, MethodId, MethodKind, Program, Terminator};

use crate::dataflow::{self, Analysis, BitFact, Direction};
use crate::Diagnostic;

/// Locals read by a terminator.
fn terminator_uses(t: &Terminator) -> Option<Local> {
    match t {
        Terminator::Ret(l) => *l,
        Terminator::Jump(_) => None,
        Terminator::Br { cond, .. } => Some(*cond),
    }
}

/// Forward may-be-unassigned analysis: a local is in the fact if some path
/// from entry reaches the program point without assigning it. This is the
/// complement of the classic "definitely assigned" intersection analysis,
/// phrased as a union lattice so the generic least-fixpoint solver applies
/// directly.
struct MayUnassigned;

impl Analysis for MayUnassigned {
    type Fact = BitFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, m: &Method) -> BitFact {
        let mut f = BitFact::full(m.n_locals as usize);
        for p in 0..m.param_locals() as usize {
            f.remove(p);
        }
        f
    }

    fn bottom(&self, m: &Method) -> BitFact {
        BitFact::empty(m.n_locals as usize)
    }

    fn join(&self, into: &mut BitFact, from: &BitFact) -> bool {
        into.union(from)
    }

    fn transfer_instr(&self, instr: &Instr, fact: &mut BitFact) {
        if let Some(d) = instr.dst() {
            fact.remove(d.index());
        }
    }
}

/// Backward liveness: a local is in the fact if some path from the program
/// point reads it before any reassignment.
struct Liveness;

impl Analysis for Liveness {
    type Fact = BitFact;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self, m: &Method) -> BitFact {
        BitFact::empty(m.n_locals as usize)
    }

    fn bottom(&self, m: &Method) -> BitFact {
        BitFact::empty(m.n_locals as usize)
    }

    fn join(&self, into: &mut BitFact, from: &BitFact) -> bool {
        into.union(from)
    }

    fn transfer_instr(&self, instr: &Instr, fact: &mut BitFact) {
        if let Some(d) = instr.dst() {
            fact.remove(d.index());
        }
        for src in instr.sources() {
            fact.insert(src.index());
        }
    }

    fn transfer_terminator(&self, term: &Terminator, fact: &mut BitFact) {
        if let Some(l) = terminator_uses(term) {
            fact.insert(l.index());
        }
    }
}

/// Lints every method body of `program`.
///
/// Emitted codes: `ir::use-before-def`, `ir::unreachable-block`,
/// `ir::dead-store` plus the per-instruction consistency codes of
/// [`lint_method`].
pub fn lint_program(program: &Program) -> Vec<Diagnostic> {
    let mut out = vec![];
    for (i, m) in program.methods().iter().enumerate() {
        lint_method(program, MethodId(i as u32), m, &mut out);
    }
    out
}

/// Lints one method body, appending findings to `out`.
pub fn lint_method(program: &Program, id: MethodId, m: &Method, out: &mut Vec<Diagnostic>) {
    if m.blocks.is_empty() {
        return; // bodyless declaration; ir::validate owns that check
    }
    let sig = program.method_signature(id);
    let cfg = Cfg::new(m);

    for (b, r) in cfg.reachable.iter().enumerate() {
        if !r {
            out.push(Diagnostic::warning(
                "ir::unreachable-block",
                &sig,
                format!("block b{b} is unreachable from entry"),
            ));
        }
    }

    lint_use_before_def(&sig, m, &cfg, out);
    if m.kind != MethodKind::ClassInit {
        lint_dead_stores(&sig, m, &cfg, out);
    }

    for (b, block) in m.blocks.iter().enumerate() {
        if !cfg.reachable[b] {
            continue;
        }
        for (i, instr) in block.instrs.iter().enumerate() {
            lint_instr_consistency(program, &sig, b, i, instr, out);
        }
        if let Terminator::Ret(val) = &block.terminator {
            if val.is_some() != m.ret.is_some() {
                out.push(Diagnostic::error(
                    "ir::ret-mismatch",
                    &sig,
                    format!(
                        "block b{b} returns {} but the method signature declares {}",
                        if val.is_some() { "a value" } else { "nothing" },
                        if m.ret.is_some() { "a value" } else { "void" },
                    ),
                ));
            }
        }
    }
}

/// Use-before-def as a forward [`MayUnassigned`] dataflow on the generic
/// solver; a read of a local inside the may-unassigned fact is an error,
/// reported once per local.
fn lint_use_before_def(sig: &str, m: &Method, cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    let sol = dataflow::solve_with_cfg(&MayUnassigned, m, cfg);
    let mut reported: BTreeSet<u16> = BTreeSet::new();
    for (b, block) in m.blocks.iter().enumerate() {
        if !cfg.reachable[b] {
            continue;
        }
        let mut fact = sol.before[b].clone();
        let mut check = |fact: &BitFact, l: Local, at: String, out: &mut Vec<Diagnostic>| {
            if fact.contains(l.index()) && reported.insert(l.0) {
                out.push(Diagnostic::error(
                    "ir::use-before-def",
                    sig,
                    format!("local {l} read at {at} before any assignment on some path"),
                ));
            }
        };
        for (i, instr) in block.instrs.iter().enumerate() {
            for src in instr.sources() {
                check(&fact, src, format!("b{b}[{i}]"), out);
            }
            MayUnassigned.transfer_instr(instr, &mut fact);
        }
        if let Some(l) = terminator_uses(&block.terminator) {
            check(&fact, l, format!("b{b}[term]"), out);
        }
    }
}

/// Dead stores via backward [`Liveness`] on the generic solver: a store to
/// a non-parameter local that no path reads before reassignment or exit.
/// Reported once per local at its first dead site in program order; the
/// message distinguishes fully dead locals (never read anywhere) from
/// stores shadowed by a later reassignment.
fn lint_dead_stores(sig: &str, m: &Method, cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    let sol = dataflow::solve_with_cfg(&Liveness, m, cfg);

    // Locals with any reachable read at all, to pick the right message.
    let n = m.n_locals as usize;
    let mut read_somewhere = BitFact::empty(n);
    for (b, block) in m.blocks.iter().enumerate() {
        if !cfg.reachable[b] {
            continue;
        }
        for instr in &block.instrs {
            for src in instr.sources() {
                read_somewhere.insert(src.index());
            }
        }
        if let Some(l) = terminator_uses(&block.terminator) {
            read_somewhere.insert(l.index());
        }
    }

    let mut reported: BTreeSet<u16> = BTreeSet::new();
    for (b, block) in m.blocks.iter().enumerate() {
        if !cfg.reachable[b] {
            continue;
        }
        // Walk the block backwards so the fact at each instruction is the
        // liveness state *after* it.
        let mut fact = sol.after[b].clone();
        let mut dead: Vec<(usize, Local)> = vec![];
        Liveness.transfer_terminator(&block.terminator, &mut fact);
        for (i, instr) in block.instrs.iter().enumerate().rev() {
            if let Some(d) = instr.dst() {
                if d.index() >= m.param_locals() as usize && !fact.contains(d.index()) {
                    dead.push((i, d));
                }
            }
            Liveness.transfer_instr(instr, &mut fact);
        }
        for (i, d) in dead.into_iter().rev() {
            if reported.insert(d.0) {
                let why = if read_somewhere.contains(d.index()) {
                    "overwritten before any read"
                } else {
                    "never read"
                };
                out.push(Diagnostic::warning(
                    "ir::dead-store",
                    sig,
                    format!("local {d} is assigned at b{b}[{i}] but {why}"),
                ));
            }
        }
    }
}

/// Per-instruction consistency: call arity and result use, field
/// static/instance polarity.
fn lint_instr_consistency(
    program: &Program,
    sig: &str,
    b: usize,
    i: usize,
    instr: &Instr,
    out: &mut Vec<Diagnostic>,
) {
    let at = format!("b{b}[{i}]");
    match instr {
        Instr::Call { dst, callee, args } => {
            let target = match callee {
                Callee::Static(m) => Some(*m),
                Callee::Virtual { declared, selector } => {
                    let resolved = program.resolve_virtual(*declared, *selector);
                    if resolved.is_none() {
                        out.push(Diagnostic::error(
                            "ir::call-unresolved",
                            sig,
                            format!(
                                "virtual call at {at} on {} has no target for selector {}",
                                program.class(*declared).name,
                                program.selector_name(*selector),
                            ),
                        ));
                    }
                    resolved
                }
            };
            if let Some(t) = target {
                let callee_m = program.method(t);
                let expected = callee_m.param_locals() as usize;
                if args.len() != expected {
                    out.push(Diagnostic::error(
                        "ir::call-arity",
                        sig,
                        format!(
                            "call at {at} to {} passes {} argument(s), callee takes {expected}",
                            program.method_signature(t),
                            args.len(),
                        ),
                    ));
                }
                if dst.is_some() && callee_m.ret.is_none() {
                    out.push(Diagnostic::error(
                        "ir::call-ret",
                        sig,
                        format!(
                            "call at {at} stores the result of void method {}",
                            program.method_signature(t),
                        ),
                    ));
                }
            }
        }
        Instr::GetField(_, _, f) | Instr::PutField(_, f, _) if program.field(*f).is_static => {
            out.push(Diagnostic::error(
                "ir::field-kind",
                sig,
                format!(
                    "instance access at {at} targets static field {}",
                    program.field_signature(*f),
                ),
            ));
        }
        Instr::GetStatic(_, f) | Instr::PutStatic(f, _) if !program.field(*f).is_static => {
            out.push(Diagnostic::error(
                "ir::field-kind",
                sig,
                format!(
                    "static access at {at} targets instance field {}",
                    program.field_signature(*f),
                ),
            ));
        }
        _ => {}
    }
}

/// Checks the devirtualization targets computed by `nimage-analysis`
/// against the class hierarchy: every recorded target of a virtual call
/// site must be a virtual method with the site's selector, declared on a
/// class related to the static receiver type, and arity-compatible.
pub fn lint_virtual_targets(program: &Program, reach: &Reachability) -> Vec<Diagnostic> {
    let mut out = vec![];
    let mut sites: Vec<_> = reach.virtual_targets.iter().collect();
    sites.sort_by_key(|(site, _)| **site);
    for (site, targets) in sites {
        let caller_sig = program.method_signature(site.method);
        let at = format!("b{}[{}]", site.block, site.instr);
        let caller = program.method(site.method);
        let instr = caller
            .blocks
            .get(site.block)
            .and_then(|blk| blk.instrs.get(site.instr));
        let Some(Instr::Call {
            callee: Callee::Virtual { declared, selector },
            args,
            ..
        }) = instr
        else {
            out.push(Diagnostic::error(
                "ir::vtable",
                &caller_sig,
                format!("recorded virtual call site {at} is not a virtual call"),
            ));
            continue;
        };
        for &t in targets {
            let tm = program.method(t);
            let tsig = program.method_signature(t);
            if tm.kind != MethodKind::Virtual {
                out.push(Diagnostic::error(
                    "ir::vtable",
                    &caller_sig,
                    format!("site {at}: devirtualized target {tsig} is not a virtual method"),
                ));
                continue;
            }
            if tm.selector != *selector {
                out.push(Diagnostic::error(
                    "ir::vtable",
                    &caller_sig,
                    format!(
                        "site {at}: target {tsig} answers selector {}, site dispatches {}",
                        program.selector_name(tm.selector),
                        program.selector_name(*selector),
                    ),
                ));
            }
            // An override lives below the declared receiver class; an
            // inherited implementation lives above it.
            if !program.is_subclass(tm.owner, *declared)
                && !program.is_subclass(*declared, tm.owner)
            {
                out.push(Diagnostic::error(
                    "ir::vtable",
                    &caller_sig,
                    format!(
                        "site {at}: target {tsig} owner {} is unrelated to receiver type {}",
                        program.class(tm.owner).name,
                        program.class(*declared).name,
                    ),
                ));
            }
            if args.len() != tm.param_locals() as usize {
                out.push(Diagnostic::error(
                    "ir::vtable",
                    &caller_sig,
                    format!(
                        "site {at}: target {tsig} takes {} locals, site passes {}",
                        tm.param_locals(),
                        args.len(),
                    ),
                ));
            }
        }
    }
    out
}
