//! IR dataflow lints.
//!
//! These go beyond the structural checks of `ir::validate`: they reason
//! about the control-flow graph of each method body. Severity policy:
//! use-before-def, call/field/return inconsistencies and vtable
//! unsoundness are errors; unreachable blocks and dead stores are
//! warnings, because the program builder legitimately emits both (e.g.
//! the join block after an `if` whose branches both return, or a
//! `get_static` whose result feeds only a discarded binding).
//!
//! Dead-store analysis is suppressed in class initializers: builder
//! generators materialize static state there through idiomatic
//! local-per-constant sequences (`iconst`/`new_object` results threaded
//! into `put_static`/`array_set` chains), leaving a tail local per
//! constant that nothing reads. Flagging those drowned real findings —
//! on Bounce they were 125 of 128 dead-store warnings — so the lint
//! scopes itself to hand-reachable code (`Static`/`Virtual` methods).

use std::collections::BTreeSet;

use nimage_analysis::Reachability;
use nimage_ir::{Callee, Instr, Local, Method, MethodId, MethodKind, Program, Terminator};

use crate::Diagnostic;

/// A dense bitset over the locals of one method body.
#[derive(Clone, PartialEq, Eq)]
struct LocalSet {
    words: Vec<u64>,
}

impl LocalSet {
    fn empty(n: usize) -> Self {
        LocalSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    fn contains(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }
}

/// An interleaved arena of equally-sized bitsets: all the dataflow state
/// of one method (every block's out-set plus the working sets) lives in a
/// single allocation, indexed by set number — instead of one heap
/// allocation per block per fixpoint iteration.
struct BitArena {
    words: Vec<u64>,
    stride: usize,
    /// Valid bits of the last word of each set; ⊤-fills are masked with it
    /// so set equality stays exact.
    last_mask: u64,
}

impl BitArena {
    fn new(sets: usize, bits: usize) -> Self {
        BitArena {
            words: vec![0; sets * bits.div_ceil(64)],
            stride: bits.div_ceil(64),
            last_mask: if bits.is_multiple_of(64) {
                !0
            } else {
                (1u64 << (bits % 64)) - 1
            },
        }
    }

    fn range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.stride..(set + 1) * self.stride
    }

    fn insert(&mut self, set: usize, bit: usize) {
        self.words[set * self.stride + bit / 64] |= 1 << (bit % 64);
    }

    fn contains(&self, set: usize, bit: usize) -> bool {
        self.words[set * self.stride + bit / 64] >> (bit % 64) & 1 == 1
    }

    /// Sets every bit of `set` (the lattice ⊤).
    fn fill(&mut self, set: usize) {
        let r = self.range(set);
        self.words[r.clone()].fill(!0);
        if let Some(last) = self.words[r].last_mut() {
            *last &= self.last_mask;
        }
    }

    fn copy(&mut self, dst: usize, src: usize) {
        let r = self.range(src);
        self.words.copy_within(r, dst * self.stride);
    }

    fn intersect(&mut self, dst: usize, src: usize) {
        for k in 0..self.stride {
            self.words[dst * self.stride + k] &= self.words[src * self.stride + k];
        }
    }

    fn equals(&self, a: usize, b: usize) -> bool {
        self.words[self.range(a)] == self.words[self.range(b)]
    }
}

/// Blocks reachable from the entry block via terminator successors.
fn reachable_blocks(m: &Method) -> Vec<bool> {
    let mut reachable = vec![false; m.blocks.len()];
    if m.blocks.is_empty() {
        return reachable;
    }
    let mut stack = vec![0usize];
    reachable[0] = true;
    while let Some(b) = stack.pop() {
        for s in m.blocks[b].terminator.successors() {
            if !reachable[s.index()] {
                reachable[s.index()] = true;
                stack.push(s.index());
            }
        }
    }
    reachable
}

/// Locals read by a terminator.
fn terminator_uses(t: &Terminator) -> Option<Local> {
    match t {
        Terminator::Ret(l) => *l,
        Terminator::Jump(_) => None,
        Terminator::Br { cond, .. } => Some(*cond),
    }
}

/// Lints every method body of `program`.
///
/// Emitted codes: `ir::use-before-def`, `ir::unreachable-block`,
/// `ir::dead-store` plus the per-instruction consistency codes of
/// [`lint_method`].
pub fn lint_program(program: &Program) -> Vec<Diagnostic> {
    let mut out = vec![];
    for (i, m) in program.methods().iter().enumerate() {
        lint_method(program, MethodId(i as u32), m, &mut out);
    }
    out
}

/// Lints one method body, appending findings to `out`.
pub fn lint_method(program: &Program, id: MethodId, m: &Method, out: &mut Vec<Diagnostic>) {
    if m.blocks.is_empty() {
        return; // bodyless declaration; ir::validate owns that check
    }
    let sig = program.method_signature(id);
    let reachable = reachable_blocks(m);

    for (b, r) in reachable.iter().enumerate() {
        if !r {
            out.push(Diagnostic::warning(
                "ir::unreachable-block",
                &sig,
                format!("block b{b} is unreachable from entry"),
            ));
        }
    }

    lint_use_before_def(&sig, m, &reachable, out);
    if m.kind != MethodKind::ClassInit {
        lint_dead_stores(&sig, m, &reachable, out);
    }

    for (b, block) in m.blocks.iter().enumerate() {
        if !reachable[b] {
            continue;
        }
        for (i, instr) in block.instrs.iter().enumerate() {
            lint_instr_consistency(program, &sig, b, i, instr, out);
        }
        if let Terminator::Ret(val) = &block.terminator {
            if val.is_some() != m.ret.is_some() {
                out.push(Diagnostic::error(
                    "ir::ret-mismatch",
                    &sig,
                    format!(
                        "block b{b} returns {} but the method signature declares {}",
                        if val.is_some() { "a value" } else { "nothing" },
                        if m.ret.is_some() { "a value" } else { "void" },
                    ),
                ));
            }
        }
    }
}

/// Forward "definitely assigned" dataflow (set intersection over
/// predecessors); a read of a local outside the in-set is an error.
fn lint_use_before_def(sig: &str, m: &Method, reachable: &[bool], out: &mut Vec<Diagnostic>) {
    let n = m.n_locals as usize;
    let nblocks = m.blocks.len();

    let mut preds: Vec<Vec<usize>> = vec![vec![]; nblocks];
    for (b, block) in m.blocks.iter().enumerate() {
        if reachable[b] {
            for s in block.terminator.successors() {
                preds[s.index()].push(b);
            }
        }
    }

    // Set `b` of the arena is block b's out-set; two extra sets hold the
    // current in-set being built and the constant entry in-set.
    let scratch = nblocks;
    let entry = nblocks + 1;
    let mut sets = BitArena::new(nblocks + 2, n);
    for p in 0..m.param_locals() as usize {
        sets.insert(entry, p);
    }
    let mut computed = vec![false; nblocks];

    // Builds block `b`'s in-set into `scratch`: the entry set for b0,
    // otherwise the intersection over computed predecessors (uncomputed
    // back-edge predecessors are optimistically ⊤).
    let in_set_of = |sets: &mut BitArena, computed: &[bool], b: usize| {
        if b == 0 {
            sets.copy(scratch, entry);
        } else {
            sets.fill(scratch);
            for &p in &preds[b] {
                if computed[p] {
                    sets.intersect(scratch, p);
                }
            }
        }
    };

    // Fixpoint: out-sets start at ⊤ (uncomputed); intersection only
    // shrinks, so this terminates at the greatest fixpoint.
    let mut worklist = vec![0usize];
    while let Some(b) = worklist.pop() {
        in_set_of(&mut sets, &computed, b);
        for instr in &m.blocks[b].instrs {
            if let Some(d) = instr.dst() {
                sets.insert(scratch, d.index());
            }
        }
        if !computed[b] || !sets.equals(scratch, b) {
            sets.copy(b, scratch);
            computed[b] = true;
            for s in m.blocks[b].terminator.successors() {
                if reachable[s.index()] {
                    worklist.push(s.index());
                }
            }
        }
    }

    // Reporting pass over the stabilized in-sets, one finding per local.
    let mut reported: BTreeSet<u16> = BTreeSet::new();
    for (b, block) in m.blocks.iter().enumerate() {
        if !reachable[b] {
            continue;
        }
        in_set_of(&mut sets, &computed, b);
        let mut check = |sets: &BitArena, l: Local, at: String, out: &mut Vec<Diagnostic>| {
            if !sets.contains(scratch, l.index()) && reported.insert(l.0) {
                out.push(Diagnostic::error(
                    "ir::use-before-def",
                    sig,
                    format!("local {l} read at {at} before any assignment on some path"),
                ));
            }
        };
        for (i, instr) in block.instrs.iter().enumerate() {
            for src in instr.sources() {
                check(&sets, src, format!("b{b}[{i}]"), out);
            }
            if let Some(d) = instr.dst() {
                sets.insert(scratch, d.index());
            }
        }
        if let Some(l) = terminator_uses(&block.terminator) {
            check(&sets, l, format!("b{b}[term]"), out);
        }
    }
}

/// Non-parameter locals that are written but never read anywhere in the
/// reachable body.
fn lint_dead_stores(sig: &str, m: &Method, reachable: &[bool], out: &mut Vec<Diagnostic>) {
    let n = m.n_locals as usize;
    let mut read = LocalSet::empty(n);
    let mut written: Vec<Option<(usize, usize)>> = vec![None; n];
    for (b, block) in m.blocks.iter().enumerate() {
        if !reachable[b] {
            continue;
        }
        for (i, instr) in block.instrs.iter().enumerate() {
            for src in instr.sources() {
                read.insert(src.index());
            }
            if let Some(d) = instr.dst() {
                written[d.index()].get_or_insert((b, i));
            }
        }
        if let Some(l) = terminator_uses(&block.terminator) {
            read.insert(l.index());
        }
    }
    for (l, site) in written.iter().enumerate() {
        if let Some((b, i)) = site {
            if l >= m.param_locals() as usize && !read.contains(l) {
                out.push(Diagnostic::warning(
                    "ir::dead-store",
                    sig,
                    format!("local l{l} is assigned at b{b}[{i}] but never read"),
                ));
            }
        }
    }
}

/// Per-instruction consistency: call arity and result use, field
/// static/instance polarity.
fn lint_instr_consistency(
    program: &Program,
    sig: &str,
    b: usize,
    i: usize,
    instr: &Instr,
    out: &mut Vec<Diagnostic>,
) {
    let at = format!("b{b}[{i}]");
    match instr {
        Instr::Call { dst, callee, args } => {
            let target = match callee {
                Callee::Static(m) => Some(*m),
                Callee::Virtual { declared, selector } => {
                    let resolved = program.resolve_virtual(*declared, *selector);
                    if resolved.is_none() {
                        out.push(Diagnostic::error(
                            "ir::call-unresolved",
                            sig,
                            format!(
                                "virtual call at {at} on {} has no target for selector {}",
                                program.class(*declared).name,
                                program.selector_name(*selector),
                            ),
                        ));
                    }
                    resolved
                }
            };
            if let Some(t) = target {
                let callee_m = program.method(t);
                let expected = callee_m.param_locals() as usize;
                if args.len() != expected {
                    out.push(Diagnostic::error(
                        "ir::call-arity",
                        sig,
                        format!(
                            "call at {at} to {} passes {} argument(s), callee takes {expected}",
                            program.method_signature(t),
                            args.len(),
                        ),
                    ));
                }
                if dst.is_some() && callee_m.ret.is_none() {
                    out.push(Diagnostic::error(
                        "ir::call-ret",
                        sig,
                        format!(
                            "call at {at} stores the result of void method {}",
                            program.method_signature(t),
                        ),
                    ));
                }
            }
        }
        Instr::GetField(_, _, f) | Instr::PutField(_, f, _) if program.field(*f).is_static => {
            out.push(Diagnostic::error(
                "ir::field-kind",
                sig,
                format!(
                    "instance access at {at} targets static field {}",
                    program.field_signature(*f),
                ),
            ));
        }
        Instr::GetStatic(_, f) | Instr::PutStatic(f, _) if !program.field(*f).is_static => {
            out.push(Diagnostic::error(
                "ir::field-kind",
                sig,
                format!(
                    "static access at {at} targets instance field {}",
                    program.field_signature(*f),
                ),
            ));
        }
        _ => {}
    }
}

/// Checks the devirtualization targets computed by `nimage-analysis`
/// against the class hierarchy: every recorded target of a virtual call
/// site must be a virtual method with the site's selector, declared on a
/// class related to the static receiver type, and arity-compatible.
pub fn lint_virtual_targets(program: &Program, reach: &Reachability) -> Vec<Diagnostic> {
    let mut out = vec![];
    let mut sites: Vec<_> = reach.virtual_targets.iter().collect();
    sites.sort_by_key(|(site, _)| **site);
    for (site, targets) in sites {
        let caller_sig = program.method_signature(site.method);
        let at = format!("b{}[{}]", site.block, site.instr);
        let caller = program.method(site.method);
        let instr = caller
            .blocks
            .get(site.block)
            .and_then(|blk| blk.instrs.get(site.instr));
        let Some(Instr::Call {
            callee: Callee::Virtual { declared, selector },
            args,
            ..
        }) = instr
        else {
            out.push(Diagnostic::error(
                "ir::vtable",
                &caller_sig,
                format!("recorded virtual call site {at} is not a virtual call"),
            ));
            continue;
        };
        for &t in targets {
            let tm = program.method(t);
            let tsig = program.method_signature(t);
            if tm.kind != MethodKind::Virtual {
                out.push(Diagnostic::error(
                    "ir::vtable",
                    &caller_sig,
                    format!("site {at}: devirtualized target {tsig} is not a virtual method"),
                ));
                continue;
            }
            if tm.selector != *selector {
                out.push(Diagnostic::error(
                    "ir::vtable",
                    &caller_sig,
                    format!(
                        "site {at}: target {tsig} answers selector {}, site dispatches {}",
                        program.selector_name(tm.selector),
                        program.selector_name(*selector),
                    ),
                ));
            }
            // An override lives below the declared receiver class; an
            // inherited implementation lives above it.
            if !program.is_subclass(tm.owner, *declared)
                && !program.is_subclass(*declared, tm.owner)
            {
                out.push(Diagnostic::error(
                    "ir::vtable",
                    &caller_sig,
                    format!(
                        "site {at}: target {tsig} owner {} is unrelated to receiver type {}",
                        program.class(tm.owner).name,
                        program.class(*declared).name,
                    ),
                ));
            }
            if args.len() != tm.param_locals() as usize {
                out.push(Diagnostic::error(
                    "ir::vtable",
                    &caller_sig,
                    format!(
                        "site {at}: target {tsig} takes {} locals, site passes {}",
                        tm.param_locals(),
                        args.len(),
                    ),
                ));
            }
        }
    }
    out
}
