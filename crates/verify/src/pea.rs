//! PEA-soundness audit.
//!
//! The optimized build's snapshot stage folds objects out of the image,
//! modelling partial-escape-analysis scalar replacement (Sec. 2 of the
//! paper). Folding is only sound for objects that are *single-use and
//! non-escaping*: exactly one reference in the pre-fold object graph, and
//! not directly reachable from a root (a static field, interned string or
//! data-section constant — those are materialized pointers the folded
//! object would dangle).
//!
//! This audit re-derives that property *independently* of the folding
//! pass: it reconstructs the pre-fold object graph (surviving entries ∪
//! folded objects), counts every inbound reference, and flags any folded
//! object the count disproves. A fold whose receiver can alias a
//! root-reachable object would silently corrupt profile/optimized object
//! matching — the failure mode the paper's Sec. 5 matching pipeline
//! assumes away.

use std::collections::HashMap;

use nimage_heap::{HeapSnapshot, ObjId};
use nimage_ir::Program;

use crate::Diagnostic;

/// Audits every folded object of `snap` for single-use non-escaping-ness.
///
/// Emitted codes (all errors):
///
/// * `pea::folded-entry` — an object is marked folded but still present in
///   the surviving entry list (corrupt snapshot bookkeeping);
/// * `pea::folded-root` — a folded object had no inbound reference from
///   the pre-fold graph, i.e. it was reachable only as a root;
/// * `pea::aliased-fold` — a folded object had more than one inbound
///   reference, so a second, unfolded path still expects it.
pub fn check_pea_soundness(program: &Program, snap: &HeapSnapshot) -> Vec<Diagnostic> {
    let mut out = vec![];
    if snap.folded().is_empty() {
        return out;
    }

    // The pre-fold object population: everything surviving plus everything
    // folded. Inbound reference counts are taken over this whole graph —
    // a reference from a folded parent still counted at fold-decision
    // time.
    let mut pre_fold: HashMap<ObjId, bool> = HashMap::new(); // obj -> is_root
    for e in snap.entries() {
        pre_fold.insert(e.obj, e.root.is_some());
    }
    for &o in snap.folded() {
        // Folded objects were non-root entries by construction; if one is
        // *also* still listed, the snapshot is inconsistent.
        pre_fold.entry(o).or_insert(false);
    }

    let mut inbound: HashMap<ObjId, u32> = HashMap::new();
    for &o in pre_fold.keys() {
        for (_, child) in snap.heap().get(o).references() {
            if pre_fold.contains_key(&child) {
                *inbound.entry(child).or_insert(0) += 1;
            }
        }
    }

    let mut folded: Vec<ObjId> = snap.folded().iter().copied().collect();
    folded.sort_unstable();
    for o in folded {
        let entity = format!("obj#{} ({})", o.0, snap.heap().get(o).type_name(program));
        if snap.index_of(o).is_some() {
            out.push(Diagnostic::error(
                "pea::folded-entry",
                &entity,
                "object is marked folded but still present in the snapshot entries",
            ));
            continue;
        }
        match inbound.get(&o).copied().unwrap_or(0) {
            0 => out.push(Diagnostic::error(
                "pea::folded-root",
                &entity,
                "folded object has no inbound reference: it was reachable only as a root, \
                 so folding removed a materialized pointer target",
            )),
            1 => {}
            n => out.push(Diagnostic::error(
                "pea::aliased-fold",
                &entity,
                format!(
                    "folded object has {n} inbound references in the pre-fold graph; \
                     folding is only sound for single-use objects"
                ),
            )),
        }
    }
    out
}
