//! Reachability cross-check.
//!
//! The paper's pipeline trusts the type-based reachability analysis to be
//! conservative: "the points-to analysis is conservative and always
//! includes more code than what is actually reachable or executed at
//! runtime". Profiling, ordering and layout all build on that — a method
//! the analysis missed would be absent from the image and from every
//! ordering decision, yet present in runtime traces.
//!
//! This check closes the loop with the only ground truth available: the
//! recorded traces. Every method-entry and path event in any trace must
//! name a method the compiled image contains ([`check_reachability`]
//! errors otherwise), every CU-entry event must name an actual CU root,
//! and CUs that *no* trace ever enters are reported — in aggregate — as
//! layout waste, the code the paper's reordering pushes out of the
//! startup-hot prefix.

use std::collections::BTreeSet;

use nimage_compiler::CompiledProgram;
use nimage_ir::Program;
use nimage_profiler::{Trace, TraceRecord};

use crate::Diagnostic;

/// Cross-checks `trace` against the compiled image.
///
/// Emitted codes:
///
/// * `reach::trace-escape` (error) — a trace entered a method the
///   reachable set does not contain: the analysis under-approximated;
/// * `reach::unknown-cu` (error) — a CU-entry event names a signature
///   that is not a CU root of this build;
/// * `reach::cold-cu` (warning, at most one) — summary of CUs never
///   entered by any trace thread, with their total byte size.
pub fn check_reachability(
    program: &Program,
    compiled: &CompiledProgram,
    trace: &Trace,
) -> Vec<Diagnostic> {
    let mut out = vec![];
    let reachable = compiled.reachable_method_signatures(program);
    let cu_roots: BTreeSet<String> = compiled.root_signatures(program).into_iter().collect();

    let mut entered_methods: BTreeSet<&str> = BTreeSet::new();
    let mut entered_cus: BTreeSet<&str> = BTreeSet::new();
    for (ti, thread) in trace.threads.iter().enumerate() {
        for rec in thread {
            match rec {
                TraceRecord::CuEntry { sig } => {
                    let s = trace.string(*sig);
                    entered_cus.insert(s);
                    if !cu_roots.contains(s) {
                        out.push(Diagnostic::error(
                            "reach::unknown-cu",
                            s,
                            format!("thread {ti} entered a CU that is not a root of this build"),
                        ));
                    }
                }
                TraceRecord::MethodEntry { sig } => {
                    entered_methods.insert(trace.string(*sig));
                }
                TraceRecord::Path { method, .. } => {
                    entered_methods.insert(trace.string(*method));
                }
            }
        }
    }

    for m in &entered_methods {
        if !reachable.contains(*m) {
            out.push(Diagnostic::error(
                "reach::trace-escape",
                *m,
                "method was entered at run time but is not in the compiled reachable set; \
                 the reachability analysis under-approximated",
            ));
        }
    }

    // Never-entered CUs are not a soundness problem — conservatism is the
    // contract — but they are layout waste the orderer carries around.
    // Only meaningful if the trace records CU entries at all.
    if !entered_cus.is_empty() {
        let mut cold = 0usize;
        let mut cold_bytes = 0u64;
        for (sig, size) in compiled.cu_root_sizes(program) {
            if !entered_cus.contains(sig.as_str()) {
                cold += 1;
                cold_bytes += u64::from(size);
            }
        }
        if cold > 0 {
            out.push(Diagnostic::warning(
                "reach::cold-cu",
                "<image>",
                format!(
                    "{cold} of {} CUs ({cold_bytes} bytes of .text) were never entered by any \
                     trace thread; conservatively-reachable layout waste",
                    compiled.cus.len()
                ),
            ));
        }
    }
    out
}
