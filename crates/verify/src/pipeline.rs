//! Pipeline invariant verifiers: binary layout, profile traces, identity
//! collisions, profile coverage, and the profile/snapshot matching
//! contract of `order_objects`.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use nimage_compiler::CompiledProgram;
use nimage_heap::{HeapSnapshot, ObjId};
use nimage_image::BinaryImage;
use nimage_ir::Program;
use nimage_order::{CodeOrderProfile, HeapOrderProfile};
use nimage_profiler::{Trace, TraceRecord};

use crate::Diagnostic;

/// One placed entity (CU or object) in a [`LayoutView`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Human-readable identity (CU root signature, object id).
    pub label: String,
    /// Absolute offset in the image.
    pub offset: u64,
    /// Size in bytes.
    pub size: u64,
}

/// A layout-checker view of a binary image: sections plus every placed
/// CU and object. Decoupled from [`BinaryImage`] so tests can hand-craft
/// corrupt layouts that `BinaryImage::build` itself would refuse to
/// construct.
#[derive(Debug, Clone)]
pub struct LayoutView {
    /// Page size the layout claims to align to.
    pub page_size: u64,
    /// `.text` section offset (must be 0).
    pub text_offset: u64,
    /// `.text` section size, including the native tail.
    pub text_size: u64,
    /// `.svm_heap` section offset.
    pub heap_offset: u64,
    /// `.svm_heap` section size.
    pub heap_size: u64,
    /// Start of the native tail within `.text`.
    pub native_start: u64,
    /// CU placements.
    pub cus: Vec<Placement>,
    /// Object placements.
    pub objects: Vec<Placement>,
    /// Number of CUs the compiled program expects to be placed.
    pub expected_cus: usize,
    /// Number of snapshot objects expected to be placed.
    pub expected_objects: usize,
}

impl LayoutView {
    /// Extracts the placement view of a built image.
    pub fn from_image(
        program: &Program,
        compiled: &CompiledProgram,
        snapshot: &HeapSnapshot,
        image: &BinaryImage,
    ) -> LayoutView {
        let cus = image
            .cu_order
            .iter()
            .map(|&cu| Placement {
                label: program.method_signature(compiled.cu(cu).root),
                offset: image.cu_offset(cu),
                size: u64::from(compiled.cu(cu).size),
            })
            .collect();
        let objects = image
            .object_order
            .iter()
            .filter_map(|&obj| {
                let offset = image.object_offset(obj)?;
                let size = u64::from(snapshot.entry(obj)?.size);
                Some(Placement {
                    label: obj.to_string(),
                    offset,
                    size,
                })
            })
            .collect();
        LayoutView {
            page_size: image.options.page_size,
            text_offset: image.text.offset,
            text_size: image.text.size,
            heap_offset: image.svm_heap.offset,
            heap_size: image.svm_heap.size,
            native_start: image.native_start,
            cus,
            objects,
            expected_cus: compiled.cus.len(),
            expected_objects: snapshot.entries().len(),
        }
    }
}

/// Verifies a layout view. All findings are errors.
///
/// Checked invariants: sections are page-aligned and disjoint; every
/// expected CU/object is placed exactly once; no two placements of a
/// section overlap; CU placements stay below the native tail (profiled
/// placement must never move native pages); objects stay inside the heap
/// section.
pub fn check_layout(view: &LayoutView) -> Vec<Diagnostic> {
    let mut out = vec![];
    if view.page_size == 0 || !view.page_size.is_power_of_two() {
        out.push(Diagnostic::error(
            "layout::align",
            "image",
            format!("page size {} is not a power of two", view.page_size),
        ));
        return out;
    }
    if view.text_offset != 0 {
        out.push(Diagnostic::error(
            "layout::section",
            ".text",
            format!("section starts at {:#x}, expected 0", view.text_offset),
        ));
    }
    for (name, offset) in [
        (".svm_heap", view.heap_offset),
        ("native tail", view.native_start),
    ] {
        if offset % view.page_size != 0 {
            out.push(Diagnostic::error(
                "layout::align",
                name,
                format!(
                    "starts at {offset:#x}, not page-aligned ({})",
                    view.page_size
                ),
            ));
        }
    }
    if view.heap_offset < view.text_offset + view.text_size {
        out.push(Diagnostic::error(
            "layout::overlap",
            ".svm_heap",
            format!(
                "heap section at {:#x} overlaps .text ending at {:#x}",
                view.heap_offset,
                view.text_offset + view.text_size,
            ),
        ));
    }
    if view.native_start > view.text_size {
        out.push(Diagnostic::error(
            "layout::section",
            "native tail",
            format!(
                "native tail starts at {:#x}, beyond .text end {:#x}",
                view.native_start, view.text_size,
            ),
        ));
    }

    check_placements(
        ".text",
        &view.cus,
        view.expected_cus,
        view.text_offset,
        view.native_start,
        "layout::native-tail",
        &mut out,
    );
    check_placements(
        ".svm_heap",
        &view.objects,
        view.expected_objects,
        view.heap_offset,
        view.heap_offset + view.heap_size,
        "layout::bounds",
        &mut out,
    );
    out
}

/// Coverage, overlap and bounds checks for one section's placements.
fn check_placements(
    section: &str,
    placements: &[Placement],
    expected: usize,
    lo: u64,
    hi: u64,
    bounds_code: &'static str,
    out: &mut Vec<Diagnostic>,
) {
    if placements.len() != expected {
        out.push(Diagnostic::error(
            "layout::coverage",
            section,
            format!("{} placement(s), expected {expected}", placements.len()),
        ));
    }
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for p in placements {
        if !seen.insert(&p.label) {
            out.push(Diagnostic::error(
                "layout::coverage",
                section,
                format!("{} is placed more than once", p.label),
            ));
        }
        if p.offset < lo || p.offset + p.size > hi {
            out.push(Diagnostic::error(
                bounds_code,
                section,
                format!(
                    "{} spans {:#x}..{:#x}, outside {lo:#x}..{hi:#x}",
                    p.label,
                    p.offset,
                    p.offset + p.size,
                ),
            ));
        }
    }
    let mut by_offset: Vec<&Placement> = placements.iter().collect();
    by_offset.sort_by_key(|p| (p.offset, p.size));
    for pair in by_offset.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if a.offset + a.size > b.offset && a.size > 0 && b.size > 0 {
            out.push(Diagnostic::error(
                "layout::overlap",
                section,
                format!(
                    "{} ({:#x}..{:#x}) overlaps {} at {:#x}",
                    a.label,
                    a.offset,
                    a.offset + a.size,
                    b.label,
                    b.offset,
                ),
            ));
        }
    }
}

/// Verifies a profiling trace: string-table indices must resolve
/// (errors), and within each thread a path event for a signature that
/// also has a CU-entry event should not precede that CU entry (warning —
/// the instrumentation emits CU entries first).
pub fn check_trace(trace: &Trace) -> Vec<Diagnostic> {
    let mut out = vec![];
    let n = trace.strings.len() as u32;
    for (t, records) in trace.threads.iter().enumerate() {
        let entity = format!("thread {t}");
        let mut cu_entered: BTreeSet<u32> = BTreeSet::new();
        let mut warned: BTreeSet<u32> = BTreeSet::new();
        let has_cu_entry: BTreeSet<u32> = records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::CuEntry { sig } => Some(*sig),
                _ => None,
            })
            .collect();
        for (i, r) in records.iter().enumerate() {
            let sig = match r {
                TraceRecord::CuEntry { sig } | TraceRecord::MethodEntry { sig } => *sig,
                TraceRecord::Path { method, .. } => *method,
            };
            if sig >= n {
                out.push(Diagnostic::error(
                    "profile::string-index",
                    &entity,
                    format!("record {i} references string {sig}, table has {n}"),
                ));
                continue;
            }
            match r {
                TraceRecord::CuEntry { sig } => {
                    cu_entered.insert(*sig);
                }
                TraceRecord::Path { method, .. } => {
                    if has_cu_entry.contains(method)
                        && !cu_entered.contains(method)
                        && warned.insert(*method)
                    {
                        out.push(Diagnostic::warning(
                            "profile::order",
                            &entity,
                            format!(
                                "path event for {} at record {i} precedes its CU entry",
                                trace.string(*method),
                            ),
                        ));
                    }
                }
                TraceRecord::MethodEntry { .. } => {}
            }
        }
    }
    out
}

/// Collision statistics over a set of 64-bit identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IdAudit {
    /// Total identities audited.
    pub total: usize,
    /// Distinct identity values.
    pub distinct: usize,
    /// Identity values carried by more than one entity.
    pub colliding: usize,
    /// Largest number of entities sharing one identity.
    pub max_multiplicity: usize,
}

/// Audits 64-bit identities (profile ids or strategy-assigned ids) for
/// duplicates.
pub fn audit_ids(ids: impl IntoIterator<Item = u64>) -> IdAudit {
    let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
    let mut total = 0usize;
    for id in ids {
        *counts.entry(id).or_insert(0) += 1;
        total += 1;
    }
    IdAudit {
        total,
        distinct: counts.len(),
        colliding: counts.values().filter(|&&c| c > 1).count(),
        max_multiplicity: counts.values().copied().max().unwrap_or(0),
    }
}

/// Diagnostics for an identity audit: a warning when collisions exist.
/// Collisions are legal (ties keep default order on matching) but erode
/// matching accuracy, which is why the paper segregates incremental-id
/// counters by type.
pub fn id_collision_diagnostics(audit: &IdAudit, entity: &str) -> Vec<Diagnostic> {
    if audit.colliding == 0 {
        return vec![];
    }
    vec![Diagnostic::warning(
        "profile::id-collision",
        entity,
        format!(
            "{} of {} identities are shared ({} distinct, worst multiplicity {})",
            audit.total - audit.distinct + audit.colliding,
            audit.total,
            audit.distinct,
            audit.max_multiplicity,
        ),
    )]
}

/// How much of a code-ordering profile resolves against this build, and
/// how much of this build the profile covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoverageReport {
    /// Signatures named by the profile.
    pub profile_entries: usize,
    /// Profile signatures that resolve to a CU root of this build.
    pub matched: usize,
    /// CUs in this build.
    pub cus: usize,
    /// Distinct CU roots named by the profile.
    pub covered: usize,
}

/// Compares a code-ordering profile against a compiled program.
pub fn profile_coverage(
    program: &Program,
    compiled: &CompiledProgram,
    profile: &CodeOrderProfile,
) -> CoverageReport {
    let roots: BTreeSet<String> = compiled.root_signatures(program).into_iter().collect();
    let named: BTreeSet<&String> = profile.sigs.iter().filter(|s| roots.contains(*s)).collect();
    CoverageReport {
        profile_entries: profile.sigs.len(),
        matched: profile.sigs.iter().filter(|s| roots.contains(*s)).count(),
        cus: compiled.cus.len(),
        covered: named.len(),
    }
}

/// Diagnostics for a coverage report: warnings for unresolvable profile
/// entries (expected across builds with different inlining, but worth
/// surfacing) and for a profile that covers nothing.
pub fn coverage_diagnostics(report: &CoverageReport) -> Vec<Diagnostic> {
    let mut out = vec![];
    if report.matched < report.profile_entries {
        out.push(Diagnostic::warning(
            "profile::coverage",
            "code profile",
            format!(
                "{} of {} profile signature(s) do not resolve to a CU of this build",
                report.profile_entries - report.matched,
                report.profile_entries,
            ),
        ));
    }
    if report.profile_entries > 0 && report.covered == 0 {
        out.push(Diagnostic::warning(
            "profile::coverage",
            "code profile",
            "profile covers no CU of this build; ordering will be the default".to_string(),
        ));
    }
    out
}

/// Verifies the `order_objects` contract on an object order.
///
/// The order must be a permutation of the snapshot in which all matched
/// objects (identity present in the profile) come first in non-decreasing
/// profile rank, identity ties keep their default snapshot order (FIFO),
/// and unmatched objects follow in default snapshot order.
pub fn check_matching(
    snapshot: &HeapSnapshot,
    ids: &HashMap<ObjId, u64>,
    profile: &HeapOrderProfile,
    order: &[ObjId],
) -> Vec<Diagnostic> {
    let mut out = vec![];
    let entity = "object order";

    if order.len() != snapshot.entries().len() {
        out.push(Diagnostic::error(
            "match::permutation",
            entity,
            format!(
                "order has {} object(s), snapshot has {}",
                order.len(),
                snapshot.entries().len(),
            ),
        ));
    }
    let mut seen: BTreeSet<ObjId> = BTreeSet::new();
    for &obj in order {
        if snapshot.index_of(obj).is_none() {
            out.push(Diagnostic::error(
                "match::permutation",
                entity,
                format!("{obj} is not a snapshot object"),
            ));
        }
        if !seen.insert(obj) {
            out.push(Diagnostic::error(
                "match::permutation",
                entity,
                format!("{obj} appears more than once"),
            ));
        }
    }
    if !out.is_empty() {
        return out; // sequence checks assume a permutation
    }

    let mut rank: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, &id) in profile.ids.iter().enumerate() {
        rank.entry(id).or_insert(i);
    }
    let rank_of =
        |obj: ObjId| -> Option<usize> { ids.get(&obj).and_then(|id| rank.get(id)).copied() };

    let mut prev: Option<(ObjId, Option<usize>)> = None;
    for &obj in order {
        let r = rank_of(obj);
        if let Some((pobj, pr)) = prev {
            match (pr, r) {
                (None, Some(_)) => {
                    out.push(Diagnostic::error(
                        "match::partition",
                        entity,
                        format!("matched {obj} is placed after unmatched {pobj}"),
                    ));
                    return out;
                }
                (Some(a), Some(b)) if b < a => {
                    out.push(Diagnostic::error(
                        "match::rank-order",
                        entity,
                        format!("{obj} (profile rank {b}) is placed after {pobj} (rank {a})"),
                    ));
                    return out;
                }
                (Some(a), Some(b))
                    if a == b && snapshot.index_of(obj) < snapshot.index_of(pobj) =>
                {
                    out.push(Diagnostic::error(
                        "match::fifo",
                        entity,
                        format!("identity tie between {pobj} and {obj} breaks snapshot order"),
                    ));
                    return out;
                }
                (None, None) if snapshot.index_of(obj) < snapshot.index_of(pobj) => {
                    out.push(Diagnostic::error(
                        "match::default-order",
                        entity,
                        format!("unmatched {obj} is placed after unmatched {pobj}"),
                    ));
                    return out;
                }
                _ => {}
            }
        }
        prev = Some((obj, r));
    }
    out
}
