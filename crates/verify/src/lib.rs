//! Cross-layer verification for the native-image pipeline.
//!
//! Three analysis families share one [`Diagnostic`] model:
//!
//! * [`irlint`] — IR dataflow lints beyond `ir::validate`: use-before-def,
//!   unreachable blocks, dead stores, call/field/return consistency, and a
//!   vtable-soundness check against `nimage-analysis` devirtualization.
//! * [`pipeline`] — invariant verifiers over pipeline artifacts: binary
//!   layout (no overlaps, page alignment, full coverage), profile traces
//!   (well-formedness, event order, 64-bit identity collisions, coverage),
//!   and the profile/snapshot matching contract of `order_objects`.
//! * [`determinism`] — an audit that runs ordering and layout twice under
//!   perturbed allocation and diffs the results, flagging dependence on
//!   `HashMap` iteration order.
//!
//! Every check returns `Vec<Diagnostic>` rather than failing fast, so the
//! `nimage lint` CLI can report all problems in one pass.

#![warn(missing_docs)]

use std::fmt;

pub mod dataflow;
pub mod determinism;
pub mod irlint;
pub mod pea;
pub mod pipeline;
pub mod purity;
pub mod reachcheck;

pub use determinism::{
    audit_determinism, audit_profiling_determinism, DeterminismInputs, DeterminismReport,
    ProfilingDeterminismReport,
};

/// How severe a diagnostic is.
///
/// Only [`Severity::Error`] diagnostics denote broken invariants; warnings
/// flag suspicious-but-legal artifacts (dead stores, unreachable join
/// blocks, identity collisions) that builder-produced programs may contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not invariant-breaking.
    Warning,
    /// A broken invariant; `nimage lint` exits non-zero.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One finding of a verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Warning or error.
    pub severity: Severity,
    /// Stable machine-readable code, e.g. `ir::use-before-def`.
    pub code: &'static str,
    /// The entity the finding is anchored to (method signature, CU, object,
    /// section, thread), human-readable.
    pub entity: String,
    /// What is wrong.
    pub message: String,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(
        code: &'static str,
        entity: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            entity: entity.into(),
            message: message.into(),
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(
        code: &'static str,
        entity: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code,
            entity: entity.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.entity, self.message
        )
    }
}

/// Whether any diagnostic in `diags` is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// The error diagnostics of `diags`, cloned.
pub fn errors_of(diags: &[Diagnostic]) -> Vec<Diagnostic> {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .cloned()
        .collect()
}

/// Canonicalizes a diagnostic batch for reporting: sorts errors first,
/// then by code, entity and message, and drops exact duplicates.
///
/// Lint families may scan overlapping artifacts (e.g. the same method via
/// two workload programs) and parallel runners may interleave findings;
/// normalizing makes `nimage lint` output deterministic across thread
/// counts and free of repeats.
pub fn normalize(diags: &mut Vec<Diagnostic>) {
    diags.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.code.cmp(b.code))
            .then_with(|| a.entity.cmp(&b.entity))
            .then_with(|| a.message.cmp(&b.message))
    });
    diags.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_error_above_warning() {
        assert!(Severity::Error > Severity::Warning);
    }

    #[test]
    fn normalize_sorts_errors_first_and_dedupes() {
        let mut diags = vec![
            Diagnostic::warning("b::code", "y", "w1"),
            Diagnostic::error("a::code", "x", "e1"),
            Diagnostic::warning("b::code", "y", "w1"),
            Diagnostic::error("a::code", "w", "e0"),
        ];
        normalize(&mut diags);
        assert_eq!(diags.len(), 3);
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].entity, "w");
        assert_eq!(diags[1].entity, "x");
        assert_eq!(diags[2].severity, Severity::Warning);
    }

    #[test]
    fn diagnostic_display_is_greppable() {
        let d = Diagnostic::error("ir::use-before-def", "t.Main.main", "local l3 read unset");
        assert_eq!(
            d.to_string(),
            "error[ir::use-before-def] t.Main.main: local l3 read unset"
        );
        assert!(has_errors(&[d.clone()]));
        assert!(!has_errors(&[Diagnostic::warning("x", "y", "z")]));
        assert_eq!(errors_of(&[Diagnostic::warning("x", "y", "z"), d]).len(), 1);
    }
}
