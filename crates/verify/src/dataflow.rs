//! A generic worklist solver over join-semilattices.
//!
//! Every lint in this crate that reasons about control flow used to carry
//! its own hand-rolled fixpoint loop. This module factors the machinery
//! out once: an [`Analysis`] supplies the lattice (a bottom element, a
//! `join`, and monotone transfer functions over instructions and
//! terminators) and [`solve`] computes the least fixpoint over a method's
//! CFG, forward or backward. A call-graph-driven interprocedural driver
//! ([`solve_interprocedural`]) runs the same worklist idea over
//! whole-method summaries.
//!
//! # Lattice contract
//!
//! For termination and soundness the client must guarantee:
//!
//! * `join` is commutative, associative and idempotent, and returns `true`
//!   iff the target fact changed (i.e. grew);
//! * the fact type has finite height: starting from `bottom`, only
//!   finitely many joins can return `true`;
//! * transfer functions are monotone: `a ⊑ b` implies
//!   `transfer(a) ⊑ transfer(b)`.
//!
//! These properties are what the property tests in
//! `tests/dataflow_prop.rs` exercise on random CFGs.

use std::collections::VecDeque;

use nimage_ir::{Cfg, Instr, Method, MethodId, Terminator};

/// Which way facts propagate through the CFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry block along terminator edges; the fact
    /// *before* a block is the join over its predecessors' exit facts.
    Forward,
    /// Facts flow from `Ret` blocks against terminator edges; the fact
    /// *after* a block is the join over its successors' entry facts.
    Backward,
}

/// An intraprocedural dataflow analysis over one method body.
pub trait Analysis {
    /// The lattice element propagated through the CFG.
    type Fact: Clone + PartialEq;

    /// Forward or backward.
    fn direction(&self) -> Direction;

    /// The boundary fact: the entry-block input for forward analyses, the
    /// exit fact of `Ret` blocks for backward analyses.
    fn boundary(&self, method: &Method) -> Self::Fact;

    /// The least lattice element; initial value of every non-boundary
    /// fact.
    fn bottom(&self, method: &Method) -> Self::Fact;

    /// Joins `from` into `into`; returns whether `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// Applies one instruction to `fact`. For backward analyses the
    /// instructions of a block are applied in reverse order.
    fn transfer_instr(&self, instr: &Instr, fact: &mut Self::Fact);

    /// Applies a terminator to `fact`. Defaults to the identity.
    fn transfer_terminator(&self, term: &Terminator, fact: &mut Self::Fact) {
        let _ = (term, fact);
    }
}

/// The fixpoint of an [`Analysis`]: one fact per block boundary, in
/// *program order* regardless of analysis direction.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// The fact at each block's start (before its first instruction).
    pub before: Vec<F>,
    /// The fact at each block's end (after its terminator).
    pub after: Vec<F>,
}

/// Runs `analysis` to its least fixpoint over `method`'s CFG.
///
/// Unreachable blocks keep `bottom` facts and are never visited; clients
/// that report per-block findings should skip them (see
/// [`Cfg::reachable`]).
pub fn solve<A: Analysis>(analysis: &A, method: &Method) -> Solution<A::Fact> {
    let cfg = Cfg::new(method);
    solve_with_cfg(analysis, method, &cfg)
}

/// [`solve`] with a precomputed [`Cfg`] (callers running several analyses
/// over the same body share the CFG).
pub fn solve_with_cfg<A: Analysis>(analysis: &A, method: &Method, cfg: &Cfg) -> Solution<A::Fact> {
    let n = method.blocks.len();
    let mut before: Vec<A::Fact> = (0..n).map(|_| analysis.bottom(method)).collect();
    let mut after: Vec<A::Fact> = (0..n).map(|_| analysis.bottom(method)).collect();
    if n == 0 {
        return Solution { before, after };
    }

    let forward = analysis.direction() == Direction::Forward;
    // Forward analyses converge fastest in reverse post-order, backward
    // analyses in post-order.
    let order: Vec<usize> = if forward {
        cfg.rpo.clone()
    } else {
        cfg.rpo.iter().rev().copied().collect()
    };
    let mut queued = vec![false; n];
    let mut worklist: VecDeque<usize> = VecDeque::with_capacity(order.len());
    for &b in &order {
        queued[b] = true;
        worklist.push_back(b);
    }

    while let Some(b) = worklist.pop_front() {
        queued[b] = false;
        if forward {
            // Input: the boundary for the entry block, joined with every
            // predecessor's exit fact (the entry block may be a loop
            // target).
            let mut fact = if b == 0 {
                analysis.boundary(method)
            } else {
                analysis.bottom(method)
            };
            for &p in &cfg.preds[b] {
                analysis.join(&mut fact, &after[p]);
            }
            before[b] = fact.clone();
            for instr in &method.blocks[b].instrs {
                analysis.transfer_instr(instr, &mut fact);
            }
            analysis.transfer_terminator(&method.blocks[b].terminator, &mut fact);
            if fact != after[b] {
                after[b] = fact;
                for &s in &cfg.succs[b] {
                    if cfg.reachable[s] && !queued[s] {
                        queued[s] = true;
                        worklist.push_back(s);
                    }
                }
            }
        } else {
            // Output: the boundary for exiting blocks, joined with every
            // successor's entry fact.
            let term = &method.blocks[b].terminator;
            let mut fact = if matches!(term, Terminator::Ret(_)) {
                analysis.boundary(method)
            } else {
                analysis.bottom(method)
            };
            for &s in &cfg.succs[b] {
                analysis.join(&mut fact, &before[s]);
            }
            after[b] = fact.clone();
            analysis.transfer_terminator(term, &mut fact);
            for instr in method.blocks[b].instrs.iter().rev() {
                analysis.transfer_instr(instr, &mut fact);
            }
            if fact != before[b] {
                before[b] = fact;
                for &p in &cfg.preds[b] {
                    if !queued[p] {
                        queued[p] = true;
                        worklist.push_back(p);
                    }
                }
            }
        }
    }

    Solution { before, after }
}

/// A whole-method summary usable by the interprocedural driver.
pub trait SummaryLattice: Clone + PartialEq {
    /// Joins `other` into `self`; returns whether `self` changed.
    fn join(&mut self, other: &Self) -> bool;
}

/// Call-graph-driven interprocedural fixpoint over method summaries.
///
/// `locals[m]` is the intraprocedural summary of method `m` (indexed by
/// `MethodId`); `callees[m]` lists its possible callees. The result is the
/// least fixpoint of `summary[m] = locals[m] ⊔ ⨆ summary[callees[m]]` —
/// i.e. each summary absorbs the summaries of everything transitively
/// callable, with recursion (call-graph cycles) handled by the worklist.
pub fn solve_interprocedural<S: SummaryLattice>(locals: &[S], callees: &[Vec<MethodId>]) -> Vec<S> {
    assert_eq!(locals.len(), callees.len());
    let n = locals.len();
    let mut summaries: Vec<S> = locals.to_vec();

    let mut callers: Vec<Vec<usize>> = vec![vec![]; n];
    for (m, cs) in callees.iter().enumerate() {
        for c in cs {
            callers[c.index()].push(m);
        }
    }

    let mut queued = vec![true; n];
    let mut worklist: VecDeque<usize> = (0..n).collect();
    while let Some(m) = worklist.pop_front() {
        queued[m] = false;
        let mut changed = false;
        // Split borrows: take the summary out, fold callees in, put back.
        let mut s = summaries[m].clone();
        for c in &callees[m] {
            changed |= s.join(&summaries[c.index()]);
        }
        if changed {
            summaries[m] = s;
            for &caller in &callers[m] {
                if !queued[caller] {
                    queued[caller] = true;
                    worklist.push_back(caller);
                }
            }
        }
    }
    summaries
}

/// A dense bitset lattice over the locals (or any small index space) of a
/// method, with union as join — the workhorse fact of the ported lints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitFact {
    words: Vec<u64>,
    bits: usize,
}

impl BitFact {
    /// The empty set over `bits` indices (the lattice bottom).
    pub fn empty(bits: usize) -> BitFact {
        BitFact {
            words: vec![0; bits.div_ceil(64)],
            bits,
        }
    }

    /// The full set over `bits` indices (the lattice top).
    pub fn full(bits: usize) -> BitFact {
        let mut f = BitFact {
            words: vec![!0; bits.div_ceil(64)],
            bits,
        };
        f.mask_tail();
        f
    }

    fn mask_tail(&mut self) {
        if !self.bits.is_multiple_of(64) {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << (self.bits % 64)) - 1;
            }
        }
    }

    /// Inserts index `i`.
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes index `i`.
    pub fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Whether index `i` is set.
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Set union; returns whether `self` changed.
    pub fn union(&mut self, other: &BitFact) -> bool {
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let next = *w | *o;
            changed |= next != *w;
            *w = next;
        }
        changed
    }

    /// Whether every index of `self` is also in `other`.
    pub fn is_subset(&self, other: &BitFact) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(w, o)| w & !o == 0)
    }

    /// The set indices, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.bits).filter(|&i| self.contains(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimage_ir::{ProgramBuilder, TypeRef};

    /// Forward may-be-unassigned over a loop: the loop variable is
    /// assigned before the header, so it leaves the may-unassigned set.
    struct MayUnassigned;

    impl Analysis for MayUnassigned {
        type Fact = BitFact;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&self, method: &Method) -> BitFact {
            let mut f = BitFact::full(method.n_locals as usize);
            for p in 0..method.param_locals() as usize {
                f.remove(p);
            }
            f
        }
        fn bottom(&self, method: &Method) -> BitFact {
            BitFact::empty(method.n_locals as usize)
        }
        fn join(&self, into: &mut BitFact, from: &BitFact) -> bool {
            into.union(from)
        }
        fn transfer_instr(&self, instr: &Instr, fact: &mut BitFact) {
            if let Some(d) = instr.dst() {
                fact.remove(d.index());
            }
        }
    }

    #[test]
    fn forward_loop_fixpoint_converges() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.C", None);
        let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
        let mut f = pb.body(main);
        let acc = f.local();
        let zero = f.iconst(0);
        f.assign(acc, zero);
        let ten = f.iconst(10);
        f.for_range(zero, ten, |f, i| {
            let next = f.add(acc, i);
            f.assign(acc, next);
        });
        f.ret(Some(acc));
        pb.finish_body(main, f);
        pb.set_entry(main);
        let p = pb.build().unwrap();
        let m = &p.methods()[0];

        let sol = solve(&MayUnassigned, m);
        // At every Ret block, `acc` is definitely assigned.
        for (b, block) in m.blocks.iter().enumerate() {
            if matches!(block.terminator, Terminator::Ret(Some(_))) {
                assert!(
                    !sol.after[b].contains(acc.index()),
                    "acc unassigned at b{b}"
                );
            }
        }
    }

    #[derive(Clone, PartialEq)]
    struct CountSet(std::collections::BTreeSet<u32>);

    impl SummaryLattice for CountSet {
        fn join(&mut self, other: &Self) -> bool {
            let before = self.0.len();
            self.0.extend(other.0.iter().copied());
            self.0.len() != before
        }
    }

    #[test]
    fn interprocedural_driver_closes_over_cycles() {
        // 0 -> 1 -> 2 -> 1 (cycle), 3 isolated.
        let locals: Vec<CountSet> = (0..4u32)
            .map(|i| CountSet(std::iter::once(i).collect()))
            .collect();
        let callees = vec![
            vec![MethodId(1)],
            vec![MethodId(2)],
            vec![MethodId(1)],
            vec![],
        ];
        let out = solve_interprocedural(&locals, &callees);
        assert_eq!(out[0].0, [0u32, 1, 2].into_iter().collect());
        assert_eq!(out[1].0, [1u32, 2].into_iter().collect());
        assert_eq!(out[2].0, [1u32, 2].into_iter().collect());
        assert_eq!(out[3].0, std::iter::once(3u32).collect());
    }

    #[test]
    fn bitfact_algebra() {
        let mut a = BitFact::empty(70);
        a.insert(3);
        a.insert(69);
        let mut b = BitFact::empty(70);
        b.insert(69);
        assert!(b.is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(b.union(&a));
        assert!(!b.union(&a)); // idempotent
        assert_eq!(a, b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 69]);
        let full = BitFact::full(70);
        assert!(a.is_subset(&full));
        assert_eq!(full.iter().count(), 70); // tail word is masked
    }
}
