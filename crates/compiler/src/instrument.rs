//! Size model of the profiling instrumentation.
//!
//! The paper's profiling build inserts IR-level instrumentation (Sec. 6.1):
//! CU-entry probes, method-entry probes and object-access probes. Because
//! Graal's inlining decisions are code-size driven, "instrumentation code may
//! make the inliner behave differently between compilations of the
//! instrumented and the regular image" (Sec. 2). We reproduce exactly that
//! coupling: instrumentation contributes bytes to a method's *effective*
//! size, and the inliner (see [`crate::InlineConfig`]) works on effective
//! sizes, so an instrumented build groups methods into different CUs than
//! the optimized build that later consumes its profiles.

use nimage_ir::{Instr, MethodId, Program};

/// Which traces the instrumented binary collects.
///
/// Corresponds to the three event kinds of Sec. 6.1: *cu entry* events,
/// *method entry* events, and object accesses (for heap ordering).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrumentConfig {
    /// Trace CU entries (for *cu ordering*, Sec. 4.1).
    pub trace_cu: bool,
    /// Trace method entries (for *method ordering*, Sec. 4.2).
    pub trace_methods: bool,
    /// Trace object identifiers at every field/array access (Sec. 5).
    pub trace_heap: bool,
}

impl InstrumentConfig {
    /// No instrumentation: the regular or optimized build.
    pub const NONE: InstrumentConfig = InstrumentConfig {
        trace_cu: false,
        trace_methods: false,
        trace_heap: false,
    };

    /// Full instrumentation, as used by the paper's profiling build (both
    /// code- and heap-ordering profiles are gathered in one run).
    pub const FULL: InstrumentConfig = InstrumentConfig {
        trace_cu: true,
        trace_methods: true,
        trace_heap: true,
    };

    /// Whether any probe is enabled.
    pub fn any(&self) -> bool {
        self.trace_cu || self.trace_methods || self.trace_heap
    }
}

/// Bytes added to a method body per method-entry probe.
pub const METHOD_PROBE_BYTES: u32 = 18;
/// Bytes added to a CU root per CU-entry probe.
pub const CU_PROBE_BYTES: u32 = 18;
/// Bytes added per instrumented field/array access.
pub const HEAP_PROBE_BYTES: u32 = 26;

/// Number of field/array access sites in a method body.
pub fn heap_access_sites(program: &Program, method: MethodId) -> u32 {
    let m = program.method(method);
    let mut n = 0;
    for b in &m.blocks {
        for i in &b.instrs {
            if matches!(
                i,
                Instr::GetField(..)
                    | Instr::PutField(..)
                    | Instr::ArrayGet(..)
                    | Instr::ArraySet(..)
            ) {
                n += 1;
            }
        }
    }
    n
}

/// Effective machine-code size of a method under an instrumentation
/// configuration.
///
/// The CU-entry probe is *not* included here — it applies once per CU root
/// and is added by the inliner when it seeds a compilation unit.
pub fn instrumented_method_size(
    program: &Program,
    method: MethodId,
    cfg: &InstrumentConfig,
) -> u32 {
    let mut size = program.method(method).code_size();
    if cfg.trace_methods {
        size += METHOD_PROBE_BYTES;
    }
    if cfg.trace_heap {
        size += HEAP_PROBE_BYTES * heap_access_sites(program, method);
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimage_ir::{ProgramBuilder, TypeRef};

    fn program_with_accesses() -> (Program, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.A", None);
        let fx = pb.add_instance_field(c, "x", TypeRef::Int);
        let m = pb.declare_static(c, "m", &[TypeRef::Object(c)], Some(TypeRef::Int));
        let mut f = pb.body(m);
        let obj = f.param(0);
        let a = f.get_field(obj, fx);
        let b = f.get_field(obj, fx);
        let s = f.add(a, b);
        f.put_field(obj, fx, s);
        f.ret(Some(s));
        pb.finish_body(m, f);
        pb.set_entry(m);
        (pb.build().unwrap(), m)
    }

    #[test]
    fn counts_heap_access_sites() {
        let (p, m) = program_with_accesses();
        assert_eq!(heap_access_sites(&p, m), 3);
    }

    #[test]
    fn none_config_is_plain_code_size() {
        let (p, m) = program_with_accesses();
        assert_eq!(
            instrumented_method_size(&p, m, &InstrumentConfig::NONE),
            p.method(m).code_size()
        );
    }

    #[test]
    fn probes_inflate_size() {
        let (p, m) = program_with_accesses();
        let base = p.method(m).code_size();
        let full = instrumented_method_size(&p, m, &InstrumentConfig::FULL);
        assert_eq!(full, base + METHOD_PROBE_BYTES + 3 * HEAP_PROBE_BYTES);
    }

    #[test]
    fn any_reports_enabled_probes() {
        assert!(!InstrumentConfig::NONE.any());
        assert!(InstrumentConfig::FULL.any());
        assert!(InstrumentConfig {
            trace_cu: true,
            ..InstrumentConfig::NONE
        }
        .any());
    }
}
