//! The code-size-driven inliner that forms compilation units.
//!
//! A CU "consists of a root method and all the methods that were inlined
//! into that root method" (Sec. 2). Inlining decisions here are
//! deliberately sensitive to the same inputs as Graal's:
//!
//! * **callee size** — only callees below a size threshold are inlined, and
//!   the threshold applies to the *effective* (instrumented) size, so the
//!   profiling build inlines less than the regular build;
//! * **CU budget** — a CU stops growing once it reaches a byte budget, so
//!   the same method may be inlined in one caller but not another;
//! * **PGO call counts** — hot callees get a larger threshold and cold
//!   callees are never inlined, so the optimized build diverges from both
//!   the regular and the instrumented build;
//! * **monomorphism** — only static calls and virtual calls with exactly one
//!   analysis-time target are inlined (devirtualization), so saturation in
//!   `nimage-analysis` indirectly shapes CUs too.

use std::collections::{HashMap, HashSet};

use nimage_analysis::{CallSite, Reachability};
use nimage_ir::{Callee, Instr, MethodId, Program};
use nimage_par::parallel_map;

use crate::cu::{CompilationUnit, CompiledProgram, CuId, InlineNode};
use crate::instrument::{instrumented_method_size, InstrumentConfig, CU_PROBE_BYTES};
use crate::pgo::CallCountProfile;

/// Inliner tuning knobs.
#[derive(Debug, Clone)]
pub struct InlineConfig {
    /// Maximum effective callee size (bytes) eligible for inlining.
    pub inline_threshold: u32,
    /// Threshold multiplier for hot callees when a PGO profile is present.
    pub hot_multiplier: u32,
    /// A callee is *hot* when its profiled call count reaches this value.
    pub hot_call_count: u64,
    /// Maximum CU size in bytes; inlining stops when the budget is hit.
    pub cu_budget: u32,
    /// Maximum inline depth.
    pub max_depth: u32,
}

impl Default for InlineConfig {
    fn default() -> Self {
        InlineConfig {
            inline_threshold: 180,
            hot_multiplier: 3,
            hot_call_count: 16,
            cu_budget: 2048,
            max_depth: 8,
        }
    }
}

/// Compiles a program: forms compilation units for every reachable method
/// that needs an out-of-line copy.
///
/// `profile` is `None` for the regular and instrumented builds and
/// `Some(..)` for the profile-guided optimized build.
pub fn compile(
    program: &Program,
    reachability: Reachability,
    inline_cfg: &InlineConfig,
    instr_cfg: InstrumentConfig,
    profile: Option<&CallCountProfile>,
) -> CompiledProgram {
    compile_with_threads(program, reachability, inline_cfg, instr_cfg, profile, 1)
}

/// [`compile`] with intra-stage parallelism: compilation units are built
/// concurrently, wave by wave over the root worklist.
///
/// CUs are independently compilable — [`build_cu`] is a pure function of
/// the program, analysis results and its root — so the root closure is
/// the same set no matter which order roots are processed in, and the
/// final signature-ordered merge (the paper's alphabetical default
/// `.text` order) renumbers CUs into a total order that does not depend
/// on scheduling. The output is bit-identical to `n_threads == 1`.
pub fn compile_with_threads(
    program: &Program,
    reachability: Reachability,
    inline_cfg: &InlineConfig,
    instr_cfg: InstrumentConfig,
    profile: Option<&CallCountProfile>,
    n_threads: usize,
) -> CompiledProgram {
    let mut root_seen: HashSet<MethodId> = HashSet::new();
    let mut frontier = initial_roots_impl(program, &reachability, &mut root_seen);

    let push_root = |m: MethodId, frontier: &mut Vec<MethodId>, seen: &mut HashSet<MethodId>| {
        if seen.insert(m) {
            frontier.push(m);
        }
    };

    // Build CUs wave by wave; every call that is not inlined makes its
    // target a root of the next wave. Within a wave the CUs are
    // independent and fan out over the worker pool.
    let mut built: Vec<CompilationUnit> = vec![];
    while !frontier.is_empty() {
        // Small waves (every workload's tail waves) don't amortize the
        // fan-out; fall back to the serial path below the measured cutoff.
        let workers = nimage_par::workers_for(
            n_threads,
            frontier.len(),
            nimage_par::cutoff::COMPILE_MIN_ROOTS,
        );
        let wave = parallel_map(workers, frontier.len(), |i| {
            build_cu(
                program,
                &reachability,
                inline_cfg,
                &instr_cfg,
                profile,
                frontier[i],
            )
        });
        let mut next: Vec<MethodId> = vec![];
        for (cu, not_inlined) in wave {
            for m in not_inlined {
                push_root(m, &mut next, &mut root_seen);
            }
            built.push(cu);
        }
        frontier = next;
    }

    // Default .text order: alphabetical by root signature (Sec. 2). The
    // root id tiebreak makes the order total, so serial and parallel
    // builds agree even if two roots shared a signature.
    built.sort_by_key(|cu| (program.method_signature(cu.root), cu.root));
    let mut root_to_cu = HashMap::new();
    for (i, cu) in built.iter_mut().enumerate() {
        cu.id = CuId(i as u32);
        root_to_cu.insert(cu.root, cu.id);
    }

    CompiledProgram {
        cus: built,
        root_to_cu,
        instrumentation: instr_cfg,
        reachability,
    }
}

/// The mandatory first-wave CU roots: the entry point, spawn targets and
/// every target of a polymorphic virtual call (those are reached through
/// the vtable and can never be fully inlined away). This is the first —
/// and largest — wave of [`compile_with_threads`]'s worklist; `nimage
/// bench` uses its size to decide whether the compile stage's fan-out
/// engages at the measured thread count (see `nimage_par::cutoff`).
pub fn initial_roots(program: &Program, reachability: &Reachability) -> Vec<MethodId> {
    initial_roots_impl(program, reachability, &mut HashSet::new())
}

fn initial_roots_impl(
    program: &Program,
    reachability: &Reachability,
    root_seen: &mut HashSet<MethodId>,
) -> Vec<MethodId> {
    let mut frontier: Vec<MethodId> = vec![];
    let mut push_root = |m: MethodId, frontier: &mut Vec<MethodId>| {
        if root_seen.insert(m) {
            frontier.push(m);
        }
    };
    if let Some(e) = program.entry {
        push_root(e, &mut frontier);
    }
    for &m in &reachability.methods {
        for b in &program.method(m).blocks {
            for i in &b.instrs {
                if let Instr::Spawn { method, .. } = i {
                    push_root(*method, &mut frontier);
                }
            }
        }
    }
    for targets in reachability.virtual_targets.values() {
        if targets.len() != 1 {
            for &t in targets {
                push_root(t, &mut frontier);
            }
        }
    }
    frontier
}

/// The single analysis-time target of a call site, if the call is direct
/// (static) or monomorphic.
fn direct_target(reach: &Reachability, callee: &Callee, site: CallSite) -> Option<MethodId> {
    match callee {
        Callee::Static(m) => Some(*m),
        Callee::Virtual { .. } => match reach.virtual_targets.get(&site) {
            Some(ts) if ts.len() == 1 => Some(ts[0]),
            _ => None,
        },
    }
}

/// Builds one CU rooted at `root`. Returns the CU and the methods invoked
/// but not inlined (future roots).
fn build_cu(
    program: &Program,
    reach: &Reachability,
    cfg: &InlineConfig,
    instr: &InstrumentConfig,
    profile: Option<&CallCountProfile>,
    root: MethodId,
) -> (CompilationUnit, Vec<MethodId>) {
    let mut nodes: Vec<InlineNode> = vec![];
    let mut not_inlined: Vec<MethodId> = vec![];
    let mut cu_size: u32 = if instr.trace_cu { CU_PROBE_BYTES } else { 0 };

    // DFS worklist entry: (method, parent node, call site in parent, depth,
    // methods on the inline path for recursion detection).
    struct Work {
        method: MethodId,
        parent: Option<u32>,
        site: Option<CallSite>,
        depth: u32,
        path: Vec<MethodId>,
    }

    let mut stack = vec![Work {
        method: root,
        parent: None,
        site: None,
        depth: 0,
        path: vec![],
    }];

    while let Some(w) = stack.pop() {
        let size = instrumented_method_size(program, w.method, instr);
        // Re-check the budget at materialization time: a sibling's subtree
        // may have consumed the budget since the inline decision was made.
        if w.parent.is_some() && cu_size.saturating_add(size) > cfg.cu_budget {
            not_inlined.push(w.method);
            continue;
        }
        let node_idx = nodes.len() as u32;
        nodes.push(InlineNode {
            method: w.method,
            parent: w.parent,
            offset: cu_size,
            size,
            children: vec![],
        });
        cu_size += size;
        if let (Some(p), Some(site)) = (w.parent, w.site) {
            nodes[p as usize].children.push((site, node_idx));
        }

        // Visit call sites in reverse so the DFS stack pops them in source
        // order, keeping offsets deterministic.
        let method = program.method(w.method);
        let mut sites: Vec<(CallSite, MethodId)> = vec![];
        for (bi, block) in method.blocks.iter().enumerate() {
            for (ii, ins) in block.instrs.iter().enumerate() {
                if let Instr::Call { callee, .. } = ins {
                    let site = CallSite {
                        method: w.method,
                        block: bi,
                        instr: ii,
                    };
                    match direct_target(reach, callee, site) {
                        Some(t) => sites.push((site, t)),
                        None => {
                            // Polymorphic: targets were made roots already.
                        }
                    }
                }
            }
        }
        for &(site, target) in sites.iter().rev() {
            let callee_size = instrumented_method_size(program, target, instr);
            let mut threshold = cfg.inline_threshold;
            if let Some(p) = profile {
                let count = p.count(program, target);
                if count >= cfg.hot_call_count {
                    threshold *= cfg.hot_multiplier;
                } else if count == 0 {
                    // Profiled-cold callees are never inlined.
                    threshold = 0;
                }
            }
            let recursive = w.path.contains(&target) || target == w.method;
            let fits_budget = cu_size.saturating_add(callee_size) <= cfg.cu_budget;
            let inline =
                !recursive && w.depth < cfg.max_depth && callee_size <= threshold && fits_budget;
            if inline {
                let mut path = w.path.clone();
                path.push(w.method);
                stack.push(Work {
                    method: target,
                    parent: Some(node_idx),
                    site: Some(site),
                    depth: w.depth + 1,
                    path,
                });
            } else {
                not_inlined.push(target);
            }
        }
    }

    // The DFS stack assigns offsets in pop order, which interleaves subtree
    // sizes correctly for our purposes (offsets are unique and increasing).
    (
        CompilationUnit {
            id: CuId(0), // renumbered by `compile`
            root,
            nodes,
            size: cu_size,
        },
        not_inlined,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimage_analysis::{analyze, AnalysisConfig};
    use nimage_ir::{ProgramBuilder, TypeRef};

    /// main -> helper (small), helper -> leaf (small); plus a `big` method
    /// too large to inline.
    fn chain_program(pad_big: usize) -> nimage_ir::Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.Main", None);
        let leaf = pb.declare_static(c, "leaf", &[], Some(TypeRef::Int));
        let helper = pb.declare_static(c, "helper", &[], Some(TypeRef::Int));
        let big = pb.declare_static(c, "big", &[], Some(TypeRef::Int));
        let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));

        let mut f = pb.body(leaf);
        let v = f.iconst(1);
        f.ret(Some(v));
        pb.finish_body(leaf, f);

        let mut f = pb.body(helper);
        let v = f.call_static(leaf, &[], true).unwrap();
        f.ret(Some(v));
        pb.finish_body(helper, f);

        let mut f = pb.body(big);
        let mut v = f.iconst(0);
        for _ in 0..pad_big {
            let one = f.iconst(1);
            v = f.add(v, one);
        }
        f.ret(Some(v));
        pb.finish_body(big, f);

        let mut f = pb.body(main);
        let a = f.call_static(helper, &[], true).unwrap();
        let b = f.call_static(big, &[], true).unwrap();
        let s = f.add(a, b);
        f.ret(Some(s));
        pb.finish_body(main, f);
        pb.set_entry(main);
        pb.build().unwrap()
    }

    fn compile_default(p: &nimage_ir::Program, instr: InstrumentConfig) -> CompiledProgram {
        let reach = analyze(p, &AnalysisConfig::default());
        compile(p, reach, &InlineConfig::default(), instr, None)
    }

    #[test]
    fn small_chain_is_fully_inlined_big_is_not() {
        let p = chain_program(100);
        let cp = compile_default(&p, InstrumentConfig::NONE);
        let main = p.entry.unwrap();
        let main_cu = cp.cu(cp.cu_of_root(main).unwrap());
        // main, helper, leaf all in one CU.
        assert_eq!(main_cu.nodes.len(), 3);
        // big gets its own CU.
        let big = p.class_by_name("t.Main").unwrap();
        let big_m = p
            .class(big)
            .methods
            .iter()
            .copied()
            .find(|&m| p.method(m).name == "big")
            .unwrap();
        assert!(cp.cu_of_root(big_m).is_some());
        // helper and leaf do NOT get own CUs (inlined everywhere).
        let helper_m = p
            .class(big)
            .methods
            .iter()
            .copied()
            .find(|&m| p.method(m).name == "helper")
            .unwrap();
        assert!(cp.cu_of_root(helper_m).is_none());
    }

    #[test]
    fn instrumentation_changes_cu_grouping() {
        let p = chain_program(100);
        let regular = compile_default(&p, InstrumentConfig::NONE);
        // Heavy heap instrumentation makes helper+leaf too big to inline
        // when combined with a tiny threshold; use a tight config instead.
        let reach = analyze(&p, &AnalysisConfig::default());
        let tight = InlineConfig {
            inline_threshold: 40,
            ..InlineConfig::default()
        };
        let instrumented = compile(&p, reach, &tight, InstrumentConfig::FULL, None);
        // The instrumented build must not produce the identical CU set.
        let sigs = |cp: &CompiledProgram| cp.root_signatures(&p);
        assert_ne!(sigs(&regular), sigs(&instrumented));
    }

    #[test]
    fn pgo_cold_callee_is_not_inlined() {
        let p = chain_program(10);
        let reach = analyze(&p, &AnalysisConfig::default());
        // Empty profile: every callee is cold, nothing is inlined.
        let profile = CallCountProfile::new();
        let cp = compile(
            &p,
            reach,
            &InlineConfig::default(),
            InstrumentConfig::NONE,
            Some(&profile),
        );
        let main_cu = cp.cu(cp.cu_of_root(p.entry.unwrap()).unwrap());
        assert_eq!(main_cu.nodes.len(), 1);
    }

    #[test]
    fn recursion_is_never_inlined() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.R", None);
        let rec = pb.declare_static(c, "rec", &[TypeRef::Int], Some(TypeRef::Int));
        let mut f = pb.body(rec);
        let n = f.param(0);
        let zero = f.iconst(0);
        let stop = f.le(n, zero);
        f.if_then_else(
            stop,
            |f| {
                let v = f.iconst(0);
                f.ret(Some(v));
            },
            |f| {
                let one = f.iconst(1);
                let n1 = f.sub(n, one);
                let v = f.call_static(rec, &[n1], true).unwrap();
                f.ret(Some(v));
            },
        );
        pb.finish_body(rec, f);
        let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
        let mut f = pb.body(main);
        let ten = f.iconst(10);
        let v = f.call_static(rec, &[ten], true).unwrap();
        f.ret(Some(v));
        pb.finish_body(main, f);
        pb.set_entry(main);
        let p = pb.build().unwrap();

        let cp = compile_default(&p, InstrumentConfig::NONE);
        let rec_cu = cp.cu(cp.cu_of_root(rec).unwrap());
        // rec inlined into main once at most; within its own CU, rec must
        // not contain another copy of itself.
        assert_eq!(rec_cu.nodes.iter().filter(|n| n.method == rec).count(), 1);
    }

    #[test]
    fn cu_order_is_alphabetical_by_root_signature() {
        let p = chain_program(100);
        let cp = compile_default(&p, InstrumentConfig::NONE);
        let sigs = cp.root_signatures(&p);
        let mut sorted = sigs.clone();
        sorted.sort();
        assert_eq!(sigs, sorted);
    }

    #[test]
    fn offsets_are_disjoint_and_within_cu() {
        let p = chain_program(100);
        let cp = compile_default(&p, InstrumentConfig::FULL);
        for cu in &cp.cus {
            let mut spans: Vec<(u32, u32)> = cu
                .nodes
                .iter()
                .map(|n| (n.offset, n.offset + n.size))
                .collect();
            spans.sort();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlapping inline-node spans");
            }
            for n in &cu.nodes {
                assert!(n.offset + n.size <= cu.size);
            }
        }
    }

    #[test]
    fn cu_budget_limits_cu_size() {
        let p = chain_program(100);
        let reach = analyze(&p, &AnalysisConfig::default());
        let cfg = InlineConfig {
            cu_budget: 64,
            ..InlineConfig::default()
        };
        let cp = compile(&p, reach, &cfg, InstrumentConfig::NONE, None);
        for cu in &cp.cus {
            assert!(cu.size <= 64 || cu.nodes.len() == 1);
        }
    }
}
