//! Compilation units and the compiled-program container.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use nimage_analysis::{CallSite, Reachability};
use nimage_ir::{MethodId, Program};

use crate::instrument::InstrumentConfig;

/// Index of a compilation unit in a [`CompiledProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CuId(pub u32);

impl CuId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cu{}", self.0)
    }
}

/// One method copy inside a compilation unit's inline tree.
///
/// Node 0 is always the CU's root method; children are the callees inlined
/// at specific call sites of this node's method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InlineNode {
    /// The method whose body this node copies.
    pub method: MethodId,
    /// Parent node index, `None` for the root.
    pub parent: Option<u32>,
    /// Byte offset of this method copy within the CU.
    pub offset: u32,
    /// Effective (possibly instrumented) size of this copy in bytes.
    pub size: u32,
    /// Inlined callees: call site in *this* node's method → child node.
    pub children: Vec<(CallSite, u32)>,
}

impl InlineNode {
    /// Child node inlined at `site`, if that call was inlined.
    pub fn child_at(&self, site: CallSite) -> Option<u32> {
        self.children
            .iter()
            .find(|(s, _)| *s == site)
            .map(|&(_, n)| n)
    }
}

/// A compilation unit: a root method plus every method inlined into it
/// (Sec. 2), with byte offsets for the `.text` layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompilationUnit {
    /// This CU's id.
    pub id: CuId,
    /// The root method the compilation started from.
    pub root: MethodId,
    /// Inline tree in DFS pre-order; `nodes[0]` is the root.
    pub nodes: Vec<InlineNode>,
    /// Total size in bytes (sum of node sizes plus the CU-entry probe if the
    /// build traces CU entries).
    pub size: u32,
}

impl CompilationUnit {
    /// Methods contained in this CU (root first, then inlinees in DFS
    /// order; a method may appear more than once if inlined at several
    /// sites).
    pub fn methods(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.nodes.iter().map(|n| n.method)
    }

    /// Whether the CU contains a copy of `m` (as root or inlinee).
    pub fn contains(&self, m: MethodId) -> bool {
        self.nodes.iter().any(|n| n.method == m)
    }
}

/// The result of compiling a program: all CUs plus lookup tables.
///
/// CUs are stored in **default order** — alphabetical by root-method
/// signature, exactly the default `.text` order of Native Image binaries
/// (Sec. 2). Ordering strategies permute this order at image-layout time.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// All compilation units, in default (alphabetical) order.
    pub cus: Vec<CompilationUnit>,
    /// CU whose root is the given method.
    pub root_to_cu: HashMap<MethodId, CuId>,
    /// The instrumentation this build was compiled with.
    pub instrumentation: InstrumentConfig,
    /// The reachability result the compilation was based on.
    pub reachability: Reachability,
}

impl CompiledProgram {
    /// Looks up a CU.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn cu(&self, id: CuId) -> &CompilationUnit {
        &self.cus[id.index()]
    }

    /// The CU rooted at `method`, if `method` is a CU root in this build.
    pub fn cu_of_root(&self, method: MethodId) -> Option<CuId> {
        self.root_to_cu.get(&method).copied()
    }

    /// Total `.text` payload size (sum of CU sizes) in bytes.
    pub fn total_code_size(&self) -> u64 {
        self.cus.iter().map(|c| u64::from(c.size)).sum()
    }

    /// Root-method signatures of all CUs in default order — the unit of the
    /// paper's *cu ordering* profiles.
    pub fn root_signatures(&self, program: &Program) -> Vec<String> {
        self.cus
            .iter()
            .map(|c| program.method_signature(c.root))
            .collect()
    }

    /// Signatures of every method compiled into the image — CU roots plus
    /// all inlinees — i.e. the analysis's reachable set as the compiler
    /// realized it. Any method a runtime trace enters must be in here;
    /// `nimage-verify`'s reachability cross-check asserts exactly that.
    pub fn reachable_method_signatures(&self, program: &Program) -> BTreeSet<String> {
        self.cus
            .iter()
            .flat_map(|c| c.methods())
            .map(|m| program.method_signature(m))
            .collect()
    }

    /// `(root signature, size in bytes)` per CU in default order — the
    /// per-CU layout cost used to quantify never-entered code.
    pub fn cu_root_sizes(&self, program: &Program) -> Vec<(String, u32)> {
        self.cus
            .iter()
            .map(|c| (program.method_signature(c.root), c.size))
            .collect()
    }
}
