//! # nimage-compiler
//!
//! The ahead-of-time "Graal" stand-in of the nimage workspace: it groups
//! reachable methods into **compilation units** (CUs) via a code-size-driven
//! inliner, models the **instrumentation** that the paper's profiling build
//! inserts (which inflates method sizes and thereby perturbs inlining — the
//! root cause of cross-build divergence, Sec. 2), consumes **PGO call-count
//! profiles** (which perturb inlining again in the optimized build), and
//! implements the **Ball–Larus path numbering with path cutting** that the
//! paper's tracing profiler builds on (Sec. 6.1).
//!
//! The output of [`compile`] is a [`CompiledProgram`]: the set of CUs with
//! their inline trees and byte sizes, ready to be laid out into a binary
//! image by `nimage-image` and executed by `nimage-vm`.

#![warn(missing_docs)]

mod cu;
mod inline;
mod instrument;
mod path;
mod pgo;

pub use cu::{CompilationUnit, CompiledProgram, CuId, InlineNode};
pub use inline::{compile, compile_with_threads, initial_roots, InlineConfig};
pub use instrument::{instrumented_method_size, InstrumentConfig};
pub use path::{MiniBlockId, PathNumbering, ProfilingCfg, StaticEvent};
pub use pgo::CallCountProfile;
