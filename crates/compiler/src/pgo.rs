//! Call-count profiles consumed by the profile-guided (optimized) build.
//!
//! Native-Image profiles "contain branch frequencies, virtual-call receiver
//! types, and method call counts" (Sec. 2); the part that perturbs inlining —
//! and therefore the CU and heap-snapshot contents — is the call counts. The
//! profile is keyed by *method signature*, which is stable across builds,
//! unlike [`nimage_ir::MethodId`]s.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use nimage_ir::{MethodId, Program};

/// Method call counts gathered by an instrumented run.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct CallCountProfile {
    counts: HashMap<String, u64>,
}

// Deterministic rendering: the backing map has randomized iteration order,
// but the profile is part of `RunReport`, whose `Debug` output is compared
// byte for byte by the determinism suite and the bench harness.
impl fmt::Debug for CallCountProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sorted: BTreeMap<&str, u64> =
            self.counts.iter().map(|(s, &c)| (s.as_str(), c)).collect();
        f.debug_struct("CallCountProfile")
            .field("counts", &sorted)
            .finish()
    }
}

impl CallCountProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` additional calls of the method with the given signature.
    pub fn record(&mut self, signature: &str, n: u64) {
        *self.counts.entry(signature.to_string()).or_insert(0) += n;
    }

    /// Call count for a method of `program`, resolved via its signature.
    pub fn count(&self, program: &Program, method: MethodId) -> u64 {
        self.counts
            .get(&program.method_signature(method))
            .copied()
            .unwrap_or(0)
    }

    /// Number of distinct methods in the profile.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates over `(signature, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(s, &c)| (s.as_str(), c))
    }

    /// Serializes to the simple `signature,count` CSV format used by the
    /// post-processing framework (Sec. 6.2).
    pub fn to_csv(&self) -> String {
        let mut rows: Vec<_> = self.counts.iter().collect();
        rows.sort();
        let mut out = String::new();
        for (sig, count) in rows {
            out.push_str(sig);
            out.push(',');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses the CSV format produced by [`Self::to_csv`].
    ///
    /// Lines that do not contain a `,count` suffix are ignored.
    pub fn from_csv(text: &str) -> Self {
        let mut p = Self::new();
        for line in text.lines() {
            if let Some((sig, count)) = line.rsplit_once(',') {
                if let Ok(n) = count.trim().parse::<u64>() {
                    p.record(sig, n);
                }
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimage_ir::{ProgramBuilder, TypeRef};

    #[test]
    fn record_and_lookup_by_signature() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.A", None);
        let m = pb.declare_static(c, "hot", &[], Some(TypeRef::Int));
        let mut f = pb.body(m);
        let v = f.iconst(1);
        f.ret(Some(v));
        pb.finish_body(m, f);
        pb.set_entry(m);
        let p = pb.build().unwrap();

        let mut prof = CallCountProfile::new();
        prof.record("t.A.hot(0)", 10);
        prof.record("t.A.hot(0)", 5);
        assert_eq!(prof.count(&p, m), 15);
    }

    #[test]
    fn csv_roundtrip() {
        let mut prof = CallCountProfile::new();
        prof.record("a.B.c(2)", 7);
        prof.record("x.Y.z(0)", 1);
        let csv = prof.to_csv();
        assert_eq!(CallCountProfile::from_csv(&csv), prof);
    }

    #[test]
    fn malformed_csv_lines_are_ignored() {
        let prof = CallCountProfile::from_csv("garbage\nno comma here\nok.Sig(0),3\n");
        assert_eq!(prof.len(), 1);
    }
}
