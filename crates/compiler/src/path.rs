//! Ball–Larus path numbering with path cutting, over a call-aware
//! profiling CFG.
//!
//! The paper's tracing profiler (Sec. 6.1) builds on an IR-level
//! path-profiling technique with a *path-cutting* optimization that keeps
//! the number of paths tractable and, crucially, lets the trace interleave
//! runtime values (object identifiers) with statically known event
//! sequences: "each path ID (associated with a fixed sequence of events)
//! determines how many object identifiers are stored after the path ID"
//! (Sec. 6.1).
//!
//! We reproduce this as follows:
//!
//! * Each method body is re-expressed as a **profiling CFG** of
//!   *mini-blocks*: basic blocks are split after every call/spawn
//!   instruction, because a call hands control to a callee whose own trace
//!   records must not be reordered with the caller's — so paths are *cut* at
//!   calls.
//! * Loop **back edges** are cut, as in classic Ball–Larus.
//! * If the number of paths still exceeds a limit, additional edges are cut
//!   (highest-contribution first) until it does not — the paper's
//!   path-cutting optimization against exponential path explosion.
//! * Every mini-block carries its **static events** (method entry, heap
//!   access sites), so decoding a `(start, path id)` record replays the
//!   exact event sequence of the path.

use std::collections::{HashMap, HashSet};

use nimage_ir::{Instr, Method, Terminator};

/// Index of a mini-block in a [`ProfilingCfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MiniBlockId(pub u32);

impl MiniBlockId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A statically known event inside a mini-block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticEvent {
    /// The method is entered (attached to the entry mini-block only).
    MethodEntry,
    /// A field or array access at `(block, instr)`; at run time it
    /// contributes one object identifier to the trace.
    HeapAccess {
        /// Basic-block index in the original method.
        block: usize,
        /// Instruction index within the block.
        instr: usize,
    },
}

/// A segment of a basic block containing no internal call boundary.
#[derive(Debug, Clone)]
pub struct MiniBlock {
    /// Original basic-block index.
    pub block: usize,
    /// First instruction index covered (inclusive).
    pub seg_start: usize,
    /// One past the last instruction index covered.
    pub seg_end: usize,
    /// Static events occurring in this mini-block, in order.
    pub events: Vec<StaticEvent>,
    /// Successor mini-blocks (deduplicated).
    pub succs: Vec<MiniBlockId>,
}

/// The call-aware profiling CFG of one method.
#[derive(Debug, Clone)]
pub struct ProfilingCfg {
    minis: Vec<MiniBlock>,
    block_head: Vec<MiniBlockId>,
}

impl ProfilingCfg {
    /// Builds the profiling CFG of a method body.
    pub fn build(method: &Method) -> ProfilingCfg {
        let mut minis: Vec<MiniBlock> = vec![];
        let mut block_head: Vec<MiniBlockId> = vec![];

        for (bi, block) in method.blocks.iter().enumerate() {
            block_head.push(MiniBlockId(minis.len() as u32));
            let mut seg_start = 0usize;
            let mut events: Vec<StaticEvent> = vec![];
            if bi == 0 {
                events.push(StaticEvent::MethodEntry);
            }
            for (ii, ins) in block.instrs.iter().enumerate() {
                match ins {
                    Instr::GetField(..)
                    | Instr::PutField(..)
                    | Instr::ArrayGet(..)
                    | Instr::ArraySet(..) => {
                        events.push(StaticEvent::HeapAccess {
                            block: bi,
                            instr: ii,
                        });
                    }
                    Instr::Call { .. } | Instr::Spawn { .. } => {
                        // Segment ends *after* the call instruction; the cut
                        // happens when control returns.
                        minis.push(MiniBlock {
                            block: bi,
                            seg_start,
                            seg_end: ii + 1,
                            events: std::mem::take(&mut events),
                            succs: vec![],
                        });
                        seg_start = ii + 1;
                    }
                    _ => {}
                }
            }
            minis.push(MiniBlock {
                block: bi,
                seg_start,
                seg_end: block.instrs.len(),
                events,
                succs: vec![],
            });
        }

        // Wire successors: intra-block chains, then terminator edges from
        // each block's last mini to the head mini of successor blocks.
        let mut last_of_block: Vec<MiniBlockId> = vec![MiniBlockId(0); method.blocks.len()];
        for (i, m) in minis.iter().enumerate() {
            last_of_block[m.block] = MiniBlockId(i as u32);
        }
        let n = minis.len();
        for i in 0..n {
            let is_last_of_block = last_of_block[minis[i].block].index() == i;
            if !is_last_of_block {
                minis[i].succs.push(MiniBlockId(i as u32 + 1));
            }
        }
        for (bi, block) in method.blocks.iter().enumerate() {
            let last = last_of_block[bi];
            let mut targets: Vec<MiniBlockId> = match &block.terminator {
                Terminator::Ret(_) => vec![],
                Terminator::Jump(t) => vec![block_head[t.index()]],
                Terminator::Br {
                    then_blk, else_blk, ..
                } => vec![block_head[then_blk.index()], block_head[else_blk.index()]],
            };
            targets.dedup();
            minis[last.index()].succs = {
                let mut s = minis[last.index()].succs.clone();
                s.extend(targets);
                s.dedup();
                s
            };
        }

        ProfilingCfg { minis, block_head }
    }

    /// All mini-blocks; minis of the same basic block are contiguous and in
    /// segment order.
    pub fn minis(&self) -> &[MiniBlock] {
        &self.minis
    }

    /// One mini-block.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn mini(&self, id: MiniBlockId) -> &MiniBlock {
        &self.minis[id.index()]
    }

    /// The first mini-block of a basic block.
    pub fn head_of_block(&self, block: usize) -> MiniBlockId {
        self.block_head[block]
    }

    /// The entry mini-block (head of block 0).
    pub fn entry(&self) -> MiniBlockId {
        MiniBlockId(0)
    }
}

/// Ball–Larus numbering of a [`ProfilingCfg`].
#[derive(Debug, Clone)]
pub struct PathNumbering {
    /// numPaths per mini-block (over non-cut edges).
    num_paths: Vec<u64>,
    /// increment per non-cut edge.
    increments: HashMap<(u32, u32), u64>,
    /// cut edges (call boundaries, back edges, overflow cuts).
    cut: HashSet<(u32, u32)>,
}

impl PathNumbering {
    /// Computes the numbering, cutting edges until no start node has more
    /// than `max_paths` paths.
    ///
    /// # Panics
    /// Panics if `max_paths` is 0.
    pub fn compute(cfg: &ProfilingCfg, max_paths: u64) -> PathNumbering {
        assert!(max_paths > 0, "max_paths must be positive");
        let n = cfg.minis.len();
        let mut cut: HashSet<(u32, u32)> = HashSet::new();

        // Intra-block call-boundary edges are always cut: a mini whose
        // segment ends in a call hands control away.
        for (i, m) in cfg.minis.iter().enumerate() {
            for &s in &m.succs {
                if cfg.mini(s).block == m.block {
                    cut.insert((i as u32, s.0));
                }
            }
        }

        // Back edges via iterative DFS over the non-cut subgraph. Paths can
        // start at any cut-edge target, so the DFS must root at every
        // not-yet-visited node, not just the entry — any cycle then
        // contains at least one back edge of the DFS forest.
        let mut color = vec![0u8; n]; // 0 white, 1 grey, 2 black
        for root in 0..n {
            if color[root] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            color[root] = 1;
            while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
                let succs = &cfg.minis[v].succs;
                if *ei < succs.len() {
                    let w = succs[*ei].index();
                    *ei += 1;
                    let e = (v as u32, w as u32);
                    if cut.contains(&e) {
                        continue;
                    }
                    match color[w] {
                        0 => {
                            color[w] = 1;
                            stack.push((w, 0));
                        }
                        1 => {
                            cut.insert(e); // back edge
                        }
                        _ => {}
                    }
                } else {
                    color[v] = 2;
                    stack.pop();
                }
            }
        }

        loop {
            let (num_paths, increments) = number(cfg, &cut);
            let worst = num_paths.iter().copied().max().unwrap_or(1);
            if worst <= max_paths {
                return PathNumbering {
                    num_paths,
                    increments,
                    cut,
                };
            }
            // Overflow: cut the non-cut edge with the largest contribution
            // (increment + target's numPaths heuristic).
            let mut best: Option<((u32, u32), u64)> = None;
            for (i, m) in cfg.minis.iter().enumerate() {
                for &s in &m.succs {
                    let e = (i as u32, s.0);
                    if cut.contains(&e) {
                        continue;
                    }
                    let w = num_paths[s.index()];
                    if best.is_none_or(|(_, bw)| w > bw) {
                        best = Some((e, w));
                    }
                }
            }
            match best {
                Some((e, _)) => {
                    cut.insert(e);
                }
                None => {
                    // Every edge is cut; each path is a single mini-block.
                    let (num_paths, increments) = number(cfg, &cut);
                    return PathNumbering {
                        num_paths,
                        increments,
                        cut,
                    };
                }
            }
        }
    }

    /// The largest path count over all potential start nodes.
    pub fn max_num_paths(&self) -> u64 {
        self.num_paths.iter().copied().max().unwrap_or(1)
    }

    /// Number of distinct paths starting at `start`.
    pub fn num_paths_from(&self, start: MiniBlockId) -> u64 {
        self.num_paths[start.index()]
    }

    /// The increment contributed by traversing edge `from → to` (0 for cut
    /// edges, which instead terminate the current path).
    pub fn increment(&self, from: MiniBlockId, to: MiniBlockId) -> u64 {
        self.increments.get(&(from.0, to.0)).copied().unwrap_or(0)
    }

    /// Whether the edge terminates the current path.
    pub fn is_cut(&self, from: MiniBlockId, to: MiniBlockId) -> bool {
        self.cut.contains(&(from.0, to.0))
    }

    /// Decodes a `(start, path id)` record back into the mini-block sequence
    /// it encodes.
    ///
    /// # Panics
    /// Panics if `path_id` is out of range for `start`.
    pub fn decode(&self, cfg: &ProfilingCfg, start: MiniBlockId, path_id: u64) -> Vec<MiniBlockId> {
        assert!(
            path_id < self.num_paths[start.index()].max(1),
            "path id {path_id} out of range at {start:?}"
        );
        let mut seq = vec![start];
        let mut rem = path_id;
        let mut cur = start;
        loop {
            // Among non-cut out-edges, pick the one with the largest
            // increment ≤ rem (standard Ball–Larus decode).
            let mut next: Option<(MiniBlockId, u64)> = None;
            for &s in &cfg.mini(cur).succs {
                if self.cut.contains(&(cur.0, s.0)) {
                    continue;
                }
                let inc = self.increment(cur, s);
                if inc <= rem && next.is_none_or(|(_, bi)| inc >= bi) {
                    next = Some((s, inc));
                }
            }
            match next {
                Some((s, inc)) => {
                    rem -= inc;
                    seq.push(s);
                    cur = s;
                }
                None => break,
            }
        }
        debug_assert_eq!(rem, 0, "undecoded path remainder");
        seq
    }
}

/// Computes numPaths and edge increments over the non-cut subgraph (a DAG).
fn number(cfg: &ProfilingCfg, cut: &HashSet<(u32, u32)>) -> (Vec<u64>, HashMap<(u32, u32), u64>) {
    let n = cfg.minis.len();
    // Reverse-topological order via DFS on the DAG.
    let mut order: Vec<usize> = vec![];
    let mut visited = vec![false; n];
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        visited[start] = true;
        while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
            let succs = &cfg.minis[v].succs;
            let mut advanced = false;
            while *ei < succs.len() {
                let w = succs[*ei].index();
                *ei += 1;
                if cut.contains(&(v as u32, w as u32)) || visited[w] {
                    continue;
                }
                visited[w] = true;
                stack.push((w, 0));
                advanced = true;
                break;
            }
            if !advanced && stack.last().map(|&(v2, _)| v2) == Some(v) {
                // All successors handled.
                if stack.last().unwrap().1 >= succs.len() {
                    order.push(v);
                    stack.pop();
                }
            }
        }
    }

    let mut num_paths = vec![1u64; n];
    let mut increments = HashMap::new();
    for &v in &order {
        let succs: Vec<u32> = cfg.minis[v]
            .succs
            .iter()
            .map(|s| s.0)
            .filter(|&s| !cut.contains(&(v as u32, s)))
            .collect();
        if succs.is_empty() {
            num_paths[v] = 1;
        } else {
            let mut total = 0u64;
            for s in succs {
                increments.insert((v as u32, s), total);
                total = total.saturating_add(num_paths[s as usize]);
            }
            num_paths[v] = total;
        }
    }
    (num_paths, increments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimage_ir::{MethodId, Program, ProgramBuilder, TypeRef};

    fn build_method(body: impl FnOnce(&mut nimage_ir::BodyBuilder)) -> (Program, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.P", None);
        let m = pb.declare_static(c, "m", &[TypeRef::Int], Some(TypeRef::Int));
        let mut f = pb.body(m);
        body(&mut f);
        pb.finish_body(m, f);
        pb.set_entry(m);
        (pb.build().unwrap(), m)
    }

    fn diamond() -> (Program, MethodId) {
        build_method(|f| {
            let x = f.param(0);
            let zero = f.iconst(0);
            let c = f.lt(x, zero);
            let out = f.local();
            f.if_then_else(
                c,
                |f| {
                    let v = f.iconst(1);
                    f.assign(out, v);
                },
                |f| {
                    let v = f.iconst(2);
                    f.assign(out, v);
                },
            );
            f.ret(Some(out));
        })
    }

    #[test]
    fn diamond_has_two_paths() {
        let (p, m) = diamond();
        let cfg = ProfilingCfg::build(p.method(m));
        let num = PathNumbering::compute(&cfg, 1 << 16);
        assert_eq!(num.num_paths_from(cfg.entry()), 2);
    }

    #[test]
    fn diamond_decode_distinguishes_branches() {
        let (p, m) = diamond();
        let cfg = ProfilingCfg::build(p.method(m));
        let num = PathNumbering::compute(&cfg, 1 << 16);
        let p0 = num.decode(&cfg, cfg.entry(), 0);
        let p1 = num.decode(&cfg, cfg.entry(), 1);
        assert_ne!(p0, p1);
        // Both start at the entry and end at the same ret block.
        assert_eq!(p0.first(), p1.first());
        assert_eq!(p0.last(), p1.last());
    }

    #[test]
    fn loop_back_edge_is_cut() {
        let (p, m) = build_method(|f| {
            let n = f.param(0);
            let i = f.iconst(0);
            f.while_loop(
                |f| f.lt(i, n),
                |f| {
                    let one = f.iconst(1);
                    let t = f.add(i, one);
                    f.assign(i, t);
                },
            );
            f.ret(Some(i));
        });
        let cfg = ProfilingCfg::build(p.method(m));
        let num = PathNumbering::compute(&cfg, 1 << 16);
        // The body→header edge must be cut; without cuts, a cyclic graph
        // could not be numbered at all.
        assert!(num.max_num_paths() >= 1);
        let has_cut = cfg.minis().iter().enumerate().any(|(i, mb)| {
            mb.succs
                .iter()
                .any(|&s| num.is_cut(MiniBlockId(i as u32), s))
        });
        assert!(has_cut);
    }

    #[test]
    fn calls_split_blocks_into_minis() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.P", None);
        let callee = pb.declare_static(c, "callee", &[], Some(TypeRef::Int));
        let mut f = pb.body(callee);
        let v = f.iconst(1);
        f.ret(Some(v));
        pb.finish_body(callee, f);
        let m = pb.declare_static(c, "m", &[], Some(TypeRef::Int));
        let mut f = pb.body(m);
        let a = f.call_static(callee, &[], true).unwrap();
        let b = f.call_static(callee, &[], true).unwrap();
        let s = f.add(a, b);
        f.ret(Some(s));
        pb.finish_body(m, f);
        pb.set_entry(m);
        let p = pb.build().unwrap();

        let cfg = ProfilingCfg::build(p.method(m));
        // One block, two calls → three minis.
        assert_eq!(cfg.minis().len(), 3);
        let num = PathNumbering::compute(&cfg, 1 << 16);
        // Intra-block call edges are cut.
        assert!(num.is_cut(MiniBlockId(0), MiniBlockId(1)));
        assert!(num.is_cut(MiniBlockId(1), MiniBlockId(2)));
    }

    #[test]
    fn heap_access_events_are_recorded_in_order() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.P", None);
        let fx = pb.add_instance_field(c, "x", TypeRef::Int);
        let m = pb.declare_static(c, "m", &[TypeRef::Object(c)], Some(TypeRef::Int));
        let mut f = pb.body(m);
        let o = f.param(0);
        let a = f.get_field(o, fx);
        f.put_field(o, fx, a);
        f.ret(Some(a));
        pb.finish_body(m, f);
        pb.set_entry(m);
        let p = pb.build().unwrap();

        let cfg = ProfilingCfg::build(p.method(m));
        let events = &cfg.mini(cfg.entry()).events;
        assert_eq!(events.len(), 3); // MethodEntry + 2 accesses
        assert_eq!(events[0], StaticEvent::MethodEntry);
        assert!(matches!(
            events[1],
            StaticEvent::HeapAccess { instr: 0, .. }
        ));
        assert!(matches!(
            events[2],
            StaticEvent::HeapAccess { instr: 1, .. }
        ));
    }

    /// A chain of k diamonds has 2^k paths; the limit must force cuts.
    #[test]
    fn path_cutting_bounds_explosion() {
        let (p, m) = build_method(|f| {
            let x = f.param(0);
            let zero = f.iconst(0);
            let out = f.iconst(0);
            for _ in 0..20 {
                let c = f.lt(x, zero);
                f.if_then_else(
                    c,
                    |f| {
                        let one = f.iconst(1);
                        let t = f.add(out, one);
                        f.assign(out, t);
                    },
                    |f| {
                        let two = f.iconst(2);
                        let t = f.add(out, two);
                        f.assign(out, t);
                    },
                );
            }
            f.ret(Some(out));
        });
        let cfg = ProfilingCfg::build(p.method(m));
        let unlimited = PathNumbering::compute(&cfg, u64::MAX);
        assert!(unlimited.max_num_paths() > 1 << 16);
        let limited = PathNumbering::compute(&cfg, 1 << 10);
        assert!(limited.max_num_paths() <= 1 << 10);
    }

    /// Every path id decodes to a distinct sequence (injectivity).
    #[test]
    fn decode_is_injective_over_all_ids() {
        let (p, m) = build_method(|f| {
            let x = f.param(0);
            let zero = f.iconst(0);
            let out = f.iconst(0);
            for _ in 0..4 {
                let c = f.lt(x, zero);
                f.if_then_else(
                    c,
                    |f| {
                        let one = f.iconst(1);
                        let t = f.add(out, one);
                        f.assign(out, t);
                    },
                    |_f| {},
                );
            }
            f.ret(Some(out));
        });
        let cfg = ProfilingCfg::build(p.method(m));
        let num = PathNumbering::compute(&cfg, 1 << 16);
        let total = num.num_paths_from(cfg.entry());
        assert_eq!(total, 16);
        let mut seen = std::collections::HashSet::new();
        for id in 0..total {
            let seq = num.decode(&cfg, cfg.entry(), id);
            assert!(seen.insert(seq), "duplicate decode for id {id}");
        }
    }
}
