//! Property tests of inliner/CU invariants over random call trees.

use proptest::prelude::*;

use nimage_analysis::{analyze, AnalysisConfig};
use nimage_compiler::{compile, CompiledProgram, InlineConfig, InstrumentConfig};
use nimage_ir::{MethodId, Program, ProgramBuilder, TypeRef};

/// Builds a program of `n` methods where method `i` calls the methods named
/// by `calls[i]` (indices < i, keeping the graph acyclic) with `pad`
/// padding instructions each; `main` calls method `n-1`.
fn call_tree_program(pads: &[u8], calls: &[Vec<u8>]) -> Program {
    let n = pads.len();
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("p.T", None);
    let mut ids: Vec<MethodId> = vec![];
    for i in 0..n {
        ids.push(pb.declare_static(c, &format!("m{i:02}"), &[], Some(TypeRef::Int)));
    }
    for i in 0..n {
        let mut f = pb.body(ids[i]);
        let mut acc = f.iconst(i as i64);
        for _ in 0..pads[i] {
            let one = f.iconst(1);
            acc = f.add(acc, one);
        }
        for &t in &calls[i] {
            let callee = ids[t as usize % i.max(1)];
            if (t as usize % i.max(1)) < i {
                let v = f.call_static(callee, &[], true).unwrap();
                acc = f.add(acc, v);
            }
        }
        f.ret(Some(acc));
        pb.finish_body(ids[i], f);
    }
    let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(main);
    let v = f.call_static(ids[n - 1], &[], true).unwrap();
    f.ret(Some(v));
    pb.finish_body(main, f);
    pb.set_entry(main);
    pb.build().unwrap()
}

fn compiled(p: &Program, budget: u32, threshold: u32) -> CompiledProgram {
    let reach = analyze(p, &AnalysisConfig::default());
    let cfg = InlineConfig {
        cu_budget: budget,
        inline_threshold: threshold,
        ..InlineConfig::default()
    };
    compile(p, reach, &cfg, InstrumentConfig::NONE, None)
}

fn tree_inputs() -> impl Strategy<Value = (Vec<u8>, Vec<Vec<u8>>)> {
    (2usize..10).prop_flat_map(|n| {
        (
            proptest::collection::vec(0u8..60, n..=n),
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..3), n..=n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every reachable method is *somewhere*: a CU root or an inlinee.
    #[test]
    fn reachable_methods_are_materialized((pads, calls) in tree_inputs(), budget in 256u32..4096, threshold in 0u32..400) {
        let p = call_tree_program(&pads, &calls);
        let cp = compiled(&p, budget, threshold);
        for &m in &cp.reachability.methods {
            let present = cp.cus.iter().any(|cu| cu.contains(m));
            prop_assert!(present, "{} missing from every CU", p.method_signature(m));
        }
    }

    /// Inline-node byte spans never overlap and stay inside their CU.
    #[test]
    fn cu_spans_are_disjoint((pads, calls) in tree_inputs(), budget in 256u32..4096, threshold in 0u32..400) {
        let p = call_tree_program(&pads, &calls);
        let cp = compiled(&p, budget, threshold);
        for cu in &cp.cus {
            let mut spans: Vec<(u32, u32)> = cu
                .nodes
                .iter()
                .map(|n| (n.offset, n.offset + n.size))
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "overlapping nodes in {}", cu.id);
            }
            for n in &cu.nodes {
                prop_assert!(n.offset + n.size <= cu.size);
            }
            // Child links are internally consistent.
            for (i, n) in cu.nodes.iter().enumerate() {
                for &(site, child) in &n.children {
                    prop_assert_eq!(site.method, n.method);
                    prop_assert_eq!(
                        cu.nodes[child as usize].parent,
                        Some(i as u32)
                    );
                }
            }
        }
    }

    /// Default CU order is alphabetical by root signature, and the entry
    /// method always has a CU.
    #[test]
    fn default_order_and_entry((pads, calls) in tree_inputs()) {
        let p = call_tree_program(&pads, &calls);
        let cp = compiled(&p, 2048, 180);
        let sigs = cp.root_signatures(&p);
        let mut sorted = sigs.clone();
        sorted.sort();
        prop_assert_eq!(sigs, sorted);
        prop_assert!(cp.cu_of_root(p.entry.unwrap()).is_some());
    }

    /// Zero threshold means no inlining at all: every CU has one node.
    #[test]
    fn zero_threshold_disables_inlining((pads, calls) in tree_inputs()) {
        let p = call_tree_program(&pads, &calls);
        let cp = compiled(&p, 4096, 0);
        for cu in &cp.cus {
            prop_assert_eq!(cu.nodes.len(), 1);
        }
    }
}
