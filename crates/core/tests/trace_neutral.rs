//! Tracing is observation, not participation: turning VM-level trace
//! events on must not change a single measured bit, must not move any
//! cache fingerprint, and two traced runs of the same evaluation must
//! record the same logical span tree.

use nimage_core::{
    BuildOptions, DiskCacheOptions, Engine, EngineOptions, Strategy, TraceOptions, WorkloadSpec,
};
use nimage_trace::{canonical_shape, logical_roots};
use nimage_vm::StopWhen;
use nimage_workloads::{Awfy, Microservice, RuntimeScale};

fn engine(n_threads: usize, vm_events: bool, disk: Option<DiskCacheOptions>) -> Engine {
    Engine::new(EngineOptions {
        n_threads,
        disk,
        trace: TraceOptions {
            vm_events,
            ..Default::default()
        },
    })
}

/// Debug-renders every cell of one full evaluation — covers every field
/// of both run reports bit for bit.
fn evaluate(engine: &Engine, program: &nimage_ir::Program, stop: StopWhen) -> Vec<String> {
    let spec = WorkloadSpec::new("wl", program, BuildOptions::default(), stop);
    engine
        .evaluate_matrix(std::slice::from_ref(&spec), &Strategy::all())
        .expect("evaluation succeeds")
        .iter()
        .map(|c| format!("{} {:?} {:?}", c.workload, c.strategy, c.eval))
        .collect()
}

/// Recording VM fault instants must leave every evaluated number — fault
/// counts, page states, op counts, call counts — bit-identical at every
/// worker count.
#[test]
fn vm_events_are_bit_neutral_across_thread_counts() {
    let program = Awfy::Sieve.program_at(&RuntimeScale::small());
    for threads in [1, 2, 4] {
        let off = evaluate(&engine(threads, false, None), &program, StopWhen::Exit);
        let on = evaluate(&engine(threads, true, None), &program, StopWhen::Exit);
        assert_eq!(off, on, "vm_events changed results at {threads} threads");
    }
}

#[test]
fn vm_events_are_bit_neutral_on_a_microservice() {
    let program = Microservice::Micronaut.program();
    let off = evaluate(&engine(2, false, None), &program, StopWhen::FirstResponse);
    let on = evaluate(&engine(2, true, None), &program, StopWhen::FirstResponse);
    assert_eq!(off, on, "vm_events changed a microservice evaluation");
}

/// Trace options never enter cache fingerprints: a traced engine must get
/// pure disk hits (no stores, no misses on the persisted stages) for
/// artifacts an untraced engine persisted.
#[test]
fn trace_options_do_not_move_cache_fingerprints() {
    let dir = std::env::temp_dir().join(format!("nimage-trace-neutral-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let disk = || Some(DiskCacheOptions::at(&dir));
    let program = Awfy::Bounce.program_at(&RuntimeScale::small());

    let cold = engine(2, false, disk());
    let cold_rows = evaluate(&cold, &program, StopWhen::Exit);
    let stats = cold.stats().disk.expect("disk tier configured");
    assert!(stats.stores > 0, "cold run persists artifacts");

    let warm = engine(2, true, disk());
    let warm_rows = evaluate(&warm, &program, StopWhen::Exit);
    let stats = warm.stats().disk.expect("disk tier configured");
    assert!(stats.hits > 0, "traced engine must hit untraced entries");
    assert_eq!(
        stats.stores, 0,
        "tracing forked a cache fingerprint: the traced run re-stored"
    );
    assert_eq!(cold_rows, warm_rows, "warm traced results differ");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two traced runs of the same evaluation record the same logical span
/// tree (names, nesting, root/instant structure) — recording order across
/// worker threads may differ, the canonical shape may not.
#[test]
fn traced_runs_have_a_deterministic_span_shape() {
    let program = Awfy::Sieve.program_at(&RuntimeScale::small());
    let shape = |threads: usize| {
        let e = engine(threads, true, None);
        let rows = evaluate(&e, &program, StopWhen::Exit);
        let shape = canonical_shape(&logical_roots(&e.tracer().events()));
        (rows, shape)
    };
    let (rows_a, shape_a) = shape(2);
    let (rows_b, shape_b) = shape(2);
    assert_eq!(rows_a, rows_b);
    assert_eq!(shape_a, shape_b, "span tree shape moved between runs");
    // The shape covers the whole pipeline: every stage name shows up.
    for stage in nimage_core::StageTimes::NAMES {
        assert!(
            shape_a.contains(stage),
            "stage {stage} missing from span shape:\n{shape_a}"
        );
    }
}
