//! Seeded end-to-end pins of the clustered strategies: the layout
//! optimizer must beat plain first-touch ordering by an exact, deterministic
//! fault margin on the bundled workloads (the win comes from hot/cold
//! splitting the native tail, which the cost model predicts page-exactly),
//! and its ordering stage must be bit-identical at any worker count.

use std::collections::HashMap;

use nimage_compiler::InstrumentConfig;
use nimage_core::{BuildOptions, EvalInputs, Parallelism, Pipeline, Strategy};
use nimage_profiler::DumpMode;
use nimage_vm::{StopWhen, VmConfig};
use nimage_workloads::{Awfy, Microservice, RuntimeScale};

fn opts(dump: DumpMode) -> BuildOptions {
    BuildOptions {
        vm: VmConfig {
            dump_mode: dump,
            ..VmConfig::default()
        },
        ..BuildOptions::default()
    }
}

/// Measured total major faults (text + heap) per strategy.
fn measure(
    program: &nimage_ir::Program,
    options: BuildOptions,
    stop: StopWhen,
) -> HashMap<Strategy, u64> {
    let pipeline = Pipeline::new(program, options);
    let artifacts = pipeline.profiling_run(stop).unwrap();
    let baseline = pipeline.baseline(&artifacts, stop).unwrap();
    [
        Strategy::Cu,
        Strategy::CuClustered,
        Strategy::CuPlusHeapPath,
        Strategy::CuClusteredPlusHeapPath,
    ]
    .into_iter()
    .map(|s| {
        let eval = pipeline
            .evaluate_strategy(
                EvalInputs {
                    artifacts: &artifacts,
                    baseline: &baseline,
                },
                s,
                stop,
            )
            .unwrap();
        (s, eval.optimized.faults.total())
    })
    .collect()
}

/// Bounce (AWFY, FaaS model): the exact fault counts the evaluation
/// reports, pinning the clustered margin over first touch.
#[test]
fn bounce_clustered_fault_counts_are_pinned() {
    let program = Awfy::Bounce.program();
    let faults = measure(&program, opts(DumpMode::OnFull), StopWhen::Exit);
    assert_eq!(faults[&Strategy::Cu], 42);
    assert_eq!(faults[&Strategy::CuClustered], 38);
    assert_eq!(faults[&Strategy::CuPlusHeapPath], 35);
    assert_eq!(faults[&Strategy::CuClusteredPlusHeapPath], 31);
}

/// micronaut (microservice, time-to-first-response): same pin on the
/// framework-startup-shaped workload.
#[test]
fn micronaut_clustered_fault_counts_are_pinned() {
    let program = Microservice::Micronaut.program();
    let faults = measure(
        &program,
        opts(DumpMode::MemoryMapped),
        StopWhen::FirstResponse,
    );
    assert_eq!(faults[&Strategy::Cu], 28);
    assert_eq!(faults[&Strategy::CuClustered], 23);
    assert_eq!(faults[&Strategy::CuPlusHeapPath], 23);
    assert_eq!(faults[&Strategy::CuClusteredPlusHeapPath], 18);
}

/// The optimizer's ordering stage — run through `Pipeline::order_stage`
/// with real profiles — returns the bit-identical plan at every worker
/// count, and its prediction never exceeds first touch's.
#[test]
fn clustered_order_stage_is_thread_count_invariant() {
    let program = Awfy::Bounce.program_at(&RuntimeScale::small());
    let base_opts = BuildOptions {
        threads: Parallelism::threads(1),
        ..BuildOptions::default()
    };
    let serial = Pipeline::new(&program, base_opts.clone());
    let artifacts = serial.profiling_run(StopWhen::Exit).unwrap();
    let reach = serial.analyze_stage();
    let compiled =
        serial.compile_stage(reach, InstrumentConfig::NONE, Some(&artifacts.call_counts));
    let snap = serial
        .snapshot_stage(&compiled, &base_opts.heap_optimized)
        .unwrap();
    for strategy in [Strategy::CuClustered, Strategy::CuClusteredPlusHeapPath] {
        let base = serial.order_stage(&artifacts, &compiled, &snap, Some(strategy), None);
        let predicted = base
            .predicted
            .expect("clustered strategies carry a prediction");
        assert!(predicted.optimized.total() <= predicted.first_touch.total());
        assert!(base.native_order.is_some(), "native tail must be split");
        for threads in [2, 4, 8] {
            let par = Pipeline::new(
                &program,
                BuildOptions {
                    threads: Parallelism::threads(threads),
                    ..BuildOptions::default()
                },
            );
            let plan = par.order_stage(&artifacts, &compiled, &snap, Some(strategy), None);
            assert_eq!(
                base,
                plan,
                "{} differs at {threads} threads",
                strategy.name()
            );
        }
    }
}
