//! Sharded-lowering equivalence: a run against the lazy per-CU container
//! (shards faulted in on first call) must be observably indistinguishable
//! from one against the whole-program eager lowering. Reports are compared
//! through their `Debug` rendering, which covers every field bit for bit —
//! shard realization order may only change when bodies are flattened,
//! never what the VM computes. The lazy container must also leave CUs the
//! run never enters unlowered; that gap is the whole point of sharding.

use std::sync::Arc;

use nimage_compiler::{CuId, InstrumentConfig};
use nimage_core::{BuildOptions, Parallelism, Pipeline, RunParts};
use nimage_ir::Program;
use nimage_vm::{ExecMode, HeapTemplate, LoweredProgram, StopWhen};
use nimage_workloads::{Awfy, Microservice, RuntimeScale};

fn opts(threads: usize) -> BuildOptions {
    let mut o = BuildOptions {
        threads: Parallelism::threads(threads),
        ..BuildOptions::default()
    };
    o.vm.exec = ExecMode::Lowered;
    o
}

/// Builds once, then runs the image twice over shared parts: once with a
/// fresh lazy container and once with the whole-program eager lowering.
/// Returns both debug-rendered reports plus the (now populated) lazy
/// container for shard-count assertions.
fn lazy_vs_eager(
    program: &Program,
    o: &BuildOptions,
    instrument: InstrumentConfig,
    stop: StopWhen,
) -> (String, String, Arc<LoweredProgram>) {
    let p = Pipeline::new(program, o.clone());
    let built = p.build_instrumented(instrument).unwrap();
    let template = Arc::new(HeapTemplate::from_build_heap(built.snapshot.heap()));
    let lazy = Arc::new(LoweredProgram::new(
        program,
        &built.compiled,
        o.vm.max_paths,
    ));
    let eager = Arc::new(LoweredProgram::build(
        program,
        &built.compiled,
        o.vm.max_paths,
    ));
    let run = |lp: &Arc<LoweredProgram>| {
        let r = p
            .run(
                RunParts::new(&built.compiled, &built.snapshot, &built.image)
                    .heap(Some(template.clone()))
                    .lowered(Some(lp.clone())),
                stop,
            )
            .unwrap();
        format!("{r:?}")
    };
    (run(&lazy), run(&eager), lazy)
}

#[test]
fn lazy_matches_eager_on_all_awfy_workloads() {
    let scale = RuntimeScale::small();
    for wl in Awfy::all() {
        let program = wl.program_at(&scale);
        for instrument in [InstrumentConfig::FULL, InstrumentConfig::NONE] {
            let (lazy, eager, _) = lazy_vs_eager(&program, &opts(1), instrument, StopWhen::Exit);
            assert_eq!(lazy, eager, "{wl:?} ({instrument:?}) differs lazy vs eager");
        }
    }
}

#[test]
fn lazy_matches_eager_on_all_microservices() {
    for wl in Microservice::all() {
        let program = wl.program();
        for instrument in [InstrumentConfig::FULL, InstrumentConfig::NONE] {
            let (lazy, eager, _) =
                lazy_vs_eager(&program, &opts(1), instrument, StopWhen::FirstResponse);
            assert_eq!(lazy, eager, "{wl:?} ({instrument:?}) differs lazy vs eager");
        }
    }
}

/// The worker-thread count fans the build stages out differently, but
/// neither the compiled output nor the report of a lazily sharded run may
/// move with it — and the lazy report must equal the eager one at every
/// count.
#[test]
fn lazy_matches_eager_across_thread_counts() {
    let program = Microservice::Micronaut.program();
    let stop = StopWhen::FirstResponse;
    let (reference, _, _) = lazy_vs_eager(&program, &opts(1), InstrumentConfig::FULL, stop);
    for threads in [1, 2, 4, 8] {
        let (lazy, eager, _) =
            lazy_vs_eager(&program, &opts(threads), InstrumentConfig::FULL, stop);
        assert_eq!(reference, lazy, "lazy report moved at {threads} threads");
        assert_eq!(reference, eager, "eager report moved at {threads} threads");
    }
}

/// A startup-bounded run must fault in strictly fewer shards than the
/// program has CUs, and every CU the run never entered must still be
/// unlowered afterwards — lazily sharding that never skips work would be
/// eager lowering with extra bookkeeping.
#[test]
fn untouched_cus_are_never_lowered() {
    let program = Microservice::Micronaut.program();
    let (_, _, lazy) = lazy_vs_eager(
        &program,
        &opts(1),
        InstrumentConfig::NONE,
        StopWhen::FirstResponse,
    );
    let lowered = lazy.shards_lowered_lazy();
    assert!(lowered > 0, "the run must fault in at least one shard");
    assert_eq!(lazy.shards_lowered_eager(), 0, "no eager path ran here");
    assert!(
        lowered < lazy.n_cus() as u64,
        "startup touched all {} CUs; sharding saved nothing",
        lazy.n_cus()
    );
    let untouched = (0..lazy.n_cus() as u32)
        .filter(|&cu| !lazy.is_cu_lowered(CuId(cu)))
        .count();
    assert_eq!(
        untouched as u64,
        lazy.n_cus() as u64 - lowered,
        "every unlowered CU is observable through is_cu_lowered"
    );
}
