//! Engine equivalence: the pre-lowered execution engine must be
//! observably indistinguishable from the legacy tree-walking interpreter.
//! Every run report — op counts, per-section fault counts, trace bytes,
//! call counts, page states — is compared through its `Debug` rendering,
//! which covers every field bit for bit. The lowered engine may only
//! change how fast the VM steps, never what it computes.

use std::sync::Arc;

use nimage_compiler::InstrumentConfig;
use nimage_core::{BuildOptions, EvalInputs, Parallelism, Pipeline, RunParts, Strategy};
use nimage_ir::Program;
use nimage_vm::{ExecMode, HeapTemplate, LoweredProgram, RunReport, StopWhen};
use nimage_workloads::{Awfy, Microservice, RuntimeScale};

fn opts(exec: ExecMode, threads: usize) -> BuildOptions {
    let mut o = BuildOptions {
        threads: Parallelism::threads(threads),
        ..BuildOptions::default()
    };
    o.vm.exec = exec;
    o
}

/// Builds the fully instrumented image and runs it, returning the report
/// (trace included) — the profiling half of the pipeline, where every
/// interpreter feature is exercised: path profiling, probe costs, paging.
fn instrumented_report(program: &Program, o: &BuildOptions, stop: StopWhen) -> RunReport {
    let p = Pipeline::new(program, o.clone());
    let built = p.build_instrumented(InstrumentConfig::FULL).unwrap();
    p.run_image(&built, stop).unwrap()
}

/// Builds the uninstrumented image and runs it — the measurement half.
fn regular_report(program: &Program, o: &BuildOptions, stop: StopWhen) -> RunReport {
    let p = Pipeline::new(program, o.clone());
    let built = p.build_instrumented(InstrumentConfig::NONE).unwrap();
    p.run_image(&built, stop).unwrap()
}

#[test]
fn lowered_matches_legacy_on_all_awfy_workloads() {
    let scale = RuntimeScale::small();
    for wl in Awfy::all() {
        let program = wl.program_at(&scale);
        let legacy = instrumented_report(&program, &opts(ExecMode::Legacy, 1), StopWhen::Exit);
        let lowered = instrumented_report(&program, &opts(ExecMode::Lowered, 1), StopWhen::Exit);
        assert_eq!(
            format!("{legacy:?}"),
            format!("{lowered:?}"),
            "instrumented run of {wl:?} differs between engines"
        );
        let legacy = regular_report(&program, &opts(ExecMode::Legacy, 1), StopWhen::Exit);
        let lowered = regular_report(&program, &opts(ExecMode::Lowered, 1), StopWhen::Exit);
        assert_eq!(
            format!("{legacy:?}"),
            format!("{lowered:?}"),
            "regular run of {wl:?} differs between engines"
        );
    }
}

#[test]
fn lowered_matches_legacy_on_all_microservices() {
    for wl in Microservice::all() {
        let program = wl.program();
        // Microservices park in an infinite accept loop, so `Exit` only
        // returns via the ops budget; cap it so the budget path (and the
        // multi-threaded park loop) is compared without a 500M-op run.
        for (stop, max_ops) in [
            (StopWhen::FirstResponse, None),
            (StopWhen::Exit, Some(2_000_000)),
        ] {
            let mut legacy_opts = opts(ExecMode::Legacy, 1);
            let mut lowered_opts = opts(ExecMode::Lowered, 1);
            if let Some(cap) = max_ops {
                legacy_opts.vm.max_ops = cap;
                lowered_opts.vm.max_ops = cap;
            }
            let legacy = instrumented_report(&program, &legacy_opts, stop);
            let lowered = instrumented_report(&program, &lowered_opts, stop);
            assert_eq!(
                format!("{legacy:?}"),
                format!("{lowered:?}"),
                "instrumented run of {wl:?} ({stop:?}) differs between engines"
            );
        }
    }
}

/// Fault counts, trace and profiles must agree between the engines across
/// every worker-thread count: the build stages fan out differently but the
/// VM result may not move.
#[test]
fn engine_matrix_is_identical_across_thread_counts() {
    let program = Microservice::Micronaut.program();
    let stop = StopWhen::FirstResponse;
    let reference = instrumented_report(&program, &opts(ExecMode::Legacy, 1), stop);
    let ref_dbg = format!("{reference:?}");
    for threads in [1, 2, 4, 8] {
        for exec in [ExecMode::Legacy, ExecMode::Lowered] {
            let r = instrumented_report(&program, &opts(exec, threads), stop);
            assert_eq!(
                ref_dbg,
                format!("{r:?}"),
                "report differs at {threads} threads with {exec:?}"
            );
        }
    }
}

/// The full evaluation (profiles, baseline, strategy measurements) agrees
/// between the engines end to end.
#[test]
fn evaluation_matches_between_engines() {
    let program = Awfy::Bounce.program_at(&RuntimeScale::small());
    let mut evals = vec![];
    for exec in [ExecMode::Legacy, ExecMode::Lowered] {
        let o = opts(exec, 1);
        let p = Pipeline::new(&program, o);
        let artifacts = p.profiling_run(StopWhen::Exit).unwrap();
        let baseline = p.baseline(&artifacts, StopWhen::Exit).unwrap();
        let e = p
            .evaluate_strategy(
                EvalInputs {
                    artifacts: &artifacts,
                    baseline: &baseline,
                },
                Strategy::CuPlusHeapPath,
                StopWhen::Exit,
            )
            .unwrap();
        // The heap-profile map is a HashMap; render it in key order so the
        // comparison is about contents, not iteration order.
        let mut heap_profiles: Vec<_> = artifacts.heap_profiles.iter().collect();
        heap_profiles.sort_by_key(|(s, _)| s.name());
        evals.push((
            format!("{:?}", artifacts.cu_profile),
            format!("{heap_profiles:?}"),
            format!("{:?}", e.baseline),
            format!("{:?}", e.optimized),
        ));
    }
    assert_eq!(evals[0], evals[1], "evaluation differs between engines");
}

/// Concurrent runs sharing one `Arc<LoweredProgram>` and one
/// `Arc<HeapTemplate>` (the engine's matrix sharding) must each report
/// exactly what an isolated serial run reports.
#[test]
fn shared_lowered_program_runs_are_isolated() {
    let program = Microservice::Micronaut.program();
    let o = opts(ExecMode::Lowered, 1);
    let p = Pipeline::new(&program, o.clone());
    let built = p.build_instrumented(InstrumentConfig::NONE).unwrap();
    let template = Arc::new(HeapTemplate::from_build_heap(built.snapshot.heap()));
    let lowered = Arc::new(LoweredProgram::build(
        &program,
        &built.compiled,
        o.vm.max_paths,
    ));
    let run_one = || {
        p.run(
            RunParts::new(&built.compiled, &built.snapshot, &built.image)
                .heap(Some(template.clone()))
                .lowered(Some(lowered.clone())),
            StopWhen::FirstResponse,
        )
        .unwrap()
    };
    let reference = format!("{:?}", run_one());
    let reports = nimage_par::parallel_map(4, 6, |_| format!("{:?}", run_one()));
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(&reference, r, "sharded run {i} differs from serial");
    }
}
