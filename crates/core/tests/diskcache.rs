//! Disk-cache tier tests: entry validation (corruption, truncation,
//! version mismatch), atomic concurrent writes, codec round-trips,
//! warm-cache reuse across engine instances, and the LRU lifecycle
//! (usage accounting, stale-temp sweeps, capped eviction).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

use nimage_core::{
    BuildOptions, CacheKey, DiskCacheOptions, DiskCodec, DiskStore, Engine, EngineOptions,
    Pipeline, Strategy, WorkloadSpec,
};
use nimage_heap::ObjId;
use nimage_ir::{Program, ProgramBuilder, TypeRef};
use nimage_vm::StopWhen;

/// A fresh per-test cache root under the system temp dir.
fn cache_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nimage-dctest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sample_map() -> HashMap<ObjId, u64> {
    (0..64u32).map(|i| (ObjId(i), u64::from(i) * 977)).collect()
}

/// The single `.bin` entry under `root` (fails the test if there isn't
/// exactly one).
fn only_entry(root: &Path) -> PathBuf {
    fn walk(dir: &Path, found: &mut Vec<PathBuf>) {
        let Ok(rd) = std::fs::read_dir(dir) else {
            return;
        };
        for e in rd.flatten() {
            let p = e.path();
            if p.is_dir() {
                walk(&p, found);
            } else if p.extension().is_some_and(|x| x == "bin") {
                found.push(p);
            }
        }
    }
    let mut found = vec![];
    walk(root, &mut found);
    assert_eq!(found.len(), 1, "expected exactly one entry: {found:?}");
    found.pop().unwrap()
}

/// Every `.bin` entry under `root`, sorted by path.
fn bin_entries(root: &Path) -> Vec<PathBuf> {
    fn walk(dir: &Path, found: &mut Vec<PathBuf>) {
        let Ok(rd) = std::fs::read_dir(dir) else {
            return;
        };
        for e in rd.flatten() {
            let p = e.path();
            if p.is_dir() {
                walk(&p, found);
            } else if p.extension().is_some_and(|x| x == "bin") {
                found.push(p);
            }
        }
    }
    let mut found = vec![];
    walk(root, &mut found);
    found.sort();
    found
}

/// Rewrites a file's mtime — the recency signal the gc sweep orders by.
fn set_mtime(path: &Path, t: SystemTime) {
    let f = std::fs::File::options().append(true).open(path).unwrap();
    f.set_times(std::fs::FileTimes::new().set_modified(t))
        .unwrap();
}

#[test]
fn typed_roundtrip_hits_on_second_load() {
    let dir = cache_root("roundtrip");
    let store = DiskStore::open(&DiskCacheOptions::at(&dir));
    let key = CacheKey::of_debug("test", &"roundtrip");
    let map = sample_map();

    assert_eq!(store.get::<HashMap<ObjId, u64>>("assign-ids", key), None);
    store.put("assign-ids", key, &map);
    assert_eq!(
        store.get::<HashMap<ObjId, u64>>("assign-ids", key),
        Some(map)
    );
    let s = store.stats();
    assert_eq!((s.hits, s.misses, s.stores, s.rejected), (1, 1, 1, 0));
    let (entries, bytes) = store.size_on_disk();
    assert_eq!(entries, 1);
    assert!(bytes > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_and_corrupt_entries_are_misses_never_errors() {
    let dir = cache_root("corrupt");
    let store = DiskStore::open(&DiskCacheOptions::at(&dir));
    let key = CacheKey::of_debug("test", &"corrupt");
    store.put("assign-ids", key, &sample_map());
    let path = only_entry(store.root());
    let pristine = std::fs::read(&path).unwrap();

    // Truncated file (header survives, payload cut short).
    std::fs::write(&path, &pristine[..pristine.len() / 2]).unwrap();
    assert_eq!(store.get::<HashMap<ObjId, u64>>("assign-ids", key), None);

    // Flipped payload byte: checksum mismatch.
    let mut flipped = pristine.clone();
    *flipped.last_mut().unwrap() ^= 0xff;
    std::fs::write(&path, &flipped).unwrap();
    assert_eq!(store.get::<HashMap<ObjId, u64>>("assign-ids", key), None);

    // Wrong magic.
    let mut bad_magic = pristine.clone();
    bad_magic[0] = b'X';
    std::fs::write(&path, &bad_magic).unwrap();
    assert_eq!(store.get::<HashMap<ObjId, u64>>("assign-ids", key), None);

    // A valid header over an undecodable payload (three stray bytes).
    store.store("assign-ids", key, &[0xff, 0xff, 0xff]);
    assert_eq!(store.get::<HashMap<ObjId, u64>>("assign-ids", key), None);

    // A valid encoding followed by trailing garbage must not half-decode.
    let mut payload = Vec::new();
    sample_map().encode(&mut payload);
    payload.push(0);
    store.store("assign-ids", key, &payload);
    assert_eq!(store.get::<HashMap<ObjId, u64>>("assign-ids", key), None);

    let s = store.stats();
    assert_eq!(s.hits, 0);
    assert_eq!(s.rejected, 5);
    assert_eq!(s.misses, 5);

    // The pristine bytes still load: nothing above poisoned the store.
    std::fs::write(&path, &pristine).unwrap();
    assert_eq!(
        store.get::<HashMap<ObjId, u64>>("assign-ids", key),
        Some(sample_map())
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn version_mismatch_invalidates() {
    let dir = cache_root("version");
    let store = DiskStore::open(&DiskCacheOptions::at(&dir));
    let key = CacheKey::of_debug("test", &"version");
    store.put("assign-ids", key, &sample_map());
    let path = only_entry(store.root());

    // Entries live under a version-scoped directory, so a format bump
    // switches directories and orphans everything old wholesale …
    assert!(store
        .root()
        .file_name()
        .is_some_and(|n| n.to_string_lossy().starts_with('v')));

    // … and the header version is checked too (defense in depth against a
    // copied-over entry): patch it and the entry becomes a miss.
    let mut data = std::fs::read(&path).unwrap();
    data[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(&path, &data).unwrap();
    assert_eq!(store.get::<HashMap<ObjId, u64>>("assign-ids", key), None);
    assert_eq!(store.stats().rejected, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_writers_race_benignly() {
    let dir = cache_root("race");
    let store = DiskStore::open(&DiskCacheOptions::at(&dir));
    let key = CacheKey::of_debug("test", &"race");
    let maps: Vec<HashMap<ObjId, u64>> = (0..8u64)
        .map(|t| (0..256u32).map(|i| (ObjId(i), u64::from(i) + t)).collect())
        .collect();

    std::thread::scope(|scope| {
        for map in &maps {
            scope.spawn(|| store.put("assign-ids", key, map));
        }
    });

    // One complete entry won; readers never see a partial file, and no
    // temporary files leak.
    let winner = store
        .get::<HashMap<ObjId, u64>>("assign-ids", key)
        .expect("a complete entry must win the race");
    assert!(maps.contains(&winner));
    let entry_dir = only_entry(store.root()).parent().unwrap().to_path_buf();
    let stray_tmp = std::fs::read_dir(entry_dir)
        .unwrap()
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .count();
    assert_eq!(stray_tmp, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_length_prefix_is_rejected_without_huge_allocation() {
    let dir = cache_root("hugelen");
    let store = DiskStore::open(&DiskCacheOptions::at(&dir));
    let key = CacheKey::of_debug("test", &"hugelen");
    // A valid header + checksum around a payload whose leading count
    // claims u32::MAX entries with only four bytes behind it. The decoder
    // must clamp its pre-allocation to the bytes actually remaining and
    // reject cleanly instead of attempting a multi-GiB Vec.
    let mut payload = u32::MAX.to_le_bytes().to_vec();
    payload.extend_from_slice(&[1, 2, 3, 4]);
    store.store("assign-ids", key, &payload);
    assert_eq!(store.get::<HashMap<ObjId, u64>>("assign-ids", key), None);
    let s = store.stats();
    assert_eq!((s.hits, s.rejected), (0, 1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn relative_xdg_cache_home_is_ignored() {
    // Serialize against nothing: no other test in this binary reads these
    // variables, and edition-2021 `set_var` is safe.
    let old_xdg = std::env::var_os("XDG_CACHE_HOME");
    let old_home = std::env::var_os("HOME");

    // The XDG base-directory spec: a relative $XDG_CACHE_HOME must be
    // treated as unset, so the $HOME fallback wins.
    std::env::set_var("XDG_CACHE_HOME", "relative/cache");
    std::env::set_var("HOME", "/tmp/nimage-dctest-home");
    assert_eq!(
        DiskCacheOptions::default_dir().as_deref(),
        Some(Path::new("/tmp/nimage-dctest-home/.cache/nimage"))
    );

    // An absolute one is honored.
    std::env::set_var("XDG_CACHE_HOME", "/tmp/nimage-dctest-xdg");
    assert_eq!(
        DiskCacheOptions::default_dir().as_deref(),
        Some(Path::new("/tmp/nimage-dctest-xdg/nimage"))
    );

    // Relative XDG and no HOME: no default rather than a guess.
    std::env::set_var("XDG_CACHE_HOME", "relative/cache");
    std::env::remove_var("HOME");
    assert_eq!(DiskCacheOptions::default_dir(), None);

    match old_xdg {
        Some(v) => std::env::set_var("XDG_CACHE_HOME", v),
        None => std::env::remove_var("XDG_CACHE_HOME"),
    }
    match old_home {
        Some(v) => std::env::set_var("HOME", v),
        None => std::env::remove_var("HOME"),
    }
}

#[test]
fn temp_files_are_excluded_from_stats_and_swept_when_stale() {
    let dir = cache_root("tmpsweep");
    let store = DiskStore::open(&DiskCacheOptions::at(&dir));
    let key = CacheKey::of_debug("test", &"tmpsweep");
    store.put("assign-ids", key, &sample_map());
    let entry = only_entry(store.root());
    let stage_dir = entry.parent().unwrap();
    let fresh = stage_dir.join(".tmp.999.0");
    let stale = stage_dir.join(".tmp.999.1");
    std::fs::write(&fresh, b"half-written").unwrap();
    std::fs::write(&stale, b"orphaned-by-a-crash").unwrap();
    set_mtime(&stale, SystemTime::now() - Duration::from_secs(3600));

    // Leftover temps are reported separately, never as entries.
    let u = store.usage();
    assert_eq!((u.entries, u.tmp_files), (1, 2));
    assert!(u.tmp_bytes > 0);
    assert_eq!(store.size_on_disk().0, 1);

    // gc deletes only the stale temp — the fresh one may belong to an
    // in-flight write — and leaves complete entries alone (no caps given).
    let r = store.gc(None, None);
    assert_eq!(r.removed_tmp, 1);
    assert_eq!(r.evicted_entries, 0);
    assert!(!stale.exists());
    assert!(fresh.exists());
    assert!(entry.exists());
    assert_eq!(store.usage().tmp_files, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gc_evicts_oldest_accessed_first_until_under_caps() {
    let dir = cache_root("evict");
    let store = DiskStore::open(&DiskCacheOptions::at(&dir));
    let mut paths: Vec<PathBuf> = Vec::new();
    for i in 0..4u32 {
        store.put("assign-ids", CacheKey::of_debug("test", &i), &sample_map());
        let new: Vec<PathBuf> = bin_entries(store.root())
            .into_iter()
            .filter(|p| !paths.contains(p))
            .collect();
        assert_eq!(new.len(), 1);
        paths.extend(new);
    }
    // paths[0] accessed longest ago … paths[3] most recently.
    let now = SystemTime::now();
    for (i, p) in paths.iter().enumerate() {
        set_mtime(p, now - Duration::from_secs(3600 * (4 - i as u64)));
    }

    let r = store.gc(None, Some(2));
    assert_eq!(r.evicted_entries, 2);
    assert_eq!(r.surviving_entries, 2);
    assert!(
        !paths[0].exists() && !paths[1].exists(),
        "oldest two evicted"
    );
    assert!(paths[2].exists() && paths[3].exists(), "newest two survive");

    // A byte cap below a single entry clears the remainder.
    let r = store.gc(Some(1), None);
    assert_eq!(r.evicted_entries, 2);
    assert_eq!((r.surviving_entries, r.surviving_bytes), (0, 0));
    assert_eq!(store.size_on_disk(), (0, 0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hits_refresh_recency_and_protect_entries_from_eviction() {
    let dir = cache_root("lru");
    let store = DiskStore::open(&DiskCacheOptions::at(&dir));
    let key_a = CacheKey::of_debug("test", &"a");
    let key_b = CacheKey::of_debug("test", &"b");
    store.put("assign-ids", key_a, &sample_map());
    let path_a = only_entry(store.root());
    store.put("assign-ids", key_b, &sample_map());
    let path_b = bin_entries(store.root())
        .into_iter()
        .find(|p| *p != path_a)
        .unwrap();

    // `a` is older than `b` on disk, but a hit on `a` bumps its mtime, so
    // the LRU sweep now sees `b` as the oldest.
    let now = SystemTime::now();
    set_mtime(&path_a, now - Duration::from_secs(7200));
    set_mtime(&path_b, now - Duration::from_secs(3600));
    assert!(store
        .get::<HashMap<ObjId, u64>>("assign-ids", key_a)
        .is_some());

    let r = store.gc(None, Some(1));
    assert_eq!(r.evicted_entries, 1);
    assert!(path_a.exists(), "the hit refreshed a's recency");
    assert!(!path_b.exists(), "b became the least recently accessed");
    std::fs::remove_dir_all(&dir).ok();
}

/// The synthetic workload used by the engine-level tests: a clinit-built
/// array plus a couple of methods, enough for a full profile/evaluate
/// cycle.
fn program() -> Program {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("t.Main", None);
    let fld = pb.add_static_field(c, "S", TypeRef::array_of(TypeRef::Int));
    let cl = pb.declare_clinit(c);
    let mut f = pb.body(cl);
    let n = f.iconst(256);
    let arr = f.new_array(TypeRef::Int, n);
    let from = f.iconst(0);
    f.for_range(from, n, |f, i| {
        f.array_set(arr, i, i);
    });
    f.put_static(fld, arr);
    f.ret(None);
    pb.finish_body(cl, f);
    let helper = pb.declare_static(c, "helper", &[TypeRef::Int], Some(TypeRef::Int));
    let mut f = pb.body(helper);
    let arr = f.get_static(fld);
    let v = f.array_get(arr, f.param(0));
    f.ret(Some(v));
    pb.finish_body(helper, f);
    let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(main);
    let k = f.iconst(7);
    let v = f.call_static(helper, &[k], true).unwrap();
    f.ret(Some(v));
    pb.finish_body(main, f);
    pb.set_entry(main);
    pb.build().unwrap()
}

#[test]
fn profiled_artifacts_codec_roundtrips_through_bytes() {
    let program = program();
    let pipeline = Pipeline::new(&program, BuildOptions::default());
    let artifacts = pipeline.profiling_run(StopWhen::Exit).unwrap();

    let mut payload = Vec::new();
    artifacts.encode(&mut payload);
    let mut r = nimage_core::diskcache::Reader::new(&payload);
    let decoded = nimage_core::ProfiledArtifacts::decode(&mut r).expect("decodes");
    assert!(r.is_empty(), "decode must consume the whole payload");

    assert_eq!(decoded.cu_profile, artifacts.cu_profile);
    assert_eq!(decoded.method_profile, artifacts.method_profile);
    assert_eq!(decoded.heap_profiles, artifacts.heap_profiles);
    assert_eq!(decoded.call_counts, artifacts.call_counts);
    assert_eq!(decoded.native_pages, artifacts.native_pages);
    let (a, b) = (&decoded.instrumented_report, &artifacts.instrumented_report);
    assert_eq!(a.ops, b.ops);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.entry_return, b.entry_return);
    assert_eq!(
        a.trace.as_ref().map(nimage_profiler::write_trace),
        b.trace.as_ref().map(nimage_profiler::write_trace),
    );
}

#[test]
fn engine_without_disk_options_never_touches_disk() {
    let program = program();
    let engine = Engine::new(EngineOptions {
        n_threads: 1,
        disk: None,
        trace: Default::default(),
    });
    let spec = WorkloadSpec::new("t", &program, BuildOptions::default(), StopWhen::Exit);
    engine
        .evaluate_matrix(std::slice::from_ref(&spec), &[Strategy::Cu])
        .expect("evaluation succeeds");
    assert!(engine.stats().disk.is_none());
}

#[test]
fn second_engine_starts_warm_with_identical_results() {
    let dir = cache_root("warm");
    let program = program();
    let strategies = [Strategy::Cu, Strategy::HeapPath];

    let cold = Engine::new(EngineOptions {
        n_threads: 2,
        disk: Some(DiskCacheOptions::at(&dir)),
        trace: Default::default(),
    });
    let spec = WorkloadSpec::new("t", &program, BuildOptions::default(), StopWhen::Exit);
    let rows_cold = cold
        .evaluate_matrix(std::slice::from_ref(&spec), &strategies)
        .unwrap();
    let cold_stats = cold.stats().disk.unwrap();
    assert_eq!(cold_stats.hits, 0, "first run finds an empty cache");
    assert!(cold_stats.stores > 0, "first run persists artifacts");

    // A fresh engine (fresh memory cache) in the same process stands in
    // for the second process of a warm CI run.
    let warm = Engine::new(EngineOptions {
        n_threads: 2,
        disk: Some(DiskCacheOptions::at(&dir)),
        trace: Default::default(),
    });
    let spec = WorkloadSpec::new("t", &program, BuildOptions::default(), StopWhen::Exit);
    let rows_warm = warm
        .evaluate_matrix(std::slice::from_ref(&spec), &strategies)
        .unwrap();
    let warm_stats = warm.stats().disk.unwrap();
    assert!(warm_stats.hits > 0, "second run reads persisted artifacts");
    assert_eq!(warm_stats.stores, 0, "nothing new to persist");

    assert_eq!(rows_cold.len(), rows_warm.len());
    for (c1, c2) in rows_cold.iter().zip(&rows_warm) {
        assert_eq!(c1.strategy, c2.strategy);
        let (e1, e2) = (&c1.eval, &c2.eval);
        assert_eq!(e1.baseline.faults, e2.baseline.faults);
        assert_eq!(e1.optimized.faults, e2.optimized.faults);
        assert_eq!(e1.baseline.ops, e2.baseline.ops);
        assert_eq!(e1.optimized.ops, e2.optimized.ops);
        assert_eq!(e1.optimized.entry_return, e2.optimized.entry_return);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warm_run_hits_compile_and_snapshot_stages_on_disk() {
    let dir = cache_root("stagehits");
    let program = program();

    let cold = Engine::new(EngineOptions {
        n_threads: 1,
        disk: Some(DiskCacheOptions::at(&dir)),
        trace: Default::default(),
    });
    let spec = WorkloadSpec::new("t", &program, BuildOptions::default(), StopWhen::Exit);
    cold.evaluate_matrix(std::slice::from_ref(&spec), &[Strategy::Cu])
        .unwrap();

    let warm = Engine::new(EngineOptions {
        n_threads: 1,
        disk: Some(DiskCacheOptions::at(&dir)),
        trace: Default::default(),
    });
    let spec = WorkloadSpec::new("t", &program, BuildOptions::default(), StopWhen::Exit);
    warm.evaluate_matrix(std::slice::from_ref(&spec), &[Strategy::Cu])
        .unwrap();

    // The finer-grained stages persist individually: the warm run loads
    // the compiled program and the heap snapshot back, not just the
    // profile composite.
    let stages = warm.stats().disk_stages.expect("disk tier is active");
    let compile = stages.get("compile").copied().unwrap_or_default();
    let snapshot = stages.get("snapshot").copied().unwrap_or_default();
    assert!(compile.hits > 0, "compile stage hit on disk: {compile:?}");
    assert!(
        snapshot.hits > 0,
        "snapshot stage hit on disk: {snapshot:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn engine_sweeps_capped_cache_after_storing() {
    let dir = cache_root("enginegc");
    let program = program();
    let engine = Engine::new(EngineOptions {
        n_threads: 1,
        disk: Some(DiskCacheOptions::at(&dir).with_max_entries(2)),
        trace: Default::default(),
    });
    let spec = WorkloadSpec::new("t", &program, BuildOptions::default(), StopWhen::Exit);
    engine
        .evaluate_matrix(std::slice::from_ref(&spec), &[Strategy::Cu])
        .unwrap();

    // The run stored more than two artifacts; the opportunistic sweep
    // after evaluation must have brought the store back under its cap.
    assert!(engine.stats().disk.unwrap().stores > 2);
    let store = DiskStore::open(&DiskCacheOptions::at(&dir));
    let (entries, _) = store.size_on_disk();
    assert!(
        entries <= 2,
        "post-run sweep enforces the cap, found {entries}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gcd_then_warm_run_reproduces_cold_results() {
    let dir = cache_root("gcwarm");
    let program = program();
    let strategies = [Strategy::Cu, Strategy::HeapPath];

    let cold = Engine::new(EngineOptions {
        n_threads: 2,
        disk: Some(DiskCacheOptions::at(&dir)),
        trace: Default::default(),
    });
    let spec = WorkloadSpec::new("t", &program, BuildOptions::default(), StopWhen::Exit);
    let rows_cold = cold
        .evaluate_matrix(std::slice::from_ref(&spec), &strategies)
        .unwrap();

    // Evict all but the two most recently written entries.
    let store = DiskStore::open(&DiskCacheOptions::at(&dir));
    let before = store.size_on_disk().0;
    let r = store.gc(None, Some(2));
    assert!(before > 2 && r.evicted_entries == before - 2);

    // The partially evicted cache is still sound: survivors hit, evicted
    // artifacts are rebuilt and re-stored, and the results are identical
    // to the cold run bit for bit.
    let warm = Engine::new(EngineOptions {
        n_threads: 2,
        disk: Some(DiskCacheOptions::at(&dir)),
        trace: Default::default(),
    });
    let spec = WorkloadSpec::new("t", &program, BuildOptions::default(), StopWhen::Exit);
    let rows_warm = warm
        .evaluate_matrix(std::slice::from_ref(&spec), &strategies)
        .unwrap();
    let warm_stats = warm.stats().disk.unwrap();
    assert!(warm_stats.hits > 0, "surviving entries still hit");
    assert!(warm_stats.stores > 0, "evicted artifacts are re-stored");

    assert_eq!(rows_cold.len(), rows_warm.len());
    for (c1, c2) in rows_cold.iter().zip(&rows_warm) {
        assert_eq!(c1.strategy, c2.strategy);
        let (e1, e2) = (&c1.eval, &c2.eval);
        assert_eq!(e1.baseline.faults, e2.baseline.faults);
        assert_eq!(e1.optimized.faults, e2.optimized.faults);
        assert_eq!(e1.baseline.ops, e2.baseline.ops);
        assert_eq!(e1.optimized.ops, e2.optimized.ops);
        assert_eq!(e1.optimized.entry_return, e2.optimized.entry_return);
    }
    std::fs::remove_dir_all(&dir).ok();
}
