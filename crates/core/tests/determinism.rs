//! Thread-count invariance: every parallel stage must produce artifacts
//! bit-identical to its serial run, at any worker count. Parallelism may
//! change only how fast things are computed, never what — the artifact
//! cache (memory and disk) shares entries across thread counts on that
//! guarantee.

use std::sync::Arc;

use nimage_compiler::InstrumentConfig;
use nimage_core::{BuildOptions, EvalInputs, LayoutOrders, Parallelism, Pipeline, Strategy};
use nimage_order::assign_ids;
use nimage_vm::StopWhen;
use nimage_workloads::{Awfy, RuntimeScale};

fn program() -> nimage_ir::Program {
    Awfy::Bounce.program_at(&RuntimeScale::small())
}

fn opts(threads: usize) -> BuildOptions {
    BuildOptions {
        threads: Parallelism::threads(threads),
        ..BuildOptions::default()
    }
}

#[test]
fn compile_stage_is_thread_count_invariant() {
    let p = program();
    let serial = Pipeline::new(&p, opts(1));
    let reach = serial.analyze_stage();
    let base = serial.compile_stage(reach.clone(), InstrumentConfig::FULL, None);
    for n in [2, 4, 8] {
        let par = Pipeline::new(&p, opts(n));
        let c = par.compile_stage(reach.clone(), InstrumentConfig::FULL, None);
        assert_eq!(
            format!("{:?}", base.cus),
            format!("{:?}", c.cus),
            "compile differs at {n} threads"
        );
    }
}

#[test]
fn snapshot_stage_is_thread_count_invariant() {
    let p = program();
    let o = opts(1);
    let serial = Pipeline::new(&p, o.clone());
    let reach = serial.analyze_stage();
    let compiled = serial.compile_stage(reach, InstrumentConfig::FULL, None);
    let base = serial
        .snapshot_stage(&compiled, &o.heap_instrumented)
        .unwrap();
    for n in [2, 4, 8] {
        let par = Pipeline::new(&p, opts(n));
        let s = par.snapshot_stage(&compiled, &o.heap_instrumented).unwrap();
        assert_eq!(
            format!("{:?}", base.entries()),
            format!("{:?}", s.entries()),
            "snapshot differs at {n} threads"
        );
    }
}

#[test]
fn trace_replay_is_thread_count_invariant() {
    let p = program();
    let o = opts(1);
    let serial = Pipeline::new(&p, o.clone());
    let reach = serial.analyze_stage();
    let compiled = serial.compile_stage(reach, InstrumentConfig::FULL, None);
    let snap = serial
        .snapshot_stage(&compiled, &o.heap_instrumented)
        .unwrap();
    let image = serial
        .layout_stage(&compiled, &snap, LayoutOrders::default(), None)
        .unwrap();
    let report = serial
        .run_parts(&compiled, &snap, &image, None, StopWhen::Exit)
        .unwrap();

    let base = serial
        .post_process(report.clone(), &mut |hs| {
            Arc::new(assign_ids(&p, &snap, hs))
        })
        .unwrap();
    for n in [2, 4, 8] {
        let par = Pipeline::new(&p, opts(n));
        let a = par
            .post_process(report.clone(), &mut |hs| {
                Arc::new(assign_ids(&p, &snap, hs))
            })
            .unwrap();
        assert_eq!(
            base.cu_profile, a.cu_profile,
            "cu order differs at {n} threads"
        );
        assert_eq!(
            base.method_profile, a.method_profile,
            "method order differs at {n} threads"
        );
        assert_eq!(
            base.heap_profiles, a.heap_profiles,
            "heap profiles differ at {n} threads"
        );
        assert_eq!(base.call_counts, a.call_counts);
    }
}

#[test]
fn full_pipeline_is_thread_count_invariant() {
    let p = program();
    let serial = Pipeline::new(&p, opts(1));
    let parallel = Pipeline::new(&p, opts(4));

    let a1 = serial.profiling_run(StopWhen::Exit).unwrap();
    let a4 = parallel.profiling_run(StopWhen::Exit).unwrap();
    assert_eq!(a1.cu_profile, a4.cu_profile);
    assert_eq!(a1.method_profile, a4.method_profile);
    assert_eq!(a1.heap_profiles, a4.heap_profiles);

    let b1 = serial.baseline(&a1, StopWhen::Exit).unwrap();
    let b4 = parallel.baseline(&a4, StopWhen::Exit).unwrap();
    for s in [Strategy::Cu, Strategy::CuPlusHeapPath] {
        let e1 = serial
            .evaluate_strategy(
                EvalInputs {
                    artifacts: &a1,
                    baseline: &b1,
                },
                s,
                StopWhen::Exit,
            )
            .unwrap();
        let e4 = parallel
            .evaluate_strategy(
                EvalInputs {
                    artifacts: &a4,
                    baseline: &b4,
                },
                s,
                StopWhen::Exit,
            )
            .unwrap();
        assert_eq!(e1.baseline.faults, e4.baseline.faults, "{}", s.name());
        assert_eq!(e1.optimized.faults, e4.optimized.faults, "{}", s.name());
        assert_eq!(e1.optimized.ops, e4.optimized.ops, "{}", s.name());
        assert_eq!(
            e1.optimized.entry_return,
            e4.optimized.entry_return,
            "{}",
            s.name()
        );
    }
}
