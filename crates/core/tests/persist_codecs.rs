//! Property tests for the fine-grained disk codecs: the compiled program
//! and the heap snapshot must round-trip bit-exactly through their
//! `DiskCodec` encodings for any pipeline-producible artifact, and the
//! decoders must be total — arbitrary or truncated bytes are rejected,
//! never a panic or an oversized allocation.

use proptest::prelude::*;

use nimage_compiler::{CompiledProgram, InstrumentConfig};
use nimage_core::diskcache::Reader;
use nimage_core::{BuildOptions, DiskCodec, Pipeline, ProfiledArtifacts};
use nimage_heap::HeapSnapshot;
use nimage_ir::{Program, ProgramBuilder, TypeRef};

/// A small synthetic program family parameterized enough to vary CU
/// counts, inline trees, array contents and interned strings.
fn program(n_helpers: usize, arr_len: u32) -> Program {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("t.Main", None);
    let fld = pb.add_static_field(c, "S", TypeRef::array_of(TypeRef::Int));
    let cl = pb.declare_clinit(c);
    let mut f = pb.body(cl);
    let n = f.iconst(i64::from(arr_len));
    let arr = f.new_array(TypeRef::Int, n);
    let from = f.iconst(0);
    f.for_range(from, n, |f, i| {
        f.array_set(arr, i, i);
    });
    f.put_static(fld, arr);
    f.ret(None);
    pb.finish_body(cl, f);

    let mut helpers = Vec::new();
    for h in 0..n_helpers {
        let helper = pb.declare_static(
            c,
            &format!("helper{h}"),
            &[TypeRef::Int],
            Some(TypeRef::Int),
        );
        let mut f = pb.body(helper);
        let arr = f.get_static(fld);
        let v = f.array_get(arr, f.param(0));
        f.ret(Some(v));
        pb.finish_body(helper, f);
        helpers.push(helper);
    }

    let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(main);
    let mut v = f.iconst(0);
    for (h, helper) in helpers.iter().enumerate() {
        let k = f.iconst(h as i64 % i64::from(arr_len.max(1)));
        v = f.call_static(*helper, &[k], true).unwrap();
    }
    f.ret(Some(v));
    pb.finish_body(main, f);
    pb.set_entry(main);
    pb.build().unwrap()
}

fn instrument(bits: u8) -> InstrumentConfig {
    InstrumentConfig {
        trace_cu: bits & 1 != 0,
        trace_methods: bits & 2 != 0,
        trace_heap: bits & 4 != 0,
    }
}

/// Field-by-field compiled-program equality (the struct itself doesn't
/// derive `PartialEq`; `HashMap` fields compare order-independently).
fn assert_compiled_eq(a: &CompiledProgram, b: &CompiledProgram) {
    assert_eq!(a.cus, b.cus);
    assert_eq!(a.root_to_cu, b.root_to_cu);
    assert_eq!(a.instrumentation.trace_cu, b.instrumentation.trace_cu);
    assert_eq!(
        a.instrumentation.trace_methods,
        b.instrumentation.trace_methods
    );
    assert_eq!(a.instrumentation.trace_heap, b.instrumentation.trace_heap);
    let (ra, rb) = (&a.reachability, &b.reachability);
    assert_eq!(ra.methods, rb.methods);
    assert_eq!(ra.instantiated, rb.instantiated);
    assert_eq!(ra.classes, rb.classes);
    assert_eq!(ra.static_fields, rb.static_fields);
    assert_eq!(ra.instance_fields, rb.instance_fields);
    assert_eq!(ra.build_time_inits, rb.build_time_inits);
    assert_eq!(ra.virtual_targets, rb.virtual_targets);
    assert_eq!(ra.saturated, rb.saturated);
    assert_eq!(ra.direct_edges, rb.direct_edges);
}

fn assert_snapshot_eq(a: &HeapSnapshot, b: &HeapSnapshot) {
    assert_eq!(a.entries(), b.entries());
    assert_eq!(a.folded(), b.folded());
    assert_eq!(a.heap().objects(), b.heap().objects());
    let statics_a: std::collections::HashMap<_, _> = a.heap().statics().collect();
    let statics_b: std::collections::HashMap<_, _> = b.heap().statics().collect();
    assert_eq!(statics_a, statics_b);
    let interned_a: std::collections::HashMap<&str, _> = a.heap().interned().collect();
    let interned_b: std::collections::HashMap<&str, _> = b.heap().interned().collect();
    assert_eq!(interned_a, interned_b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn compiled_program_roundtrips(
        n_helpers in 1usize..4,
        arr_len in 1u32..48,
        bits in 0u8..8,
    ) {
        let program = program(n_helpers, arr_len);
        let pipeline = Pipeline::new(&program, BuildOptions::default());
        let compiled = pipeline.compile_stage(pipeline.analyze_stage(), instrument(bits), None);

        let mut buf = Vec::new();
        compiled.encode(&mut buf);
        let mut r = Reader::new(&buf);
        let decoded = CompiledProgram::decode(&mut r).expect("round-trip decodes");
        prop_assert!(r.is_empty(), "decode must consume the whole payload");
        assert_compiled_eq(&decoded, &compiled);

        // A strict prefix can never decode: every byte is load-bearing.
        if !buf.is_empty() {
            let cut = buf.len() / 2;
            prop_assert!(CompiledProgram::decode(&mut Reader::new(&buf[..cut])).is_none());
        }
    }

    #[test]
    fn heap_snapshot_roundtrips(
        n_helpers in 1usize..4,
        arr_len in 1u32..48,
        bits in 0u8..8,
    ) {
        let program = program(n_helpers, arr_len);
        let opts = BuildOptions::default();
        let pipeline = Pipeline::new(&program, opts.clone());
        let compiled = pipeline.compile_stage(pipeline.analyze_stage(), instrument(bits), None);
        let snap = pipeline
            .snapshot_stage(&compiled, &opts.heap_instrumented)
            .expect("snapshot builds");

        let mut buf = Vec::new();
        snap.encode(&mut buf);
        let mut r = Reader::new(&buf);
        let decoded = HeapSnapshot::decode(&mut r).expect("round-trip decodes");
        prop_assert!(r.is_empty(), "decode must consume the whole payload");
        assert_snapshot_eq(&decoded, &snap);

        if !buf.is_empty() {
            let cut = buf.len() / 2;
            prop_assert!(HeapSnapshot::decode(&mut Reader::new(&buf[..cut])).is_none());
        }
    }

    #[test]
    fn decoders_are_total_over_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        // No panics, no unbounded allocations — a `None` (or, by freak
        // coincidence, a valid value) is the only acceptable outcome.
        let _ = CompiledProgram::decode(&mut Reader::new(&bytes));
        let _ = HeapSnapshot::decode(&mut Reader::new(&bytes));
        let _ = ProfiledArtifacts::decode(&mut Reader::new(&bytes));
    }
}

/// The regression the clamp exists for: a length prefix claiming ~4 Gi
/// elements over a tiny buffer must fail fast instead of pre-allocating.
#[test]
fn huge_length_prefixes_fail_fast() {
    let mut bytes = u32::MAX.to_le_bytes().to_vec();
    bytes.extend_from_slice(&[0u8; 64]);
    assert!(CompiledProgram::decode(&mut Reader::new(&bytes)).is_none());
    assert!(HeapSnapshot::decode(&mut Reader::new(&bytes)).is_none());
    assert!(ProfiledArtifacts::decode(&mut Reader::new(&bytes)).is_none());
}
