//! End-to-end pipeline tests over a synthetic workload with the structure
//! the paper's evaluation relies on: lots of cold-but-reachable code, a
//! large mostly-untouched heap snapshot, and a hot path that touches a
//! scattered subset of both.

use nimage_compiler::InlineConfig;
use nimage_compiler::InstrumentConfig;
use nimage_core::{BuildOptions, EvalInputs, Pipeline, Strategy};
use nimage_ir::{Program, ProgramBuilder, TypeRef};
use nimage_vm::{CostModel, PagingConfig, StopWhen, VmConfig};

/// Builds the synthetic workload:
/// * `lib.Registry.<clinit>` allocates 2000 small objects into an array
///   (the "runtime internals" that dominate real snapshots — Sec. 7.2 notes
///   AWFY touches only ~4 % of snapshot objects);
/// * 80 padded methods, all reachable (behind a runtime-false flag), of
///   which every 7th is executed;
/// * the hot path reads every 50th registry object.
fn workload() -> Program {
    let mut pb = ProgramBuilder::new();

    let item = pb.add_class("lib.Item", None);
    let f_v = pb.add_instance_field(item, "v", TypeRef::Int);
    let f_w = pb.add_instance_field(item, "w", TypeRef::Int);

    let reg = pb.add_class("lib.Registry", None);
    let f_items = pb.add_static_field(reg, "ITEMS", TypeRef::array_of(TypeRef::Object(item)));
    let cl = pb.declare_clinit(reg);
    let mut f = pb.body(cl);
    let n = f.iconst(2000);
    let arr = f.new_array(TypeRef::Object(item), n);
    let from = f.iconst(0);
    f.for_range(from, n, |f, i| {
        let o = f.new_object(item);
        f.put_field(o, f_v, i);
        let two = f.iconst(2);
        let w = f.mul(i, two);
        f.put_field(o, f_w, w);
        f.array_set(arr, i, o);
    });
    f.put_static(f_items, arr);
    f.ret(None);
    pb.finish_body(cl, f);

    let app = pb.add_class("app.Main", None);
    let cond = pb.add_static_field(app, "COND", TypeRef::Bool);
    // A tiny helper that the inliner absorbs into every caller: its entries
    // are method-entry events but never CU entries, so method tracing is
    // strictly busier than cu tracing (Sec. 7.4's overhead gap).
    let inc = pb.declare_static(app, "inc", &[TypeRef::Int], Some(TypeRef::Int));
    let mut f = pb.body(inc);
    let x = f.param(0);
    let one = f.iconst(1);
    let r = f.add(x, one);
    f.ret(Some(r));
    pb.finish_body(inc, f);

    let mut methods = vec![];
    for i in 0..80 {
        let m = pb.declare_static(app, &format!("work{i:02}"), &[], Some(TypeRef::Int));
        let mut f = pb.body(m);
        let v = f.iconst(i);
        let from = f.iconst(0);
        let to = f.iconst(30);
        f.for_range(from, to, |f, _j| {
            let n = f.call_static(inc, &[v], true).unwrap();
            f.assign(v, n);
        });
        for _ in 0..200 {
            let one = f.iconst(1);
            let n = f.add(v, one);
            f.assign(v, n);
        }
        f.ret(Some(v));
        pb.finish_body(m, f);
        methods.push(m);
    }

    let main = pb.declare_static(app, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(main);
    let acc = f.iconst(0);
    let take_cold = f.get_static(cond);
    let cold: Vec<_> = methods
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 7 != 0)
        .map(|(_, &m)| m)
        .collect();
    f.if_then(take_cold, |f| {
        for &m in &cold {
            let v = f.call_static(m, &[], true).unwrap();
            let s = f.add(acc, v);
            f.assign(acc, s);
        }
    });
    for (i, &m) in methods.iter().enumerate() {
        if i % 7 == 0 {
            let v = f.call_static(m, &[], true).unwrap();
            let s = f.add(acc, v);
            f.assign(acc, s);
        }
    }
    // Touch every 50th registry object.
    let arr = f.get_static(f_items);
    let stride = f.iconst(50);
    let n = f.array_len(arr);
    let i = f.iconst(0);
    f.while_loop(
        |f| f.lt(i, n),
        |f| {
            let o = f.array_get(arr, i);
            let v = f.get_field(o, f_v);
            let s = f.add(acc, v);
            f.assign(acc, s);
            let next = f.add(i, stride);
            f.assign(i, next);
        },
    );
    f.ret(Some(acc));
    pb.finish_body(main, f);
    pb.set_entry(main);
    pb.build().unwrap()
}

fn options() -> BuildOptions {
    BuildOptions {
        vm: VmConfig {
            paging: PagingConfig {
                fault_around_pages: 2,
            },
            ..VmConfig::default()
        },
        // Roomy CUs so the small helper really gets inlined everywhere,
        // like trivial accessors in real Java code.
        inline: InlineConfig {
            cu_budget: 8192,
            ..InlineConfig::default()
        },
        ..BuildOptions::default()
    }
}

#[test]
fn profiles_are_populated() {
    let p = workload();
    let pipeline = Pipeline::new(&p, options());
    let artifacts = pipeline.profiling_run(StopWhen::Exit).unwrap();
    assert!(!artifacts.cu_profile.sigs.is_empty());
    assert!(!artifacts.method_profile.sigs.is_empty());
    // Method profile is at least as long as the CU profile (it also names
    // inlined methods).
    assert!(artifacts.method_profile.sigs.len() >= artifacts.cu_profile.sigs.len());
    for (strat, profile) in &artifacts.heap_profiles {
        assert!(!profile.ids.is_empty(), "{}", strat.name());
    }
    assert!(!artifacts.call_counts.is_empty());
}

#[test]
fn every_strategy_preserves_semantics_and_reduces_its_fault_metric() {
    let p = workload();
    let pipeline = Pipeline::new(&p, options());
    let artifacts = pipeline.profiling_run(StopWhen::Exit).unwrap();
    let base = pipeline.baseline(&artifacts, StopWhen::Exit).unwrap();
    for strategy in Strategy::all() {
        let eval = pipeline
            .evaluate_strategy(
                EvalInputs {
                    artifacts: &artifacts,
                    baseline: &base,
                },
                strategy,
                StopWhen::Exit,
            )
            .unwrap();
        assert_eq!(
            eval.baseline.entry_return,
            eval.optimized.entry_return,
            "{}: reordering must not change results",
            strategy.name()
        );
        let r = eval.reported_fault_reduction();
        assert!(
            r >= 1.0,
            "{}: expected no fault increase, factor {r:.3} (base {:?}, opt {:?})",
            strategy.name(),
            eval.baseline.faults,
            eval.optimized.faults
        );
    }
}

#[test]
fn code_strategies_beat_the_baseline_clearly() {
    let p = workload();
    let pipeline = Pipeline::new(&p, options());
    let artifacts = pipeline.profiling_run(StopWhen::Exit).unwrap();
    let base = pipeline.baseline(&artifacts, StopWhen::Exit).unwrap();
    let cu = pipeline
        .evaluate_strategy(
            EvalInputs {
                artifacts: &artifacts,
                baseline: &base,
            },
            Strategy::Cu,
            StopWhen::Exit,
        )
        .unwrap();
    assert!(
        cu.text_fault_reduction() > 1.2,
        "cu ordering should clearly reduce .text faults, got {:.3}",
        cu.text_fault_reduction()
    );
    let method = pipeline
        .evaluate_strategy(
            EvalInputs {
                artifacts: &artifacts,
                baseline: &base,
            },
            Strategy::Method,
            StopWhen::Exit,
        )
        .unwrap();
    assert!(method.text_fault_reduction() > 1.0);
}

#[test]
fn heap_path_beats_the_baseline_clearly() {
    let p = workload();
    let pipeline = Pipeline::new(&p, options());
    let artifacts = pipeline.profiling_run(StopWhen::Exit).unwrap();
    let base = pipeline.baseline(&artifacts, StopWhen::Exit).unwrap();
    let hp = pipeline
        .evaluate_strategy(
            EvalInputs {
                artifacts: &artifacts,
                baseline: &base,
            },
            Strategy::HeapPath,
            StopWhen::Exit,
        )
        .unwrap();
    assert!(
        hp.heap_fault_reduction() > 1.2,
        "heap-path ordering should clearly reduce .svm_heap faults, got {:.3}",
        hp.heap_fault_reduction()
    );
}

#[test]
fn combined_strategy_reduces_both_sections() {
    let p = workload();
    let pipeline = Pipeline::new(&p, options());
    let artifacts = pipeline.profiling_run(StopWhen::Exit).unwrap();
    let base = pipeline.baseline(&artifacts, StopWhen::Exit).unwrap();
    let both = pipeline
        .evaluate_strategy(
            EvalInputs {
                artifacts: &artifacts,
                baseline: &base,
            },
            Strategy::CuPlusHeapPath,
            StopWhen::Exit,
        )
        .unwrap();
    assert!(both.text_fault_reduction() > 1.0);
    assert!(both.heap_fault_reduction() > 1.0);
    assert!(both.speedup(&CostModel::ssd()) > 1.0);
}

#[test]
fn profiling_overhead_factors_are_ordered_like_the_paper() {
    let p = workload();
    let pipeline = Pipeline::new(&p, options());
    let cu = pipeline
        .profiling_overhead(
            InstrumentConfig {
                trace_cu: true,
                ..InstrumentConfig::NONE
            },
            StopWhen::Exit,
        )
        .unwrap();
    let method = pipeline
        .profiling_overhead(
            InstrumentConfig {
                trace_methods: true,
                ..InstrumentConfig::NONE
            },
            StopWhen::Exit,
        )
        .unwrap();
    let heap = pipeline
        .profiling_overhead(
            InstrumentConfig {
                trace_heap: true,
                ..InstrumentConfig::NONE
            },
            StopWhen::Exit,
        )
        .unwrap();
    assert!(cu >= 1.0 && method >= 1.0 && heap >= 1.0);
    assert!(
        method > cu,
        "method tracing ({method:.3}) must cost more than cu tracing ({cu:.3})"
    );
}

#[test]
fn evaluation_is_deterministic() {
    let p = workload();
    let pipeline = Pipeline::new(&p, options());
    let a1 = pipeline.profiling_run(StopWhen::Exit).unwrap();
    let a2 = pipeline.profiling_run(StopWhen::Exit).unwrap();
    assert_eq!(a1.cu_profile, a2.cu_profile);
    assert_eq!(a1.method_profile, a2.method_profile);
    let b1 = pipeline.baseline(&a1, StopWhen::Exit).unwrap();
    let b2 = pipeline.baseline(&a2, StopWhen::Exit).unwrap();
    let e1 = pipeline
        .evaluate_strategy(
            EvalInputs {
                artifacts: &a1,
                baseline: &b1,
            },
            Strategy::Cu,
            StopWhen::Exit,
        )
        .unwrap();
    let e2 = pipeline
        .evaluate_strategy(
            EvalInputs {
                artifacts: &a2,
                baseline: &b2,
            },
            Strategy::Cu,
            StopWhen::Exit,
        )
        .unwrap();
    assert_eq!(e1.baseline.faults, e2.baseline.faults);
    assert_eq!(e1.optimized.faults, e2.optimized.faults);
}
