//! Content-keyed artifact cache for the evaluation engine.
//!
//! Every expensive pipeline stage — reachability analysis, compilation,
//! heap snapshotting, strategy ID assignment, baseline layout, baseline
//! measurement — is memoized under a 128-bit **content key** derived from
//! the inputs that determine its output: the program fingerprint, the
//! [`crate::BuildOptions`] fingerprint and any stage-specific inputs
//! (instrumentation mode, PGO profile, heap strategy). Six strategies
//! evaluated over one workload therefore compute the shared artifacts
//! exactly once; everything else is a cache hit.
//!
//! Concurrency: each key owns a slot guarded by its own mutex, so two
//! threads requesting the *same* artifact block until the first compute
//! finishes (exactly-once semantics), while requests for *different*
//! artifacts proceed in parallel. Failed computes are not cached — the
//! engine aborts on the first error anyway.

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use nimage_compiler::CompiledProgram;
use nimage_heap::{HeapSnapshot, ObjId};
use nimage_image::BinaryImage;
use nimage_order::murmur3;
use nimage_vm::{HeapTemplate, LoweredProgram, RunReport};

use nimage_analysis::Reachability;

use crate::{LayoutOrders, ProfiledArtifacts};

/// A 128-bit content fingerprint / cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u64, pub u64);

impl CacheKey {
    /// Fingerprints a value through its `Debug` rendering, salted with a
    /// `tag` naming what is being fingerprinted. The rendering is hashed
    /// with MurmurHash3 (x64, 128-bit), so semantically different values
    /// collide with negligible probability; equal values produced by the
    /// same process always agree.
    pub fn of_debug<T: fmt::Debug + ?Sized>(tag: &str, value: &T) -> CacheKey {
        let mut buf = String::with_capacity(256);
        buf.push_str(tag);
        buf.push('\u{1f}');
        let _ = write!(buf, "{value:?}");
        let (a, b) = murmur3::hash128(buf.as_bytes(), 0x6e69_6d61_6765 /* "nimage" */);
        CacheKey(a, b)
    }

    /// Combines a stage tag with the fingerprints of every input that
    /// determines the stage's output.
    pub fn for_stage(stage: &str, parts: &[CacheKey]) -> CacheKey {
        let mut buf = Vec::with_capacity(16 + parts.len() * 16 + stage.len());
        buf.extend_from_slice(stage.as_bytes());
        for p in parts {
            buf.extend_from_slice(&p.0.to_le_bytes());
            buf.extend_from_slice(&p.1.to_le_bytes());
        }
        let (a, b) = murmur3::hash128(&buf, 0x73_7461_6765 /* "stage" */);
        CacheKey(a, b)
    }
}

/// Hit/miss counters of one memo table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoStats {
    /// Stage name of the memo (e.g. `"compile"`).
    pub name: &'static str,
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that had to compute the artifact.
    pub misses: u64,
}

/// Locks a mutex, shrugging off poisoning: memo slots only ever hold
/// completed artifacts, so a panicking compute leaves the slot empty (the
/// next caller recomputes) rather than corrupt.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One lazily-filled cache slot: `None` while the first compute is in
/// flight (its mutex held), the finished artifact afterwards.
type Slot<V> = Arc<Mutex<Option<Arc<V>>>>;

/// One memoized pipeline stage: a content-keyed map of shared artifacts.
pub struct Memo<V> {
    name: &'static str,
    slots: Mutex<HashMap<CacheKey, Slot<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V> Memo<V> {
    /// Creates an empty memo for the named stage.
    pub fn new(name: &'static str) -> Memo<V> {
        Memo {
            name,
            slots: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the artifact for `key`, computing it with `f` on the first
    /// request. Concurrent requests for the same key block until the
    /// in-flight compute finishes; errors are returned to the caller that
    /// computed and leave the slot empty.
    ///
    /// # Errors
    /// Propagates the error of `f`.
    pub fn get_or_try<E>(
        &self,
        key: CacheKey,
        f: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        let slot = lock_unpoisoned(&self.slots).entry(key).or_default().clone();
        let mut guard = lock_unpoisoned(&slot);
        if let Some(v) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = Arc::new(f()?);
        *guard = Some(v.clone());
        Ok(v)
    }

    /// Infallible variant of [`Memo::get_or_try`].
    pub fn get_or(&self, key: CacheKey, f: impl FnOnce() -> V) -> Arc<V> {
        match self.get_or_try::<std::convert::Infallible>(key, || Ok(f())) {
            Ok(v) => v,
        }
    }

    /// Snapshot of every completed artifact in the table (in-flight
    /// computes are skipped, not waited for). Used to aggregate interior
    /// state across artifacts — e.g. the lazy/eager shard counters of the
    /// cached [`LoweredProgram`] containers.
    pub fn values(&self) -> Vec<Arc<V>> {
        let slots: Vec<Slot<V>> = lock_unpoisoned(&self.slots).values().cloned().collect();
        slots
            .iter()
            .filter_map(|s| match s.try_lock() {
                Ok(g) => g.clone(),
                Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner().clone(),
                Err(std::sync::TryLockError::WouldBlock) => None,
            })
            .collect()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            name: self.name,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

impl<V> fmt::Debug for Memo<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "Memo({}: {} hits, {} misses)",
            self.name, s.hits, s.misses
        )
    }
}

/// The shared artifact store of one [`crate::Engine`]: one memo table per
/// pipeline stage whose output can be reused across strategies (and, for
/// identical programs/options, across workloads).
#[derive(Debug)]
pub struct ArtifactCache {
    /// Reachability analysis results, keyed by program + analysis config.
    pub reach: Memo<Reachability>,
    /// Compiled programs, keyed by program + options + instrumentation +
    /// PGO profile.
    pub compiled: Memo<CompiledProgram>,
    /// Heap snapshots, keyed by compile key + heap-build config.
    pub snapshots: Memo<HeapSnapshot>,
    /// Strategy identity maps (`assign_ids` output), keyed by snapshot key
    /// + heap strategy.
    pub heap_ids: Memo<HashMap<ObjId, u64>>,
    /// Laid-out images shared across cells: the instrumented and the
    /// baseline layouts (strategy layouts are unique per evaluation cell
    /// and computed inline there).
    pub images: Memo<BinaryImage>,
    /// Measured runs (the shared baseline measurements).
    pub runs: Memo<RunReport>,
    /// Materialized snapshot heaps shared by every run of one snapshot.
    pub heap_templates: Memo<HeapTemplate>,
    /// Full profiling-run artifacts (instrumented build + run + replay),
    /// keyed by program + options.
    pub profiles: Memo<ProfiledArtifacts>,
    /// Sharded execution programs, keyed by compile key: one lazy
    /// container per compiled build, lent (`Arc`) to every VM run of that
    /// build. Method bodies fault in per CU on first call; known-hot CUs
    /// are pre-lowered from per-`(compile, cu)` shards persisted under the
    /// `lower` disk stage.
    pub lowered: Memo<LoweredProgram>,
    /// Layout-optimizer plans of the clustered strategies, keyed by
    /// workload + strategy: the candidate search runs once per cell and
    /// its chosen orders (plus predicted fault counts) are reused by
    /// reports and repeat runs.
    pub plans: Memo<LayoutOrders>,
    /// Completed pre-lowering waves, keyed by compile key: the hot-CU
    /// wave runs exactly once per compiled build — later cells block on
    /// the slot until the winner finishes (preserving "every hot CU is
    /// realized before any optimized run") and then skip it entirely,
    /// instead of re-deriving the hot set per cell.
    pub waves: Memo<()>,
}

impl ArtifactCache {
    /// Creates an empty cache.
    pub fn new() -> ArtifactCache {
        ArtifactCache {
            reach: Memo::new("analyze"),
            compiled: Memo::new("compile"),
            snapshots: Memo::new("snapshot"),
            heap_ids: Memo::new("assign-ids"),
            images: Memo::new("layout"),
            runs: Memo::new("baseline-run"),
            heap_templates: Memo::new("heap-template"),
            profiles: Memo::new("profile"),
            lowered: Memo::new("lower"),
            plans: Memo::new("optimize"),
            waves: Memo::new("prelower"),
        }
    }

    /// Per-stage hit/miss counters, in a stable report order.
    pub fn stats(&self) -> Vec<MemoStats> {
        vec![
            self.reach.stats(),
            self.compiled.stats(),
            self.snapshots.stats(),
            self.heap_ids.stats(),
            self.images.stats(),
            self.runs.stats(),
            self.heap_templates.stats(),
            self.profiles.stats(),
            self.lowered.stats(),
            self.plans.stats(),
            self.waves.stats(),
        ]
    }

    /// Total hits across all stages.
    pub fn total_hits(&self) -> u64 {
        self.stats().iter().map(|s| s.hits).sum()
    }

    /// Total misses across all stages.
    pub fn total_misses(&self) -> u64 {
        self.stats().iter().map(|s| s.misses).sum()
    }
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn keys_are_content_sensitive() {
        let a = CacheKey::of_debug("tag", &(1u32, "x"));
        let b = CacheKey::of_debug("tag", &(1u32, "x"));
        let c = CacheKey::of_debug("tag", &(2u32, "x"));
        let d = CacheKey::of_debug("other", &(1u32, "x"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(
            CacheKey::for_stage("s1", &[a, c]),
            CacheKey::for_stage("s1", &[c, a]),
            "part order is significant"
        );
    }

    #[test]
    fn memo_computes_each_key_once() {
        let memo: Memo<u64> = Memo::new("test");
        let calls = AtomicUsize::new(0);
        let key = CacheKey(1, 2);
        for _ in 0..3 {
            let v = memo.get_or(key, || {
                calls.fetch_add(1, Ordering::Relaxed);
                42
            });
            assert_eq!(*v, 42);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        let s = memo.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
    }

    #[test]
    fn memo_does_not_cache_errors() {
        let memo: Memo<u64> = Memo::new("test");
        let key = CacheKey(3, 4);
        let r: Result<_, &str> = memo.get_or_try(key, || Err("boom"));
        assert!(r.is_err());
        let v = memo.get_or_try::<&str>(key, || Ok(7)).unwrap();
        assert_eq!(*v, 7);
        let s = memo.stats();
        assert_eq!((s.hits, s.misses), (0, 2));
    }

    #[test]
    fn concurrent_same_key_requests_compute_once() {
        let memo: Memo<u64> = Memo::new("test");
        let calls = AtomicUsize::new(0);
        let key = CacheKey(5, 6);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let v = memo.get_or(key, || {
                        calls.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        9
                    });
                    assert_eq!(*v, 9);
                });
            }
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }
}
