//! The parallel evaluation engine: strategy × workload matrices over the
//! shared [`ArtifactCache`].
//!
//! The paper's experiments measure six ordering strategies over 17
//! workloads. Evaluated naively, every strategy rebuilds the optimized
//! *baseline* image and re-runs the baseline measurement — identical work
//! repeated six times — and everything runs serially. The engine instead:
//!
//! 1. **profiles once per workload** (instrumented build + run + replay),
//! 2. **caches every shared artifact** content-keyed in an
//!    [`ArtifactCache`] — reachability, both compiles, both snapshots,
//!    strategy ID maps, the materialized snapshot heap, the baseline
//!    layout and the baseline measurement are each computed exactly once
//!    per workload and shared by all strategies,
//! 3. **fans the independent cells out** over a scoped thread pool with a
//!    work-stealing job queue, returning results in deterministic
//!    row-major (workload-major) order regardless of scheduling.
//!
//! Per-stage wall-clock and cache hit counts are recorded in
//! [`EngineStats`] (surfaced by `nimage bench --json`). Stage times are
//! derived from the span tree the engine's always-on [`Tracer`] records
//! (DESIGN.md §14): every stage computation runs inside a span, and a
//! stage's time is the sum of its spans' *exclusive* durations (inclusive
//! minus nested spans), so nested stages never double-count — the
//! attribution the old `StageClock` hand-rolled with a thread-local
//! child-duration stack.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use nimage_analysis::Reachability;
use nimage_compiler::{CompiledProgram, InstrumentConfig};
use nimage_heap::{HeapSnapshot, ObjId};
use nimage_image::BinaryImage;
use nimage_ir::Program;
use nimage_order::HeapStrategy;
use nimage_par::StealQueue;
use nimage_trace::Tracer;
use nimage_vm::{ExecMode, HeapTemplate, LoweredProgram, LoweredShard, RunReport, StopWhen};

use std::collections::BTreeMap;

use crate::cache::{ArtifactCache, CacheKey, Memo, MemoStats};
use crate::diskcache::{DiskCacheOptions, DiskCacheStats, DiskCodec, DiskStore};
use crate::{
    BuildOptions, Evaluation, LayoutOrders, Pipeline, PipelineError, ProfiledArtifacts, RunParts,
    Strategy,
};

/// Cumulative wall-clock spent *computing* each pipeline stage (cache hits
/// cost nothing and add nothing). With several worker threads, stage times
/// can sum to more than elapsed wall-clock — they measure work, not span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Nanoseconds per stage, parallel to [`StageTimes::NAMES`].
    pub ns: [u64; 9],
}

impl StageTimes {
    /// Stage names, parallel to [`StageTimes::ns`], in pipeline order.
    /// These are exactly the span names the engine records, so a stage's
    /// entry here equals the summed exclusive time of its spans.
    pub const NAMES: [&'static str; 9] = [
        "analyze", "compile", "snapshot", "lower", "replay", "order", "optimize", "layout", "run",
    ];

    /// `(name, nanoseconds)` pairs in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Self::NAMES.into_iter().zip(self.ns)
    }

    /// Total nanoseconds across all stages.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }
}

/// Observability knobs of one engine (never part of any cache
/// fingerprint — keys hash only program, build options and stop
/// condition, so tracing cannot invalidate or fork cache entries).
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Record VM-level point events — one `page-fault` instant per major
    /// fault, one `shard-fault` instant per lazily lowered CU — into the
    /// engine's tracer. Off by default: this is the only recording that
    /// scales with executed work, and the ≤ 3% run-stage overhead bound
    /// is measured against it. Stage/cell spans are always recorded
    /// (they are a few hundred events per evaluation).
    pub vm_events: bool,
    /// Per-thread event-ring capacity.
    pub capacity: usize,
}

impl Default for TraceOptions {
    fn default() -> TraceOptions {
        TraceOptions {
            vm_events: false,
            capacity: nimage_trace::DEFAULT_CAPACITY,
        }
    }
}

/// Engine construction knobs.
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Worker threads for [`Engine::evaluate_matrix`]; `0` uses the
    /// machine's available parallelism.
    pub n_threads: usize,
    /// Disk-persistent cache tier. `None` (the default) keeps the cache
    /// purely in-memory; `Some` persists the serializable stages (strategy
    /// id maps, baseline measurements, profiling artifacts) under the
    /// given root so later processes start warm.
    pub disk: Option<DiskCacheOptions>,
    /// Observability configuration.
    pub trace: TraceOptions,
}

/// One workload of an evaluation matrix.
#[derive(Debug, Clone)]
pub struct WorkloadSpec<'p> {
    /// Display name (also the row label of the result).
    pub name: String,
    /// The program under evaluation.
    pub program: &'p Program,
    /// Pipeline configuration.
    pub opts: BuildOptions,
    /// When measured runs stop.
    pub stop: StopWhen,
}

impl<'p> WorkloadSpec<'p> {
    /// Creates a workload spec.
    pub fn new(
        name: impl Into<String>,
        program: &'p Program,
        opts: BuildOptions,
        stop: StopWhen,
    ) -> WorkloadSpec<'p> {
        WorkloadSpec {
            name: name.into(),
            program,
            opts,
            stop,
        }
    }
}

/// A typed request for one optimized build: the workload, its profiling
/// artifacts, and the layout strategy (`None` = the baseline layout).
/// The builder-style counterpart of the old positional
/// `Engine::optimized_parts` arguments.
#[derive(Debug)]
pub struct BuildRequest<'a, 'p, 's> {
    /// The workload to build.
    pub spec: &'s WorkloadSpec<'p>,
    /// Its profiling-run artifacts (from [`Engine::profile_workload`]).
    pub artifacts: &'a ProfiledArtifacts,
    /// The ordering strategy, or `None` for the unordered baseline
    /// layout.
    pub strategy: Option<Strategy>,
}

/// One cell of an evaluated matrix.
#[derive(Debug)]
pub struct MatrixCell {
    /// Workload name of the cell's row.
    pub workload: String,
    /// Strategy of the cell's column.
    pub strategy: Strategy,
    /// The baseline-vs-strategy measurement.
    pub eval: Evaluation,
}

/// Counters of one engine: per-stage wall-clock and per-memo cache
/// hit/miss counts.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Wall-clock spent computing each stage.
    pub stages: StageTimes,
    /// Hit/miss counters per cached stage.
    pub cache: Vec<MemoStats>,
    /// Disk-tier counters, when a disk cache is configured.
    pub disk: Option<DiskCacheStats>,
    /// Disk-tier counters broken down by persisted stage, when a disk
    /// cache is configured.
    pub disk_stages: Option<BTreeMap<String, DiskCacheStats>>,
    /// Lowering-shard counters aggregated over every cached sharded
    /// container.
    pub lowered_shards: ShardStats,
}

/// How many lowering shards the engine's cached containers realized, and
/// by which path. `lazy` counts shards faulted in by the interpreter on
/// first call into a CU; `eager` counts shards realized ahead of execution
/// (the hot-CU pre-lowering wave, disk installs, whole-program builds);
/// `cus` is the total shard count, so `cus - lazy - eager` shards were
/// never lowered at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shards realized by the interpreter's fault-in path.
    pub lazy: u64,
    /// Shards realized ahead of execution.
    pub eager: u64,
    /// Total shards (= CUs) across the cached containers.
    pub cus: u64,
}

impl EngineStats {
    /// Total cache hits across all stages.
    pub fn cache_hits(&self) -> u64 {
        self.cache.iter().map(|s| s.hits).sum()
    }

    /// Total cache misses across all stages.
    pub fn cache_misses(&self) -> u64 {
        self.cache.iter().map(|s| s.misses).sum()
    }
}

/// Per-workload context: the spec plus its content fingerprint, computed
/// once up front.
struct Ctx<'p, 's> {
    spec: &'s WorkloadSpec<'p>,
    base: CacheKey,
}

impl<'p, 's> Ctx<'p, 's> {
    fn new(spec: &'s WorkloadSpec<'p>) -> Ctx<'p, 's> {
        let parts = [
            CacheKey::of_debug("program", spec.program),
            CacheKey::of_debug("options", &spec.opts),
            CacheKey::of_debug("stop", &spec.stop),
        ];
        Ctx {
            spec,
            base: CacheKey::for_stage("workload", &parts),
        }
    }

    fn key(&self, stage: &str) -> CacheKey {
        CacheKey::for_stage(stage, &[self.base])
    }

    fn pipeline(&self) -> Pipeline<'p> {
        Pipeline::new(self.spec.program, self.spec.opts.clone())
    }
}

/// The baseline half of one workload's evaluation, every part shared
/// behind the cache.
struct BaselineParts {
    compiled: Arc<CompiledProgram>,
    snapshot: Arc<HeapSnapshot>,
    template: Arc<HeapTemplate>,
    lowered: Option<Arc<LoweredProgram>>,
    run: Arc<RunReport>,
}

/// The shareable parts of one build, each behind the engine's cache (the
/// cache-aware counterpart of [`crate::BuiltImage`]).
#[derive(Debug, Clone)]
pub struct BuildParts {
    /// The compiled program.
    pub compiled: Arc<CompiledProgram>,
    /// The heap snapshot.
    pub snapshot: Arc<HeapSnapshot>,
    /// The laid-out binary image.
    pub image: Arc<BinaryImage>,
}

/// The parallel evaluation engine. See the module docs.
#[derive(Debug)]
pub struct Engine {
    cache: ArtifactCache,
    disk: Option<DiskStore>,
    tracer: Tracer,
    opts: EngineOptions,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineOptions::default())
    }
}

impl Engine {
    /// Creates an engine with an empty artifact cache (and the disk tier
    /// of [`EngineOptions::disk`], when configured).
    pub fn new(opts: EngineOptions) -> Engine {
        Engine {
            cache: ArtifactCache::new(),
            disk: opts.disk.as_ref().map(DiskStore::open),
            // The engine's own tracer is always on: stage/cell spans are
            // a few hundred events per evaluation and are what
            // `EngineStats::stages` is derived from. `TraceOptions`
            // gates only the VM-level fault instants (see `vm_tracer`).
            tracer: Tracer::with_capacity(opts.trace.capacity),
            opts,
        }
    }

    /// The engine's artifact cache.
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// The engine's construction options.
    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// The engine's disk tier, when configured.
    pub fn disk(&self) -> Option<&DiskStore> {
        self.disk.as_ref()
    }

    /// The engine's tracer: stage, cell and cache events recorded so far
    /// (plus VM fault events when [`TraceOptions::vm_events`] is set).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The Chrome-trace JSON (Perfetto/`chrome://tracing`-loadable) of
    /// everything recorded so far — `nimage bench --trace-out`.
    pub fn chrome_trace(&self) -> String {
        nimage_trace::chrome_trace_json(&self.tracer.events())
    }

    /// The tracer handle VM runs record into: the engine tracer when
    /// [`TraceOptions::vm_events`] is on, otherwise the disabled handle
    /// (one branch per fault, zero allocation — the compiled-in fast
    /// path).
    fn vm_tracer(&self) -> Tracer {
        if self.opts.trace.vm_events {
            self.tracer.clone()
        } else {
            Tracer::disabled()
        }
    }

    /// Per-stage wall-clock and cache counters accumulated so far. Stage
    /// times are the summed exclusive durations of this engine's stage
    /// spans, computed from the physical (per-thread) span nesting.
    pub fn stats(&self) -> EngineStats {
        let mut lowered_shards = ShardStats::default();
        for lp in self.cache.lowered.values() {
            lowered_shards.lazy += lp.shards_lowered_lazy();
            lowered_shards.eager += lp.shards_lowered_eager();
            lowered_shards.cus += lp.n_cus() as u64;
        }
        let agg = nimage_trace::aggregate(&self.tracer.events());
        let mut stages = StageTimes::default();
        for (slot, name) in stages.ns.iter_mut().zip(StageTimes::NAMES) {
            if let Some(a) = agg.get(name) {
                *slot = a.exclusive_ns;
            }
        }
        EngineStats {
            stages,
            cache: self.cache.stats(),
            disk: self.disk.as_ref().map(DiskStore::stats),
            disk_stages: self.disk.as_ref().map(DiskStore::stage_stats),
            lowered_shards,
        }
    }

    /// Memo lookup with a disk tier behind it: an in-memory miss first
    /// consults the disk store (a valid entry short-circuits the compute),
    /// and a genuine compute is written back. The in-memory slot mutex
    /// serializes both, preserving exactly-once semantics per process.
    fn disk_backed<T, E>(
        &self,
        memo: &Memo<T>,
        stage: &'static str,
        key: CacheKey,
        f: impl FnOnce() -> Result<T, E>,
    ) -> Result<Arc<T>, E>
    where
        T: DiskCodec,
    {
        memo.get_or_try(key, || {
            if let Some(d) = &self.disk {
                if let Some(v) = d.get::<T>(stage, key) {
                    // Root instant: which caller performs the (exactly
                    // once per key) disk probe is scheduling-dependent,
                    // but the probe's outcome is not.
                    self.tracer
                        .root_instant("disk-hit", || format!("stage={stage}"));
                    return Ok(v);
                }
            }
            let v = f()?;
            if let Some(d) = &self.disk {
                d.put(stage, key, &v);
                self.tracer
                    .root_instant("disk-store", || format!("stage={stage}"));
            }
            Ok(v)
        })
    }

    fn worker_count(&self, jobs: usize) -> usize {
        let n = if self.opts.n_threads > 0 {
            self.opts.n_threads
        } else {
            nimage_par::host_parallelism()
        };
        // Capped at the host's parallelism (workers beyond it only
        // contend) and gated on the cell-count cutoff like every other
        // parallel stage.
        nimage_par::workers_for(n, jobs, nimage_par::cutoff::RUN_MIN_CELLS).clamp(1, jobs.max(1))
    }

    /// Evaluates every `(workload, strategy)` cell of the matrix, sharing
    /// cached artifacts within and across rows and fanning independent
    /// cells out over worker threads. Results come back in deterministic
    /// row-major order — `specs[0] × strategies[0..]`, then `specs[1]`, … —
    /// and are bit-identical to the serial uncached loop's.
    ///
    /// # Errors
    /// Returns the first failing cell's error (in row-major order).
    pub fn evaluate_matrix<'p>(
        &self,
        specs: &[WorkloadSpec<'p>],
        strategies: &[Strategy],
    ) -> Result<Vec<MatrixCell>, PipelineError> {
        let ctxs: Vec<Ctx<'p, '_>> = specs.iter().map(Ctx::new).collect();
        let jobs: Vec<(usize, usize)> = (0..specs.len())
            .flat_map(|wi| (0..strategies.len()).map(move |si| (wi, si)))
            .collect();
        let results: Vec<OnceLock<Result<Evaluation, PipelineError>>> =
            jobs.iter().map(|_| OnceLock::new()).collect();

        let n_workers = self.worker_count(jobs.len());
        if n_workers <= 1 {
            for (slot, &(wi, si)) in results.iter().zip(&jobs) {
                let _ = slot.set(self.run_job(&ctxs[wi], strategies[si]));
            }
        } else {
            // Seed worker deques workload-major so workers start on
            // different rows (the shared per-row stages serialize behind
            // the cache slots); stealing rebalances the strategy cells.
            let queue = StealQueue::new(n_workers);
            for (j, &(wi, _)) in jobs.iter().enumerate() {
                queue.seed(wi % n_workers, j);
            }
            let queue = &queue;
            let results = &results;
            let ctxs = &ctxs;
            let jobs = &jobs;
            std::thread::scope(|scope| {
                for w in 0..n_workers {
                    scope.spawn(move || {
                        while let Some(j) = queue.pop(w) {
                            let (wi, si) = jobs[j];
                            let _ = results[j].set(self.run_job(&ctxs[wi], strategies[si]));
                        }
                    });
                }
            });
        }

        let mut out = Vec::with_capacity(jobs.len());
        for (slot, &(wi, si)) in results.into_iter().zip(&jobs) {
            let eval = slot
                .into_inner()
                .expect("every seeded job ran to completion")?;
            out.push(MatrixCell {
                workload: specs[wi].name.clone(),
                strategy: strategies[si],
                eval,
            });
        }
        // Opportunistic lifecycle sweep: if this evaluation wrote new
        // entries and the cache is capped, bring it back under the caps.
        if self.disk.as_ref().is_some_and(|d| d.stats().stores > 0) {
            self.gc_disk();
        }
        Ok(out)
    }

    /// Enforces the configured disk-cache size caps: deletes stale temp
    /// files and evicts least-recently-accessed entries until the cache
    /// is under [`DiskCacheOptions::max_bytes`]/[`DiskCacheOptions::max_entries`].
    /// `None` (no sweep) when no disk tier or no cap is configured.
    pub fn gc_disk(&self) -> Option<crate::diskcache::GcReport> {
        let d = self.disk.as_ref()?;
        let opts = self.opts.disk.as_ref()?;
        if !opts.capped() {
            return None;
        }
        let _s = self.tracer.root_span("disk-gc", String::new);
        let r = d.gc(opts.max_bytes, opts.max_entries);
        self.tracer.count("disk.gc.sweeps", 1);
        self.tracer
            .count("disk.gc.evicted_entries", r.evicted_entries);
        self.tracer.count("disk.gc.evicted_bytes", r.evicted_bytes);
        Some(r)
    }

    /// Profiles one workload (steps 1–3 of Fig. 1), cached in memory and
    /// on disk.
    ///
    /// # Errors
    /// Propagates pipeline failures.
    pub fn profile_workload(
        &self,
        spec: &WorkloadSpec<'_>,
    ) -> Result<Arc<ProfiledArtifacts>, PipelineError> {
        self.profiled(&Ctx::new(spec))
    }

    /// Builds the fully instrumented image ([`InstrumentConfig::FULL`])
    /// with the compile and snapshot stages shared behind the cache and
    /// disk tier. The parts equal `Pipeline::build_instrumented`'s.
    ///
    /// # Errors
    /// Propagates pipeline failures.
    pub fn instrumented_parts(&self, spec: &WorkloadSpec<'_>) -> Result<BuildParts, PipelineError> {
        let ctx = Ctx::new(spec);
        let p = ctx.pipeline();
        let reach = self.reach(&ctx, &p);
        let compiled = self.instrumented_compiled(&ctx, &p, &reach);
        let snapshot = self.snapshot_for(
            &ctx,
            &p,
            ctx.key("snapshot:instrumented"),
            &compiled,
            &ctx.spec.opts.heap_instrumented,
            "instrumented",
        )?;
        let image = self
            .cache
            .images
            .get_or_try(ctx.key("layout:instrumented"), || {
                let _s = self.tracer.root_span("layout", || {
                    format!("workload={} variant=instrumented", ctx.spec.name)
                });
                p.layout_stage(&compiled, &snapshot, LayoutOrders::default(), None)
            })?;
        Ok(BuildParts {
            compiled,
            snapshot,
            image,
        })
    }

    /// Builds the profile-guided optimized image described by `req` with
    /// the compile and snapshot stages shared behind the cache and disk
    /// tier. The parts equal `Pipeline::build_optimized`'s.
    ///
    /// # Errors
    /// Propagates pipeline failures.
    pub fn optimized_image(
        &self,
        req: &BuildRequest<'_, '_, '_>,
    ) -> Result<BuildParts, PipelineError> {
        let (spec, artifacts, strategy) = (req.spec, req.artifacts, req.strategy);
        let ctx = Ctx::new(spec);
        let p = ctx.pipeline();
        let reach = self.reach(&ctx, &p);
        let compiled = self.optimized_compiled(&ctx, &p, &reach, artifacts);
        let snapshot = self.snapshot_for(
            &ctx,
            &p,
            ctx.key("snapshot:optimized"),
            &compiled,
            &ctx.spec.opts.heap_optimized,
            "optimized",
        )?;
        let ids = strategy
            .and_then(|s| ctx.spec.opts.heap_strategy_for(s))
            .map(|hs| self.heap_ids(&ctx, ctx.key("snapshot:optimized"), &snapshot, hs));
        let orders = self.orders_for(&ctx, &p, artifacts, &compiled, &snapshot, strategy, &ids)?;
        let native = strategy
            .is_some()
            .then_some(artifacts.native_pages.as_slice());
        let image_key = match strategy {
            None => ctx.key("layout:baseline"),
            Some(s) => {
                CacheKey::for_stage("layout", &[ctx.base, CacheKey::of_debug("strategy", &s)])
            }
        };
        let image = self.cache.images.get_or_try(image_key, || {
            let _s = self.tracer.root_span("layout", || match strategy {
                None => format!("workload={} variant=baseline", ctx.spec.name),
                Some(s) => format!("workload={} strategy={}", ctx.spec.name, s.name()),
            });
            p.layout_stage(&compiled, &snapshot, orders, native)
        })?;
        Ok(BuildParts {
            compiled,
            snapshot,
            image,
        })
    }

    /// Deprecated positional form of [`Engine::optimized_image`].
    ///
    /// # Errors
    /// Propagates pipeline failures.
    #[deprecated(
        since = "0.1.0",
        note = "use Engine::optimized_image with a BuildRequest"
    )]
    pub fn optimized_parts(
        &self,
        spec: &WorkloadSpec<'_>,
        artifacts: &ProfiledArtifacts,
        strategy: Option<Strategy>,
    ) -> Result<BuildParts, PipelineError> {
        self.optimized_image(&BuildRequest {
            spec,
            artifacts,
            strategy,
        })
    }

    /// The ordering-stage output for one workload × strategy. Clustered
    /// strategies run the layout optimizer's candidate search, which is
    /// the one ordering stage worth caching: the plan (orders + predicted
    /// fault counts) is memoized and persisted under the `optimize` disk
    /// stage, like `lower`'s inputs. Every other strategy replays its
    /// profile inline, uncached, exactly as before.
    #[allow(clippy::too_many_arguments)]
    fn orders_for(
        &self,
        ctx: &Ctx<'_, '_>,
        p: &Pipeline<'_>,
        artifacts: &ProfiledArtifacts,
        compiled: &CompiledProgram,
        snapshot: &HeapSnapshot,
        strategy: Option<Strategy>,
        ids: &Option<Arc<HashMap<ObjId, u64>>>,
    ) -> Result<LayoutOrders, PipelineError> {
        if let Some(s) = strategy.filter(|s| s.clustered()) {
            let key =
                CacheKey::for_stage("optimize", &[ctx.base, CacheKey::of_debug("strategy", &s)]);
            let plan = self.disk_backed(&self.cache.plans, "optimize", key, || {
                let _s = self.tracer.root_span("optimize", || {
                    format!("workload={} strategy={}", ctx.spec.name, s.name())
                });
                Ok::<_, PipelineError>(p.order_stage(
                    artifacts,
                    compiled,
                    snapshot,
                    strategy,
                    ids.as_deref(),
                ))
            })?;
            Ok((*plan).clone())
        } else {
            // Inline (uncached) ordering: one plain span per call, a
            // child of whatever cell span is open on this thread.
            let _s = self.tracer.span_with("order", || match strategy {
                None => format!("workload={} variant=baseline", ctx.spec.name),
                Some(s) => format!("workload={} strategy={}", ctx.spec.name, s.name()),
            });
            Ok(p.order_stage(artifacts, compiled, snapshot, strategy, ids.as_deref()))
        }
    }

    /// The layout optimizer's plan for one workload × strategy — the
    /// chosen orders plus the cost model's predicted fault counts —
    /// computed through the cache (a hit after any evaluation of the same
    /// cell). Returns `None` for non-clustered strategies, which have no
    /// plan.
    ///
    /// # Errors
    /// Propagates pipeline failures.
    pub fn layout_plan(
        &self,
        spec: &WorkloadSpec<'_>,
        artifacts: &ProfiledArtifacts,
        strategy: Strategy,
    ) -> Result<Option<LayoutOrders>, PipelineError> {
        if !strategy.clustered() {
            return Ok(None);
        }
        let ctx = Ctx::new(spec);
        let p = ctx.pipeline();
        let reach = self.reach(&ctx, &p);
        let compiled = self.optimized_compiled(&ctx, &p, &reach, artifacts);
        let snapshot = self.snapshot_for(
            &ctx,
            &p,
            ctx.key("snapshot:optimized"),
            &compiled,
            &ctx.spec.opts.heap_optimized,
            "optimized",
        )?;
        let ids = ctx
            .spec
            .opts
            .heap_strategy_for(strategy)
            .map(|hs| self.heap_ids(&ctx, ctx.key("snapshot:optimized"), &snapshot, hs));
        self.orders_for(
            &ctx,
            &p,
            artifacts,
            &compiled,
            &snapshot,
            Some(strategy),
            &ids,
        )
        .map(Some)
    }

    /// Evaluates all `strategies` for one workload, returning
    /// `(strategy, evaluation)` pairs in input order.
    ///
    /// # Errors
    /// Returns the first failing strategy's error.
    #[deprecated(
        since = "0.1.0",
        note = "use Engine::evaluate with an EvalRequest (or evaluate_matrix)"
    )]
    pub fn evaluate_workload<'p>(
        &self,
        spec: &WorkloadSpec<'p>,
        strategies: &[Strategy],
    ) -> Result<Vec<(Strategy, Evaluation)>, PipelineError> {
        let cells = self.evaluate_matrix(std::slice::from_ref(spec), strategies)?;
        Ok(cells.into_iter().map(|c| (c.strategy, c.eval)).collect())
    }

    fn run_job(&self, ctx: &Ctx<'_, '_>, strategy: Strategy) -> Result<Evaluation, PipelineError> {
        // The cell span is a logical root: cells are the unit of
        // work-stealing, so their thread and physical parent vary.
        let _cell = self.tracer.root_span("cell", || {
            format!("workload={} strategy={}", ctx.spec.name, strategy.name())
        });
        let artifacts = self.profiled(ctx)?;
        let parts = self.baseline_parts(ctx, &artifacts)?;
        self.evaluate_cell(ctx, &artifacts, &parts, strategy)
    }

    fn reach(&self, ctx: &Ctx<'_, '_>, p: &Pipeline<'_>) -> Arc<Reachability> {
        self.cache.reach.get_or(ctx.key("analyze"), || {
            let _s = self
                .tracer
                .root_span("analyze", || format!("workload={}", ctx.spec.name));
            p.analyze_stage()
        })
    }

    fn heap_ids(
        &self,
        ctx: &Ctx<'_, '_>,
        snap_key: CacheKey,
        snap: &HeapSnapshot,
        hs: HeapStrategy,
    ) -> Arc<HashMap<ObjId, u64>> {
        let key = CacheKey::for_stage(
            "assign-ids",
            &[snap_key, CacheKey::of_debug("strategy", &hs)],
        );
        match self.disk_backed::<_, std::convert::Infallible>(
            &self.cache.heap_ids,
            "assign-ids",
            key,
            || {
                let _s = self
                    .tracer
                    .root_span("order", || format!("workload={} ids={hs:?}", ctx.spec.name));
                Ok(nimage_order::assign_ids(ctx.spec.program, snap, hs))
            },
        ) {
            Ok(v) => v,
        }
    }

    /// The instrumented compile, disk-backed under the `compile` stage.
    fn instrumented_compiled(
        &self,
        ctx: &Ctx<'_, '_>,
        p: &Pipeline<'_>,
        reach: &Reachability,
    ) -> Arc<CompiledProgram> {
        match self.disk_backed::<_, std::convert::Infallible>(
            &self.cache.compiled,
            "compile",
            ctx.key("compile:instrumented"),
            || {
                let _s = self.tracer.root_span("compile", || {
                    format!("workload={} variant=instrumented", ctx.spec.name)
                });
                Ok(p.compile_stage(reach.clone(), InstrumentConfig::FULL, None))
            },
        ) {
            Ok(v) => v,
        }
    }

    /// The PGO-optimized compile, disk-backed under the `compile` stage.
    fn optimized_compiled(
        &self,
        ctx: &Ctx<'_, '_>,
        p: &Pipeline<'_>,
        reach: &Reachability,
        artifacts: &ProfiledArtifacts,
    ) -> Arc<CompiledProgram> {
        match self.disk_backed::<_, std::convert::Infallible>(
            &self.cache.compiled,
            "compile",
            ctx.key("compile:optimized"),
            || {
                let _s = self.tracer.root_span("compile", || {
                    format!("workload={} variant=optimized", ctx.spec.name)
                });
                Ok(p.compile_stage(
                    reach.clone(),
                    InstrumentConfig::NONE,
                    Some(&artifacts.call_counts),
                ))
            },
        ) {
            Ok(v) => v,
        }
    }

    /// The sharded execution program of one compile: one lazy container
    /// per compile key, shared (`Arc`) by every VM run of that build —
    /// matrix cells on different worker threads dispatch over the same
    /// instruction arrays, faulting per-CU shards in exactly once. `None`
    /// under [`ExecMode::Legacy`], where the tree-walking interpreter
    /// wants no lowering.
    ///
    /// Constructing the container builds only the cheap global tables;
    /// method bodies are lowered per CU on first call, or ahead of time by
    /// [`Engine::prelower_hot`].
    fn lowered_for(
        &self,
        ctx: &Ctx<'_, '_>,
        compile_key: CacheKey,
        compiled: &CompiledProgram,
        variant: &'static str,
    ) -> Option<Arc<LoweredProgram>> {
        if ctx.spec.opts.vm.exec == ExecMode::Legacy {
            return None;
        }
        let key = CacheKey::for_stage("lower", &[compile_key]);
        Some(self.cache.lowered.get_or(key, || {
            let _s = self.tracer.root_span("lower", || {
                format!("workload={} variant={variant}", ctx.spec.name)
            });
            LoweredProgram::new(ctx.spec.program, compiled, ctx.spec.opts.vm.max_paths)
        }))
    }

    /// The pre-lowering wave: realizes the shards of every CU the profile
    /// marks hot (its CU-order profile lists first-entry order) before the
    /// optimized runs start, fanning out under
    /// [`nimage_par::cutoff::PRELOWER_MIN_CUS`]. Each shard is persisted
    /// per `(compile, cu)` under the `lower` disk stage, so a warm engine
    /// installs the decoded bodies instead of re-lowering; a shard that
    /// fails validation against this build falls back to lowering locally.
    fn prelower_hot(
        &self,
        ctx: &Ctx<'_, '_>,
        compile_key: CacheKey,
        compiled: &CompiledProgram,
        lowered: &LoweredProgram,
        artifacts: &ProfiledArtifacts,
    ) {
        // Exactly once per compiled build: every cell calls in (its runs
        // must not start before the hot set is realized — `get_or`
        // blocks until the winning wave finishes), but only the first
        // derives the hot set and fans out. Also makes the wave a single
        // deterministic `lower` span instead of one racy span per cell.
        self.cache
            .waves
            .get_or(CacheKey::for_stage("prelower", &[compile_key]), || {
                let _s = self
                    .tracer
                    .root_span("lower", || format!("workload={} wave=hot", ctx.spec.name));
                let sig_to_cu: HashMap<String, nimage_compiler::CuId> = compiled
                    .cus
                    .iter()
                    .map(|cu| (ctx.spec.program.method_signature(cu.root), cu.id))
                    .collect();
                // Profile order, already-realized shards skipped.
                let todo: Vec<nimage_compiler::CuId> = artifacts
                    .cu_profile
                    .sigs
                    .iter()
                    .filter_map(|sig| sig_to_cu.get(sig).copied())
                    .filter(|&cu| !lowered.is_cu_lowered(cu))
                    .collect();
                if todo.is_empty() {
                    return;
                }
                self.tracer.count("lower.prelowered_cus", todo.len() as u64);
                let n = if self.opts.n_threads > 0 {
                    self.opts.n_threads
                } else {
                    nimage_par::host_parallelism()
                };
                let workers =
                    nimage_par::workers_for(n, todo.len(), nimage_par::cutoff::PRELOWER_MIN_CUS);
                nimage_par::parallel_map(workers, todo.len(), |i| {
                    let cu = todo[i];
                    let key = CacheKey::for_stage(
                        "lower",
                        &[compile_key, CacheKey::of_debug("cu", &cu.index())],
                    );
                    if let Some(d) = &self.disk {
                        if let Some(shard) = d.get::<LoweredShard>("lower", key) {
                            if lowered.install_shard(compiled, &shard) {
                                self.tracer
                                    .root_instant("disk-hit", || "stage=lower".to_string());
                                return;
                            }
                        }
                    }
                    let shard = lowered.extract_shard(ctx.spec.program, compiled, cu);
                    if let Some(d) = &self.disk {
                        d.put("lower", key, &shard);
                        self.tracer
                            .root_instant("disk-store", || "stage=lower".to_string());
                    }
                });
            });
    }

    /// A heap snapshot of `compiled`, disk-backed under the `snapshot`
    /// stage. `key` distinguishes the instrumented and optimized variants;
    /// `cfg` is the matching heap-build configuration.
    fn snapshot_for(
        &self,
        ctx: &Ctx<'_, '_>,
        p: &Pipeline<'_>,
        key: CacheKey,
        compiled: &CompiledProgram,
        cfg: &nimage_heap::HeapBuildConfig,
        variant: &'static str,
    ) -> Result<Arc<HeapSnapshot>, PipelineError> {
        self.disk_backed(&self.cache.snapshots, "snapshot", key, || {
            let _s = self.tracer.root_span("snapshot", || {
                format!("workload={} variant={variant}", ctx.spec.name)
            });
            p.snapshot_stage(compiled, cfg)
        })
    }

    /// The profiling half (steps 1–3 of Fig. 1), computed once per
    /// workload.
    fn profiled(&self, ctx: &Ctx<'_, '_>) -> Result<Arc<ProfiledArtifacts>, PipelineError> {
        self.disk_backed(&self.cache.profiles, "profile", ctx.key("profile"), || {
            let _p = self
                .tracer
                .root_span("profile", || format!("workload={}", ctx.spec.name));
            let p = ctx.pipeline();
            let reach = self.reach(ctx, &p);
            let compiled = self.instrumented_compiled(ctx, &p, &reach);
            let snap_key = ctx.key("snapshot:instrumented");
            let snap = self.snapshot_for(
                ctx,
                &p,
                snap_key,
                &compiled,
                &ctx.spec.opts.heap_instrumented,
                "instrumented",
            )?;
            let image = self
                .cache
                .images
                .get_or_try(ctx.key("layout:instrumented"), || {
                    let _s = self.tracer.root_span("layout", || {
                        format!("workload={} variant=instrumented", ctx.spec.name)
                    });
                    p.layout_stage(&compiled, &snap, LayoutOrders::default(), None)
                })?;
            let template =
                self.cache
                    .heap_templates
                    .get_or(ctx.key("heap-template:instrumented"), || {
                        let _s = self.tracer.root_span("snapshot", || {
                            format!("workload={} variant=template:instrumented", ctx.spec.name)
                        });
                        HeapTemplate::from_build_heap(snap.heap())
                    });
            let lowered = self.lowered_for(
                ctx,
                ctx.key("compile:instrumented"),
                &compiled,
                "instrumented",
            );
            let report = {
                let _s = self.tracer.span_with("run", || {
                    format!("workload={} variant=instrumented", ctx.spec.name)
                });
                p.run(
                    RunParts::new(&compiled, &snap, &image)
                        .heap(Some(template))
                        .lowered(lowered)
                        .tracer(self.vm_tracer()),
                    ctx.spec.stop,
                )?
            };
            let _s = self
                .tracer
                .span_with("replay", || format!("workload={}", ctx.spec.name));
            p.post_process(report, &mut |hs| self.heap_ids(ctx, snap_key, &snap, hs))
        })
    }

    /// The strategy-independent optimized-build artifacts, each computed
    /// once per workload and shared by every strategy cell.
    fn baseline_parts(
        &self,
        ctx: &Ctx<'_, '_>,
        artifacts: &ProfiledArtifacts,
    ) -> Result<BaselineParts, PipelineError> {
        let p = ctx.pipeline();
        let reach = self.reach(ctx, &p);
        let compiled = self.optimized_compiled(ctx, &p, &reach, artifacts);
        let snapshot = self.snapshot_for(
            ctx,
            &p,
            ctx.key("snapshot:optimized"),
            &compiled,
            &ctx.spec.opts.heap_optimized,
            "optimized",
        )?;
        let template = self
            .cache
            .heap_templates
            .get_or(ctx.key("heap-template:optimized"), || {
                let _s = self.tracer.root_span("snapshot", || {
                    format!("workload={} variant=template:optimized", ctx.spec.name)
                });
                HeapTemplate::from_build_heap(snapshot.heap())
            });
        let image: Arc<BinaryImage> =
            self.cache
                .images
                .get_or_try(ctx.key("layout:baseline"), || {
                    let _s = self.tracer.root_span("layout", || {
                        format!("workload={} variant=baseline", ctx.spec.name)
                    });
                    p.layout_stage(&compiled, &snapshot, LayoutOrders::default(), None)
                })?;
        let compile_key = ctx.key("compile:optimized");
        let lowered = self.lowered_for(ctx, compile_key, &compiled, "optimized");
        if let Some(lp) = &lowered {
            self.prelower_hot(ctx, compile_key, &compiled, lp, artifacts);
        }
        let run = self.disk_backed(
            &self.cache.runs,
            "baseline-run",
            ctx.key("run:baseline"),
            || {
                let _s = self.tracer.root_span("run", || {
                    format!("workload={} variant=baseline", ctx.spec.name)
                });
                p.run(
                    RunParts::new(&compiled, &snapshot, &image)
                        .heap(Some(template.clone()))
                        .lowered(lowered.clone())
                        .tracer(self.vm_tracer()),
                    ctx.spec.stop,
                )
            },
        )?;
        Ok(BaselineParts {
            compiled,
            snapshot,
            template,
            lowered,
            run,
        })
    }

    /// One strategy cell: order + layout + run against the shared
    /// baseline.
    fn evaluate_cell(
        &self,
        ctx: &Ctx<'_, '_>,
        artifacts: &ProfiledArtifacts,
        parts: &BaselineParts,
        strategy: Strategy,
    ) -> Result<Evaluation, PipelineError> {
        let p = ctx.pipeline();
        let ids = ctx
            .spec
            .opts
            .heap_strategy_for(strategy)
            .map(|hs| self.heap_ids(ctx, ctx.key("snapshot:optimized"), &parts.snapshot, hs));
        let orders = self.orders_for(
            ctx,
            &p,
            artifacts,
            &parts.compiled,
            &parts.snapshot,
            Some(strategy),
            &ids,
        )?;
        let image = {
            let _s = self.tracer.span_with("layout", || {
                format!("workload={} strategy={}", ctx.spec.name, strategy.name())
            });
            p.layout_stage(
                &parts.compiled,
                &parts.snapshot,
                orders,
                Some(artifacts.native_pages.as_slice()),
            )?
        };
        let optimized = {
            let _s = self.tracer.span_with("run", || {
                format!("workload={} strategy={}", ctx.spec.name, strategy.name())
            });
            p.run(
                RunParts::new(&parts.compiled, &parts.snapshot, &image)
                    .heap(Some(parts.template.clone()))
                    .lowered(parts.lowered.clone())
                    .tracer(self.vm_tracer()),
                ctx.spec.stop,
            )?
        };
        Ok(Evaluation {
            strategy,
            baseline: (*parts.run).clone(),
            optimized,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimage_trace::Tracer;

    #[test]
    fn stage_times_report_in_pipeline_order() {
        let tracer = Tracer::new();
        {
            let _run = tracer.span("run");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let agg = nimage_trace::aggregate(&tracer.events());
        let mut t = StageTimes::default();
        for (i, name) in StageTimes::NAMES.iter().enumerate() {
            if let Some(a) = agg.get(name) {
                t.ns[i] = a.exclusive_ns;
            }
        }
        assert!(t.ns[StageTimes::NAMES.iter().position(|n| *n == "run").unwrap()] > 0);
        assert_eq!(t.total_ns(), t.ns.iter().sum::<u64>());
        let names: Vec<_> = t.iter().map(|(n, _)| n).collect();
        assert_eq!(names, StageTimes::NAMES);
    }

    #[test]
    fn nested_spans_attribute_exclusive_time_to_each_stage() {
        // run physically containing compile: exclusive attribution must
        // subtract the nested span, as the old per-stage clock did.
        let tracer = Tracer::new();
        {
            let _run = tracer.span("run");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _compile = tracer.span("compile");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let agg = nimage_trace::aggregate(&tracer.events());
        let run = agg["run"];
        let compile = agg["compile"];
        assert!(run.inclusive_ns > compile.inclusive_ns);
        assert_eq!(
            run.exclusive_ns,
            run.inclusive_ns - compile.inclusive_ns,
            "parent exclusive = inclusive minus nested child"
        );
        assert_eq!(compile.exclusive_ns, compile.inclusive_ns);
    }
}
