//! The parallel evaluation engine: strategy × workload matrices over the
//! shared [`ArtifactCache`].
//!
//! The paper's experiments measure six ordering strategies over 17
//! workloads. Evaluated naively, every strategy rebuilds the optimized
//! *baseline* image and re-runs the baseline measurement — identical work
//! repeated six times — and everything runs serially. The engine instead:
//!
//! 1. **profiles once per workload** (instrumented build + run + replay),
//! 2. **caches every shared artifact** content-keyed in an
//!    [`ArtifactCache`] — reachability, both compiles, both snapshots,
//!    strategy ID maps, the materialized snapshot heap, the baseline
//!    layout and the baseline measurement are each computed exactly once
//!    per workload and shared by all strategies,
//! 3. **fans the independent cells out** over a scoped thread pool with a
//!    work-stealing job queue, returning results in deterministic
//!    row-major (workload-major) order regardless of scheduling.
//!
//! Per-stage wall-clock and cache hit counts are recorded in
//! [`EngineStats`] (surfaced by `nimage bench --json`), establishing the
//! repo's performance trajectory for the evaluation path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use nimage_analysis::Reachability;
use nimage_compiler::{CompiledProgram, InstrumentConfig};
use nimage_heap::{HeapSnapshot, ObjId};
use nimage_image::BinaryImage;
use nimage_ir::Program;
use nimage_order::HeapStrategy;
use nimage_par::StealQueue;
use nimage_vm::{ExecMode, HeapTemplate, LoweredProgram, LoweredShard, RunReport, StopWhen};

use std::collections::BTreeMap;

use crate::cache::{ArtifactCache, CacheKey, Memo, MemoStats};
use crate::diskcache::{DiskCacheOptions, DiskCacheStats, DiskCodec, DiskStore};
use crate::{
    BuildOptions, Evaluation, LayoutOrders, Pipeline, PipelineError, ProfiledArtifacts, Strategy,
};

/// Pipeline stages the engine attributes wall-clock to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Analyze = 0,
    Compile,
    Snapshot,
    Replay,
    Order,
    Layout,
    Run,
}

/// Cumulative wall-clock spent *computing* each pipeline stage (cache hits
/// cost nothing and add nothing). With several worker threads, stage times
/// can sum to more than elapsed wall-clock — they measure work, not span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Nanoseconds per stage, parallel to [`StageTimes::NAMES`].
    pub ns: [u64; 7],
}

impl StageTimes {
    /// Stage names, parallel to [`StageTimes::ns`].
    pub const NAMES: [&'static str; 7] = [
        "analyze", "compile", "snapshot", "replay", "order", "layout", "run",
    ];

    /// `(name, nanoseconds)` pairs in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Self::NAMES.into_iter().zip(self.ns)
    }

    /// Total nanoseconds across all stages.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }
}

#[derive(Debug, Default)]
struct StageClock {
    ns: [AtomicU64; 7],
}

thread_local! {
    /// Per-thread stack of accumulated *child* stage durations, one entry
    /// per in-flight [`StageClock::time`] call. See `time` for why.
    static CHILD_NS: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

impl StageClock {
    /// Times `f`, attributing only its *exclusive* (self) time to `stage`.
    ///
    /// Stage timers nest: replay post-processing computes strategy id maps
    /// (timed as `order`) inside the `replay` timer. Naive accounting
    /// charged that inner time to *both* stages, inflating the outer one —
    /// the `stages_ns.replay`-vs-`stage_speedups.replay` mismatch in
    /// `BENCH_eval.json`. Each nested call's wall-clock is subtracted from
    /// its parent, so the per-stage numbers partition the measured work.
    fn time<T>(&self, stage: Stage, f: impl FnOnce() -> T) -> T {
        CHILD_NS.with(|stack| stack.borrow_mut().push(0));
        let start = Instant::now();
        let v = f();
        let elapsed = start.elapsed().as_nanos() as u64;
        let child = CHILD_NS.with(|stack| {
            let mut stack = stack.borrow_mut();
            let child = stack.pop().expect("pushed above");
            if let Some(parent) = stack.last_mut() {
                *parent += elapsed;
            }
            child
        });
        self.ns[stage as usize].fetch_add(elapsed.saturating_sub(child), Ordering::Relaxed);
        v
    }

    fn snapshot(&self) -> StageTimes {
        let mut out = StageTimes::default();
        for (slot, counter) in out.ns.iter_mut().zip(&self.ns) {
            *slot = counter.load(Ordering::Relaxed);
        }
        out
    }
}

/// Engine construction knobs.
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Worker threads for [`Engine::evaluate_matrix`]; `0` uses the
    /// machine's available parallelism.
    pub n_threads: usize,
    /// Disk-persistent cache tier. `None` (the default) keeps the cache
    /// purely in-memory; `Some` persists the serializable stages (strategy
    /// id maps, baseline measurements, profiling artifacts) under the
    /// given root so later processes start warm.
    pub disk: Option<DiskCacheOptions>,
}

/// One workload of an evaluation matrix.
#[derive(Debug)]
pub struct WorkloadSpec<'p> {
    /// Display name (also the row label of the result).
    pub name: String,
    /// The program under evaluation.
    pub program: &'p Program,
    /// Pipeline configuration.
    pub opts: BuildOptions,
    /// When measured runs stop.
    pub stop: StopWhen,
}

impl<'p> WorkloadSpec<'p> {
    /// Creates a workload spec.
    pub fn new(
        name: impl Into<String>,
        program: &'p Program,
        opts: BuildOptions,
        stop: StopWhen,
    ) -> WorkloadSpec<'p> {
        WorkloadSpec {
            name: name.into(),
            program,
            opts,
            stop,
        }
    }
}

/// One cell of an evaluated matrix.
#[derive(Debug)]
pub struct MatrixCell {
    /// Workload name of the cell's row.
    pub workload: String,
    /// Strategy of the cell's column.
    pub strategy: Strategy,
    /// The baseline-vs-strategy measurement.
    pub eval: Evaluation,
}

/// Counters of one engine: per-stage wall-clock and per-memo cache
/// hit/miss counts.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Wall-clock spent computing each stage.
    pub stages: StageTimes,
    /// Hit/miss counters per cached stage.
    pub cache: Vec<MemoStats>,
    /// Disk-tier counters, when a disk cache is configured.
    pub disk: Option<DiskCacheStats>,
    /// Disk-tier counters broken down by persisted stage, when a disk
    /// cache is configured.
    pub disk_stages: Option<BTreeMap<String, DiskCacheStats>>,
    /// Lowering-shard counters aggregated over every cached sharded
    /// container.
    pub lowered_shards: ShardStats,
}

/// How many lowering shards the engine's cached containers realized, and
/// by which path. `lazy` counts shards faulted in by the interpreter on
/// first call into a CU; `eager` counts shards realized ahead of execution
/// (the hot-CU pre-lowering wave, disk installs, whole-program builds);
/// `cus` is the total shard count, so `cus - lazy - eager` shards were
/// never lowered at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shards realized by the interpreter's fault-in path.
    pub lazy: u64,
    /// Shards realized ahead of execution.
    pub eager: u64,
    /// Total shards (= CUs) across the cached containers.
    pub cus: u64,
}

impl EngineStats {
    /// Total cache hits across all stages.
    pub fn cache_hits(&self) -> u64 {
        self.cache.iter().map(|s| s.hits).sum()
    }

    /// Total cache misses across all stages.
    pub fn cache_misses(&self) -> u64 {
        self.cache.iter().map(|s| s.misses).sum()
    }
}

/// Per-workload context: the spec plus its content fingerprint, computed
/// once up front.
struct Ctx<'p, 's> {
    spec: &'s WorkloadSpec<'p>,
    base: CacheKey,
}

impl<'p, 's> Ctx<'p, 's> {
    fn new(spec: &'s WorkloadSpec<'p>) -> Ctx<'p, 's> {
        let parts = [
            CacheKey::of_debug("program", spec.program),
            CacheKey::of_debug("options", &spec.opts),
            CacheKey::of_debug("stop", &spec.stop),
        ];
        Ctx {
            spec,
            base: CacheKey::for_stage("workload", &parts),
        }
    }

    fn key(&self, stage: &str) -> CacheKey {
        CacheKey::for_stage(stage, &[self.base])
    }

    fn pipeline(&self) -> Pipeline<'p> {
        Pipeline::new(self.spec.program, self.spec.opts.clone())
    }
}

/// The baseline half of one workload's evaluation, every part shared
/// behind the cache.
struct BaselineParts {
    compiled: Arc<CompiledProgram>,
    snapshot: Arc<HeapSnapshot>,
    template: Arc<HeapTemplate>,
    lowered: Option<Arc<LoweredProgram>>,
    run: Arc<RunReport>,
}

/// The shareable parts of one build, each behind the engine's cache (the
/// cache-aware counterpart of [`crate::BuiltImage`]).
#[derive(Debug, Clone)]
pub struct BuildParts {
    /// The compiled program.
    pub compiled: Arc<CompiledProgram>,
    /// The heap snapshot.
    pub snapshot: Arc<HeapSnapshot>,
    /// The laid-out binary image.
    pub image: Arc<BinaryImage>,
}

/// The parallel evaluation engine. See the module docs.
#[derive(Debug)]
pub struct Engine {
    cache: ArtifactCache,
    disk: Option<DiskStore>,
    clock: StageClock,
    opts: EngineOptions,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineOptions::default())
    }
}

impl Engine {
    /// Creates an engine with an empty artifact cache (and the disk tier
    /// of [`EngineOptions::disk`], when configured).
    pub fn new(opts: EngineOptions) -> Engine {
        Engine {
            cache: ArtifactCache::new(),
            disk: opts.disk.as_ref().map(DiskStore::open),
            clock: StageClock::default(),
            opts,
        }
    }

    /// The engine's artifact cache.
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// The engine's disk tier, when configured.
    pub fn disk(&self) -> Option<&DiskStore> {
        self.disk.as_ref()
    }

    /// Per-stage wall-clock and cache counters accumulated so far.
    pub fn stats(&self) -> EngineStats {
        let mut lowered_shards = ShardStats::default();
        for lp in self.cache.lowered.values() {
            lowered_shards.lazy += lp.shards_lowered_lazy();
            lowered_shards.eager += lp.shards_lowered_eager();
            lowered_shards.cus += lp.n_cus() as u64;
        }
        EngineStats {
            stages: self.clock.snapshot(),
            cache: self.cache.stats(),
            disk: self.disk.as_ref().map(DiskStore::stats),
            disk_stages: self.disk.as_ref().map(DiskStore::stage_stats),
            lowered_shards,
        }
    }

    /// Memo lookup with a disk tier behind it: an in-memory miss first
    /// consults the disk store (a valid entry short-circuits the compute),
    /// and a genuine compute is written back. The in-memory slot mutex
    /// serializes both, preserving exactly-once semantics per process.
    fn disk_backed<T, E>(
        &self,
        memo: &Memo<T>,
        stage: &'static str,
        key: CacheKey,
        f: impl FnOnce() -> Result<T, E>,
    ) -> Result<Arc<T>, E>
    where
        T: DiskCodec,
    {
        memo.get_or_try(key, || {
            if let Some(d) = &self.disk {
                if let Some(v) = d.get::<T>(stage, key) {
                    return Ok(v);
                }
            }
            let v = f()?;
            if let Some(d) = &self.disk {
                d.put(stage, key, &v);
            }
            Ok(v)
        })
    }

    fn worker_count(&self, jobs: usize) -> usize {
        let n = if self.opts.n_threads > 0 {
            self.opts.n_threads
        } else {
            nimage_par::host_parallelism()
        };
        // Capped at the host's parallelism (workers beyond it only
        // contend) and gated on the cell-count cutoff like every other
        // parallel stage.
        nimage_par::workers_for(n, jobs, nimage_par::cutoff::RUN_MIN_CELLS).clamp(1, jobs.max(1))
    }

    /// Evaluates every `(workload, strategy)` cell of the matrix, sharing
    /// cached artifacts within and across rows and fanning independent
    /// cells out over worker threads. Results come back in deterministic
    /// row-major order — `specs[0] × strategies[0..]`, then `specs[1]`, … —
    /// and are bit-identical to the serial uncached loop's.
    ///
    /// # Errors
    /// Returns the first failing cell's error (in row-major order).
    pub fn evaluate_matrix<'p>(
        &self,
        specs: &[WorkloadSpec<'p>],
        strategies: &[Strategy],
    ) -> Result<Vec<MatrixCell>, PipelineError> {
        let ctxs: Vec<Ctx<'p, '_>> = specs.iter().map(Ctx::new).collect();
        let jobs: Vec<(usize, usize)> = (0..specs.len())
            .flat_map(|wi| (0..strategies.len()).map(move |si| (wi, si)))
            .collect();
        let results: Vec<OnceLock<Result<Evaluation, PipelineError>>> =
            jobs.iter().map(|_| OnceLock::new()).collect();

        let n_workers = self.worker_count(jobs.len());
        if n_workers <= 1 {
            for (slot, &(wi, si)) in results.iter().zip(&jobs) {
                let _ = slot.set(self.run_job(&ctxs[wi], strategies[si]));
            }
        } else {
            // Seed worker deques workload-major so workers start on
            // different rows (the shared per-row stages serialize behind
            // the cache slots); stealing rebalances the strategy cells.
            let queue = StealQueue::new(n_workers);
            for (j, &(wi, _)) in jobs.iter().enumerate() {
                queue.seed(wi % n_workers, j);
            }
            let queue = &queue;
            let results = &results;
            let ctxs = &ctxs;
            let jobs = &jobs;
            std::thread::scope(|scope| {
                for w in 0..n_workers {
                    scope.spawn(move || {
                        while let Some(j) = queue.pop(w) {
                            let (wi, si) = jobs[j];
                            let _ = results[j].set(self.run_job(&ctxs[wi], strategies[si]));
                        }
                    });
                }
            });
        }

        let mut out = Vec::with_capacity(jobs.len());
        for (slot, &(wi, si)) in results.into_iter().zip(&jobs) {
            let eval = slot
                .into_inner()
                .expect("every seeded job ran to completion")?;
            out.push(MatrixCell {
                workload: specs[wi].name.clone(),
                strategy: strategies[si],
                eval,
            });
        }
        // Opportunistic lifecycle sweep: if this evaluation wrote new
        // entries and the cache is capped, bring it back under the caps.
        if self.disk.as_ref().is_some_and(|d| d.stats().stores > 0) {
            self.gc_disk();
        }
        Ok(out)
    }

    /// Enforces the configured disk-cache size caps: deletes stale temp
    /// files and evicts least-recently-accessed entries until the cache
    /// is under [`DiskCacheOptions::max_bytes`]/[`DiskCacheOptions::max_entries`].
    /// `None` (no sweep) when no disk tier or no cap is configured.
    pub fn gc_disk(&self) -> Option<crate::diskcache::GcReport> {
        let d = self.disk.as_ref()?;
        let opts = self.opts.disk.as_ref()?;
        opts.capped()
            .then(|| d.gc(opts.max_bytes, opts.max_entries))
    }

    /// Profiles one workload (steps 1–3 of Fig. 1), cached in memory and
    /// on disk.
    ///
    /// # Errors
    /// Propagates pipeline failures.
    pub fn profile_workload(
        &self,
        spec: &WorkloadSpec<'_>,
    ) -> Result<Arc<ProfiledArtifacts>, PipelineError> {
        self.profiled(&Ctx::new(spec))
    }

    /// Builds the fully instrumented image ([`InstrumentConfig::FULL`])
    /// with the compile and snapshot stages shared behind the cache and
    /// disk tier. The parts equal `Pipeline::build_instrumented`'s.
    ///
    /// # Errors
    /// Propagates pipeline failures.
    pub fn instrumented_parts(&self, spec: &WorkloadSpec<'_>) -> Result<BuildParts, PipelineError> {
        let ctx = Ctx::new(spec);
        let p = ctx.pipeline();
        let reach = self.reach(&ctx, &p);
        let compiled = self.instrumented_compiled(&ctx, &p, &reach);
        let snapshot = self.snapshot_for(
            &p,
            ctx.key("snapshot:instrumented"),
            &compiled,
            &ctx.spec.opts.heap_instrumented,
        )?;
        let image = self
            .cache
            .images
            .get_or_try(ctx.key("layout:instrumented"), || {
                self.clock.time(Stage::Layout, || {
                    p.layout_stage(&compiled, &snapshot, LayoutOrders::default(), None)
                })
            })?;
        Ok(BuildParts {
            compiled,
            snapshot,
            image,
        })
    }

    /// Builds the profile-guided optimized image for `strategy` (`None`
    /// for the baseline layout) with the compile and snapshot stages
    /// shared behind the cache and disk tier. The parts equal
    /// `Pipeline::build_optimized`'s.
    ///
    /// # Errors
    /// Propagates pipeline failures.
    pub fn optimized_parts(
        &self,
        spec: &WorkloadSpec<'_>,
        artifacts: &ProfiledArtifacts,
        strategy: Option<Strategy>,
    ) -> Result<BuildParts, PipelineError> {
        let ctx = Ctx::new(spec);
        let p = ctx.pipeline();
        let reach = self.reach(&ctx, &p);
        let compiled = self.optimized_compiled(&ctx, &p, &reach, artifacts);
        let snapshot = self.snapshot_for(
            &p,
            ctx.key("snapshot:optimized"),
            &compiled,
            &ctx.spec.opts.heap_optimized,
        )?;
        let ids = strategy
            .and_then(|s| ctx.spec.opts.heap_strategy_for(s))
            .map(|hs| self.heap_ids(&ctx, ctx.key("snapshot:optimized"), &snapshot, hs));
        let orders = self.orders_for(&ctx, &p, artifacts, &compiled, &snapshot, strategy, &ids)?;
        let native = strategy
            .is_some()
            .then_some(artifacts.native_pages.as_slice());
        let image_key = match strategy {
            None => ctx.key("layout:baseline"),
            Some(s) => {
                CacheKey::for_stage("layout", &[ctx.base, CacheKey::of_debug("strategy", &s)])
            }
        };
        let image = self.cache.images.get_or_try(image_key, || {
            self.clock.time(Stage::Layout, || {
                p.layout_stage(&compiled, &snapshot, orders, native)
            })
        })?;
        Ok(BuildParts {
            compiled,
            snapshot,
            image,
        })
    }

    /// The ordering-stage output for one workload × strategy. Clustered
    /// strategies run the layout optimizer's candidate search, which is
    /// the one ordering stage worth caching: the plan (orders + predicted
    /// fault counts) is memoized and persisted under the `optimize` disk
    /// stage, like `lower`'s inputs. Every other strategy replays its
    /// profile inline, uncached, exactly as before.
    #[allow(clippy::too_many_arguments)]
    fn orders_for(
        &self,
        ctx: &Ctx<'_, '_>,
        p: &Pipeline<'_>,
        artifacts: &ProfiledArtifacts,
        compiled: &CompiledProgram,
        snapshot: &HeapSnapshot,
        strategy: Option<Strategy>,
        ids: &Option<Arc<HashMap<ObjId, u64>>>,
    ) -> Result<LayoutOrders, PipelineError> {
        if let Some(s) = strategy.filter(|s| s.clustered()) {
            let key =
                CacheKey::for_stage("optimize", &[ctx.base, CacheKey::of_debug("strategy", &s)]);
            let plan = self.disk_backed(&self.cache.plans, "optimize", key, || {
                Ok::<_, PipelineError>(self.clock.time(Stage::Order, || {
                    p.order_stage(artifacts, compiled, snapshot, strategy, ids.as_deref())
                }))
            })?;
            Ok((*plan).clone())
        } else {
            Ok(self.clock.time(Stage::Order, || {
                p.order_stage(artifacts, compiled, snapshot, strategy, ids.as_deref())
            }))
        }
    }

    /// The layout optimizer's plan for one workload × strategy — the
    /// chosen orders plus the cost model's predicted fault counts —
    /// computed through the cache (a hit after any evaluation of the same
    /// cell). Returns `None` for non-clustered strategies, which have no
    /// plan.
    ///
    /// # Errors
    /// Propagates pipeline failures.
    pub fn layout_plan(
        &self,
        spec: &WorkloadSpec<'_>,
        artifacts: &ProfiledArtifacts,
        strategy: Strategy,
    ) -> Result<Option<LayoutOrders>, PipelineError> {
        if !strategy.clustered() {
            return Ok(None);
        }
        let ctx = Ctx::new(spec);
        let p = ctx.pipeline();
        let reach = self.reach(&ctx, &p);
        let compiled = self.optimized_compiled(&ctx, &p, &reach, artifacts);
        let snapshot = self.snapshot_for(
            &p,
            ctx.key("snapshot:optimized"),
            &compiled,
            &ctx.spec.opts.heap_optimized,
        )?;
        let ids = ctx
            .spec
            .opts
            .heap_strategy_for(strategy)
            .map(|hs| self.heap_ids(&ctx, ctx.key("snapshot:optimized"), &snapshot, hs));
        self.orders_for(
            &ctx,
            &p,
            artifacts,
            &compiled,
            &snapshot,
            Some(strategy),
            &ids,
        )
        .map(Some)
    }

    /// Evaluates all `strategies` for one workload, returning
    /// `(strategy, evaluation)` pairs in input order.
    ///
    /// # Errors
    /// Returns the first failing strategy's error.
    pub fn evaluate_workload<'p>(
        &self,
        spec: &WorkloadSpec<'p>,
        strategies: &[Strategy],
    ) -> Result<Vec<(Strategy, Evaluation)>, PipelineError> {
        let cells = self.evaluate_matrix(std::slice::from_ref(spec), strategies)?;
        Ok(cells.into_iter().map(|c| (c.strategy, c.eval)).collect())
    }

    fn run_job(&self, ctx: &Ctx<'_, '_>, strategy: Strategy) -> Result<Evaluation, PipelineError> {
        let artifacts = self.profiled(ctx)?;
        let parts = self.baseline_parts(ctx, &artifacts)?;
        self.evaluate_cell(ctx, &artifacts, &parts, strategy)
    }

    fn reach(&self, ctx: &Ctx<'_, '_>, p: &Pipeline<'_>) -> Arc<Reachability> {
        self.cache.reach.get_or(ctx.key("analyze"), || {
            self.clock.time(Stage::Analyze, || p.analyze_stage())
        })
    }

    fn heap_ids(
        &self,
        ctx: &Ctx<'_, '_>,
        snap_key: CacheKey,
        snap: &HeapSnapshot,
        hs: HeapStrategy,
    ) -> Arc<HashMap<ObjId, u64>> {
        let key = CacheKey::for_stage(
            "assign-ids",
            &[snap_key, CacheKey::of_debug("strategy", &hs)],
        );
        match self.disk_backed::<_, std::convert::Infallible>(
            &self.cache.heap_ids,
            "assign-ids",
            key,
            || {
                Ok(self.clock.time(Stage::Order, || {
                    nimage_order::assign_ids(ctx.spec.program, snap, hs)
                }))
            },
        ) {
            Ok(v) => v,
        }
    }

    /// The instrumented compile, disk-backed under the `compile` stage.
    fn instrumented_compiled(
        &self,
        ctx: &Ctx<'_, '_>,
        p: &Pipeline<'_>,
        reach: &Reachability,
    ) -> Arc<CompiledProgram> {
        match self.disk_backed::<_, std::convert::Infallible>(
            &self.cache.compiled,
            "compile",
            ctx.key("compile:instrumented"),
            || {
                Ok(self.clock.time(Stage::Compile, || {
                    p.compile_stage(reach.clone(), InstrumentConfig::FULL, None)
                }))
            },
        ) {
            Ok(v) => v,
        }
    }

    /// The PGO-optimized compile, disk-backed under the `compile` stage.
    fn optimized_compiled(
        &self,
        ctx: &Ctx<'_, '_>,
        p: &Pipeline<'_>,
        reach: &Reachability,
        artifacts: &ProfiledArtifacts,
    ) -> Arc<CompiledProgram> {
        match self.disk_backed::<_, std::convert::Infallible>(
            &self.cache.compiled,
            "compile",
            ctx.key("compile:optimized"),
            || {
                Ok(self.clock.time(Stage::Compile, || {
                    p.compile_stage(
                        reach.clone(),
                        InstrumentConfig::NONE,
                        Some(&artifacts.call_counts),
                    )
                }))
            },
        ) {
            Ok(v) => v,
        }
    }

    /// The sharded execution program of one compile: one lazy container
    /// per compile key, shared (`Arc`) by every VM run of that build —
    /// matrix cells on different worker threads dispatch over the same
    /// instruction arrays, faulting per-CU shards in exactly once. `None`
    /// under [`ExecMode::Legacy`], where the tree-walking interpreter
    /// wants no lowering.
    ///
    /// Constructing the container builds only the cheap global tables;
    /// method bodies are lowered per CU on first call, or ahead of time by
    /// [`Engine::prelower_hot`].
    fn lowered_for(
        &self,
        ctx: &Ctx<'_, '_>,
        compile_key: CacheKey,
        compiled: &CompiledProgram,
    ) -> Option<Arc<LoweredProgram>> {
        if ctx.spec.opts.vm.exec == ExecMode::Legacy {
            return None;
        }
        let key = CacheKey::for_stage("lower", &[compile_key]);
        Some(self.cache.lowered.get_or(key, || {
            self.clock.time(Stage::Compile, || {
                LoweredProgram::new(ctx.spec.program, compiled, ctx.spec.opts.vm.max_paths)
            })
        }))
    }

    /// The pre-lowering wave: realizes the shards of every CU the profile
    /// marks hot (its CU-order profile lists first-entry order) before the
    /// optimized runs start, fanning out under
    /// [`nimage_par::cutoff::PRELOWER_MIN_CUS`]. Each shard is persisted
    /// per `(compile, cu)` under the `lower` disk stage, so a warm engine
    /// installs the decoded bodies instead of re-lowering; a shard that
    /// fails validation against this build falls back to lowering locally.
    fn prelower_hot(
        &self,
        ctx: &Ctx<'_, '_>,
        compile_key: CacheKey,
        compiled: &CompiledProgram,
        lowered: &LoweredProgram,
        artifacts: &ProfiledArtifacts,
    ) {
        let sig_to_cu: HashMap<String, nimage_compiler::CuId> = compiled
            .cus
            .iter()
            .map(|cu| (ctx.spec.program.method_signature(cu.root), cu.id))
            .collect();
        // Profile order, already-realized shards skipped (baseline_parts
        // re-runs per cell; the wave must not repeat disk reads).
        let todo: Vec<nimage_compiler::CuId> = artifacts
            .cu_profile
            .sigs
            .iter()
            .filter_map(|sig| sig_to_cu.get(sig).copied())
            .filter(|&cu| !lowered.is_cu_lowered(cu))
            .collect();
        if todo.is_empty() {
            return;
        }
        let n = if self.opts.n_threads > 0 {
            self.opts.n_threads
        } else {
            nimage_par::host_parallelism()
        };
        let workers = nimage_par::workers_for(n, todo.len(), nimage_par::cutoff::PRELOWER_MIN_CUS);
        self.clock.time(Stage::Compile, || {
            nimage_par::parallel_map(workers, todo.len(), |i| {
                let cu = todo[i];
                let key = CacheKey::for_stage(
                    "lower",
                    &[compile_key, CacheKey::of_debug("cu", &cu.index())],
                );
                if let Some(d) = &self.disk {
                    if let Some(shard) = d.get::<LoweredShard>("lower", key) {
                        if lowered.install_shard(compiled, &shard) {
                            return;
                        }
                    }
                }
                let shard = lowered.extract_shard(ctx.spec.program, compiled, cu);
                if let Some(d) = &self.disk {
                    d.put("lower", key, &shard);
                }
            });
        });
    }

    /// A heap snapshot of `compiled`, disk-backed under the `snapshot`
    /// stage. `key` distinguishes the instrumented and optimized variants;
    /// `cfg` is the matching heap-build configuration.
    fn snapshot_for(
        &self,
        p: &Pipeline<'_>,
        key: CacheKey,
        compiled: &CompiledProgram,
        cfg: &nimage_heap::HeapBuildConfig,
    ) -> Result<Arc<HeapSnapshot>, PipelineError> {
        self.disk_backed(&self.cache.snapshots, "snapshot", key, || {
            self.clock
                .time(Stage::Snapshot, || p.snapshot_stage(compiled, cfg))
        })
    }

    /// The profiling half (steps 1–3 of Fig. 1), computed once per
    /// workload.
    fn profiled(&self, ctx: &Ctx<'_, '_>) -> Result<Arc<ProfiledArtifacts>, PipelineError> {
        self.disk_backed(&self.cache.profiles, "profile", ctx.key("profile"), || {
            let p = ctx.pipeline();
            let reach = self.reach(ctx, &p);
            let compiled = self.instrumented_compiled(ctx, &p, &reach);
            let snap_key = ctx.key("snapshot:instrumented");
            let snap =
                self.snapshot_for(&p, snap_key, &compiled, &ctx.spec.opts.heap_instrumented)?;
            let image = self
                .cache
                .images
                .get_or_try(ctx.key("layout:instrumented"), || {
                    self.clock.time(Stage::Layout, || {
                        p.layout_stage(&compiled, &snap, LayoutOrders::default(), None)
                    })
                })?;
            let template =
                self.cache
                    .heap_templates
                    .get_or(ctx.key("heap-template:instrumented"), || {
                        self.clock.time(Stage::Snapshot, || {
                            HeapTemplate::from_build_heap(snap.heap())
                        })
                    });
            let lowered = self.lowered_for(ctx, ctx.key("compile:instrumented"), &compiled);
            let report = self.clock.time(Stage::Run, || {
                p.run_parts_shared(
                    &compiled,
                    &snap,
                    &image,
                    Some(template),
                    lowered,
                    ctx.spec.stop,
                )
            })?;
            self.clock.time(Stage::Replay, || {
                p.post_process(report, &mut |hs| self.heap_ids(ctx, snap_key, &snap, hs))
            })
        })
    }

    /// The strategy-independent optimized-build artifacts, each computed
    /// once per workload and shared by every strategy cell.
    fn baseline_parts(
        &self,
        ctx: &Ctx<'_, '_>,
        artifacts: &ProfiledArtifacts,
    ) -> Result<BaselineParts, PipelineError> {
        let p = ctx.pipeline();
        let reach = self.reach(ctx, &p);
        let compiled = self.optimized_compiled(ctx, &p, &reach, artifacts);
        let snapshot = self.snapshot_for(
            &p,
            ctx.key("snapshot:optimized"),
            &compiled,
            &ctx.spec.opts.heap_optimized,
        )?;
        let template = self
            .cache
            .heap_templates
            .get_or(ctx.key("heap-template:optimized"), || {
                self.clock.time(Stage::Snapshot, || {
                    HeapTemplate::from_build_heap(snapshot.heap())
                })
            });
        let image: Arc<BinaryImage> =
            self.cache
                .images
                .get_or_try(ctx.key("layout:baseline"), || {
                    self.clock.time(Stage::Layout, || {
                        p.layout_stage(&compiled, &snapshot, LayoutOrders::default(), None)
                    })
                })?;
        let compile_key = ctx.key("compile:optimized");
        let lowered = self.lowered_for(ctx, compile_key, &compiled);
        if let Some(lp) = &lowered {
            self.prelower_hot(ctx, compile_key, &compiled, lp, artifacts);
        }
        let run = self.disk_backed(
            &self.cache.runs,
            "baseline-run",
            ctx.key("run:baseline"),
            || {
                self.clock.time(Stage::Run, || {
                    p.run_parts_shared(
                        &compiled,
                        &snapshot,
                        &image,
                        Some(template.clone()),
                        lowered.clone(),
                        ctx.spec.stop,
                    )
                })
            },
        )?;
        Ok(BaselineParts {
            compiled,
            snapshot,
            template,
            lowered,
            run,
        })
    }

    /// One strategy cell: order + layout + run against the shared
    /// baseline.
    fn evaluate_cell(
        &self,
        ctx: &Ctx<'_, '_>,
        artifacts: &ProfiledArtifacts,
        parts: &BaselineParts,
        strategy: Strategy,
    ) -> Result<Evaluation, PipelineError> {
        let p = ctx.pipeline();
        let ids = ctx
            .spec
            .opts
            .heap_strategy_for(strategy)
            .map(|hs| self.heap_ids(ctx, ctx.key("snapshot:optimized"), &parts.snapshot, hs));
        let orders = self.orders_for(
            ctx,
            &p,
            artifacts,
            &parts.compiled,
            &parts.snapshot,
            Some(strategy),
            &ids,
        )?;
        let image = self.clock.time(Stage::Layout, || {
            p.layout_stage(
                &parts.compiled,
                &parts.snapshot,
                orders,
                Some(artifacts.native_pages.as_slice()),
            )
        })?;
        let optimized = self.clock.time(Stage::Run, || {
            p.run_parts_shared(
                &parts.compiled,
                &parts.snapshot,
                &image,
                Some(parts.template.clone()),
                parts.lowered.clone(),
                ctx.spec.stop,
            )
        })?;
        Ok(Evaluation {
            strategy,
            baseline: (*parts.run).clone(),
            optimized,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_times_report_in_pipeline_order() {
        let clock = StageClock::default();
        clock.time(Stage::Run, || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        let t = clock.snapshot();
        assert!(t.ns[Stage::Run as usize] > 0);
        assert_eq!(t.total_ns(), t.ns.iter().sum::<u64>());
        let names: Vec<_> = t.iter().map(|(n, _)| n).collect();
        assert_eq!(names, StageTimes::NAMES);
    }
}
