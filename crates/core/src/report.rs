//! The typed evaluation request and the versioned evaluation report.
//!
//! [`EvalRequest`] is the builder-style front door of the evaluation
//! engine: workloads × strategies plus the engine knobs (threads, disk
//! tier, tracing), replacing the positional argument lists that used to
//! thread through `evaluate_matrix` call sites. [`Report`] is the single
//! serializable result type: it subsumes the old ad-hoc combination of
//! `EngineStats` + `ShardStats` + `StageTimes` + per-stage speedup maps
//! that `nimage bench --json` assembled by hand, and it carries a
//! `report_version` field so downstream consumers (the CI schema gate)
//! can reject incompatible output instead of misparsing it.
//!
//! All JSON here is hand-written — the workspace has no serde — via the
//! same escaping helpers the metrics exporter uses.

use std::collections::BTreeMap;

use nimage_trace::metrics::{json_f64, json_string};
use nimage_trace::{MetricsSnapshot, TraceSummary};
use nimage_vm::CostModel;

use crate::diskcache::{DiskCacheOptions, DiskCacheStats};
use crate::engine::{
    Engine, EngineOptions, EngineStats, MatrixCell, ShardStats, TraceOptions, WorkloadSpec,
};
use crate::{MemoStats, PipelineError, Strategy};

/// Version of the [`Report`] JSON schema. Bump on any
/// backwards-incompatible change to [`Report::to_json`]'s shape; the CI
/// schema gate pins this value.
pub const REPORT_VERSION: u32 = 1;

/// One stage's derived timing, from the engine's span tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageReport {
    /// Stage name ([`crate::StageTimes::NAMES`] order).
    pub name: &'static str,
    /// Σ exclusive span time: wall-clock attributed to this stage alone,
    /// nested stages subtracted (never double-counts).
    pub exclusive_ns: u64,
    /// Σ inclusive span time (contains nested stages).
    pub inclusive_ns: u64,
    /// Number of spans recorded for the stage (≈ cache misses).
    pub count: u64,
}

/// One `(workload, strategy)` cell's measured outcome, reduced to the
/// serializable numbers the paper's figures report.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Workload name (row).
    pub workload: String,
    /// Strategy display name (column).
    pub strategy: String,
    /// Baseline `.text` / `.svm_heap` major faults.
    pub baseline_faults: (u64, u64),
    /// Optimized `.text` / `.svm_heap` major faults.
    pub optimized_faults: (u64, u64),
    /// The reduction factor the paper reports for this strategy's kind.
    pub fault_reduction: f64,
    /// Execution-time speedup under the SSD cost model.
    pub speedup: f64,
}

/// The complete, versioned result of one evaluation: cells plus every
/// engine counter, ready for [`Report::to_json`].
#[derive(Debug, Clone)]
pub struct Report {
    /// Schema version of the JSON rendering ([`REPORT_VERSION`]).
    pub report_version: u32,
    /// Workload names, row order.
    pub workloads: Vec<String>,
    /// Strategy display names, column order.
    pub strategies: Vec<String>,
    /// Worker threads the evaluation ran with (`0` = host parallelism).
    pub threads: usize,
    /// Per-cell outcomes, row-major.
    pub cells: Vec<CellReport>,
    /// Per-stage derived timings, pipeline order.
    pub stages: Vec<StageReport>,
    /// In-memory cache hit/miss counters per stage.
    pub cache: Vec<MemoStats>,
    /// Disk-tier counters, when a disk cache was configured.
    pub disk: Option<DiskCacheStats>,
    /// Disk-tier counters per persisted stage.
    pub disk_stages: Option<BTreeMap<String, DiskCacheStats>>,
    /// Lowering-shard realization counters.
    pub lowered_shards: ShardStats,
    /// The metrics registry's counters/gauges/histograms.
    pub metrics: MetricsSnapshot,
    /// Trace recording totals (threads, events, drops).
    pub trace: TraceSummary,
}

fn json_stats(s: &DiskCacheStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"stores\":{},\"rejected\":{}}}",
        s.hits, s.misses, s.stores, s.rejected
    )
}

impl Report {
    /// Renders the report as JSON (schema `report_version` =
    /// [`REPORT_VERSION`], pinned by `ci/report_schema.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!("{{\"report_version\":{}", self.report_version));
        let names = |v: &[String]| {
            v.iter()
                .map(|n| json_string(n))
                .collect::<Vec<_>>()
                .join(",")
        };
        out.push_str(&format!(",\"workloads\":[{}]", names(&self.workloads)));
        out.push_str(&format!(",\"strategies\":[{}]", names(&self.strategies)));
        out.push_str(&format!(",\"threads\":{}", self.threads));
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| {
                format!(
                    "{{\"workload\":{},\"strategy\":{},\
                     \"baseline_faults\":{{\"text\":{},\"svm_heap\":{}}},\
                     \"optimized_faults\":{{\"text\":{},\"svm_heap\":{}}},\
                     \"fault_reduction\":{},\"speedup\":{}}}",
                    json_string(&c.workload),
                    json_string(&c.strategy),
                    c.baseline_faults.0,
                    c.baseline_faults.1,
                    c.optimized_faults.0,
                    c.optimized_faults.1,
                    json_f64(c.fault_reduction),
                    json_f64(c.speedup),
                )
            })
            .collect();
        out.push_str(&format!(",\"cells\":[{}]", cells.join(",")));
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\":{},\"exclusive_ns\":{},\"inclusive_ns\":{},\"count\":{}}}",
                    json_string(s.name),
                    s.exclusive_ns,
                    s.inclusive_ns,
                    s.count
                )
            })
            .collect();
        out.push_str(&format!(",\"stages\":[{}]", stages.join(",")));
        let cache: Vec<String> = self
            .cache
            .iter()
            .map(|m| {
                format!(
                    "{{\"name\":{},\"hits\":{},\"misses\":{}}}",
                    json_string(m.name),
                    m.hits,
                    m.misses
                )
            })
            .collect();
        out.push_str(&format!(",\"cache\":[{}]", cache.join(",")));
        match &self.disk {
            Some(d) => out.push_str(&format!(",\"disk\":{}", json_stats(d))),
            None => out.push_str(",\"disk\":null"),
        }
        match &self.disk_stages {
            Some(per) => {
                let entries: Vec<String> = per
                    .iter()
                    .map(|(stage, s)| format!("{}:{}", json_string(stage), json_stats(s)))
                    .collect();
                out.push_str(&format!(",\"disk_stages\":{{{}}}", entries.join(",")));
            }
            None => out.push_str(",\"disk_stages\":null"),
        }
        out.push_str(&format!(
            ",\"lowered_shards\":{{\"lazy\":{},\"eager\":{},\"cus\":{}}}",
            self.lowered_shards.lazy, self.lowered_shards.eager, self.lowered_shards.cus
        ));
        out.push_str(&format!(",\"metrics\":{}", self.metrics.to_json()));
        out.push_str(&format!(
            ",\"trace\":{{\"threads\":{},\"events\":{},\"dropped\":{}}}",
            self.trace.threads, self.trace.events, self.trace.dropped
        ));
        out.push('}');
        out
    }
}

/// The result of [`EvalRequest::run`] / [`Engine::evaluate`]: the raw
/// cells (full [`crate::Evaluation`]s, for callers that need the run
/// reports) plus the serializable [`Report`].
#[derive(Debug)]
pub struct EvalOutcome {
    /// Row-major evaluated cells.
    pub cells: Vec<MatrixCell>,
    /// The versioned report derived from the cells and engine counters.
    pub report: Report,
}

/// A typed, builder-style evaluation request: which workloads × which
/// strategies, evaluated under which engine configuration.
///
/// ```ignore
/// let outcome = EvalRequest::new()
///     .workload(spec)
///     .strategies(Strategy::all())
///     .threads(4)
///     .run()?;
/// println!("{}", outcome.report.to_json());
/// ```
#[derive(Debug, Default)]
pub struct EvalRequest<'p> {
    /// Workloads (matrix rows).
    pub specs: Vec<WorkloadSpec<'p>>,
    /// Strategies (matrix columns).
    pub strategies: Vec<Strategy>,
    /// Engine configuration [`EvalRequest::run`] constructs the engine
    /// with (ignored by [`Engine::evaluate`], which already has one).
    pub options: EngineOptions,
}

impl<'p> EvalRequest<'p> {
    /// An empty request: no workloads, no strategies, default engine
    /// options.
    pub fn new() -> Self {
        EvalRequest::default()
    }

    /// Adds one workload row.
    #[must_use]
    pub fn workload(mut self, spec: WorkloadSpec<'p>) -> Self {
        self.specs.push(spec);
        self
    }

    /// Adds workload rows.
    #[must_use]
    pub fn workloads(mut self, specs: impl IntoIterator<Item = WorkloadSpec<'p>>) -> Self {
        self.specs.extend(specs);
        self
    }

    /// Adds one strategy column.
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategies.push(strategy);
        self
    }

    /// Adds strategy columns.
    #[must_use]
    pub fn strategies(mut self, strategies: impl IntoIterator<Item = Strategy>) -> Self {
        self.strategies.extend(strategies);
        self
    }

    /// Sets the worker-thread count (`0` = host parallelism).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.options.n_threads = n;
        self
    }

    /// Configures the disk-persistent cache tier.
    #[must_use]
    pub fn disk(mut self, disk: Option<DiskCacheOptions>) -> Self {
        self.options.disk = disk;
        self
    }

    /// Configures tracing (VM fault events, ring capacity).
    #[must_use]
    pub fn trace(mut self, trace: TraceOptions) -> Self {
        self.options.trace = trace;
        self
    }

    /// Replaces the whole engine configuration.
    #[must_use]
    pub fn engine_options(mut self, options: EngineOptions) -> Self {
        self.options = options;
        self
    }

    /// Constructs an engine from the request's options and evaluates the
    /// matrix. For reuse of an existing engine's cache across requests,
    /// use [`Engine::evaluate`].
    ///
    /// # Errors
    /// Returns the first failing cell's error (row-major order).
    pub fn run(self) -> Result<EvalOutcome, PipelineError> {
        let engine = Engine::new(EngineOptions {
            n_threads: self.options.n_threads,
            disk: self.options.disk.clone(),
            trace: self.options.trace.clone(),
        });
        engine.evaluate(&self)
    }
}

impl Engine {
    /// Evaluates the request's matrix on this engine (sharing its cache
    /// and disk tier; the request's [`EvalRequest::options`] are ignored
    /// in favor of the engine's own) and derives the versioned
    /// [`Report`].
    ///
    /// # Errors
    /// Returns the first failing cell's error (row-major order).
    pub fn evaluate(&self, req: &EvalRequest<'_>) -> Result<EvalOutcome, PipelineError> {
        let cells = self.evaluate_matrix(&req.specs, &req.strategies)?;
        let report = self.report(req, &cells);
        Ok(EvalOutcome { cells, report })
    }

    /// Builds the versioned [`Report`] for already-evaluated cells from
    /// the engine's current counters. Exposed so callers that evaluate
    /// incrementally (several `evaluate_matrix` calls against one cache)
    /// can snapshot a report at any point.
    pub fn report(&self, req: &EvalRequest<'_>, cells: &[MatrixCell]) -> Report {
        let stats: EngineStats = self.stats();
        let agg = nimage_trace::aggregate(&self.tracer().events());
        let stages = crate::StageTimes::NAMES
            .iter()
            .map(|&name| {
                let a = agg.get(name).copied().unwrap_or_default();
                StageReport {
                    name,
                    exclusive_ns: a.exclusive_ns,
                    inclusive_ns: a.inclusive_ns,
                    count: a.count,
                }
            })
            .collect();
        let cm = CostModel::ssd();
        let cell_reports = cells
            .iter()
            .map(|c| CellReport {
                workload: c.workload.clone(),
                strategy: c.strategy.name().to_string(),
                baseline_faults: (c.eval.baseline.faults.text, c.eval.baseline.faults.svm_heap),
                optimized_faults: (
                    c.eval.optimized.faults.text,
                    c.eval.optimized.faults.svm_heap,
                ),
                fault_reduction: c.eval.reported_fault_reduction(),
                speedup: c.eval.speedup(&cm),
            })
            .collect();
        // Fold the engine's structural counters into the metrics
        // snapshot, so one exporter carries everything countable.
        let mut metrics = self.tracer().metrics();
        for m in &stats.cache {
            metrics
                .counters
                .insert(format!("cache.{}.hits", m.name), m.hits);
            metrics
                .counters
                .insert(format!("cache.{}.misses", m.name), m.misses);
        }
        metrics
            .counters
            .insert("shards.lazy".to_string(), stats.lowered_shards.lazy);
        metrics
            .counters
            .insert("shards.eager".to_string(), stats.lowered_shards.eager);
        metrics
            .counters
            .insert("shards.cus".to_string(), stats.lowered_shards.cus);
        let trace = self.tracer().summary();
        metrics
            .counters
            .insert("trace.events".to_string(), trace.events);
        metrics
            .counters
            .insert("trace.dropped".to_string(), trace.dropped);
        Report {
            report_version: REPORT_VERSION,
            workloads: req.specs.iter().map(|s| s.name.clone()).collect(),
            strategies: req
                .strategies
                .iter()
                .map(|s| s.name().to_string())
                .collect(),
            threads: self.options().n_threads,
            cells: cell_reports,
            stages,
            cache: stats.cache,
            disk: stats.disk,
            disk_stages: stats.disk_stages,
            lowered_shards: stats.lowered_shards,
            metrics,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_renders_versioned_json() {
        let r = Report {
            report_version: REPORT_VERSION,
            workloads: vec!["micronaut\"x".to_string()],
            strategies: vec!["cu".to_string()],
            threads: 4,
            cells: vec![],
            stages: vec![StageReport {
                name: "run",
                exclusive_ns: 5,
                inclusive_ns: 7,
                count: 2,
            }],
            cache: vec![],
            disk: None,
            disk_stages: None,
            lowered_shards: ShardStats::default(),
            metrics: MetricsSnapshot::default(),
            trace: TraceSummary {
                threads: 1,
                events: 3,
                dropped: 0,
            },
        };
        let j = r.to_json();
        assert!(j.starts_with("{\"report_version\":1"));
        assert!(j.contains("\"micronaut\\\"x\""), "escaped name: {j}");
        assert!(j.contains("\"disk\":null"));
        assert!(j.contains("\"exclusive_ns\":5"));
        assert!(j.contains("\"trace\":{\"threads\":1,\"events\":3,\"dropped\":0}"));
        assert!(j.ends_with('}'));
    }

    #[test]
    fn eval_request_builder_accumulates() {
        let req: EvalRequest<'_> = EvalRequest::new()
            .strategy(Strategy::Cu)
            .strategies([Strategy::Method, Strategy::HeapPath])
            .threads(3);
        assert_eq!(req.strategies.len(), 3);
        assert_eq!(req.options.n_threads, 3);
        assert!(req.specs.is_empty());
    }
}
