//! Persistence of profiling artifacts.
//!
//! The paper's post-processing framework emits "a CSV file that is used by
//! Native Image" per ordering analysis (Sec. 6.2). This module writes and
//! reads that profile directory, so profiling and optimizing builds can run
//! in separate processes (as they do in the real toolchain):
//!
//! ```text
//! <dir>/cu_order.csv          one CU-root signature per line
//! <dir>/method_order.csv      one method signature per line
//! <dir>/heap_incremental.csv  one 64-bit hex id per line
//! <dir>/heap_structural.csv
//! <dir>/heap_path.csv         (heap_path_salted.csv with salted ids)
//! <dir>/call_counts.csv       signature,count
//! ```

use std::collections::{HashMap, HashSet};
use std::io;
use std::path::Path;

use nimage_analysis::{CallSite, Reachability};
use nimage_compiler::{
    CallCountProfile, CompilationUnit, CompiledProgram, CuId, InlineNode, InstrumentConfig,
};
use nimage_heap::{
    BuildHeap, HObject, HObjectKind, HValue, HeapSnapshot, InclusionReason, ObjId, ParentLink,
    SnapEntry,
};
use nimage_ir::{BinOp, ClassId, FieldId, Intrinsic, Local, MethodId, SelectorId, TypeRef, UnOp};
use nimage_order::{CodeOrderProfile, HeapOrderProfile, HeapStrategy, PredictedFaults};
use nimage_vm::lower::{
    JumpEdge, LoweredCallee, LoweredInstr, LoweredMethod, LoweredPaths, PathEdge,
};
use nimage_vm::LoweredShard;

use crate::diskcache::{cap_alloc, decode_option, encode_option, put_string, DiskCodec, Reader};
use crate::{LayoutOrders, LayoutPrediction, ProfiledArtifacts};

fn heap_file_name(strategy: HeapStrategy) -> &'static str {
    match strategy {
        HeapStrategy::IncrementalId => "heap_incremental.csv",
        HeapStrategy::StructuralHash { .. } => "heap_structural.csv",
        HeapStrategy::HeapPath => "heap_path.csv",
        HeapStrategy::HeapPathSalted => "heap_path_salted.csv",
    }
}

fn code_csv(profile: &CodeOrderProfile) -> String {
    let mut s = String::new();
    for sig in &profile.sigs {
        s.push_str(sig);
        s.push('\n');
    }
    s
}

fn heap_csv(profile: &HeapOrderProfile) -> String {
    let mut s = String::new();
    for (i, id) in profile.ids.iter().enumerate() {
        s.push_str(&format!("{id:016x}"));
        // Measured touched-byte spans ride on the identity's line so the
        // saved profile keeps the measured touch model across processes
        // (`HeapOrderProfile::from_csv` reads them back).
        if let Some(spans) = profile.spans.get(i) {
            for (a, b) in spans {
                s.push_str(&format!(",{a}:{b}"));
            }
        }
        s.push('\n');
    }
    s
}

/// Writes the ordering profiles and PGO call counts of `artifacts` into
/// `dir` (created if missing).
///
/// # Errors
/// Propagates filesystem errors.
pub fn save_profiles(artifacts: &ProfiledArtifacts, dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("cu_order.csv"), code_csv(&artifacts.cu_profile))?;
    std::fs::write(
        dir.join("method_order.csv"),
        code_csv(&artifacts.method_profile),
    )?;
    for (&strategy, profile) in &artifacts.heap_profiles {
        std::fs::write(dir.join(heap_file_name(strategy)), heap_csv(profile))?;
    }
    std::fs::write(dir.join("call_counts.csv"), artifacts.call_counts.to_csv())?;
    Ok(())
}

/// The profiles read back from a directory written by [`save_profiles`].
///
/// This intentionally mirrors [`ProfiledArtifacts`] minus the run report
/// (which is not persisted — the optimizing build does not need it).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SavedProfiles {
    /// *cu ordering* profile.
    pub cu_profile: CodeOrderProfile,
    /// *method ordering* profile.
    pub method_profile: CodeOrderProfile,
    /// Heap-ordering profiles per identity scheme.
    pub heap_profiles: HashMap<HeapStrategy, HeapOrderProfile>,
    /// PGO call counts.
    pub call_counts: CallCountProfile,
}

/// Reads a profile directory written by [`save_profiles`]. Missing files
/// yield empty profiles (a build can proceed with partial profiles, as the
/// real toolchain does).
///
/// # Errors
/// Propagates filesystem errors other than "file not found".
pub fn load_profiles(dir: &Path) -> io::Result<SavedProfiles> {
    let read = |name: &str| -> io::Result<String> {
        match std::fs::read_to_string(dir.join(name)) {
            Ok(s) => Ok(s),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(String::new()),
            Err(e) => Err(e),
        }
    };
    let read_opt = |name: &str| -> io::Result<Option<String>> {
        match std::fs::read_to_string(dir.join(name)) {
            Ok(s) => Ok(Some(s)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    };
    let mut heap_profiles = HashMap::new();
    for strategy in [
        HeapStrategy::IncrementalId,
        HeapStrategy::structural_default(),
    ] {
        heap_profiles.insert(
            strategy,
            HeapOrderProfile::from_csv(&read(heap_file_name(strategy))?),
        );
    }
    // The path-based profile was written under whichever variant the
    // profiling build used (plain or salted); load whichever file exists
    // so the round-trip reproduces the saved map exactly.
    let mut any_path_file = false;
    for strategy in [HeapStrategy::HeapPath, HeapStrategy::HeapPathSalted] {
        if let Some(s) = read_opt(heap_file_name(strategy))? {
            heap_profiles.insert(strategy, HeapOrderProfile::from_csv(&s));
            any_path_file = true;
        }
    }
    if !any_path_file {
        heap_profiles.insert(HeapStrategy::HeapPath, HeapOrderProfile::default());
    }
    Ok(SavedProfiles {
        cu_profile: CodeOrderProfile::from_csv(&read("cu_order.csv")?),
        method_profile: CodeOrderProfile::from_csv(&read("method_order.csv")?),
        heap_profiles,
        call_counts: CallCountProfile::from_csv(&read("call_counts.csv")?),
    })
}

impl SavedProfiles {
    /// Rehydrates pipeline artifacts from saved profiles; `report` is the
    /// instrumented run report when available (pass a fresh one when
    /// resuming in-process, or synthesize via a new profiling run).
    pub fn into_artifacts(self, report: nimage_vm::RunReport) -> ProfiledArtifacts {
        ProfiledArtifacts {
            call_counts: self.call_counts,
            cu_profile: self.cu_profile,
            method_profile: self.method_profile,
            heap_profiles: self.heap_profiles,
            native_pages: report.native_touch_pages.clone(),
            instrumented_report: report,
        }
    }
}

// ---------------------------------------------------------------------------
// Disk codecs for the per-stage artifacts the engine persists: the compiled
// program and the heap snapshot. Encodings are canonical (maps and sets are
// written sorted) so identical artifacts produce identical bytes; decodes
// are total over arbitrary bytes and validate every index that downstream
// code would otherwise index-panic on, so a corrupt cache entry is always a
// miss, never a crash.
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_u32_seq(out: &mut Vec<u8>, it: impl ExactSizeIterator<Item = u32>) {
    put_u32(out, it.len() as u32);
    for v in it {
        put_u32(out, v);
    }
}

fn decode_u32_seq(r: &mut Reader<'_>) -> Option<Vec<u32>> {
    let n = r.u32()? as usize;
    let mut v = Vec::with_capacity(cap_alloc(n, r, 4));
    for _ in 0..n {
        v.push(r.u32()?);
    }
    Some(v)
}

fn encode_call_site(out: &mut Vec<u8>, s: &CallSite) {
    put_u32(out, s.method.0);
    // The usize indices go through u64 so a 32-bit truncation can never
    // silently poison a cache entry on a platform disagreement.
    put_u64(out, s.block as u64);
    put_u64(out, s.instr as u64);
}

fn decode_call_site(r: &mut Reader<'_>) -> Option<CallSite> {
    let method = MethodId(r.u32()?);
    let block = usize::try_from(r.u64()?).ok()?;
    let instr = usize::try_from(r.u64()?).ok()?;
    Some(CallSite {
        method,
        block,
        instr,
    })
}

fn encode_reachability(out: &mut Vec<u8>, reach: &Reachability) {
    encode_u32_seq(out, reach.methods.iter().map(|m| m.0));
    encode_u32_seq(out, reach.instantiated.iter().map(|c| c.0));
    encode_u32_seq(out, reach.classes.iter().map(|c| c.0));
    encode_u32_seq(out, reach.static_fields.iter().map(|f| f.0));
    encode_u32_seq(out, reach.instance_fields.iter().map(|f| f.0));
    encode_u32_seq(out, reach.build_time_inits.iter().map(|m| m.0));
    let mut vt: Vec<(&CallSite, &Vec<MethodId>)> = reach.virtual_targets.iter().collect();
    vt.sort_unstable_by_key(|(s, _)| (s.method.0, s.block, s.instr));
    put_u32(out, vt.len() as u32);
    for (site, targets) in vt {
        encode_call_site(out, site);
        encode_u32_seq(out, targets.iter().map(|m| m.0));
    }
    let mut sat: Vec<u32> = reach.saturated.iter().map(|s| s.0).collect();
    sat.sort_unstable();
    encode_u32_seq(out, sat.into_iter());
    put_u32(out, reach.direct_edges.len() as u32);
    for (a, b) in &reach.direct_edges {
        put_u32(out, a.0);
        put_u32(out, b.0);
    }
}

fn decode_reachability(r: &mut Reader<'_>) -> Option<Reachability> {
    let methods = decode_u32_seq(r)?.into_iter().map(MethodId).collect();
    let instantiated = decode_u32_seq(r)?.into_iter().map(ClassId).collect();
    let classes = decode_u32_seq(r)?.into_iter().map(ClassId).collect();
    let static_fields = decode_u32_seq(r)?.into_iter().map(FieldId).collect();
    let instance_fields = decode_u32_seq(r)?.into_iter().map(FieldId).collect();
    let build_time_inits = decode_u32_seq(r)?.into_iter().map(MethodId).collect();
    let n_vt = r.u32()? as usize;
    let mut virtual_targets = HashMap::with_capacity(cap_alloc(n_vt, r, 24));
    for _ in 0..n_vt {
        let site = decode_call_site(r)?;
        let targets = decode_u32_seq(r)?.into_iter().map(MethodId).collect();
        virtual_targets.insert(site, targets);
    }
    let saturated = decode_u32_seq(r)?.into_iter().map(SelectorId).collect();
    let n_edges = r.u32()? as usize;
    let mut direct_edges = Vec::with_capacity(cap_alloc(n_edges, r, 8));
    for _ in 0..n_edges {
        direct_edges.push((MethodId(r.u32()?), MethodId(r.u32()?)));
    }
    Some(Reachability {
        methods,
        instantiated,
        classes,
        static_fields,
        instance_fields,
        build_time_inits,
        virtual_targets,
        saturated,
        direct_edges,
    })
}

impl DiskCodec for CompiledProgram {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.cus.len() as u32);
        for cu in &self.cus {
            put_u32(out, cu.id.0);
            put_u32(out, cu.root.0);
            put_u32(out, cu.size);
            put_u32(out, cu.nodes.len() as u32);
            for node in &cu.nodes {
                put_u32(out, node.method.0);
                encode_option(out, &node.parent, |p, out| put_u32(out, *p));
                put_u32(out, node.offset);
                put_u32(out, node.size);
                put_u32(out, node.children.len() as u32);
                for (site, child) in &node.children {
                    encode_call_site(out, site);
                    put_u32(out, *child);
                }
            }
        }
        let cfg = &self.instrumentation;
        out.push(
            u8::from(cfg.trace_cu)
                | (u8::from(cfg.trace_methods) << 1)
                | (u8::from(cfg.trace_heap) << 2),
        );
        encode_reachability(out, &self.reachability);
        // root_to_cu is derived from the CU list on decode.
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let n_cus = r.u32()? as usize;
        let mut cus = Vec::with_capacity(cap_alloc(n_cus, r, 16));
        for i in 0..n_cus {
            let id = CuId(r.u32()?);
            // CompiledProgram::cu indexes the list by id, so ids must
            // equal positions.
            if id.index() != i {
                return None;
            }
            let root = MethodId(r.u32()?);
            let size = r.u32()?;
            let n_nodes = r.u32()? as usize;
            let mut nodes = Vec::with_capacity(cap_alloc(n_nodes, r, 18));
            for _ in 0..n_nodes {
                let method = MethodId(r.u32()?);
                let parent = decode_option(r, |r| r.u32())?;
                let offset = r.u32()?;
                let size = r.u32()?;
                let n_children = r.u32()? as usize;
                let mut children = Vec::with_capacity(cap_alloc(n_children, r, 24));
                for _ in 0..n_children {
                    let site = decode_call_site(r)?;
                    children.push((site, r.u32()?));
                }
                nodes.push(InlineNode {
                    method,
                    parent,
                    offset,
                    size,
                    children,
                });
            }
            let n = nodes.len() as u32;
            // Inline-tree indices must stay in range.
            if nodes.iter().any(|node| {
                node.parent.is_some_and(|p| p >= n) || node.children.iter().any(|&(_, c)| c >= n)
            }) {
                return None;
            }
            cus.push(CompilationUnit {
                id,
                root,
                nodes,
                size,
            });
        }
        let mask = r.u8()?;
        if mask > 7 {
            return None;
        }
        let instrumentation = InstrumentConfig {
            trace_cu: mask & 1 != 0,
            trace_methods: mask & 2 != 0,
            trace_heap: mask & 4 != 0,
        };
        let reachability = decode_reachability(r)?;
        let root_to_cu = cus.iter().map(|cu| (cu.root, cu.id)).collect();
        Some(CompiledProgram {
            cus,
            root_to_cu,
            instrumentation,
            reachability,
        })
    }
}

fn encode_type_ref(out: &mut Vec<u8>, ty: &TypeRef) {
    // One tag byte per array level, so decode depth is naturally bounded
    // by the payload size (no recursion, no unbounded nesting).
    let mut t = ty;
    while let TypeRef::Array(inner) = t {
        out.push(5);
        t = inner;
    }
    match t {
        TypeRef::Bool => out.push(0),
        TypeRef::Int => out.push(1),
        TypeRef::Double => out.push(2),
        TypeRef::Str => out.push(3),
        TypeRef::Object(c) => {
            out.push(4);
            put_u32(out, c.0);
        }
        TypeRef::Array(_) => unreachable!("array levels consumed above"),
    }
}

fn decode_type_ref(r: &mut Reader<'_>) -> Option<TypeRef> {
    let mut depth = 0usize;
    let mut tag = r.u8()?;
    while tag == 5 {
        depth += 1;
        tag = r.u8()?;
    }
    let mut ty = match tag {
        0 => TypeRef::Bool,
        1 => TypeRef::Int,
        2 => TypeRef::Double,
        3 => TypeRef::Str,
        4 => TypeRef::Object(ClassId(r.u32()?)),
        _ => return None,
    };
    for _ in 0..depth {
        ty = TypeRef::array_of(ty);
    }
    Some(ty)
}

fn encode_hvalue(out: &mut Vec<u8>, v: &HValue) {
    match v {
        HValue::Null => out.push(0),
        HValue::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        HValue::Int(i) => {
            out.push(2);
            put_u64(out, *i as u64);
        }
        HValue::Double(d) => {
            out.push(3);
            put_u64(out, d.to_bits());
        }
        HValue::Ref(o) => {
            out.push(4);
            put_u32(out, o.0);
        }
    }
}

fn decode_hvalue(r: &mut Reader<'_>, n_objects: u32) -> Option<HValue> {
    Some(match r.u8()? {
        0 => HValue::Null,
        1 => match r.u8()? {
            0 => HValue::Bool(false),
            1 => HValue::Bool(true),
            _ => return None,
        },
        2 => HValue::Int(r.i64()?),
        3 => HValue::Double(r.f64()?),
        4 => {
            let o = r.u32()?;
            // BuildHeap::get panics out of range; validate here so a
            // corrupt entry stays a miss.
            if o >= n_objects {
                return None;
            }
            HValue::Ref(ObjId(o))
        }
        _ => return None,
    })
}

fn encode_hobject(out: &mut Vec<u8>, obj: &HObject) {
    match &obj.kind {
        HObjectKind::Instance { class, fields } => {
            out.push(0);
            put_u32(out, class.0);
            put_u32(out, fields.len() as u32);
            for v in fields {
                encode_hvalue(out, v);
            }
        }
        HObjectKind::Array { elem, elems } => {
            out.push(1);
            encode_type_ref(out, elem);
            put_u32(out, elems.len() as u32);
            for v in elems {
                encode_hvalue(out, v);
            }
        }
        HObjectKind::Str(s) => {
            out.push(2);
            put_string(out, s);
        }
        HObjectKind::Boxed(d) => {
            out.push(3);
            put_u64(out, d.to_bits());
        }
        HObjectKind::Blob { name, size } => {
            out.push(4);
            put_string(out, name);
            put_u32(out, *size);
        }
    }
}

fn decode_hobject(r: &mut Reader<'_>, n_objects: u32) -> Option<HObject> {
    let kind = match r.u8()? {
        0 => {
            let class = ClassId(r.u32()?);
            let n = r.u32()? as usize;
            let mut fields = Vec::with_capacity(cap_alloc(n, r, 1));
            for _ in 0..n {
                fields.push(decode_hvalue(r, n_objects)?);
            }
            HObjectKind::Instance { class, fields }
        }
        1 => {
            let elem = decode_type_ref(r)?;
            let n = r.u32()? as usize;
            let mut elems = Vec::with_capacity(cap_alloc(n, r, 1));
            for _ in 0..n {
                elems.push(decode_hvalue(r, n_objects)?);
            }
            HObjectKind::Array { elem, elems }
        }
        2 => HObjectKind::Str(r.string()?),
        3 => HObjectKind::Boxed(r.f64()?),
        4 => HObjectKind::Blob {
            name: r.string()?,
            size: r.u32()?,
        },
        _ => return None,
    };
    Some(HObject { kind })
}

fn encode_reason(out: &mut Vec<u8>, reason: &InclusionReason) {
    match reason {
        InclusionReason::StaticField(sig) => {
            out.push(0);
            put_string(out, sig);
        }
        InclusionReason::MethodConstant(sig) => {
            out.push(1);
            put_string(out, sig);
        }
        InclusionReason::InternedString => out.push(2),
        InclusionReason::DataSection => out.push(3),
        InclusionReason::Resource(name) => {
            out.push(4);
            put_string(out, name);
        }
    }
}

fn decode_reason(r: &mut Reader<'_>) -> Option<InclusionReason> {
    Some(match r.u8()? {
        0 => InclusionReason::StaticField(r.string()?),
        1 => InclusionReason::MethodConstant(r.string()?),
        2 => InclusionReason::InternedString,
        3 => InclusionReason::DataSection,
        4 => InclusionReason::Resource(r.string()?),
        _ => return None,
    })
}

impl DiskCodec for HeapSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        let heap = self.heap();
        let objects = heap.objects();
        put_u32(out, objects.len() as u32);
        for obj in objects {
            encode_hobject(out, obj);
        }
        let mut statics: Vec<(FieldId, HValue)> = heap.statics().collect();
        statics.sort_unstable_by_key(|(f, _)| f.0);
        put_u32(out, statics.len() as u32);
        for (f, v) in &statics {
            put_u32(out, f.0);
            encode_hvalue(out, v);
        }
        // The interned table is recoverable from the object ids alone:
        // the key is the Str object's own content.
        let mut interned: Vec<ObjId> = heap.interned().map(|(_, o)| o).collect();
        interned.sort_unstable();
        encode_u32_seq(out, interned.iter().map(|o| o.0));
        put_u32(out, self.entries().len() as u32);
        for e in self.entries() {
            put_u32(out, e.obj.0);
            put_u32(out, e.size);
            encode_option(out, &e.parent, |(p, link), out| {
                put_u32(out, p.0);
                match link {
                    ParentLink::Field(f) => {
                        out.push(0);
                        put_u32(out, f.0);
                    }
                    ParentLink::Index(i) => {
                        out.push(1);
                        put_u32(out, *i);
                    }
                }
            });
            encode_option(out, &e.root, |reason, out| encode_reason(out, reason));
            encode_option(out, &e.cu, |cu, out| put_u32(out, cu.0));
        }
        let mut folded: Vec<ObjId> = self.folded().iter().copied().collect();
        folded.sort_unstable();
        encode_u32_seq(out, folded.iter().map(|o| o.0));
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let n_objects = r.u32()?;
        let mut objects = Vec::with_capacity(cap_alloc(n_objects as usize, r, 1));
        for _ in 0..n_objects {
            objects.push(decode_hobject(r, n_objects)?);
        }
        let n_statics = r.u32()? as usize;
        let mut statics = HashMap::with_capacity(cap_alloc(n_statics, r, 5));
        for _ in 0..n_statics {
            let f = FieldId(r.u32()?);
            statics.insert(f, decode_hvalue(r, n_objects)?);
        }
        let interned_ids = decode_u32_seq(r)?;
        let mut interned = HashMap::with_capacity(interned_ids.len());
        for o in interned_ids {
            if o >= n_objects {
                return None;
            }
            let HObjectKind::Str(s) = &objects[o as usize].kind else {
                return None;
            };
            interned.insert(s.clone(), ObjId(o));
        }
        let n_entries = r.u32()? as usize;
        let mut entries = Vec::with_capacity(cap_alloc(n_entries, r, 11));
        for _ in 0..n_entries {
            let obj = r.u32()?;
            if obj >= n_objects {
                return None;
            }
            let size = r.u32()?;
            let parent = decode_option(r, |r| {
                let p = r.u32()?;
                if p >= n_objects {
                    return None;
                }
                let link = match r.u8()? {
                    0 => ParentLink::Field(FieldId(r.u32()?)),
                    1 => ParentLink::Index(r.u32()?),
                    _ => return None,
                };
                Some((ObjId(p), link))
            })?;
            let root = decode_option(r, decode_reason)?;
            let cu = decode_option(r, |r| Some(CuId(r.u32()?)))?;
            entries.push(SnapEntry {
                obj: ObjId(obj),
                size,
                parent,
                root,
                cu,
            });
        }
        let folded_ids = decode_u32_seq(r)?;
        let mut folded = HashSet::with_capacity(folded_ids.len());
        for o in folded_ids {
            if o >= n_objects {
                return None;
            }
            folded.insert(ObjId(o));
        }
        let heap = BuildHeap::from_parts(objects, statics, interned);
        Some(HeapSnapshot::from_parts(heap, entries, folded))
    }
}

/// Whether `ids` is a permutation of `0..ids.len()` — the invariant every
/// decoded order must satisfy, since the image builder index-asserts on
/// placement orders and `set_native_page_order` on the tail permutation.
fn is_self_permutation(ids: &[u32]) -> bool {
    let mut seen = vec![false; ids.len()];
    for &v in ids {
        match seen.get_mut(v as usize) {
            Some(s) if !*s => *s = true,
            _ => return false,
        }
    }
    true
}

impl DiskCodec for LayoutOrders {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_option(out, &self.cu_order, |order, out| {
            encode_u32_seq(out, order.iter().map(|c| c.0));
        });
        encode_option(out, &self.object_order, |order, out| {
            encode_u32_seq(out, order.iter().map(|o| o.0));
        });
        encode_option(out, &self.native_order, |order, out| {
            encode_u32_seq(out, order.iter().copied());
        });
        encode_option(out, &self.predicted, |p, out| {
            put_u64(out, p.first_touch.text);
            put_u64(out, p.first_touch.heap);
            put_u64(out, p.optimized.text);
            put_u64(out, p.optimized.heap);
        });
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let perm = |r: &mut Reader<'_>| decode_u32_seq(r).filter(|ids| is_self_permutation(ids));
        let cu_order = decode_option(r, |r| {
            Some(perm(r)?.into_iter().map(CuId).collect::<Vec<_>>())
        })?;
        // Object ids are sparse (folded objects leave holes), so the order
        // is duplicate-free but not a permutation of `0..len`.
        let object_order = decode_option(r, |r| {
            let ids = decode_u32_seq(r)?;
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            sorted
                .windows(2)
                .all(|w| w[0] != w[1])
                .then(|| ids.into_iter().map(ObjId).collect::<Vec<_>>())
        })?;
        let native_order = decode_option(r, perm)?;
        let predicted = decode_option(r, |r| {
            Some(LayoutPrediction {
                first_touch: PredictedFaults {
                    text: r.u64()?,
                    heap: r.u64()?,
                },
                optimized: PredictedFaults {
                    text: r.u64()?,
                    heap: r.u64()?,
                },
            })
        })?;
        Some(LayoutOrders {
            cu_order,
            object_order,
            native_order,
            predicted,
        })
    }
}

// --- LoweredShard ----------------------------------------------------------
// The per-(compile, cu) unit of the `lower` disk stage. Locals travel as
// u32 (the reader has no u16 primitive); operator enums as one tag byte in
// declaration order. Decode validates tags and value ranges totally —
// container-relative bounds (locals vs. n_locals, string indices, jump
// targets, CU coverage) are re-checked by `LoweredProgram::install_shard`,
// which treats a mismatching shard as a miss.

fn put_local(out: &mut Vec<u8>, l: Local) {
    put_u32(out, u32::from(l.0));
}

fn decode_local(r: &mut Reader<'_>) -> Option<Local> {
    Some(Local(u16::try_from(r.u32()?).ok()?))
}

fn encode_locals(out: &mut Vec<u8>, ls: &[Local]) {
    put_u32(out, ls.len() as u32);
    for l in ls {
        put_local(out, *l);
    }
}

fn decode_locals(r: &mut Reader<'_>) -> Option<Box<[Local]>> {
    let n = r.u32()? as usize;
    let mut v = Vec::with_capacity(cap_alloc(n, r, 4));
    for _ in 0..n {
        v.push(decode_local(r)?);
    }
    Some(v.into_boxed_slice())
}

fn encode_opt_local(out: &mut Vec<u8>, l: &Option<Local>) {
    encode_option(out, l, |l, out| put_local(out, *l));
}

fn decode_opt_local(r: &mut Reader<'_>) -> Option<Option<Local>> {
    decode_option(r, decode_local)
}

fn bin_op_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::And => 5,
        BinOp::Or => 6,
        BinOp::Xor => 7,
        BinOp::Shl => 8,
        BinOp::Shr => 9,
        BinOp::Lt => 10,
        BinOp::Le => 11,
        BinOp::Gt => 12,
        BinOp::Ge => 13,
        BinOp::Eq => 14,
        BinOp::Ne => 15,
    }
}

fn bin_op_from(tag: u8) -> Option<BinOp> {
    Some(match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Rem,
        5 => BinOp::And,
        6 => BinOp::Or,
        7 => BinOp::Xor,
        8 => BinOp::Shl,
        9 => BinOp::Shr,
        10 => BinOp::Lt,
        11 => BinOp::Le,
        12 => BinOp::Gt,
        13 => BinOp::Ge,
        14 => BinOp::Eq,
        15 => BinOp::Ne,
        _ => return None,
    })
}

fn un_op_tag(op: UnOp) -> u8 {
    match op {
        UnOp::Neg => 0,
        UnOp::Not => 1,
        UnOp::IntToDouble => 2,
        UnOp::DoubleToInt => 3,
    }
}

fn un_op_from(tag: u8) -> Option<UnOp> {
    Some(match tag {
        0 => UnOp::Neg,
        1 => UnOp::Not,
        2 => UnOp::IntToDouble,
        3 => UnOp::DoubleToInt,
        _ => return None,
    })
}

fn intrinsic_tag(op: Intrinsic) -> u8 {
    match op {
        Intrinsic::Sqrt => 0,
        Intrinsic::Abs => 1,
        Intrinsic::Floor => 2,
        Intrinsic::Cos => 3,
        Intrinsic::Sin => 4,
        Intrinsic::Respond => 5,
    }
}

fn intrinsic_from(tag: u8) -> Option<Intrinsic> {
    Some(match tag {
        0 => Intrinsic::Sqrt,
        1 => Intrinsic::Abs,
        2 => Intrinsic::Floor,
        3 => Intrinsic::Cos,
        4 => Intrinsic::Sin,
        5 => Intrinsic::Respond,
        _ => return None,
    })
}

fn encode_jump_edge(out: &mut Vec<u8>, e: &JumpEdge) {
    put_u32(out, e.pc);
    put_u32(out, e.block);
}

fn decode_jump_edge(r: &mut Reader<'_>) -> Option<JumpEdge> {
    Some(JumpEdge {
        pc: r.u32()?,
        block: r.u32()?,
    })
}

fn encode_lowered_instr(out: &mut Vec<u8>, ins: &LoweredInstr) {
    match ins {
        LoweredInstr::ConstInt(d, v) => {
            out.push(0);
            put_local(out, *d);
            put_u64(out, *v as u64);
        }
        LoweredInstr::ConstDouble(d, v) => {
            out.push(1);
            put_local(out, *d);
            put_u64(out, v.to_bits());
        }
        LoweredInstr::ConstBool(d, v) => {
            out.push(2);
            put_local(out, *d);
            out.push(u8::from(*v));
        }
        LoweredInstr::ConstStr(d, s) => {
            out.push(3);
            put_local(out, *d);
            put_u32(out, *s);
        }
        LoweredInstr::ConstNull(d) => {
            out.push(4);
            put_local(out, *d);
        }
        LoweredInstr::Move(d, s) => {
            out.push(5);
            put_local(out, *d);
            put_local(out, *s);
        }
        LoweredInstr::Bin(op, d, a, b) => {
            out.push(6);
            out.push(bin_op_tag(*op));
            put_local(out, *d);
            put_local(out, *a);
            put_local(out, *b);
        }
        LoweredInstr::Un(op, d, a) => {
            out.push(7);
            out.push(un_op_tag(*op));
            put_local(out, *d);
            put_local(out, *a);
        }
        LoweredInstr::New(d, c) => {
            out.push(8);
            put_local(out, *d);
            put_u32(out, c.0);
        }
        LoweredInstr::NewArray(d, elem, len) => {
            out.push(9);
            put_local(out, *d);
            encode_type_ref(out, elem);
            put_local(out, *len);
        }
        LoweredInstr::GetField(d, o, f) => {
            out.push(10);
            put_local(out, *d);
            put_local(out, *o);
            put_u32(out, f.0);
        }
        LoweredInstr::PutField(o, f, s) => {
            out.push(11);
            put_local(out, *o);
            put_u32(out, f.0);
            put_local(out, *s);
        }
        LoweredInstr::GetStatic(d, f) => {
            out.push(12);
            put_local(out, *d);
            put_u32(out, f.0);
        }
        LoweredInstr::PutStatic(f, s) => {
            out.push(13);
            put_u32(out, f.0);
            put_local(out, *s);
        }
        LoweredInstr::ArrayGet(d, a, i) => {
            out.push(14);
            put_local(out, *d);
            put_local(out, *a);
            put_local(out, *i);
        }
        LoweredInstr::ArraySet(a, i, s) => {
            out.push(15);
            put_local(out, *a);
            put_local(out, *i);
            put_local(out, *s);
        }
        LoweredInstr::ArrayLen(d, a) => {
            out.push(16);
            put_local(out, *d);
            put_local(out, *a);
        }
        LoweredInstr::StrLen(d, s) => {
            out.push(17);
            put_local(out, *d);
            put_local(out, *s);
        }
        LoweredInstr::StrCharAt(d, s, i) => {
            out.push(18);
            put_local(out, *d);
            put_local(out, *s);
            put_local(out, *i);
        }
        LoweredInstr::StrConcat(d, a, b) => {
            out.push(19);
            put_local(out, *d);
            put_local(out, *a);
            put_local(out, *b);
        }
        LoweredInstr::Call {
            dst,
            target,
            args,
            site_block,
            site_instr,
        } => {
            out.push(20);
            encode_opt_local(out, dst);
            match target {
                LoweredCallee::Static(m) => {
                    out.push(0);
                    put_u32(out, m.0);
                }
                LoweredCallee::Virtual(s) => {
                    out.push(1);
                    put_u32(out, s.0);
                }
            }
            encode_locals(out, args);
            put_u32(out, *site_block);
            put_u32(out, *site_instr);
        }
        LoweredInstr::Intrinsic { dst, op, args } => {
            out.push(21);
            encode_opt_local(out, dst);
            out.push(intrinsic_tag(*op));
            encode_locals(out, args);
        }
        LoweredInstr::Spawn { method, args } => {
            out.push(22);
            put_u32(out, method.0);
            encode_locals(out, args);
        }
        LoweredInstr::Ret(v) => {
            out.push(23);
            encode_opt_local(out, v);
        }
        LoweredInstr::Jump(e) => {
            out.push(24);
            encode_jump_edge(out, e);
        }
        LoweredInstr::Br {
            cond,
            then_e,
            else_e,
        } => {
            out.push(25);
            put_local(out, *cond);
            encode_jump_edge(out, then_e);
            encode_jump_edge(out, else_e);
        }
    }
}

fn decode_lowered_instr(r: &mut Reader<'_>) -> Option<LoweredInstr> {
    Some(match r.u8()? {
        0 => LoweredInstr::ConstInt(decode_local(r)?, r.i64()?),
        1 => LoweredInstr::ConstDouble(decode_local(r)?, r.f64()?),
        2 => {
            let d = decode_local(r)?;
            match r.u8()? {
                0 => LoweredInstr::ConstBool(d, false),
                1 => LoweredInstr::ConstBool(d, true),
                _ => return None,
            }
        }
        3 => LoweredInstr::ConstStr(decode_local(r)?, r.u32()?),
        4 => LoweredInstr::ConstNull(decode_local(r)?),
        5 => LoweredInstr::Move(decode_local(r)?, decode_local(r)?),
        6 => LoweredInstr::Bin(
            bin_op_from(r.u8()?)?,
            decode_local(r)?,
            decode_local(r)?,
            decode_local(r)?,
        ),
        7 => LoweredInstr::Un(un_op_from(r.u8()?)?, decode_local(r)?, decode_local(r)?),
        8 => LoweredInstr::New(decode_local(r)?, ClassId(r.u32()?)),
        9 => LoweredInstr::NewArray(decode_local(r)?, decode_type_ref(r)?, decode_local(r)?),
        10 => LoweredInstr::GetField(decode_local(r)?, decode_local(r)?, FieldId(r.u32()?)),
        11 => LoweredInstr::PutField(decode_local(r)?, FieldId(r.u32()?), decode_local(r)?),
        12 => LoweredInstr::GetStatic(decode_local(r)?, FieldId(r.u32()?)),
        13 => LoweredInstr::PutStatic(FieldId(r.u32()?), decode_local(r)?),
        14 => LoweredInstr::ArrayGet(decode_local(r)?, decode_local(r)?, decode_local(r)?),
        15 => LoweredInstr::ArraySet(decode_local(r)?, decode_local(r)?, decode_local(r)?),
        16 => LoweredInstr::ArrayLen(decode_local(r)?, decode_local(r)?),
        17 => LoweredInstr::StrLen(decode_local(r)?, decode_local(r)?),
        18 => LoweredInstr::StrCharAt(decode_local(r)?, decode_local(r)?, decode_local(r)?),
        19 => LoweredInstr::StrConcat(decode_local(r)?, decode_local(r)?, decode_local(r)?),
        20 => {
            let dst = decode_opt_local(r)?;
            let target = match r.u8()? {
                0 => LoweredCallee::Static(MethodId(r.u32()?)),
                1 => LoweredCallee::Virtual(SelectorId(r.u32()?)),
                _ => return None,
            };
            let args = decode_locals(r)?;
            LoweredInstr::Call {
                dst,
                target,
                args,
                site_block: r.u32()?,
                site_instr: r.u32()?,
            }
        }
        21 => {
            let dst = decode_opt_local(r)?;
            let op = intrinsic_from(r.u8()?)?;
            LoweredInstr::Intrinsic {
                dst,
                op,
                args: decode_locals(r)?,
            }
        }
        22 => LoweredInstr::Spawn {
            method: MethodId(r.u32()?),
            args: decode_locals(r)?,
        },
        23 => LoweredInstr::Ret(decode_opt_local(r)?),
        24 => LoweredInstr::Jump(decode_jump_edge(r)?),
        25 => LoweredInstr::Br {
            cond: decode_local(r)?,
            then_e: decode_jump_edge(r)?,
            else_e: decode_jump_edge(r)?,
        },
        _ => return None,
    })
}

fn encode_lowered_method(out: &mut Vec<u8>, m: &LoweredMethod) {
    put_u32(out, u32::from(m.n_locals));
    encode_u32_seq(out, m.block_start.iter().copied());
    put_u32(out, m.code.len() as u32);
    for ins in &m.code {
        encode_lowered_instr(out, ins);
    }
}

fn decode_lowered_method(r: &mut Reader<'_>) -> Option<LoweredMethod> {
    let n_locals = u16::try_from(r.u32()?).ok()?;
    let block_start = decode_u32_seq(r)?;
    let n_code = r.u32()? as usize;
    let mut code = Vec::with_capacity(cap_alloc(n_code, r, 2));
    for _ in 0..n_code {
        code.push(decode_lowered_instr(r)?);
    }
    Some(LoweredMethod {
        code,
        block_start,
        n_locals,
    })
}

fn encode_lowered_paths(out: &mut Vec<u8>, p: &LoweredPaths) {
    let (block_head, edges, n_blocks) = p.raw_parts();
    encode_u32_seq(out, block_head.iter().copied());
    put_u32(out, n_blocks);
    put_u32(out, edges.len() as u32);
    for e in edges {
        out.push(u8::from(e.cut));
        put_u64(out, e.inc);
    }
}

fn decode_lowered_paths(r: &mut Reader<'_>) -> Option<LoweredPaths> {
    let block_head = decode_u32_seq(r)?;
    let n_blocks = r.u32()?;
    let n_edges = r.u32()? as usize;
    let mut edges = Vec::with_capacity(cap_alloc(n_edges, r, 9));
    for _ in 0..n_edges {
        let cut = match r.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        edges.push(PathEdge { cut, inc: r.u64()? });
    }
    LoweredPaths::from_raw(block_head, edges, n_blocks)
}

impl DiskCodec for LoweredShard {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.cu);
        put_u32(out, self.methods.len() as u32);
        for (mi, m) in &self.methods {
            put_u32(out, *mi);
            encode_lowered_method(out, m);
        }
        put_u32(out, self.paths.len() as u32);
        for (mi, p) in &self.paths {
            put_u32(out, *mi);
            encode_lowered_paths(out, p);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let cu = r.u32()?;
        let n_methods = r.u32()? as usize;
        let mut methods = Vec::with_capacity(cap_alloc(n_methods, r, 12));
        for _ in 0..n_methods {
            let mi = r.u32()?;
            methods.push((mi, decode_lowered_method(r)?));
        }
        let n_paths = r.u32()? as usize;
        let mut paths = Vec::with_capacity(cap_alloc(n_paths, r, 16));
        for _ in 0..n_paths {
            let mi = r.u32()?;
            paths.push((mi, decode_lowered_paths(r)?));
        }
        Some(LoweredShard { cu, methods, paths })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuildOptions, Pipeline};
    use nimage_ir::{ProgramBuilder, TypeRef};
    use nimage_vm::StopWhen;

    fn tiny_program() -> nimage_ir::Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.Main", None);
        let fld = pb.add_static_field(c, "S", TypeRef::array_of(TypeRef::Int));
        let cl = pb.declare_clinit(c);
        let mut f = pb.body(cl);
        let n = f.iconst(64);
        let a = f.new_array(TypeRef::Int, n);
        f.put_static(fld, a);
        f.ret(None);
        pb.finish_body(cl, f);
        let helper = pb.declare_static(c, "helper", &[], Some(TypeRef::Int));
        let mut f = pb.body(helper);
        let arr = f.get_static(fld);
        let z = f.iconst(0);
        let v = f.array_get(arr, z);
        f.ret(Some(v));
        pb.finish_body(helper, f);
        let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
        let mut f = pb.body(main);
        let v = f.call_static(helper, &[], true).unwrap();
        f.ret(Some(v));
        pb.finish_body(main, f);
        pb.set_entry(main);
        pb.build().unwrap()
    }

    #[test]
    fn lowered_shards_roundtrip_and_install() {
        let program = tiny_program();
        let pipeline = Pipeline::new(&program, BuildOptions::default());
        let reach = pipeline.analyze_stage();
        // FULL instrumentation so the shard also carries path tables.
        let compiled = pipeline.compile_stage(reach, InstrumentConfig::FULL, None);
        let source = nimage_vm::LoweredProgram::new(&program, &compiled, 1 << 16);
        let target = nimage_vm::LoweredProgram::new(&program, &compiled, 1 << 16);
        for cu in &compiled.cus {
            let shard = source.extract_shard(&program, &compiled, cu.id);
            let mut bytes = vec![];
            shard.encode(&mut bytes);
            let decoded = LoweredShard::decode(&mut Reader::new(&bytes)).expect("shard roundtrips");
            assert_eq!(format!("{shard:?}"), format!("{decoded:?}"));
            assert!(target.install_shard(&compiled, &decoded));
            assert!(target.is_cu_lowered(cu.id));
        }
        // Installed bodies are bit-identical to locally lowered ones.
        for cu in &compiled.cus {
            for node in &compiled.cu(cu.id).nodes {
                assert_eq!(
                    format!("{:?}", source.method(node.method)),
                    format!("{:?}", target.method(node.method)),
                );
            }
        }
        assert_eq!(target.shards_lowered_lazy(), 0);
        assert_eq!(target.shards_lowered_eager(), compiled.cus.len() as u64);
        // A shard that does not cover its CU's inline tree is rejected.
        let mut truncated = source.extract_shard(&program, &compiled, compiled.cus[0].id);
        truncated.methods.clear();
        truncated.paths.clear();
        let fresh = nimage_vm::LoweredProgram::new(&program, &compiled, 1 << 16);
        assert!(!fresh.install_shard(&compiled, &truncated));
        assert!(!fresh.is_cu_lowered(compiled.cus[0].id));
    }

    #[test]
    fn profiles_roundtrip_through_directory() {
        let program = tiny_program();
        let pipeline = Pipeline::new(&program, BuildOptions::default());
        let artifacts = pipeline.profiling_run(StopWhen::Exit).unwrap();
        let dir = std::env::temp_dir().join(format!("nimage-prof-{}", std::process::id()));
        save_profiles(&artifacts, &dir).unwrap();
        let loaded = load_profiles(&dir).unwrap();
        assert_eq!(loaded.cu_profile, artifacts.cu_profile);
        assert_eq!(loaded.method_profile, artifacts.method_profile);
        assert_eq!(loaded.heap_profiles, artifacts.heap_profiles);
        assert_eq!(loaded.call_counts, artifacts.call_counts);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loading_missing_directory_yields_empty_profiles() {
        let loaded = load_profiles(Path::new("/nonexistent/nimage-profiles")).unwrap();
        assert!(loaded.cu_profile.sigs.is_empty());
        assert!(loaded.call_counts.is_empty());
    }

    #[test]
    fn loaded_profiles_drive_an_optimizing_build() {
        let program = tiny_program();
        let pipeline = Pipeline::new(&program, BuildOptions::default());
        let artifacts = pipeline.profiling_run(StopWhen::Exit).unwrap();
        let dir = std::env::temp_dir().join(format!("nimage-prof2-{}", std::process::id()));
        save_profiles(&artifacts, &dir).unwrap();
        let loaded = load_profiles(&dir).unwrap();
        let rehydrated = loaded.into_artifacts(artifacts.instrumented_report.clone());
        let base = pipeline.baseline(&rehydrated, StopWhen::Exit).unwrap();
        let eval = pipeline
            .evaluate_strategy(
                crate::EvalInputs {
                    artifacts: &rehydrated,
                    baseline: &base,
                },
                crate::Strategy::Cu,
                StopWhen::Exit,
            )
            .unwrap();
        assert_eq!(eval.baseline.entry_return, eval.optimized.entry_return);
        std::fs::remove_dir_all(&dir).ok();
    }
}
