//! Persistence of profiling artifacts.
//!
//! The paper's post-processing framework emits "a CSV file that is used by
//! Native Image" per ordering analysis (Sec. 6.2). This module writes and
//! reads that profile directory, so profiling and optimizing builds can run
//! in separate processes (as they do in the real toolchain):
//!
//! ```text
//! <dir>/cu_order.csv          one CU-root signature per line
//! <dir>/method_order.csv      one method signature per line
//! <dir>/heap_incremental.csv  one 64-bit hex id per line
//! <dir>/heap_structural.csv
//! <dir>/heap_path.csv         (heap_path_salted.csv with salted ids)
//! <dir>/call_counts.csv       signature,count
//! ```

use std::collections::HashMap;
use std::io;
use std::path::Path;

use nimage_compiler::CallCountProfile;
use nimage_order::{CodeOrderProfile, HeapOrderProfile, HeapStrategy};

use crate::ProfiledArtifacts;

fn heap_file_name(strategy: HeapStrategy) -> &'static str {
    match strategy {
        HeapStrategy::IncrementalId => "heap_incremental.csv",
        HeapStrategy::StructuralHash { .. } => "heap_structural.csv",
        HeapStrategy::HeapPath => "heap_path.csv",
        HeapStrategy::HeapPathSalted => "heap_path_salted.csv",
    }
}

fn code_csv(profile: &CodeOrderProfile) -> String {
    let mut s = String::new();
    for sig in &profile.sigs {
        s.push_str(sig);
        s.push('\n');
    }
    s
}

fn heap_csv(profile: &HeapOrderProfile) -> String {
    let mut s = String::new();
    for id in &profile.ids {
        s.push_str(&format!("{id:016x}\n"));
    }
    s
}

/// Writes the ordering profiles and PGO call counts of `artifacts` into
/// `dir` (created if missing).
///
/// # Errors
/// Propagates filesystem errors.
pub fn save_profiles(artifacts: &ProfiledArtifacts, dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("cu_order.csv"), code_csv(&artifacts.cu_profile))?;
    std::fs::write(
        dir.join("method_order.csv"),
        code_csv(&artifacts.method_profile),
    )?;
    for (&strategy, profile) in &artifacts.heap_profiles {
        std::fs::write(dir.join(heap_file_name(strategy)), heap_csv(profile))?;
    }
    std::fs::write(dir.join("call_counts.csv"), artifacts.call_counts.to_csv())?;
    Ok(())
}

/// The profiles read back from a directory written by [`save_profiles`].
///
/// This intentionally mirrors [`ProfiledArtifacts`] minus the run report
/// (which is not persisted — the optimizing build does not need it).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SavedProfiles {
    /// *cu ordering* profile.
    pub cu_profile: CodeOrderProfile,
    /// *method ordering* profile.
    pub method_profile: CodeOrderProfile,
    /// Heap-ordering profiles per identity scheme.
    pub heap_profiles: HashMap<HeapStrategy, HeapOrderProfile>,
    /// PGO call counts.
    pub call_counts: CallCountProfile,
}

/// Reads a profile directory written by [`save_profiles`]. Missing files
/// yield empty profiles (a build can proceed with partial profiles, as the
/// real toolchain does).
///
/// # Errors
/// Propagates filesystem errors other than "file not found".
pub fn load_profiles(dir: &Path) -> io::Result<SavedProfiles> {
    let read = |name: &str| -> io::Result<String> {
        match std::fs::read_to_string(dir.join(name)) {
            Ok(s) => Ok(s),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(String::new()),
            Err(e) => Err(e),
        }
    };
    let read_opt = |name: &str| -> io::Result<Option<String>> {
        match std::fs::read_to_string(dir.join(name)) {
            Ok(s) => Ok(Some(s)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    };
    let mut heap_profiles = HashMap::new();
    for strategy in [
        HeapStrategy::IncrementalId,
        HeapStrategy::structural_default(),
    ] {
        heap_profiles.insert(
            strategy,
            HeapOrderProfile::from_csv(&read(heap_file_name(strategy))?),
        );
    }
    // The path-based profile was written under whichever variant the
    // profiling build used (plain or salted); load whichever file exists
    // so the round-trip reproduces the saved map exactly.
    let mut any_path_file = false;
    for strategy in [HeapStrategy::HeapPath, HeapStrategy::HeapPathSalted] {
        if let Some(s) = read_opt(heap_file_name(strategy))? {
            heap_profiles.insert(strategy, HeapOrderProfile::from_csv(&s));
            any_path_file = true;
        }
    }
    if !any_path_file {
        heap_profiles.insert(HeapStrategy::HeapPath, HeapOrderProfile::default());
    }
    Ok(SavedProfiles {
        cu_profile: CodeOrderProfile::from_csv(&read("cu_order.csv")?),
        method_profile: CodeOrderProfile::from_csv(&read("method_order.csv")?),
        heap_profiles,
        call_counts: CallCountProfile::from_csv(&read("call_counts.csv")?),
    })
}

impl SavedProfiles {
    /// Rehydrates pipeline artifacts from saved profiles; `report` is the
    /// instrumented run report when available (pass a fresh one when
    /// resuming in-process, or synthesize via a new profiling run).
    pub fn into_artifacts(self, report: nimage_vm::RunReport) -> ProfiledArtifacts {
        ProfiledArtifacts {
            call_counts: self.call_counts,
            cu_profile: self.cu_profile,
            method_profile: self.method_profile,
            heap_profiles: self.heap_profiles,
            native_pages: report.native_touch_pages.clone(),
            instrumented_report: report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuildOptions, Pipeline};
    use nimage_ir::{ProgramBuilder, TypeRef};
    use nimage_vm::StopWhen;

    fn tiny_program() -> nimage_ir::Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.Main", None);
        let fld = pb.add_static_field(c, "S", TypeRef::array_of(TypeRef::Int));
        let cl = pb.declare_clinit(c);
        let mut f = pb.body(cl);
        let n = f.iconst(64);
        let a = f.new_array(TypeRef::Int, n);
        f.put_static(fld, a);
        f.ret(None);
        pb.finish_body(cl, f);
        let helper = pb.declare_static(c, "helper", &[], Some(TypeRef::Int));
        let mut f = pb.body(helper);
        let arr = f.get_static(fld);
        let z = f.iconst(0);
        let v = f.array_get(arr, z);
        f.ret(Some(v));
        pb.finish_body(helper, f);
        let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
        let mut f = pb.body(main);
        let v = f.call_static(helper, &[], true).unwrap();
        f.ret(Some(v));
        pb.finish_body(main, f);
        pb.set_entry(main);
        pb.build().unwrap()
    }

    #[test]
    fn profiles_roundtrip_through_directory() {
        let program = tiny_program();
        let pipeline = Pipeline::new(&program, BuildOptions::default());
        let artifacts = pipeline.profiling_run(StopWhen::Exit).unwrap();
        let dir = std::env::temp_dir().join(format!("nimage-prof-{}", std::process::id()));
        save_profiles(&artifacts, &dir).unwrap();
        let loaded = load_profiles(&dir).unwrap();
        assert_eq!(loaded.cu_profile, artifacts.cu_profile);
        assert_eq!(loaded.method_profile, artifacts.method_profile);
        assert_eq!(loaded.heap_profiles, artifacts.heap_profiles);
        assert_eq!(loaded.call_counts, artifacts.call_counts);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loading_missing_directory_yields_empty_profiles() {
        let loaded = load_profiles(Path::new("/nonexistent/nimage-profiles")).unwrap();
        assert!(loaded.cu_profile.sigs.is_empty());
        assert!(loaded.call_counts.is_empty());
    }

    #[test]
    fn loaded_profiles_drive_an_optimizing_build() {
        let program = tiny_program();
        let pipeline = Pipeline::new(&program, BuildOptions::default());
        let artifacts = pipeline.profiling_run(StopWhen::Exit).unwrap();
        let dir = std::env::temp_dir().join(format!("nimage-prof2-{}", std::process::id()));
        save_profiles(&artifacts, &dir).unwrap();
        let loaded = load_profiles(&dir).unwrap();
        let rehydrated = loaded.into_artifacts(artifacts.instrumented_report.clone());
        let base = pipeline.baseline(&rehydrated, StopWhen::Exit).unwrap();
        let eval = pipeline
            .evaluate_with(&rehydrated, &base, crate::Strategy::Cu, StopWhen::Exit)
            .unwrap();
        assert_eq!(eval.baseline.entry_return, eval.optimized.entry_return);
        std::fs::remove_dir_all(&dir).ok();
    }
}
