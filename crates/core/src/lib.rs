//! # nimage-core
//!
//! The end-to-end profile-guided binary-reordering pipeline of the paper's
//! Fig. 1, as a library facade over the nimage workspace:
//!
//! 1. **Profiling build** — compile with instrumentation (which perturbs
//!    inlining!), snapshot the heap, build the image;
//! 2. **Profiling run** — execute the instrumented image; the VM emits
//!    CU-entry / method-entry / path records into per-thread buffers;
//! 3. **Post-processing** — replay the trace through the ordering analyses,
//!    producing the code-ordering and heap-ordering CSV profiles (the heap
//!    profiles carry strategy-specific 64-bit identities computed on the
//!    *instrumented* build's snapshot);
//! 4. **Optimizing build** — recompile with the PGO call counts (different
//!    inlining again), snapshot with optimized-build divergence (parallel
//!    initializer order, PEA folding), recompute strategy identities on the
//!    *new* snapshot, match them against the profile, and lay out the image
//!    with the reordered CUs and objects;
//! 5. **Measurement** — run the baseline (same optimized build, default
//!    layout) and the reordered image, comparing page faults per section
//!    and simulated execution time.
//!
//! ```no_run
//! use nimage_core::{Pipeline, BuildOptions, Strategy};
//! use nimage_vm::StopWhen;
//! # fn program() -> nimage_ir::Program { unimplemented!() }
//!
//! # fn main() -> Result<(), nimage_core::PipelineError> {
//! let program = program();
//! let pipeline = Pipeline::new(&program, BuildOptions::default());
//! let eval = pipeline.evaluate(Strategy::CuPlusHeapPath, StopWhen::Exit)?;
//! println!("text-fault reduction: {:.2}x", eval.text_fault_reduction());
//! println!("speedup: {:.2}x", eval.speedup(&nimage_vm::CostModel::ssd()));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod diskcache;
pub mod engine;
mod persist;
pub mod report;

pub use cache::{ArtifactCache, CacheKey, Memo, MemoStats};
pub use diskcache::{
    DiskCacheOptions, DiskCacheStats, DiskCodec, DiskStore, DiskUsage, GcReport,
    DISK_FORMAT_VERSION,
};
pub use engine::{
    BuildParts, BuildRequest, Engine, EngineOptions, EngineStats, MatrixCell, ShardStats,
    StageTimes, TraceOptions, WorkloadSpec,
};
pub use nimage_trace::{MetricsSnapshot, TraceSummary, Tracer};
pub use persist::{load_profiles, save_profiles, SavedProfiles};
pub use report::{CellReport, EvalOutcome, EvalRequest, Report, StageReport, REPORT_VERSION};

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use nimage_analysis::{analyze, AnalysisConfig, Reachability};
use nimage_compiler::{
    compile_with_threads, CallCountProfile, CompiledProgram, CuId, InlineConfig, InstrumentConfig,
};
use nimage_heap::{snapshot_with_threads, ClinitError, HeapBuildConfig, HeapSnapshot, ObjId};
use nimage_image::{BinaryImage, ImageOptions};
use nimage_ir::Program;
pub use nimage_order::PredictedFaults;
use nimage_order::{
    assign_ids, optimize_layout, order_cus, order_cus_split, order_objects,
    order_objects_split_spans, replay_first_access, CodeGranularity, CodeInput, CodeOrderProfile,
    CostParams, HeapInput, HeapOrderProfile, HeapStrategy, ReplayError,
};
pub use nimage_par::Parallelism;
use nimage_verify::{errors_of, irlint, pipeline as checks, Diagnostic};
use nimage_vm::{
    CostModel, HeapTemplate, LoweredProgram, RunReport, StopWhen, VmBuilder, VmConfig, VmError,
};

/// An ordering strategy of the paper (Sec. 4, Sec. 5, and the combined
/// `cu+heap path` of Sec. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Code ordering by CU-entry trace (Sec. 4.1).
    Cu,
    /// Code ordering by method-entry trace (Sec. 4.2).
    Method,
    /// Heap ordering with incremental IDs (Sec. 5.1).
    IncrementalId,
    /// Heap ordering with the structural hash, `MAX_DEPTH = 2` (Sec. 5.2).
    StructuralHash,
    /// Heap ordering with heap-path hashes (Sec. 5.3).
    HeapPath,
    /// The combination the paper reports end-to-end numbers for: *cu*
    /// code ordering plus *heap path* object ordering.
    CuPlusHeapPath,
    /// Beyond the paper: *cu* first-touch ordering refined by the
    /// fault-cost-aware layout optimizer (`nimage_order::optimize_layout`)
    /// — hot/cold splitting of the native tail plus fault-around-window
    /// clustering of the hot CU prefix, chosen by candidate search under
    /// the paging cost model.
    CuClustered,
    /// [`Strategy::CuClustered`] code ordering plus *heap path* object
    /// ordering, both refined by the layout optimizer.
    CuClusteredPlusHeapPath,
}

impl Strategy {
    /// All strategies: the paper's figures' order, then the clustered
    /// extensions.
    pub fn all() -> [Strategy; 8] {
        [
            Strategy::Cu,
            Strategy::Method,
            Strategy::IncrementalId,
            Strategy::StructuralHash,
            Strategy::HeapPath,
            Strategy::CuPlusHeapPath,
            Strategy::CuClustered,
            Strategy::CuClusteredPlusHeapPath,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Cu => "cu",
            Strategy::Method => "method",
            Strategy::IncrementalId => "incremental id",
            Strategy::StructuralHash => "structural hash",
            Strategy::HeapPath => "heap path",
            Strategy::CuPlusHeapPath => "cu+heap path",
            Strategy::CuClustered => "cu clustered",
            Strategy::CuClusteredPlusHeapPath => "cu clustered+heap path",
        }
    }

    /// Whether this strategy reorders code.
    pub fn orders_code(&self) -> bool {
        matches!(
            self,
            Strategy::Cu
                | Strategy::Method
                | Strategy::CuPlusHeapPath
                | Strategy::CuClustered
                | Strategy::CuClusteredPlusHeapPath
        )
    }

    /// Whether this strategy reorders the heap snapshot.
    pub fn orders_heap(&self) -> bool {
        matches!(
            self,
            Strategy::IncrementalId
                | Strategy::StructuralHash
                | Strategy::HeapPath
                | Strategy::CuPlusHeapPath
                | Strategy::CuClusteredPlusHeapPath
        )
    }

    /// The heap identity scheme the strategy uses, if it orders the heap.
    pub fn heap_strategy(&self) -> Option<HeapStrategy> {
        match self {
            Strategy::IncrementalId => Some(HeapStrategy::IncrementalId),
            Strategy::StructuralHash => Some(HeapStrategy::structural_default()),
            Strategy::HeapPath | Strategy::CuPlusHeapPath | Strategy::CuClusteredPlusHeapPath => {
                Some(HeapStrategy::HeapPath)
            }
            _ => None,
        }
    }

    /// Whether this strategy runs the fault-cost-aware layout optimizer
    /// over its first-touch orders (and so also hot/cold-splits the
    /// native tail).
    pub fn clustered(&self) -> bool {
        matches!(
            self,
            Strategy::CuClustered | Strategy::CuClusteredPlusHeapPath
        )
    }

    /// The first-touch strategy a clustered strategy refines (itself for
    /// the others) — the comparison partner for the bench fault gate.
    pub fn first_touch_equivalent(&self) -> Strategy {
        match self {
            Strategy::CuClustered => Strategy::Cu,
            Strategy::CuClusteredPlusHeapPath => Strategy::CuPlusHeapPath,
            s => *s,
        }
    }
}

/// Configuration of every pipeline stage.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Reachability analysis knobs.
    pub analysis: AnalysisConfig,
    /// Inliner knobs (shared by all builds; effective sizes differ through
    /// instrumentation and PGO).
    pub inline: InlineConfig,
    /// Image layout knobs.
    pub image: ImageOptions,
    /// Heap-build configuration of the profiling (instrumented) build.
    pub heap_instrumented: HeapBuildConfig,
    /// Heap-build configuration of the optimized build — different
    /// initializer seed and PEA folding enabled, modelling the cross-build
    /// divergence of Sec. 2.
    pub heap_optimized: HeapBuildConfig,
    /// VM configuration (paging, probe costs, dump mode).
    pub vm: VmConfig,
    /// Extension beyond the paper (its Appendix A future work): also
    /// reorder the pages of the statically linked native tail using the
    /// instrumented run's first-touch order. Off by default, so the
    /// headline experiments match the paper's setup.
    pub reorder_native: bool,
    /// Run the `nimage-verify` checkers on every build stage: IR lints and
    /// vtable soundness before building, layout invariants on every built
    /// image, trace well-formedness on every profiling run. Any
    /// error-severity finding aborts the pipeline with
    /// [`PipelineError::Verify`].
    pub verify: bool,
    /// Intra-stage worker-thread count for the parallel stages (compile,
    /// heap traversal, trace post-processing). Every parallel path merges
    /// in a thread-count-independent order, so the produced artifacts are
    /// bit-identical to the serial ones — and [`Parallelism`]'s `Debug`
    /// rendering is constant, so the thread count never enters cache
    /// fingerprints.
    pub threads: Parallelism,
    /// Upgrade the *heap path* identity scheme to its per-type salted
    /// variant ([`HeapStrategy::HeapPathSalted`]), which disambiguates
    /// colliding root-to-object paths with per-`(type, path)` occurrence
    /// counters. Off by default so headline numbers match the paper's
    /// Algorithm 3.
    pub salted_heap_ids: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            analysis: AnalysisConfig::default(),
            inline: InlineConfig::default(),
            image: ImageOptions::default(),
            heap_instrumented: HeapBuildConfig {
                clinit_seed: 1,
                ..HeapBuildConfig::default()
            },
            heap_optimized: HeapBuildConfig {
                clinit_seed: 2,
                pea_fold: true,
                pea_seed: 3,
                ..HeapBuildConfig::default()
            },
            vm: VmConfig::default(),
            reorder_native: false,
            verify: false,
            threads: Parallelism::serial(),
            salted_heap_ids: false,
        }
    }
}

impl BuildOptions {
    /// The heap identity scheme `strategy` uses under these options:
    /// [`Strategy::heap_strategy`], with *heap path* upgraded to the salted
    /// variant when [`BuildOptions::salted_heap_ids`] is set.
    pub fn heap_strategy_for(&self, strategy: Strategy) -> Option<HeapStrategy> {
        strategy.heap_strategy().map(|hs| match hs {
            HeapStrategy::HeapPath if self.salted_heap_ids => HeapStrategy::HeapPathSalted,
            other => other,
        })
    }

    /// The heap identity schemes post-processing produces profiles for
    /// under these options, in the paper's order.
    pub fn heap_strategies(&self) -> [HeapStrategy; 3] {
        [
            HeapStrategy::IncrementalId,
            HeapStrategy::structural_default(),
            if self.salted_heap_ids {
                HeapStrategy::HeapPathSalted
            } else {
                HeapStrategy::HeapPath
            },
        ]
    }
}

/// Everything needed to execute one build.
#[derive(Debug)]
pub struct BuiltImage {
    /// The compiled program (CUs).
    pub compiled: CompiledProgram,
    /// The heap snapshot.
    pub snapshot: HeapSnapshot,
    /// The laid-out binary image.
    pub image: BinaryImage,
}

/// The profiles produced by the profiling run (step 3 of Fig. 1).
#[derive(Debug)]
pub struct ProfiledArtifacts {
    /// PGO call counts (consumed by the optimizing build's inliner).
    pub call_counts: CallCountProfile,
    /// *cu ordering* profile: CU-root signatures in first-entry order.
    pub cu_profile: CodeOrderProfile,
    /// *method ordering* profile: method signatures in first-entry order.
    pub method_profile: CodeOrderProfile,
    /// Heap-ordering profiles, one per identity scheme.
    pub heap_profiles: HashMap<HeapStrategy, HeapOrderProfile>,
    /// Native-tail pages in first-touch order (the extension profile).
    pub native_pages: Vec<u32>,
    /// The instrumented run's report (for overhead accounting).
    pub instrumented_report: RunReport,
}

/// The ordering stage's complete output: placement orders for both
/// sections plus — for the clustered strategies — the native-tail page
/// permutation and the cost model's predicted fault counts.
///
/// `LayoutOrders::default()` means "no reordering anywhere": it builds the
/// default layout, exactly like the old `(None, None)` order pair.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LayoutOrders {
    /// CU placement order for `.text` (`None` = compiler order).
    pub cu_order: Option<Vec<CuId>>,
    /// Object placement order for `.svm_heap` (`None` = snapshot order).
    pub object_order: Option<Vec<ObjId>>,
    /// Native-tail page permutation chosen by the layout optimizer
    /// (`position[logical] = physical`). `None` leaves the tail to the
    /// [`BuildOptions::reorder_native`] profile path.
    pub native_order: Option<Vec<u32>>,
    /// The optimizer's predicted faults (clustered strategies only).
    pub predicted: Option<LayoutPrediction>,
}

/// Predicted major-fault counts of the layout optimizer's candidate search:
/// the plain first-touch placement it started from and the placement it
/// chose. `optimized.total() <= first_touch.total()` by construction
/// (first-touch is candidate 0 of the search).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutPrediction {
    /// Predicted faults of the first-touch placement (candidate 0).
    pub first_touch: PredictedFaults,
    /// Predicted faults of the chosen placement.
    pub optimized: PredictedFaults,
}

/// A baseline-vs-strategy measurement pair.
#[derive(Debug)]
pub struct Evaluation {
    /// The strategy evaluated.
    pub strategy: Strategy,
    /// Run of the optimized build with default layout.
    pub baseline: RunReport,
    /// Run of the optimized build with the strategy's layout.
    pub optimized: RunReport,
}

fn ratio(base: u64, opt: u64) -> f64 {
    if opt == 0 {
        if base == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        base as f64 / opt as f64
    }
}

impl Evaluation {
    /// `.text` page-fault reduction factor (baseline / optimized; > 1 is
    /// better — Fig. 2/3's metric for code strategies).
    pub fn text_fault_reduction(&self) -> f64 {
        ratio(self.baseline.faults.text, self.optimized.faults.text)
    }

    /// `.svm_heap` page-fault reduction factor (Fig. 2/3's metric for heap
    /// strategies).
    pub fn heap_fault_reduction(&self) -> f64 {
        ratio(
            self.baseline.faults.svm_heap,
            self.optimized.faults.svm_heap,
        )
    }

    /// Combined fault reduction over both sections (the `cu+heap path`
    /// metric).
    pub fn total_fault_reduction(&self) -> f64 {
        ratio(self.baseline.faults.total(), self.optimized.faults.total())
    }

    /// The reduction factor the paper reports for this strategy: `.text`
    /// faults for code strategies, `.svm_heap` faults for heap strategies,
    /// both for the combined strategy.
    pub fn reported_fault_reduction(&self) -> f64 {
        match self.strategy {
            Strategy::Cu | Strategy::Method | Strategy::CuClustered => self.text_fault_reduction(),
            Strategy::IncrementalId | Strategy::StructuralHash | Strategy::HeapPath => {
                self.heap_fault_reduction()
            }
            Strategy::CuPlusHeapPath | Strategy::CuClusteredPlusHeapPath => {
                self.total_fault_reduction()
            }
        }
    }

    /// Execution-time speedup under a cost model (Fig. 4/5). Uses
    /// time-to-first-response when the runs observed one (microservices),
    /// end-to-end time otherwise (AWFY).
    pub fn speedup(&self, cm: &CostModel) -> f64 {
        let time = |r: &RunReport| {
            r.time_to_first_response_ns(cm)
                .unwrap_or_else(|| r.time_ns(cm))
        };
        time(&self.baseline) / time(&self.optimized)
    }
}

/// The strategy-independent half of an evaluation: the PGO-optimized build
/// with the default layout, and its measured run.
///
/// Every strategy of one workload compares against the same baseline, so
/// callers compute it once (via [`Pipeline::baseline`]) and lend it to each
/// [`Pipeline::evaluate_strategy`] call instead of paying the optimized
/// build and baseline measurement once per strategy.
#[derive(Debug)]
pub struct Baseline {
    /// The optimized build with default layout.
    pub built: BuiltImage,
    /// Its measured run.
    pub report: RunReport,
}

/// A pipeline failure.
#[derive(Debug)]
pub enum PipelineError {
    /// Build-time initializer execution failed.
    Clinit(ClinitError),
    /// The VM hit a runtime error.
    Vm(VmError),
    /// Trace post-processing failed.
    Replay(ReplayError),
    /// The instrumented run produced no trace.
    NoTrace,
    /// A `nimage-verify` checker found broken invariants (only raised when
    /// [`BuildOptions::verify`] is set).
    Verify(Vec<Diagnostic>),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Clinit(e) => write!(f, "build-time execution failed: {e}"),
            PipelineError::Vm(e) => write!(f, "execution failed: {e}"),
            PipelineError::Replay(e) => write!(f, "trace post-processing failed: {e}"),
            PipelineError::NoTrace => write!(f, "instrumented run produced no trace"),
            PipelineError::Verify(diags) => {
                write!(f, "verification failed with {} finding(s):", diags.len())?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for PipelineError {}

impl From<ClinitError> for PipelineError {
    fn from(e: ClinitError) -> Self {
        PipelineError::Clinit(e)
    }
}
impl From<VmError> for PipelineError {
    fn from(e: VmError) -> Self {
        PipelineError::Vm(e)
    }
}
impl From<ReplayError> for PipelineError {
    fn from(e: ReplayError) -> Self {
        PipelineError::Replay(e)
    }
}

/// Builds the native-tail page permutation from a first-touch profile:
/// touched pages move to the front of the tail (in touch order), untouched
/// pages follow in their original order.
fn native_order(touched: &[u32], n_pages: u32) -> Vec<u32> {
    let mut position = vec![u32::MAX; n_pages as usize];
    let mut next = 0u32;
    for &p in touched {
        if (p as usize) < position.len() && position[p as usize] == u32::MAX {
            position[p as usize] = next;
            next += 1;
        }
    }
    for slot in position.iter_mut() {
        if *slot == u32::MAX {
            *slot = next;
            next += 1;
        }
    }
    position
}

/// The parts of one VM run, as a builder: the three mandatory build
/// artifacts plus the optional shared state (heap template, pre-lowered
/// program) and an optional [`Tracer`] for VM-level fault events.
///
/// Replaces the positional `run_parts_shared(compiled, snapshot, image,
/// heap, lowered, stop)` signature, whose two adjacent `Option`s were
/// easy to transpose:
///
/// ```ignore
/// pipeline.run(
///     RunParts::new(&compiled, &snapshot, &image)
///         .heap(Some(template))
///         .lowered(lowered),
///     StopWhen::Exit,
/// )?
/// ```
#[derive(Debug)]
pub struct RunParts<'a> {
    compiled: &'a CompiledProgram,
    snapshot: &'a HeapSnapshot,
    image: &'a BinaryImage,
    heap: Option<Arc<HeapTemplate>>,
    lowered: Option<Arc<LoweredProgram>>,
    tracer: Tracer,
}

impl<'a> RunParts<'a> {
    /// Starts a run description from the three mandatory build artifacts.
    /// No heap template, no shared lowered program, tracing disabled.
    pub fn new(
        compiled: &'a CompiledProgram,
        snapshot: &'a HeapSnapshot,
        image: &'a BinaryImage,
    ) -> Self {
        RunParts {
            compiled,
            snapshot,
            image,
            heap: None,
            lowered: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Shares a pre-materialized heap template: the VM references the
    /// snapshot heap copy-on-write instead of converting it again.
    #[must_use]
    pub fn heap(mut self, heap: Option<Arc<HeapTemplate>>) -> Self {
        self.heap = heap;
        self
    }

    /// Shares a pre-built [`LoweredProgram`]; without one the VM lowers on
    /// construction (and under [`nimage_vm::ExecMode::Legacy`] skips
    /// lowering entirely).
    #[must_use]
    pub fn lowered(mut self, lowered: Option<Arc<LoweredProgram>>) -> Self {
        self.lowered = lowered;
        self
    }

    /// Attaches a tracer for VM-level events (page-fault and shard-fault
    /// instants). The default disabled tracer compiles down to a no-op on
    /// the dispatch path.
    #[must_use]
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }
}

/// The shared inputs every strategy cell of one workload evaluates
/// against: the profiles collected once (steps 1–3 of Fig. 1) and the
/// baseline built and measured once. Borrowed, so one profiling run fans
/// out to all eight [`Strategy`] evaluations.
#[derive(Debug, Clone, Copy)]
pub struct EvalInputs<'a> {
    /// The profiling run's artifacts.
    pub artifacts: &'a ProfiledArtifacts,
    /// The measured PGO-optimized default-layout baseline.
    pub baseline: &'a Baseline,
}

/// The end-to-end pipeline for one program.
#[derive(Debug)]
pub struct Pipeline<'p> {
    program: &'p Program,
    opts: BuildOptions,
}

impl<'p> Pipeline<'p> {
    /// Creates a pipeline.
    pub fn new(program: &'p Program, opts: BuildOptions) -> Self {
        Pipeline { program, opts }
    }

    /// The pipeline's options.
    pub fn options(&self) -> &BuildOptions {
        &self.opts
    }

    fn compile_with(
        &self,
        instr: InstrumentConfig,
        profile: Option<&CallCountProfile>,
    ) -> CompiledProgram {
        self.compile_stage(self.analyze_stage(), instr, profile)
    }

    /// Stage: reachability analysis. Deterministic in the program and
    /// [`AnalysisConfig`], and independent of instrumentation — every build
    /// of the pipeline shares one result.
    pub fn analyze_stage(&self) -> Reachability {
        analyze(self.program, &self.opts.analysis)
    }

    /// Stage: compilation (inlining, instrumentation, PGO). Builds CUs in
    /// parallel waves under [`BuildOptions::threads`]; the merged result is
    /// bit-identical to the serial build (CUs are renumbered in signature
    /// order regardless of completion order).
    pub fn compile_stage(
        &self,
        reach: Reachability,
        instr: InstrumentConfig,
        profile: Option<&CallCountProfile>,
    ) -> CompiledProgram {
        compile_with_threads(
            self.program,
            reach,
            &self.opts.inline,
            instr,
            profile,
            self.opts.threads.effective(),
        )
    }

    /// Stage: build-time initializer execution + heap snapshot under the
    /// given heap-build configuration.
    ///
    /// # Errors
    /// Fails if build-time initializers fail.
    pub fn snapshot_stage(
        &self,
        compiled: &CompiledProgram,
        cfg: &HeapBuildConfig,
    ) -> Result<HeapSnapshot, PipelineError> {
        Ok(snapshot_with_threads(
            self.program,
            compiled,
            cfg,
            self.opts.threads.effective(),
        )?)
    }

    /// Builds the instrumented image (steps 1–2 of Fig. 1's profiling
    /// build).
    ///
    /// # Errors
    /// Fails if build-time initializers fail.
    pub fn build_instrumented(&self, instr: InstrumentConfig) -> Result<BuiltImage, PipelineError> {
        let compiled = self.compile_with(instr, None);
        let snap = self.snapshot_stage(&compiled, &self.opts.heap_instrumented)?;
        let image = self.layout_stage(&compiled, &snap, LayoutOrders::default(), None)?;
        Ok(BuiltImage {
            compiled,
            snapshot: snap,
            image,
        })
    }

    /// Runs an image.
    ///
    /// # Errors
    /// Propagates VM errors.
    pub fn run_image(
        &self,
        built: &BuiltImage,
        stop: StopWhen,
    ) -> Result<RunReport, PipelineError> {
        self.run_parts(&built.compiled, &built.snapshot, &built.image, None, stop)
    }

    /// Runs an image given its parts. With `heap = Some(template)`, the VM
    /// references the pre-materialized snapshot heap copy-on-write instead
    /// of converting the whole snapshot again — the evaluation engine
    /// materializes once per snapshot and shares it across every run.
    ///
    /// # Errors
    /// Propagates VM errors.
    pub fn run_parts(
        &self,
        compiled: &CompiledProgram,
        snapshot: &HeapSnapshot,
        image: &BinaryImage,
        heap: Option<Arc<HeapTemplate>>,
        stop: StopWhen,
    ) -> Result<RunReport, PipelineError> {
        self.run(RunParts::new(compiled, snapshot, image).heap(heap), stop)
    }

    /// Runs an image from a [`RunParts`] description.
    ///
    /// # Errors
    /// Propagates VM errors.
    pub fn run(&self, parts: RunParts<'_>, stop: StopWhen) -> Result<RunReport, PipelineError> {
        // Reject an invalid paging config as a pipeline error before the
        // simulator's constructor would panic on it.
        self.opts.vm.paging.validate().map_err(|e| {
            PipelineError::Vm(VmError::Config {
                detail: e.to_string(),
            })
        })?;
        let vm = VmBuilder::new(
            self.program,
            parts.compiled,
            parts.snapshot,
            parts.image,
            self.opts.vm.clone(),
        )
        .heap_template(parts.heap)
        .lowered(parts.lowered)
        .tracer(parts.tracer)
        .build();
        Ok(vm.run(stop)?)
    }

    /// Deprecated positional form of [`Pipeline::run`].
    ///
    /// # Errors
    /// Propagates VM errors.
    #[deprecated(since = "0.1.0", note = "use Pipeline::run with RunParts")]
    pub fn run_parts_shared(
        &self,
        compiled: &CompiledProgram,
        snapshot: &HeapSnapshot,
        image: &BinaryImage,
        heap: Option<Arc<HeapTemplate>>,
        lowered: Option<Arc<LoweredProgram>>,
        stop: StopWhen,
    ) -> Result<RunReport, PipelineError> {
        self.run(
            RunParts::new(compiled, snapshot, image)
                .heap(heap)
                .lowered(lowered),
            stop,
        )
    }

    /// Performs the full profiling build + run + post-processing (steps 1–3
    /// of Fig. 1), producing every ordering profile at once.
    ///
    /// # Errors
    /// Fails on build-time, runtime or post-processing errors.
    pub fn profiling_run(&self, stop: StopWhen) -> Result<ProfiledArtifacts, PipelineError> {
        let built = self.build_instrumented(InstrumentConfig::FULL)?;
        let report = self.run_image(&built, stop)?;
        self.post_process(report, &mut |hs| {
            Arc::new(assign_ids(self.program, &built.snapshot, hs))
        })
    }

    /// Stage: trace post-processing (step 3 of Fig. 1) — replays the
    /// instrumented run's trace through the ordering analyses, producing
    /// every ordering profile at once. `ids_for` supplies the strategy
    /// identity maps of the *instrumented* snapshot; the serial path
    /// computes them inline, the evaluation engine passes a cached lookup.
    ///
    /// # Errors
    /// Fails when the report carries no trace, on replay errors, and on
    /// trace-verification findings when [`BuildOptions::verify`] is set.
    pub fn post_process(
        &self,
        report: RunReport,
        ids_for: &mut dyn FnMut(HeapStrategy) -> Arc<HashMap<ObjId, u64>>,
    ) -> Result<ProfiledArtifacts, PipelineError> {
        let trace = report.trace.clone().ok_or(PipelineError::NoTrace)?;
        if self.opts.verify {
            let errors = errors_of(&checks::check_trace(&trace));
            if !errors.is_empty() {
                return Err(PipelineError::Verify(errors));
            }
        }

        let heap_strategies = self.opts.heap_strategies();

        // One replay of the trace (chunk-parallel under
        // [`BuildOptions::threads`]) yields the raw first-access orders;
        // every strategy's heap profile is then derived by mapping the raw
        // object order through that strategy's identity map. All strategies
        // assign ids to exactly the snapshot's objects, so any strategy's
        // map serves as the membership filter.
        let first_ids = ids_for(heap_strategies[0]);
        let summary = replay_first_access(
            self.program,
            &trace,
            &first_ids,
            self.opts.vm.max_paths,
            self.opts.threads.effective(),
        )?;
        // The instrumented run's touched-byte spans, keyed by raw snapshot
        // object index — the same keying as `summary.object_order`, so each
        // identity's first-access entry picks up the bytes startup actually
        // touched inside that object.
        let touch_spans: HashMap<u32, Vec<(u64, u64)>> =
            report.heap_touch_spans.iter().cloned().collect();
        let mut heap_profiles = HashMap::new();
        for &strat in &heap_strategies {
            let ids = ids_for(strat);
            heap_profiles.insert(strat, summary.heap_profile_with_spans(&ids, &touch_spans));
        }

        Ok(ProfiledArtifacts {
            call_counts: report.call_counts.clone(),
            cu_profile: CodeOrderProfile {
                sigs: summary.cu_order,
            },
            method_profile: CodeOrderProfile {
                sigs: summary.method_order,
            },
            heap_profiles,
            native_pages: report.native_touch_pages.clone(),
            instrumented_report: report,
        })
    }

    /// Builds the profile-guided optimized image with the given strategy's
    /// layout (step 4 of Fig. 1). With `strategy = None`, produces the
    /// baseline: the same PGO build with the default layout.
    ///
    /// # Errors
    /// Fails if build-time initializers fail.
    pub fn build_optimized(
        &self,
        artifacts: &ProfiledArtifacts,
        strategy: Option<Strategy>,
    ) -> Result<BuiltImage, PipelineError> {
        let compiled = self.compile_with(InstrumentConfig::NONE, Some(&artifacts.call_counts));
        let snap = self.snapshot_stage(&compiled, &self.opts.heap_optimized)?;
        let orders = self.order_stage(artifacts, &compiled, &snap, strategy, None);
        let native = strategy
            .is_some()
            .then_some(artifacts.native_pages.as_slice());
        let image = self.layout_stage(&compiled, &snap, orders, native)?;
        Ok(BuiltImage {
            compiled,
            snapshot: snap,
            image,
        })
    }

    /// Stage: ordering — computes a strategy's CU and object orders from
    /// the profiles. `heap_ids` optionally supplies precomputed strategy
    /// identities of `snap` (the evaluation engine caches them per
    /// snapshot × strategy); `None` computes them inline.
    ///
    /// For the clustered strategies this runs the fault-cost-aware layout
    /// optimizer over the first-touch orders (see [`optimize_layout`]);
    /// for every other strategy it returns the profile-replay orders
    /// unchanged, with no native order and no prediction.
    pub fn order_stage(
        &self,
        artifacts: &ProfiledArtifacts,
        compiled: &CompiledProgram,
        snap: &HeapSnapshot,
        strategy: Option<Strategy>,
        heap_ids: Option<&HashMap<ObjId, u64>>,
    ) -> LayoutOrders {
        if let Some(s) = strategy.filter(|s| s.clustered()) {
            return self.optimize_stage(artifacts, compiled, snap, s, heap_ids);
        }
        let cu_order = match strategy {
            Some(s) if s.orders_code() => {
                let (profile, gran) = match s {
                    Strategy::Method => (&artifacts.method_profile, CodeGranularity::Method),
                    _ => (&artifacts.cu_profile, CodeGranularity::Cu),
                };
                Some(order_cus(self.program, compiled, profile, gran))
            }
            _ => None,
        };
        let object_order = match strategy.and_then(|s| self.opts.heap_strategy_for(s)) {
            Some(hs) => {
                let profile = &artifacts.heap_profiles[&hs];
                Some(match heap_ids {
                    Some(ids) => order_objects(snap, ids, profile),
                    None => order_objects(snap, &assign_ids(self.program, snap, hs), profile),
                })
            }
            None => None,
        };
        LayoutOrders {
            cu_order,
            object_order,
            native_order: None,
            predicted: None,
        }
    }

    /// The clustered strategies' ordering: replays the first-touch orders
    /// exactly like `cu` / `cu+heap path`, then hands them to the layout
    /// optimizer's candidate search under the demand-paging cost model
    /// (hot/cold native-tail splitting, fault-around-window clustering,
    /// page-boundary packing). First-touch is candidate 0 of the search,
    /// so the result never predicts more faults than the plain strategy.
    fn optimize_stage(
        &self,
        artifacts: &ProfiledArtifacts,
        compiled: &CompiledProgram,
        snap: &HeapSnapshot,
        strategy: Strategy,
        heap_ids: Option<&HashMap<ObjId, u64>>,
    ) -> LayoutOrders {
        let (cu_first_touch, cu_hot) = order_cus_split(
            self.program,
            compiled,
            &artifacts.cu_profile,
            CodeGranularity::Cu,
        );
        let mut cu_sizes = vec![0u64; compiled.cus.len()];
        for cu in &compiled.cus {
            cu_sizes[cu.id.index()] = u64::from(cu.size);
        }
        let code = CodeInput {
            first_touch: &cu_first_touch,
            hot: cu_hot,
            sizes: &cu_sizes,
            native_pages: &artifacts.native_pages,
        };
        let heap_data = self.opts.heap_strategy_for(strategy).map(|hs| {
            let profile = &artifacts.heap_profiles[&hs];
            let (order, hot, hot_spans) = match heap_ids {
                Some(ids) => order_objects_split_spans(snap, ids, profile),
                None => {
                    order_objects_split_spans(snap, &assign_ids(self.program, snap, hs), profile)
                }
            };
            let mut sizes = vec![0u64; snap.entries().len()];
            for e in snap.entries() {
                if e.obj.index() >= sizes.len() {
                    sizes.resize(e.obj.index() + 1, 0);
                }
                sizes[e.obj.index()] = u64::from(e.size);
            }
            // Re-key the matched objects' measured spans by object index
            // (the predictor's indexing, like `sizes`); unmatched and
            // unmeasured objects keep an empty list → full-extent model.
            let mut spans = vec![Vec::new(); sizes.len()];
            for (&obj, s) in order[..hot].iter().zip(hot_spans) {
                spans[obj.index()] = s;
            }
            (order, hot, sizes, spans)
        });
        let heap = heap_data
            .as_ref()
            .map(|(order, hot, sizes, spans)| HeapInput {
                first_touch: order,
                hot: *hot,
                sizes,
                spans,
            });
        let params = CostParams {
            page_size: self.opts.image.page_size,
            fault_around_pages: self.opts.vm.paging.fault_around_pages,
            cu_align: self.opts.image.cu_align,
            obj_align: self.opts.image.obj_align,
            native_tail: self.opts.image.native_tail,
        };
        let plan = optimize_layout(&code, heap.as_ref(), &params, self.opts.threads.effective());
        LayoutOrders {
            cu_order: Some(plan.cu_order),
            object_order: plan.object_order,
            native_order: Some(plan.native_order),
            predicted: Some(LayoutPrediction {
                first_touch: plan.first_touch_faults,
                optimized: plan.predicted_faults,
            }),
        }
    }

    /// Stage: layout — places the CUs and objects, permutes the native tail
    /// (either from the optimizer's explicit [`LayoutOrders::native_order`]
    /// or, when [`BuildOptions::reorder_native`] is set, from the
    /// first-touch profile), and runs the build-stage verifiers.
    ///
    /// # Errors
    /// Fails on error-severity verification findings (only when
    /// [`BuildOptions::verify`] is set).
    pub fn layout_stage(
        &self,
        compiled: &CompiledProgram,
        snap: &HeapSnapshot,
        orders: LayoutOrders,
        native_profile: Option<&[u32]>,
    ) -> Result<BinaryImage, PipelineError> {
        let LayoutOrders {
            cu_order,
            object_order,
            native_order: explicit_native,
            predicted: _,
        } = orders;
        let mut image = BinaryImage::build(
            compiled,
            snap,
            cu_order,
            object_order,
            self.opts.image.clone(),
        );
        if let Some(order) = explicit_native {
            image.set_native_page_order(order);
        } else if self.opts.reorder_native {
            if let Some(pages) = native_profile {
                image.set_native_page_order(native_order(pages, image.native_pages() as u32));
            }
        }
        self.verify_built(compiled, snap, &image)?;
        Ok(image)
    }

    /// When [`BuildOptions::verify`] is set, runs the `nimage-verify`
    /// build-stage checkers (IR lints, vtable soundness, layout invariants)
    /// and fails on any error-severity finding.
    fn verify_built(
        &self,
        compiled: &CompiledProgram,
        snap: &HeapSnapshot,
        image: &BinaryImage,
    ) -> Result<(), PipelineError> {
        if !self.opts.verify {
            return Ok(());
        }
        let mut diags = irlint::lint_program(self.program);
        diags.extend(irlint::lint_virtual_targets(
            self.program,
            &compiled.reachability,
        ));
        diags.extend(nimage_verify::pea::check_pea_soundness(self.program, snap));
        diags.extend(checks::check_layout(&checks::LayoutView::from_image(
            self.program,
            compiled,
            snap,
            image,
        )));
        let errors = errors_of(&diags);
        if errors.is_empty() {
            Ok(())
        } else {
            Err(PipelineError::Verify(errors))
        }
    }

    /// Runs the complete experiment for one strategy: profile, build the
    /// baseline and the reordered optimized image, run both.
    ///
    /// # Errors
    /// Propagates any pipeline stage failure.
    pub fn evaluate(
        &self,
        strategy: Strategy,
        stop: StopWhen,
    ) -> Result<Evaluation, PipelineError> {
        let artifacts = self.profiling_run(stop)?;
        let baseline = self.baseline(&artifacts, stop)?;
        self.evaluate_strategy(
            EvalInputs {
                artifacts: &artifacts,
                baseline: &baseline,
            },
            strategy,
            stop,
        )
    }

    /// Builds and measures the strategy-independent [`Baseline`] (the PGO
    /// build with default layout) exactly once, for sharing across every
    /// strategy of the workload via [`Self::evaluate_strategy`].
    ///
    /// # Errors
    /// Propagates any pipeline stage failure.
    pub fn baseline(
        &self,
        artifacts: &ProfiledArtifacts,
        stop: StopWhen,
    ) -> Result<Baseline, PipelineError> {
        let built = self.build_optimized(artifacts, None)?;
        let report = self.run_image(&built, stop)?;
        Ok(Baseline { built, report })
    }

    /// Evaluates one strategy against the shared [`EvalInputs`], reusing
    /// already-collected profiles and the already-measured baseline (the
    /// paper profiles once and evaluates every strategy against one
    /// baseline).
    ///
    /// # Errors
    /// Propagates any pipeline stage failure.
    pub fn evaluate_strategy(
        &self,
        inputs: EvalInputs<'_>,
        strategy: Strategy,
        stop: StopWhen,
    ) -> Result<Evaluation, PipelineError> {
        let optimized_img = self.build_optimized(inputs.artifacts, Some(strategy))?;
        let optimized = self.run_image(&optimized_img, stop)?;
        Ok(Evaluation {
            strategy,
            baseline: inputs.baseline.report.clone(),
            optimized,
        })
    }

    /// Deprecated positional form of [`Pipeline::evaluate_strategy`].
    ///
    /// # Errors
    /// Propagates any pipeline stage failure.
    #[deprecated(
        since = "0.1.0",
        note = "use Pipeline::evaluate_strategy with EvalInputs"
    )]
    pub fn evaluate_with(
        &self,
        artifacts: &ProfiledArtifacts,
        baseline: &Baseline,
        strategy: Strategy,
        stop: StopWhen,
    ) -> Result<Evaluation, PipelineError> {
        self.evaluate_strategy(
            EvalInputs {
                artifacts,
                baseline,
            },
            strategy,
            stop,
        )
    }

    /// Sec. 7.4: the execution-time overhead factor of one instrumentation
    /// mode, `time(instrumented) / time(regular)`.
    ///
    /// The paper measures profiling overhead in the usual warm-cache
    /// benchmarking setup (profiling happens once, offline), so the ratio
    /// is computed over CPU work only — cold-start fault latency is the
    /// *subject* of the other experiments, not of this one.
    ///
    /// # Errors
    /// Propagates build or run failures.
    pub fn profiling_overhead(
        &self,
        instr: InstrumentConfig,
        stop: StopWhen,
    ) -> Result<f64, PipelineError> {
        let regular = self.build_instrumented(InstrumentConfig::NONE)?;
        let reg_report = self.run_image(&regular, stop)?;
        let instrumented = self.build_instrumented(instr)?;
        let ins_report = self.run_image(&instrumented, stop)?;
        let cpu = |r: &RunReport| match r.first_response {
            Some(rp) => (rp.ops + rp.probe_ops) as f64,
            None => (r.ops + r.probe_ops) as f64,
        };
        Ok(cpu(&ins_report) / cpu(&reg_report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimage_vm::SectionFaults;

    fn report(text: u64, heap: u64, ops: u64) -> RunReport {
        RunReport {
            ops,
            probe_ops: 0,
            faults: SectionFaults {
                text,
                svm_heap: heap,
            },
            first_response: None,
            call_counts: CallCountProfile::new(),
            trace: None,
            session_stats: None,
            exit: nimage_vm::ExitKind::Exited,
            entry_return: None,
            native_touch_pages: vec![],
            text_page_states: vec![],
            heap_page_states: vec![],
            heap_touch_spans: vec![],
        }
    }

    #[test]
    fn strategy_metadata_is_consistent() {
        for s in Strategy::all() {
            assert!(s.orders_code() || s.orders_heap(), "{}", s.name());
            assert_eq!(s.orders_heap(), s.heap_strategy().is_some());
        }
        assert!(Strategy::CuPlusHeapPath.orders_code());
        assert!(Strategy::CuPlusHeapPath.orders_heap());
        assert_eq!(
            Strategy::StructuralHash.heap_strategy(),
            Some(HeapStrategy::StructuralHash { max_depth: 2 })
        );
    }

    #[test]
    fn reported_metric_matches_strategy_kind() {
        let eval = Evaluation {
            strategy: Strategy::Cu,
            baseline: report(20, 10, 100),
            optimized: report(10, 10, 100),
        };
        assert_eq!(eval.reported_fault_reduction(), 2.0);
        let eval = Evaluation {
            strategy: Strategy::HeapPath,
            baseline: report(20, 10, 100),
            optimized: report(20, 5, 100),
        };
        assert_eq!(eval.reported_fault_reduction(), 2.0);
        let eval = Evaluation {
            strategy: Strategy::CuPlusHeapPath,
            baseline: report(20, 10, 100),
            optimized: report(10, 5, 100),
        };
        assert_eq!(eval.reported_fault_reduction(), 2.0);
    }

    #[test]
    fn zero_fault_ratios_are_well_defined() {
        let eval = Evaluation {
            strategy: Strategy::Cu,
            baseline: report(0, 0, 100),
            optimized: report(0, 0, 100),
        };
        assert_eq!(eval.text_fault_reduction(), 1.0);
        let eval = Evaluation {
            strategy: Strategy::Cu,
            baseline: report(5, 0, 100),
            optimized: report(0, 0, 100),
        };
        assert!(eval.text_fault_reduction().is_infinite());
    }

    #[test]
    fn speedup_prefers_first_response_when_present() {
        let cm = nimage_vm::CostModel {
            ns_per_op: 1.0,
            fault_ns: 0.0,
        };
        let mut baseline = report(0, 0, 1_000);
        let mut optimized = report(0, 0, 1_000);
        baseline.first_response = Some(nimage_vm::ResponsePoint {
            ops: 400,
            probe_ops: 0,
            faults: SectionFaults::default(),
        });
        optimized.first_response = Some(nimage_vm::ResponsePoint {
            ops: 200,
            probe_ops: 0,
            faults: SectionFaults::default(),
        });
        let eval = Evaluation {
            strategy: Strategy::Cu,
            baseline,
            optimized,
        };
        assert_eq!(eval.speedup(&cm), 2.0);
    }

    #[test]
    fn default_build_options_model_cross_build_divergence() {
        let opts = BuildOptions::default();
        assert_ne!(
            opts.heap_instrumented.clinit_seed, opts.heap_optimized.clinit_seed,
            "builds must not share initializer order"
        );
        assert!(!opts.heap_instrumented.pea_fold);
        assert!(opts.heap_optimized.pea_fold);
    }

    #[test]
    fn pipeline_error_displays_sources() {
        let e = PipelineError::NoTrace;
        assert!(e.to_string().contains("no trace"));
        let e = PipelineError::Clinit(ClinitError::BudgetExhausted);
        assert!(e.to_string().contains("build-time"));
    }
}

#[cfg(test)]
mod native_order_tests {
    use super::native_order;

    #[test]
    fn touched_pages_move_to_front_in_touch_order() {
        let order = native_order(&[5, 2, 7], 10);
        // position[5]=0, position[2]=1, position[7]=2, rest in old order.
        assert_eq!(order[5], 0);
        assert_eq!(order[2], 1);
        assert_eq!(order[7], 2);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>(), "permutation");
    }

    #[test]
    fn duplicate_and_out_of_range_touches_are_ignored() {
        let order = native_order(&[1, 1, 99, 0], 4);
        assert_eq!(order[1], 0);
        assert_eq!(order[0], 1);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_profile_is_identity_like() {
        let order = native_order(&[], 4);
        assert_eq!(order, vec![0, 1, 2, 3]);
    }
}
