//! Disk-persistent tier of the artifact cache.
//!
//! The in-memory [`crate::ArtifactCache`] shares artifacts within one
//! process; this module persists the expensive, serializable stages across
//! processes so a second `nimage bench` (or CI run) starts warm. Layout:
//!
//! ```text
//! <root>/v<FORMAT>/<stage>/<key-hex>.bin
//! ```
//!
//! where `<root>` defaults to `$XDG_CACHE_HOME/nimage` (falling back to
//! `$HOME/.cache/nimage`) and `<FORMAT>` is [`DISK_FORMAT_VERSION`] —
//! bumping the version orphans every old entry without any migration
//! logic, because lookups only ever touch the current version directory.
//!
//! Every entry is self-validating: a fixed header (magic, format version,
//! payload length, MurmurHash3 checksum of the payload) followed by the
//! payload. Loads treat *any* malformed entry — truncated file, wrong
//! magic or version, checksum mismatch, payload that does not decode — as
//! a cache miss, never an error: a corrupt cache can cost recomputation
//! but can never take down a build or poison its output.
//!
//! Writes are atomic: the payload goes to a unique temporary file in the
//! destination directory first and is then `rename`d into place, so
//! concurrent writers race benignly (one complete entry wins; readers
//! never observe a partial file) and a crash mid-write leaves at most a
//! stray `.tmp` file, never a truncated entry.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, SystemTime};

use nimage_compiler::CallCountProfile;
use nimage_heap::ObjId;
use nimage_order::{murmur3, CodeOrderProfile, HeapOrderProfile, HeapStrategy};
use nimage_profiler::{read_trace, write_trace, SessionStats, Trace};
use nimage_vm::{ExitKind, PageState, ResponsePoint, RtValue, RunReport, SectionFaults};

use crate::cache::CacheKey;
use crate::ProfiledArtifacts;

/// Version of the on-disk entry format. Bump whenever the header layout,
/// any codec, or the semantics of a persisted stage change; old entries
/// are invisible to the new version (they live under the old `v<N>`
/// directory) and get removed by `nimage cache clear`.
pub const DISK_FORMAT_VERSION: u32 = 3;

const MAGIC: &[u8; 4] = b"NIMC";
const HEADER_LEN: usize = 4 + 4 + 8 + 8;
const CHECKSUM_SEED: u64 = 0x6469_736b; // "disk"

/// Where (and whether) the disk tier lives, and how large it may grow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskCacheOptions {
    /// Cache root directory (version directories are created beneath it).
    pub dir: PathBuf,
    /// Evict least-recently-accessed entries until the version directory
    /// holds at most this many payload bytes. `None` means unbounded.
    pub max_bytes: Option<u64>,
    /// Evict least-recently-accessed entries until at most this many
    /// entries remain. `None` means unbounded.
    pub max_entries: Option<u64>,
}

impl DiskCacheOptions {
    /// An unbounded disk cache rooted at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> DiskCacheOptions {
        DiskCacheOptions {
            dir: dir.into(),
            max_bytes: None,
            max_entries: None,
        }
    }

    /// Caps the cache at `max_bytes` payload bytes (LRU eviction).
    pub fn with_max_bytes(mut self, max_bytes: u64) -> DiskCacheOptions {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// Caps the cache at `max_entries` entries (LRU eviction).
    pub fn with_max_entries(mut self, max_entries: u64) -> DiskCacheOptions {
        self.max_entries = Some(max_entries);
        self
    }

    /// Whether either size cap is configured.
    pub fn capped(&self) -> bool {
        self.max_bytes.is_some() || self.max_entries.is_some()
    }

    /// The conventional per-user cache root: `$XDG_CACHE_HOME/nimage`,
    /// falling back to `$HOME/.cache/nimage`. A *relative*
    /// `$XDG_CACHE_HOME` is ignored per the XDG base-directory spec
    /// ("All paths … must be absolute … act as if [the variable] were
    /// unset"). `None` when no usable variable is set (no disk tier
    /// rather than guessing).
    pub fn default_dir() -> Option<PathBuf> {
        if let Some(xdg) = std::env::var_os("XDG_CACHE_HOME") {
            if !xdg.is_empty() && Path::new(&xdg).is_absolute() {
                return Some(PathBuf::from(xdg).join("nimage"));
            }
        }
        std::env::var_os("HOME")
            .filter(|h| !h.is_empty())
            .map(|h| PathBuf::from(h).join(".cache").join("nimage"))
    }
}

/// Counters of one [`DiskStore`], snapshot by [`DiskStore::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskCacheStats {
    /// Loads answered from disk.
    pub hits: u64,
    /// Loads that found no (valid) entry.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Entries found on disk but rejected (corrupt header, checksum
    /// mismatch, undecodable payload). Each rejection is also a miss.
    pub rejected: u64,
}

/// What is on disk for one store's format version, with interrupted-write
/// leftovers accounted separately from real entries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskUsage {
    /// Complete cache entries (`*.bin` files).
    pub entries: u64,
    /// Bytes held by complete entries.
    pub bytes: u64,
    /// Leftover `.tmp.*` files from interrupted atomic writes. These are
    /// not entries — they never validate — and are swept by [`DiskStore::gc`].
    pub tmp_files: u64,
    /// Bytes held by leftover temporary files.
    pub tmp_bytes: u64,
}

/// The outcome of one [`DiskStore::gc`] sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries evicted (oldest-accessed first) to get under the caps.
    pub evicted_entries: u64,
    /// Bytes reclaimed from evicted entries.
    pub evicted_bytes: u64,
    /// Stale temporary files deleted.
    pub removed_tmp: u64,
    /// Entries surviving the sweep.
    pub surviving_entries: u64,
    /// Bytes surviving the sweep.
    pub surviving_bytes: u64,
}

/// A temporary file older than this is considered orphaned by a crashed
/// or interrupted writer and is deleted by [`DiskStore::gc`]; younger
/// temps may belong to an in-flight atomic write and are left alone.
const STALE_TMP_AGE: Duration = Duration::from_secs(15 * 60);

/// The disk-persistent store: version-scoped, checksummed, atomic.
pub struct DiskStore {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    rejected: AtomicU64,
    tmp_counter: AtomicU64,
    by_stage: Mutex<BTreeMap<String, DiskCacheStats>>,
}

/// How one lookup resolved, for counter classification.
enum Lookup {
    Hit,
    Miss,
    Rejected,
    Store,
}

impl fmt::Debug for DiskStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "DiskStore({}: {} hits, {} misses, {} stores, {} rejected)",
            self.root.display(),
            s.hits,
            s.misses,
            s.stores,
            s.rejected
        )
    }
}

impl DiskStore {
    /// Opens (lazily — directories are created on first write) the store
    /// for the current [`DISK_FORMAT_VERSION`] under `opts.dir`.
    pub fn open(opts: &DiskCacheOptions) -> DiskStore {
        DiskStore {
            root: opts.dir.join(format!("v{DISK_FORMAT_VERSION}")),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            tmp_counter: AtomicU64::new(0),
            by_stage: Mutex::new(BTreeMap::new()),
        }
    }

    /// The version-scoped directory entries live under.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, stage: &str, key: CacheKey) -> PathBuf {
        self.root
            .join(stage)
            .join(format!("{:016x}{:016x}.bin", key.0, key.1))
    }

    /// Records one lookup outcome in both the aggregate counters and the
    /// per-stage breakdown. A rejection is also a miss.
    fn record(&self, stage: &str, outcome: Lookup) {
        let mut stages = self.by_stage.lock().unwrap_or_else(|e| e.into_inner());
        let s = stages.entry(stage.to_string()).or_default();
        match outcome {
            Lookup::Hit => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                s.hits += 1;
            }
            Lookup::Miss => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                s.misses += 1;
            }
            Lookup::Rejected => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                s.rejected += 1;
                s.misses += 1;
            }
            Lookup::Store => {
                self.stores.fetch_add(1, Ordering::Relaxed);
                s.stores += 1;
            }
        }
    }

    /// Reads and validates the entry file, without touching any counter.
    /// `Ok(None)` is "no file", `Err(())` is "a file that does not
    /// validate".
    fn read_entry(&self, path: &Path) -> Result<Option<Vec<u8>>, ()> {
        let data = match std::fs::read(path) {
            Ok(d) => d,
            Err(_) => return Ok(None),
        };
        match validate_entry(&data) {
            Some(payload) => Ok(Some(payload.to_vec())),
            None => Err(()),
        }
    }

    /// Marks `path` as just-accessed by bumping its mtime — the access
    /// clock the LRU sweep of [`DiskStore::gc`] orders evictions by.
    /// Best-effort: a read-only cache still serves hits, it just cannot
    /// refresh recency.
    fn touch(&self, path: &Path) {
        if let Ok(f) = std::fs::File::options().append(true).open(path) {
            let _ = f.set_times(std::fs::FileTimes::new().set_modified(SystemTime::now()));
        }
    }

    /// Loads and validates the raw payload for `(stage, key)`. Anything
    /// short of a fully valid entry is a miss. A hit refreshes the
    /// entry's access time.
    pub fn load(&self, stage: &str, key: CacheKey) -> Option<Vec<u8>> {
        let path = self.entry_path(stage, key);
        match self.read_entry(&path) {
            Ok(Some(payload)) => {
                self.record(stage, Lookup::Hit);
                self.touch(&path);
                Some(payload)
            }
            Ok(None) => {
                self.record(stage, Lookup::Miss);
                None
            }
            Err(()) => {
                self.record(stage, Lookup::Rejected);
                None
            }
        }
    }

    /// Persists `payload` for `(stage, key)` via a unique temporary file
    /// and an atomic rename. Best-effort: I/O failures (read-only cache
    /// dir, disk full) are swallowed — the build result is already in
    /// memory and must not depend on the cache being writable.
    pub fn store(&self, stage: &str, key: CacheKey, payload: &[u8]) {
        let path = self.entry_path(stage, key);
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let tmp = dir.join(format!(
            ".tmp.{}.{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let mut data = Vec::with_capacity(HEADER_LEN + payload.len());
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&DISK_FORMAT_VERSION.to_le_bytes());
        data.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        data.extend_from_slice(&murmur3::hash128(payload, CHECKSUM_SEED).0.to_le_bytes());
        data.extend_from_slice(payload);
        if std::fs::write(&tmp, &data).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        if std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        self.record(stage, Lookup::Store);
    }

    /// Typed load: a valid entry whose payload decodes as `T`. An entry
    /// that decodes partially (or with trailing garbage) is rejected. A
    /// hit refreshes the entry's access time.
    pub fn get<T: DiskCodec>(&self, stage: &str, key: CacheKey) -> Option<T> {
        let path = self.entry_path(stage, key);
        match self.read_entry(&path) {
            Ok(Some(payload)) => {
                let mut r = Reader::new(&payload);
                match T::decode(&mut r) {
                    Some(v) if r.is_empty() => {
                        self.record(stage, Lookup::Hit);
                        self.touch(&path);
                        Some(v)
                    }
                    // The header validated but the payload didn't decode.
                    _ => {
                        self.record(stage, Lookup::Rejected);
                        None
                    }
                }
            }
            Ok(None) => {
                self.record(stage, Lookup::Miss);
                None
            }
            Err(()) => {
                self.record(stage, Lookup::Rejected);
                None
            }
        }
    }

    /// Typed store.
    pub fn put<T: DiskCodec>(&self, stage: &str, key: CacheKey, value: &T) {
        let mut payload = Vec::with_capacity(256);
        value.encode(&mut payload);
        self.store(stage, key, &payload);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DiskCacheStats {
        DiskCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// Per-stage counter snapshot, keyed by stage name.
    pub fn stage_stats(&self) -> BTreeMap<String, DiskCacheStats> {
        self.by_stage
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// What is on disk for this format version. Leftover temporary files
    /// from interrupted atomic writes are *not* entries — they are tallied
    /// separately so `cache stats` never inflates the entry count with
    /// files that can never validate.
    pub fn usage(&self) -> DiskUsage {
        fn walk(dir: &Path, u: &mut DiskUsage) {
            let Ok(rd) = std::fs::read_dir(dir) else {
                return;
            };
            for e in rd.flatten() {
                let path = e.path();
                if path.is_dir() {
                    walk(&path, u);
                } else if is_tmp_file(&path) {
                    u.tmp_files += 1;
                    u.tmp_bytes += e.metadata().map(|m| m.len()).unwrap_or(0);
                } else if path.extension().is_some_and(|x| x == "bin") {
                    u.entries += 1;
                    u.bytes += e.metadata().map(|m| m.len()).unwrap_or(0);
                }
            }
        }
        let mut u = DiskUsage::default();
        walk(&self.root, &mut u);
        u
    }

    /// `(entries, bytes)` currently on disk for this version, excluding
    /// temporary files.
    pub fn size_on_disk(&self) -> (u64, u64) {
        let u = self.usage();
        (u.entries, u.bytes)
    }

    /// Sweeps the store: deletes temporary files older than
    /// [`STALE_TMP_AGE`] (younger ones may belong to an in-flight write
    /// and are exempt), then — if a cap is given — evicts complete
    /// entries least-recently-accessed first until the store is under
    /// both `max_bytes` and `max_entries`.
    ///
    /// Recency is the entry's mtime, which [`DiskStore::load`]/[`DiskStore::get`]
    /// bump on every hit; ties break on path so the sweep is
    /// deterministic. Removal failures are skipped, not errors: gc is
    /// best-effort like every other disk-tier operation.
    pub fn gc(&self, max_bytes: Option<u64>, max_entries: Option<u64>) -> GcReport {
        fn collect(
            dir: &Path,
            now: SystemTime,
            entries: &mut Vec<(SystemTime, PathBuf, u64)>,
            removed_tmp: &mut u64,
        ) {
            let Ok(rd) = std::fs::read_dir(dir) else {
                return;
            };
            for e in rd.flatten() {
                let path = e.path();
                let Ok(meta) = e.metadata() else { continue };
                if path.is_dir() {
                    collect(&path, now, entries, removed_tmp);
                } else if is_tmp_file(&path) {
                    let age = meta
                        .modified()
                        .ok()
                        .and_then(|m| now.duration_since(m).ok())
                        .unwrap_or_default();
                    if age > STALE_TMP_AGE && std::fs::remove_file(&path).is_ok() {
                        *removed_tmp += 1;
                    }
                } else if path.extension().is_some_and(|x| x == "bin") {
                    let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                    entries.push((mtime, path, meta.len()));
                }
            }
        }
        let mut report = GcReport::default();
        let mut entries = Vec::new();
        collect(
            &self.root,
            SystemTime::now(),
            &mut entries,
            &mut report.removed_tmp,
        );
        entries.sort_unstable_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        let mut live_entries = entries.len() as u64;
        let mut live_bytes: u64 = entries.iter().map(|(_, _, len)| len).sum();
        for (_, path, len) in &entries {
            let over_bytes = max_bytes.is_some_and(|cap| live_bytes > cap);
            let over_entries = max_entries.is_some_and(|cap| live_entries > cap);
            if !over_bytes && !over_entries {
                break;
            }
            if std::fs::remove_file(path).is_ok() {
                report.evicted_entries += 1;
                report.evicted_bytes += len;
                live_entries -= 1;
                live_bytes -= len;
            }
        }
        report.surviving_entries = live_entries;
        report.surviving_bytes = live_bytes;
        report
    }

    /// Removes the whole cache root (every format version) at `dir`.
    ///
    /// # Errors
    /// Propagates filesystem errors other than "not found".
    pub fn clear(dir: &Path) -> io::Result<()> {
        match std::fs::remove_dir_all(dir) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// Whether `path` is one of our atomic-write temporaries
/// (`.tmp.<pid>.<n>`).
fn is_tmp_file(path: &Path) -> bool {
    path.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.starts_with(".tmp."))
}

/// Checks magic, version, length and checksum; returns the payload slice
/// of a valid entry.
fn validate_entry(data: &[u8]) -> Option<&[u8]> {
    if data.len() < HEADER_LEN || &data[..4] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(data[4..8].try_into().ok()?);
    if version != DISK_FORMAT_VERSION {
        return None;
    }
    let len = u64::from_le_bytes(data[8..16].try_into().ok()?) as usize;
    let checksum = u64::from_le_bytes(data[16..24].try_into().ok()?);
    let payload = &data[HEADER_LEN..];
    if payload.len() != len {
        return None;
    }
    if murmur3::hash128(payload, CHECKSUM_SEED).0 != checksum {
        return None;
    }
    Some(payload)
}

/// A bounds-checked little-endian cursor: every read returns `None` past
/// the end instead of panicking, so arbitrary on-disk bytes can never
/// crash a decode.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes left to read. Length-prefixed decoders must clamp their
    /// pre-allocations to this (see [`cap_alloc`]): a corrupt length
    /// prefix may claim billions of elements, but a genuine encoding can
    /// never hold more elements than there are bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Option<i64> {
        self.u64().map(|v| v as i64)
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// Reads a `u32` length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).ok().map(str::to_owned)
    }

    /// Reads a `u32` length-prefixed byte slice.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }
}

/// Clamps a decoded element count `n` to what could possibly fit in the
/// reader's remaining bytes, given each element occupies at least
/// `elem_min` bytes. Used to size pre-allocations: decoding still reads
/// exactly `n` elements (and fails cleanly when the buffer runs out), but
/// a corrupt length prefix can no longer trigger a multi-GiB
/// `with_capacity` before the first element is even read.
pub(crate) fn cap_alloc(n: usize, r: &Reader<'_>, elem_min: usize) -> usize {
    n.min(r.remaining() / elem_min.max(1))
}

pub(crate) fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

/// A value that can round-trip through a disk-cache entry payload. Decodes
/// are total functions over arbitrary bytes: they may return `None`, never
/// panic.
pub trait DiskCodec: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes a value, or `None` if the bytes are not a valid encoding.
    fn decode(r: &mut Reader<'_>) -> Option<Self>;
}

impl DiskCodec for HashMap<ObjId, u64> {
    fn encode(&self, out: &mut Vec<u8>) {
        // Sorted for a canonical (diffable) encoding; decode accepts any
        // order.
        let mut pairs: Vec<(&ObjId, &u64)> = self.iter().collect();
        pairs.sort_unstable_by_key(|(o, _)| o.0);
        out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
        for (obj, id) in pairs {
            out.extend_from_slice(&obj.0.to_le_bytes());
            out.extend_from_slice(&id.to_le_bytes());
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let n = r.u32()? as usize;
        let mut map = HashMap::with_capacity(cap_alloc(n, r, 12));
        for _ in 0..n {
            let obj = ObjId(r.u32()?);
            let id = r.u64()?;
            map.insert(obj, id);
        }
        Some(map)
    }
}

impl DiskCodec for SectionFaults {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.text.to_le_bytes());
        out.extend_from_slice(&self.svm_heap.to_le_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(SectionFaults {
            text: r.u64()?,
            svm_heap: r.u64()?,
        })
    }
}

pub(crate) fn encode_option<T>(out: &mut Vec<u8>, v: &Option<T>, f: impl FnOnce(&T, &mut Vec<u8>)) {
    match v {
        Some(v) => {
            out.push(1);
            f(v, out);
        }
        None => out.push(0),
    }
}

pub(crate) fn decode_option<T>(
    r: &mut Reader<'_>,
    f: impl FnOnce(&mut Reader<'_>) -> Option<T>,
) -> Option<Option<T>> {
    match r.u8()? {
        0 => Some(None),
        1 => f(r).map(Some),
        _ => None,
    }
}

fn encode_page_states(out: &mut Vec<u8>, states: &[PageState]) {
    out.extend_from_slice(&(states.len() as u32).to_le_bytes());
    for s in states {
        out.push(match s {
            PageState::Untouched => 0,
            PageState::Resident => 1,
            PageState::Faulted => 2,
        });
    }
}

fn decode_page_states(r: &mut Reader<'_>) -> Option<Vec<PageState>> {
    let n = r.u32()? as usize;
    let bytes = r.take(n)?;
    bytes
        .iter()
        .map(|b| match b {
            0 => Some(PageState::Untouched),
            1 => Some(PageState::Resident),
            2 => Some(PageState::Faulted),
            _ => None,
        })
        .collect()
}

fn encode_spans(out: &mut Vec<u8>, spans: &[(u64, u64)]) {
    out.extend_from_slice(&(spans.len() as u32).to_le_bytes());
    for (s, e) in spans {
        out.extend_from_slice(&s.to_le_bytes());
        out.extend_from_slice(&e.to_le_bytes());
    }
}

fn decode_spans(r: &mut Reader<'_>) -> Option<Vec<(u64, u64)>> {
    let n = r.u32()? as usize;
    let mut spans = Vec::with_capacity(cap_alloc(n, r, 16));
    for _ in 0..n {
        let s = r.u64()?;
        let e = r.u64()?;
        spans.push((s, e));
    }
    Some(spans)
}

impl DiskCodec for RunReport {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ops.to_le_bytes());
        out.extend_from_slice(&self.probe_ops.to_le_bytes());
        self.faults.encode(out);
        encode_option(out, &self.first_response, |rp, out| {
            out.extend_from_slice(&rp.ops.to_le_bytes());
            out.extend_from_slice(&rp.probe_ops.to_le_bytes());
            rp.faults.encode(out);
        });
        put_string(out, &self.call_counts.to_csv());
        encode_option(out, &self.trace, |t: &Trace, out| {
            put_bytes(out, &write_trace(t));
        });
        encode_option(out, &self.session_stats, |s, out| {
            for v in [
                s.cu_records,
                s.method_records,
                s.path_records,
                s.obj_ids,
                s.flushes,
                s.remaps,
                s.lost_records,
            ] {
                out.extend_from_slice(&v.to_le_bytes());
            }
        });
        out.push(match self.exit {
            ExitKind::Exited => 0,
            ExitKind::FirstResponse => 1,
            ExitKind::OpsBudget => 2,
        });
        encode_option(out, &self.entry_return, |v, out| match v {
            RtValue::Null => out.push(0),
            RtValue::Bool(b) => {
                out.push(1);
                out.push(u8::from(*b));
            }
            RtValue::Int(i) => {
                out.push(2);
                out.extend_from_slice(&i.to_le_bytes());
            }
            RtValue::Double(d) => {
                out.push(3);
                out.extend_from_slice(&d.to_bits().to_le_bytes());
            }
            RtValue::Ref(x) => {
                out.push(4);
                out.extend_from_slice(&x.to_le_bytes());
            }
        });
        out.extend_from_slice(&(self.native_touch_pages.len() as u32).to_le_bytes());
        for p in &self.native_touch_pages {
            out.extend_from_slice(&p.to_le_bytes());
        }
        encode_page_states(out, &self.text_page_states);
        encode_page_states(out, &self.heap_page_states);
        out.extend_from_slice(&(self.heap_touch_spans.len() as u32).to_le_bytes());
        for (obj, spans) in &self.heap_touch_spans {
            out.extend_from_slice(&obj.to_le_bytes());
            encode_spans(out, spans);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let ops = r.u64()?;
        let probe_ops = r.u64()?;
        let faults = SectionFaults::decode(r)?;
        let first_response = decode_option(r, |r| {
            Some(ResponsePoint {
                ops: r.u64()?,
                probe_ops: r.u64()?,
                faults: SectionFaults::decode(r)?,
            })
        })?;
        let call_counts = CallCountProfile::from_csv(&r.string()?);
        let trace = decode_option(r, |r| read_trace(r.bytes()?).ok())?;
        let session_stats = decode_option(r, |r| {
            Some(SessionStats {
                cu_records: r.u64()?,
                method_records: r.u64()?,
                path_records: r.u64()?,
                obj_ids: r.u64()?,
                flushes: r.u64()?,
                remaps: r.u64()?,
                lost_records: r.u64()?,
            })
        })?;
        let exit = match r.u8()? {
            0 => ExitKind::Exited,
            1 => ExitKind::FirstResponse,
            2 => ExitKind::OpsBudget,
            _ => return None,
        };
        let entry_return = decode_option(r, |r| match r.u8()? {
            0 => Some(RtValue::Null),
            1 => match r.u8()? {
                0 => Some(RtValue::Bool(false)),
                1 => Some(RtValue::Bool(true)),
                _ => None,
            },
            2 => Some(RtValue::Int(r.i64()?)),
            3 => Some(RtValue::Double(r.f64()?)),
            4 => Some(RtValue::Ref(r.u32()?)),
            _ => None,
        })?;
        let n = r.u32()? as usize;
        let mut native_touch_pages = Vec::with_capacity(cap_alloc(n, r, 4));
        for _ in 0..n {
            native_touch_pages.push(r.u32()?);
        }
        let text_page_states = decode_page_states(r)?;
        let heap_page_states = decode_page_states(r)?;
        let n = r.u32()? as usize;
        let mut heap_touch_spans = Vec::with_capacity(cap_alloc(n, r, 8));
        for _ in 0..n {
            let obj = r.u32()?;
            heap_touch_spans.push((obj, decode_spans(r)?));
        }
        Some(RunReport {
            heap_touch_spans,
            ops,
            probe_ops,
            faults,
            first_response,
            call_counts,
            trace,
            session_stats,
            exit,
            entry_return,
            native_touch_pages,
            text_page_states,
            heap_page_states,
        })
    }
}

fn heap_strategy_tag(hs: HeapStrategy) -> (u8, u32) {
    match hs {
        HeapStrategy::IncrementalId => (0, 0),
        HeapStrategy::StructuralHash { max_depth } => (1, max_depth),
        HeapStrategy::HeapPath => (2, 0),
        HeapStrategy::HeapPathSalted => (3, 0),
    }
}

fn heap_strategy_from_tag(tag: u8, arg: u32) -> Option<HeapStrategy> {
    match tag {
        0 => Some(HeapStrategy::IncrementalId),
        1 => Some(HeapStrategy::StructuralHash { max_depth: arg }),
        2 => Some(HeapStrategy::HeapPath),
        3 => Some(HeapStrategy::HeapPathSalted),
        _ => None,
    }
}

fn encode_sigs(out: &mut Vec<u8>, profile: &CodeOrderProfile) {
    out.extend_from_slice(&(profile.sigs.len() as u32).to_le_bytes());
    for s in &profile.sigs {
        put_string(out, s);
    }
}

fn decode_sigs(r: &mut Reader<'_>) -> Option<CodeOrderProfile> {
    let n = r.u32()? as usize;
    let mut sigs = Vec::with_capacity(cap_alloc(n, r, 4));
    for _ in 0..n {
        sigs.push(r.string()?);
    }
    Some(CodeOrderProfile { sigs })
}

impl DiskCodec for ProfiledArtifacts {
    fn encode(&self, out: &mut Vec<u8>) {
        put_string(out, &self.call_counts.to_csv());
        encode_sigs(out, &self.cu_profile);
        encode_sigs(out, &self.method_profile);
        let mut profiles: Vec<(&HeapStrategy, &HeapOrderProfile)> =
            self.heap_profiles.iter().collect();
        profiles.sort_unstable_by_key(|(hs, _)| heap_strategy_tag(**hs));
        out.extend_from_slice(&(profiles.len() as u32).to_le_bytes());
        for (hs, profile) in profiles {
            let (tag, arg) = heap_strategy_tag(*hs);
            out.push(tag);
            out.extend_from_slice(&arg.to_le_bytes());
            out.extend_from_slice(&(profile.ids.len() as u32).to_le_bytes());
            for id in &profile.ids {
                out.extend_from_slice(&id.to_le_bytes());
            }
            out.extend_from_slice(&(profile.spans.len() as u32).to_le_bytes());
            for spans in &profile.spans {
                encode_spans(out, spans);
            }
        }
        out.extend_from_slice(&(self.native_pages.len() as u32).to_le_bytes());
        for p in &self.native_pages {
            out.extend_from_slice(&p.to_le_bytes());
        }
        self.instrumented_report.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let call_counts = CallCountProfile::from_csv(&r.string()?);
        let cu_profile = decode_sigs(r)?;
        let method_profile = decode_sigs(r)?;
        let n_profiles = r.u32()? as usize;
        let mut heap_profiles = HashMap::with_capacity(cap_alloc(n_profiles, r, 9));
        for _ in 0..n_profiles {
            let tag = r.u8()?;
            let arg = r.u32()?;
            let hs = heap_strategy_from_tag(tag, arg)?;
            let n_ids = r.u32()? as usize;
            let mut ids = Vec::with_capacity(cap_alloc(n_ids, r, 8));
            for _ in 0..n_ids {
                ids.push(r.u64()?);
            }
            let n_spans = r.u32()? as usize;
            let mut spans = Vec::with_capacity(cap_alloc(n_spans, r, 4));
            for _ in 0..n_spans {
                spans.push(decode_spans(r)?);
            }
            heap_profiles.insert(hs, HeapOrderProfile { ids, spans });
        }
        let n = r.u32()? as usize;
        let mut native_pages = Vec::with_capacity(cap_alloc(n, r, 4));
        for _ in 0..n {
            native_pages.push(r.u32()?);
        }
        let instrumented_report = RunReport::decode(r)?;
        Some(ProfiledArtifacts {
            call_counts,
            cu_profile,
            method_profile,
            heap_profiles,
            native_pages,
            instrumented_report,
        })
    }
}
