//! Disk-persistent tier of the artifact cache.
//!
//! The in-memory [`crate::ArtifactCache`] shares artifacts within one
//! process; this module persists the expensive, serializable stages across
//! processes so a second `nimage bench` (or CI run) starts warm. Layout:
//!
//! ```text
//! <root>/v<FORMAT>/<stage>/<key-hex>.bin
//! ```
//!
//! where `<root>` defaults to `$XDG_CACHE_HOME/nimage` (falling back to
//! `$HOME/.cache/nimage`) and `<FORMAT>` is [`DISK_FORMAT_VERSION`] —
//! bumping the version orphans every old entry without any migration
//! logic, because lookups only ever touch the current version directory.
//!
//! Every entry is self-validating: a fixed header (magic, format version,
//! payload length, MurmurHash3 checksum of the payload) followed by the
//! payload. Loads treat *any* malformed entry — truncated file, wrong
//! magic or version, checksum mismatch, payload that does not decode — as
//! a cache miss, never an error: a corrupt cache can cost recomputation
//! but can never take down a build or poison its output.
//!
//! Writes are atomic: the payload goes to a unique temporary file in the
//! destination directory first and is then `rename`d into place, so
//! concurrent writers race benignly (one complete entry wins; readers
//! never observe a partial file) and a crash mid-write leaves at most a
//! stray `.tmp` file, never a truncated entry.

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use nimage_compiler::CallCountProfile;
use nimage_heap::ObjId;
use nimage_order::{murmur3, CodeOrderProfile, HeapOrderProfile, HeapStrategy};
use nimage_profiler::{read_trace, write_trace, SessionStats, Trace};
use nimage_vm::{ExitKind, PageState, ResponsePoint, RtValue, RunReport, SectionFaults};

use crate::cache::CacheKey;
use crate::ProfiledArtifacts;

/// Version of the on-disk entry format. Bump whenever the header layout,
/// any codec, or the semantics of a persisted stage change; old entries
/// are invisible to the new version (they live under the old `v<N>`
/// directory) and get removed by `nimage cache clear`.
pub const DISK_FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 4] = b"NIMC";
const HEADER_LEN: usize = 4 + 4 + 8 + 8;
const CHECKSUM_SEED: u64 = 0x6469_736b; // "disk"

/// Where (and whether) the disk tier lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskCacheOptions {
    /// Cache root directory (version directories are created beneath it).
    pub dir: PathBuf,
}

impl DiskCacheOptions {
    /// A disk cache rooted at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> DiskCacheOptions {
        DiskCacheOptions { dir: dir.into() }
    }

    /// The conventional per-user cache root: `$XDG_CACHE_HOME/nimage`,
    /// falling back to `$HOME/.cache/nimage`. `None` when neither
    /// environment variable is set (no disk tier rather than guessing).
    pub fn default_dir() -> Option<PathBuf> {
        if let Some(xdg) = std::env::var_os("XDG_CACHE_HOME") {
            if !xdg.is_empty() {
                return Some(PathBuf::from(xdg).join("nimage"));
            }
        }
        std::env::var_os("HOME")
            .filter(|h| !h.is_empty())
            .map(|h| PathBuf::from(h).join(".cache").join("nimage"))
    }
}

/// Counters of one [`DiskStore`], snapshot by [`DiskStore::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskCacheStats {
    /// Loads answered from disk.
    pub hits: u64,
    /// Loads that found no (valid) entry.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Entries found on disk but rejected (corrupt header, checksum
    /// mismatch, undecodable payload). Each rejection is also a miss.
    pub rejected: u64,
}

/// The disk-persistent store: version-scoped, checksummed, atomic.
pub struct DiskStore {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    rejected: AtomicU64,
    tmp_counter: AtomicU64,
}

impl fmt::Debug for DiskStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "DiskStore({}: {} hits, {} misses, {} stores, {} rejected)",
            self.root.display(),
            s.hits,
            s.misses,
            s.stores,
            s.rejected
        )
    }
}

impl DiskStore {
    /// Opens (lazily — directories are created on first write) the store
    /// for the current [`DISK_FORMAT_VERSION`] under `opts.dir`.
    pub fn open(opts: &DiskCacheOptions) -> DiskStore {
        DiskStore {
            root: opts.dir.join(format!("v{DISK_FORMAT_VERSION}")),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            tmp_counter: AtomicU64::new(0),
        }
    }

    /// The version-scoped directory entries live under.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, stage: &str, key: CacheKey) -> PathBuf {
        self.root
            .join(stage)
            .join(format!("{:016x}{:016x}.bin", key.0, key.1))
    }

    /// Loads and validates the raw payload for `(stage, key)`. Anything
    /// short of a fully valid entry is a miss.
    pub fn load(&self, stage: &str, key: CacheKey) -> Option<Vec<u8>> {
        let path = self.entry_path(stage, key);
        let data = match std::fs::read(&path) {
            Ok(d) => d,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match validate_entry(&data) {
            Some(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload.to_vec())
            }
            None => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persists `payload` for `(stage, key)` via a unique temporary file
    /// and an atomic rename. Best-effort: I/O failures (read-only cache
    /// dir, disk full) are swallowed — the build result is already in
    /// memory and must not depend on the cache being writable.
    pub fn store(&self, stage: &str, key: CacheKey, payload: &[u8]) {
        let path = self.entry_path(stage, key);
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let tmp = dir.join(format!(
            ".tmp.{}.{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let mut data = Vec::with_capacity(HEADER_LEN + payload.len());
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&DISK_FORMAT_VERSION.to_le_bytes());
        data.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        data.extend_from_slice(&murmur3::hash128(payload, CHECKSUM_SEED).0.to_le_bytes());
        data.extend_from_slice(payload);
        if std::fs::write(&tmp, &data).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        if std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        self.stores.fetch_add(1, Ordering::Relaxed);
    }

    /// Typed load: a valid entry whose payload decodes as `T`. An entry
    /// that decodes partially (or with trailing garbage) is rejected.
    pub fn get<T: DiskCodec>(&self, stage: &str, key: CacheKey) -> Option<T> {
        let payload = self.load(stage, key)?;
        let mut r = Reader::new(&payload);
        match T::decode(&mut r) {
            Some(v) if r.is_empty() => Some(v),
            _ => {
                // The header validated but the payload didn't decode:
                // reclassify the hit as a rejection.
                self.hits.fetch_sub(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Typed store.
    pub fn put<T: DiskCodec>(&self, stage: &str, key: CacheKey, value: &T) {
        let mut payload = Vec::with_capacity(256);
        value.encode(&mut payload);
        self.store(stage, key, &payload);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DiskCacheStats {
        DiskCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// `(entries, bytes)` currently on disk for this version.
    pub fn size_on_disk(&self) -> (u64, u64) {
        fn walk(dir: &Path, entries: &mut u64, bytes: &mut u64) {
            let Ok(rd) = std::fs::read_dir(dir) else {
                return;
            };
            for e in rd.flatten() {
                let path = e.path();
                if path.is_dir() {
                    walk(&path, entries, bytes);
                } else if path.extension().is_some_and(|x| x == "bin") {
                    *entries += 1;
                    *bytes += e.metadata().map(|m| m.len()).unwrap_or(0);
                }
            }
        }
        let (mut entries, mut bytes) = (0, 0);
        walk(&self.root, &mut entries, &mut bytes);
        (entries, bytes)
    }

    /// Removes the whole cache root (every format version) at `dir`.
    ///
    /// # Errors
    /// Propagates filesystem errors other than "not found".
    pub fn clear(dir: &Path) -> io::Result<()> {
        match std::fs::remove_dir_all(dir) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// Checks magic, version, length and checksum; returns the payload slice
/// of a valid entry.
fn validate_entry(data: &[u8]) -> Option<&[u8]> {
    if data.len() < HEADER_LEN || &data[..4] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(data[4..8].try_into().ok()?);
    if version != DISK_FORMAT_VERSION {
        return None;
    }
    let len = u64::from_le_bytes(data[8..16].try_into().ok()?) as usize;
    let checksum = u64::from_le_bytes(data[16..24].try_into().ok()?);
    let payload = &data[HEADER_LEN..];
    if payload.len() != len {
        return None;
    }
    if murmur3::hash128(payload, CHECKSUM_SEED).0 != checksum {
        return None;
    }
    Some(payload)
}

/// A bounds-checked little-endian cursor: every read returns `None` past
/// the end instead of panicking, so arbitrary on-disk bytes can never
/// crash a decode.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Option<i64> {
        self.u64().map(|v| v as i64)
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// Reads a `u32` length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).ok().map(str::to_owned)
    }

    /// Reads a `u32` length-prefixed byte slice.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

/// A value that can round-trip through a disk-cache entry payload. Decodes
/// are total functions over arbitrary bytes: they may return `None`, never
/// panic.
pub trait DiskCodec: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes a value, or `None` if the bytes are not a valid encoding.
    fn decode(r: &mut Reader<'_>) -> Option<Self>;
}

impl DiskCodec for HashMap<ObjId, u64> {
    fn encode(&self, out: &mut Vec<u8>) {
        // Sorted for a canonical (diffable) encoding; decode accepts any
        // order.
        let mut pairs: Vec<(&ObjId, &u64)> = self.iter().collect();
        pairs.sort_unstable_by_key(|(o, _)| o.0);
        out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
        for (obj, id) in pairs {
            out.extend_from_slice(&obj.0.to_le_bytes());
            out.extend_from_slice(&id.to_le_bytes());
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let n = r.u32()? as usize;
        let mut map = HashMap::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let obj = ObjId(r.u32()?);
            let id = r.u64()?;
            map.insert(obj, id);
        }
        Some(map)
    }
}

impl DiskCodec for SectionFaults {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.text.to_le_bytes());
        out.extend_from_slice(&self.svm_heap.to_le_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(SectionFaults {
            text: r.u64()?,
            svm_heap: r.u64()?,
        })
    }
}

fn encode_option<T>(out: &mut Vec<u8>, v: &Option<T>, f: impl FnOnce(&T, &mut Vec<u8>)) {
    match v {
        Some(v) => {
            out.push(1);
            f(v, out);
        }
        None => out.push(0),
    }
}

fn decode_option<T>(
    r: &mut Reader<'_>,
    f: impl FnOnce(&mut Reader<'_>) -> Option<T>,
) -> Option<Option<T>> {
    match r.u8()? {
        0 => Some(None),
        1 => f(r).map(Some),
        _ => None,
    }
}

fn encode_page_states(out: &mut Vec<u8>, states: &[PageState]) {
    out.extend_from_slice(&(states.len() as u32).to_le_bytes());
    for s in states {
        out.push(match s {
            PageState::Untouched => 0,
            PageState::Resident => 1,
            PageState::Faulted => 2,
        });
    }
}

fn decode_page_states(r: &mut Reader<'_>) -> Option<Vec<PageState>> {
    let n = r.u32()? as usize;
    let bytes = r.take(n)?;
    bytes
        .iter()
        .map(|b| match b {
            0 => Some(PageState::Untouched),
            1 => Some(PageState::Resident),
            2 => Some(PageState::Faulted),
            _ => None,
        })
        .collect()
}

impl DiskCodec for RunReport {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ops.to_le_bytes());
        out.extend_from_slice(&self.probe_ops.to_le_bytes());
        self.faults.encode(out);
        encode_option(out, &self.first_response, |rp, out| {
            out.extend_from_slice(&rp.ops.to_le_bytes());
            out.extend_from_slice(&rp.probe_ops.to_le_bytes());
            rp.faults.encode(out);
        });
        put_string(out, &self.call_counts.to_csv());
        encode_option(out, &self.trace, |t: &Trace, out| {
            put_bytes(out, &write_trace(t));
        });
        encode_option(out, &self.session_stats, |s, out| {
            for v in [
                s.cu_records,
                s.method_records,
                s.path_records,
                s.obj_ids,
                s.flushes,
                s.remaps,
                s.lost_records,
            ] {
                out.extend_from_slice(&v.to_le_bytes());
            }
        });
        out.push(match self.exit {
            ExitKind::Exited => 0,
            ExitKind::FirstResponse => 1,
            ExitKind::OpsBudget => 2,
        });
        encode_option(out, &self.entry_return, |v, out| match v {
            RtValue::Null => out.push(0),
            RtValue::Bool(b) => {
                out.push(1);
                out.push(u8::from(*b));
            }
            RtValue::Int(i) => {
                out.push(2);
                out.extend_from_slice(&i.to_le_bytes());
            }
            RtValue::Double(d) => {
                out.push(3);
                out.extend_from_slice(&d.to_bits().to_le_bytes());
            }
            RtValue::Ref(x) => {
                out.push(4);
                out.extend_from_slice(&x.to_le_bytes());
            }
        });
        out.extend_from_slice(&(self.native_touch_pages.len() as u32).to_le_bytes());
        for p in &self.native_touch_pages {
            out.extend_from_slice(&p.to_le_bytes());
        }
        encode_page_states(out, &self.text_page_states);
        encode_page_states(out, &self.heap_page_states);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let ops = r.u64()?;
        let probe_ops = r.u64()?;
        let faults = SectionFaults::decode(r)?;
        let first_response = decode_option(r, |r| {
            Some(ResponsePoint {
                ops: r.u64()?,
                probe_ops: r.u64()?,
                faults: SectionFaults::decode(r)?,
            })
        })?;
        let call_counts = CallCountProfile::from_csv(&r.string()?);
        let trace = decode_option(r, |r| read_trace(r.bytes()?).ok())?;
        let session_stats = decode_option(r, |r| {
            Some(SessionStats {
                cu_records: r.u64()?,
                method_records: r.u64()?,
                path_records: r.u64()?,
                obj_ids: r.u64()?,
                flushes: r.u64()?,
                remaps: r.u64()?,
                lost_records: r.u64()?,
            })
        })?;
        let exit = match r.u8()? {
            0 => ExitKind::Exited,
            1 => ExitKind::FirstResponse,
            2 => ExitKind::OpsBudget,
            _ => return None,
        };
        let entry_return = decode_option(r, |r| match r.u8()? {
            0 => Some(RtValue::Null),
            1 => match r.u8()? {
                0 => Some(RtValue::Bool(false)),
                1 => Some(RtValue::Bool(true)),
                _ => None,
            },
            2 => Some(RtValue::Int(r.i64()?)),
            3 => Some(RtValue::Double(r.f64()?)),
            4 => Some(RtValue::Ref(r.u32()?)),
            _ => None,
        })?;
        let n = r.u32()? as usize;
        let mut native_touch_pages = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            native_touch_pages.push(r.u32()?);
        }
        let text_page_states = decode_page_states(r)?;
        let heap_page_states = decode_page_states(r)?;
        Some(RunReport {
            ops,
            probe_ops,
            faults,
            first_response,
            call_counts,
            trace,
            session_stats,
            exit,
            entry_return,
            native_touch_pages,
            text_page_states,
            heap_page_states,
        })
    }
}

fn heap_strategy_tag(hs: HeapStrategy) -> (u8, u32) {
    match hs {
        HeapStrategy::IncrementalId => (0, 0),
        HeapStrategy::StructuralHash { max_depth } => (1, max_depth),
        HeapStrategy::HeapPath => (2, 0),
        HeapStrategy::HeapPathSalted => (3, 0),
    }
}

fn heap_strategy_from_tag(tag: u8, arg: u32) -> Option<HeapStrategy> {
    match tag {
        0 => Some(HeapStrategy::IncrementalId),
        1 => Some(HeapStrategy::StructuralHash { max_depth: arg }),
        2 => Some(HeapStrategy::HeapPath),
        3 => Some(HeapStrategy::HeapPathSalted),
        _ => None,
    }
}

fn encode_sigs(out: &mut Vec<u8>, profile: &CodeOrderProfile) {
    out.extend_from_slice(&(profile.sigs.len() as u32).to_le_bytes());
    for s in &profile.sigs {
        put_string(out, s);
    }
}

fn decode_sigs(r: &mut Reader<'_>) -> Option<CodeOrderProfile> {
    let n = r.u32()? as usize;
    let mut sigs = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        sigs.push(r.string()?);
    }
    Some(CodeOrderProfile { sigs })
}

impl DiskCodec for ProfiledArtifacts {
    fn encode(&self, out: &mut Vec<u8>) {
        put_string(out, &self.call_counts.to_csv());
        encode_sigs(out, &self.cu_profile);
        encode_sigs(out, &self.method_profile);
        let mut profiles: Vec<(&HeapStrategy, &HeapOrderProfile)> =
            self.heap_profiles.iter().collect();
        profiles.sort_unstable_by_key(|(hs, _)| heap_strategy_tag(**hs));
        out.extend_from_slice(&(profiles.len() as u32).to_le_bytes());
        for (hs, profile) in profiles {
            let (tag, arg) = heap_strategy_tag(*hs);
            out.push(tag);
            out.extend_from_slice(&arg.to_le_bytes());
            out.extend_from_slice(&(profile.ids.len() as u32).to_le_bytes());
            for id in &profile.ids {
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.native_pages.len() as u32).to_le_bytes());
        for p in &self.native_pages {
            out.extend_from_slice(&p.to_le_bytes());
        }
        self.instrumented_report.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let call_counts = CallCountProfile::from_csv(&r.string()?);
        let cu_profile = decode_sigs(r)?;
        let method_profile = decode_sigs(r)?;
        let n_profiles = r.u32()? as usize;
        let mut heap_profiles = HashMap::with_capacity(n_profiles.min(64));
        for _ in 0..n_profiles {
            let tag = r.u8()?;
            let arg = r.u32()?;
            let hs = heap_strategy_from_tag(tag, arg)?;
            let n_ids = r.u32()? as usize;
            let mut ids = Vec::with_capacity(n_ids.min(1 << 20));
            for _ in 0..n_ids {
                ids.push(r.u64()?);
            }
            heap_profiles.insert(hs, HeapOrderProfile { ids });
        }
        let n = r.u32()? as usize;
        let mut native_pages = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            native_pages.push(r.u32()?);
        }
        let instrumented_report = RunReport::decode(r)?;
        Some(ProfiledArtifacts {
            call_counts,
            cu_profile,
            method_profile,
            heap_profiles,
            native_pages,
            instrumented_report,
        })
    }
}
