//! The three microservice workloads: *helloworld* services built on
//! synthetic `micronaut`-, `quarkus`- and `spring`-like frameworks
//! (Sec. 7.1 uses helloworld "to measure the improvements in the startup of
//! the microservice frameworks and not in the user application").
//!
//! The frameworks differ the way the real ones do at startup:
//!
//! * **micronaut** — ahead-of-time DI: a medium component set, wiring code
//!   compiled per component;
//! * **quarkus** — build-time optimized: most state pre-initialized into
//!   the heap snapshot, comparatively little startup code;
//! * **spring** — reflection-style: the largest component registry, the
//!   most startup code and threads.
//!
//! All three are multi-threaded: the main thread boots the runtime and the
//! framework, spawns handler threads, then parks in the accept loop; the
//! first handler thread to finish wiring serves the request and triggers
//! the `respond` intrinsic the evaluation measures (time-to-first-response,
//! stopped by `SIGKILL` like the paper's setup).

use nimage_ir::{BinOp, Intrinsic, MethodId, Program, ProgramBuilder, TypeRef};

use crate::runtime::{install_runtime, RuntimeScale};

/// One microservice framework workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Microservice {
    Micronaut,
    Quarkus,
    Spring,
}

/// Structural knobs of a synthetic framework.
#[derive(Debug, Clone)]
struct FrameworkSpec {
    pkg: &'static str,
    components: usize,
    routes: usize,
    handler_threads: usize,
    /// Fraction of components wired at startup, as 1-in-`wire_stride`.
    wire_stride: usize,
    /// Cold lifecycle methods per component.
    cold_methods: usize,
    cold_pad: usize,
}

impl Microservice {
    /// All three, in the paper's order.
    pub fn all() -> [Microservice; 3] {
        [
            Microservice::Micronaut,
            Microservice::Quarkus,
            Microservice::Spring,
        ]
    }

    /// Display name as in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Microservice::Micronaut => "micronaut",
            Microservice::Quarkus => "quarkus",
            Microservice::Spring => "spring",
        }
    }

    fn spec(&self) -> FrameworkSpec {
        match self {
            Microservice::Micronaut => FrameworkSpec {
                pkg: "io.micronaut",
                components: 90,
                routes: 24,
                handler_threads: 2,
                wire_stride: 1,
                cold_methods: 5,
                cold_pad: 110,
            },
            Microservice::Quarkus => FrameworkSpec {
                pkg: "io.quarkus",
                components: 70,
                routes: 16,
                handler_threads: 2,
                // Build-time init: only every third component needs
                // runtime wiring.
                wire_stride: 3,
                cold_methods: 4,
                cold_pad: 90,
            },
            Microservice::Spring => FrameworkSpec {
                pkg: "org.springframework",
                components: 130,
                routes: 40,
                handler_threads: 3,
                wire_stride: 1,
                cold_methods: 6,
                cold_pad: 120,
            },
        }
    }

    /// Builds the service program at the default microservice runtime
    /// scale (a smaller runtime share, so framework startup dominates the
    /// measurement, as in the paper's helloworld setup).
    pub fn program(&self) -> Program {
        let scale = RuntimeScale {
            modules: 50,
            ..RuntimeScale::default()
        };
        self.program_at(&scale)
    }

    /// Builds the service program with an explicit runtime scale.
    pub fn program_at(&self, scale: &RuntimeScale) -> Program {
        build_service(&self.spec(), scale)
    }
}

fn build_service(spec: &FrameworkSpec, scale: &RuntimeScale) -> Program {
    let mut pb = ProgramBuilder::new();
    let rt = install_runtime(&mut pb, scale);

    // ---- framework substrate ------------------------------------------
    let props = pb.add_class(&format!("{}.Props", spec.pkg), None);
    let f_prop_key = pb.add_instance_field(props, "key", TypeRef::Int);
    let f_prop_ord = pb.add_instance_field(props, "ord", TypeRef::Int);

    let bean = pb.add_class(&format!("{}.Bean", spec.pkg), None);
    let f_bean_id = pb.add_instance_field(bean, "id", TypeRef::Int);
    let f_bean_name = pb.add_instance_field(bean, "name", TypeRef::Str);
    let f_bean_dep = pb.add_instance_field(bean, "dep", TypeRef::Object(bean));
    let f_bean_wired = pb.add_instance_field(bean, "wired", TypeRef::Bool);
    let f_bean_props =
        pb.add_instance_field(bean, "props", TypeRef::array_of(TypeRef::Object(props)));
    // Some components keep their properties in an alternate field (a
    // different container flavour); whether the bean occupying a registry
    // slot does so depends on the shuffled initialization order, so the
    // discovery path of its properties differs across builds — the same
    // multiple-paths weakness the runtime library exhibits.
    let f_bean_alt_props =
        pb.add_instance_field(bean, "altProps", TypeRef::array_of(TypeRef::Object(props)));
    let f_bean_blob = pb.add_instance_field(bean, "config", TypeRef::array_of(TypeRef::Int));

    let route = pb.add_class(&format!("{}.Route", spec.pkg), None);
    let f_route_path = pb.add_instance_field(route, "path", TypeRef::Str);
    let f_route_handler = pb.add_instance_field(route, "handler", TypeRef::Int);

    let container = pb.add_class(&format!("{}.Container", spec.pkg), None);
    let f_beans = pb.add_static_field(container, "BEANS", TypeRef::array_of(TypeRef::Object(bean)));
    let f_nbeans = pb.add_static_field(container, "NBEANS", TypeRef::Int);
    let f_routes = pb.add_static_field(
        container,
        "ROUTES",
        TypeRef::array_of(TypeRef::Object(route)),
    );
    let f_cold = pb.add_static_field(container, "COLDINIT", TypeRef::Bool);
    {
        let cl = pb.declare_clinit(container);
        let mut f = pb.body(cl);
        let n = f.iconst(spec.components as i64 + 1);
        let beans = f.new_array(TypeRef::Object(bean), n);
        f.put_static(f_beans, beans);
        let zero = f.iconst(0);
        f.put_static(f_nbeans, zero);
        let nr = f.iconst(spec.routes as i64);
        let routes = f.new_array(TypeRef::Object(route), nr);
        let from = f.iconst(0);
        f.for_range(from, nr, |f, i| {
            let r = f.new_object(route);
            // Unique interned route paths dominate string content.
            let path = f.sconst("/api/endpoint");
            f.put_field(r, f_route_path, path);
            f.put_field(r, f_route_handler, i);
            f.array_set(routes, i, r);
        });
        f.put_static(f_routes, routes);
        f.ret(None);
        pb.finish_body(cl, f);
    }
    // The container must exist before any component registers; components
    // then initialize in a shuffled (parallel) order among themselves.
    let group = 9_000;
    pb.set_init_group(container, group - 1);

    // ---- components -----------------------------------------------------
    let mut wire_methods: Vec<MethodId> = vec![];
    let mut cold_refs: Vec<MethodId> = vec![];
    for c in 0..spec.components {
        let cls = pb.add_class(&format!("{}.c{c:03}.Component", spec.pkg), None);
        pb.set_init_group(cls, group);

        // clinit: allocate and register the bean (slot depends on the
        // non-deterministic initializer order).
        let cl = pb.declare_clinit(cls);
        let mut f = pb.body(cl);
        let b = f.new_object(bean);
        let name = f.sconst(&format!("{}.c{c:03}.Component", spec.pkg));
        f.put_field(b, f_bean_name, name);
        let n = f.get_static(f_nbeans);
        f.put_field(b, f_bean_id, n);
        // Chain to the previously registered bean.
        let zero = f.iconst(0);
        let has_prev = f.gt(n, zero);
        f.if_then(has_prev, |f| {
            let beans = f.get_static(f_beans);
            let one = f.iconst(1);
            let prev_idx = f.sub(n, one);
            let prev = f.array_get(beans, prev_idx);
            f.put_field(b, f_bean_dep, prev);
        });
        // Per-component configuration properties; `ord` embeds the
        // registration order (divergent content across builds).
        let np = f.iconst(12);
        let parr = f.new_array(TypeRef::Object(props), np);
        let from = f.iconst(0);
        f.for_range(from, np, |f, i| {
            let pr = f.new_object(props);
            f.put_field(pr, f_prop_key, i);
            let ord = f.mul(n, i);
            f.put_field(pr, f_prop_ord, ord);
            f.array_set(parr, i, pr);
        });
        if c % 32 == 0 {
            f.put_field(b, f_bean_alt_props, parr);
        } else {
            f.put_field(b, f_bean_props, parr);
        }
        // Cold per-component configuration payload (parsed lazily, never at
        // startup) — it spaces the beans out across `.svm_heap` pages the
        // way real framework metadata does.
        let blob_len = f.iconst(480);
        let blob = f.new_array(TypeRef::Int, blob_len);
        let from = f.iconst(0);
        f.for_range(from, blob_len, |f, i| {
            let v = f.mul(i, i);
            f.array_set(blob, i, v);
        });
        f.put_field(b, f_bean_blob, blob);
        let beans = f.get_static(f_beans);
        f.array_set(beans, n, b);
        let one = f.iconst(1);
        let n1 = f.add(n, one);
        f.put_static(f_nbeans, n1);
        f.ret(None);
        pb.finish_body(cl, f);

        // Hot wiring method (executed at startup for 1-in-wire_stride
        // components).
        let wire = pb.declare_static(cls, "wire", &[TypeRef::Int], Some(TypeRef::Int));
        let mut f = pb.body(wire);
        let slot = f.param(0);
        let beans = f.get_static(f_beans);
        let b = f.array_get(beans, slot);
        let t = f.bconst(true);
        f.put_field(b, f_bean_wired, t);
        let dep = f.get_field(b, f_bean_dep);
        let null = f.null();
        let has_dep = f.bin(BinOp::Ne, dep, null);
        let out = f.iconst(0);
        f.if_then(has_dep, |f| {
            let did = f.get_field(dep, f_bean_id);
            f.assign(out, did);
        });
        // Read a few of this component's configuration properties; the
        // occupant of this slot may keep them in either field.
        let parr = f.local();
        let primary = f.get_field(b, f_bean_props);
        f.assign(parr, primary);
        let null2 = f.null();
        let missing = f.bin(BinOp::Eq, primary, null2);
        f.if_then(missing, |f| {
            let alt = f.get_field(b, f_bean_alt_props);
            f.assign(parr, alt);
        });
        let from = f.iconst(0);
        let three = f.iconst(3);
        f.for_range(from, three, |f, i| {
            let pr = f.array_get(parr, i);
            let v = f.get_field(pr, f_prop_ord);
            let s2 = f.add(out, v);
            f.assign(out, s2);
        });
        f.ret(Some(out));
        pb.finish_body(wire, f);
        wire_methods.push(wire);

        // Cold lifecycle methods.
        for k in 0..spec.cold_methods {
            let cold = pb.declare_static(cls, &format!("lifecycle{k}"), &[], Some(TypeRef::Int));
            let mut f = pb.body(cold);
            let s = f.sconst(&format!("{}.c{c:03}.lifecycle{k}", spec.pkg));
            let len = f.str_len(s);
            let d = f.dconst(c as f64 + k as f64 * 0.25);
            let di = f.un(nimage_ir::UnOp::DoubleToInt, d);
            let mut v = f.add(len, di);
            for _ in 0..spec.cold_pad {
                let one = f.iconst(1);
                v = f.add(v, one);
            }
            f.ret(Some(v));
            pb.finish_body(cold, f);
            cold_refs.push(cold);
        }
    }

    // ---- handler thread -------------------------------------------------
    let server = pb.add_class(&format!("{}.Server", spec.pkg), None);

    // handle(): scan the route table, read a bean, respond.
    let handle = pb.declare_static(server, "handle", &[], None);
    let mut f = pb.body(handle);
    let routes = f.get_static(f_routes);
    let n = f.array_len(routes);
    let best = f.iconst(0);
    let from = f.iconst(0);
    f.for_range(from, n, |f, i| {
        let r = f.array_get(routes, i);
        let path = f.get_field(r, f_route_path);
        let len = f.str_len(path);
        let hid = f.get_field(r, f_route_handler);
        let score = f.add(len, hid);
        let better = f.gt(score, best);
        f.if_then(better, |f| {
            f.assign(best, score);
        });
    });
    let beans = f.get_static(f_beans);
    let zero = f.iconst(0);
    let b0 = f.array_get(beans, zero);
    let name = f.get_field(b0, f_bean_name);
    let hello = f.sconst("Hello, World!");
    let body = f.str_concat(hello, name);
    let blen = f.str_len(body);
    let status = f.iconst(200);
    let _ = blen;
    f.intrinsic(Intrinsic::Respond, &[status], false);
    f.ret(None);
    pb.finish_body(handle, f);

    // worker(): wire a share of the container, then serve.
    let worker = pb.declare_static(server, "worker", &[TypeRef::Int], None);
    let mut f = pb.body(worker);
    let tid = f.param(0);
    let acc = f.iconst(0);
    for (c, &wire) in wire_methods.iter().enumerate() {
        if c % spec.wire_stride == 0 && c % spec.handler_threads == 0 {
            // Thread 0's share is wired in the worker itself; other shares
            // are wired by main before spawning. Keeping a per-thread share
            // here gives handler threads their own first-touch pattern.
            let slot = f.iconst(c as i64);
            let v = f.call_static(wire, &[slot], true).unwrap();
            let s = f.add(acc, v);
            f.assign(acc, s);
        }
    }
    let zero = f.iconst(0);
    let first = f.eq(tid, zero);
    f.if_then(first, |f| {
        f.call_static(handle, &[], false);
    });
    // Park: wait for more requests (runs until the harness kills us).
    f.while_loop(|f| f.bconst(true), |_f| {});
    f.ret(None);
    pb.finish_body(worker, f);

    // main(): boot runtime, wire the non-thread share, keep cold code
    // reachable, spawn handlers, park in the accept loop.
    let main = pb.declare_static(server, "main", &[], None);
    let mut f = pb.body(main);
    let _boot = f.call_static(rt.boot, &[], true).unwrap();
    let take_cold = f.get_static(f_cold);
    f.if_then(take_cold, |f| {
        for &m in &cold_refs {
            f.call_static(m, &[], false);
        }
    });
    let acc = f.iconst(0);
    for (c, &wire) in wire_methods.iter().enumerate() {
        if c % spec.wire_stride == 0 && c % spec.handler_threads != 0 {
            let slot = f.iconst(c as i64);
            let v = f.call_static(wire, &[slot], true).unwrap();
            let s = f.add(acc, v);
            f.assign(acc, s);
        }
    }
    for t in 0..spec.handler_threads {
        let tid = f.iconst(t as i64);
        f.spawn(worker, &[tid]);
    }
    f.while_loop(|f| f.bconst(true), |_f| {});
    f.ret(None);
    pb.finish_body(main, f);
    pb.set_entry(main);

    pb.build().expect("service program validates")
}
