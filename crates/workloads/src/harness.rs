//! The AWFY-style benchmark harness: a `Benchmark` base class with virtual
//! dispatch, the suite's deterministic `Random`, and the standard `main`
//! driver (boot the runtime, construct the benchmark, run inner
//! iterations, return the checksum).

use nimage_ir::{ClassId, MethodId, ProgramBuilder, SelectorId, TypeRef};

use crate::runtime::RuntimeLib;

/// Handles into the installed harness.
#[derive(Debug, Clone)]
pub struct Harness {
    /// `awfy.Benchmark`, the abstract base class.
    pub benchmark_cls: ClassId,
    /// The `benchmark/0` selector (virtual, returns int).
    pub benchmark_sel: SelectorId,
    /// `awfy.Random`.
    pub random_cls: ClassId,
    /// `awfy.Random.next()` selector (virtual, returns int).
    pub next_sel: SelectorId,
    /// Field `awfy.Random.seed`.
    pub random_seed: nimage_ir::FieldId,
}

/// Installs the harness classes.
pub fn install_harness(pb: &mut ProgramBuilder) -> Harness {
    let benchmark_cls = pb.add_class("awfy.Benchmark", None);
    let base_bench = pb.declare_virtual(benchmark_cls, "benchmark", &[], Some(TypeRef::Int));
    let mut f = pb.body(base_bench);
    let v = f.iconst(0);
    f.ret(Some(v));
    pb.finish_body(base_bench, f);
    let benchmark_sel = pb.intern_selector("benchmark", 0);

    // AWFY's deterministic Random: seed = (seed * 1309 + 13849) & 65535.
    let random_cls = pb.add_class("awfy.Random", None);
    let random_seed = pb.add_instance_field(random_cls, "seed", TypeRef::Int);
    let next = pb.declare_virtual(random_cls, "next", &[], Some(TypeRef::Int));
    let mut f = pb.body(next);
    let this = f.this();
    let seed = f.get_field(this, random_seed);
    let a = f.iconst(1309);
    let b = f.iconst(13849);
    let mask = f.iconst(65535);
    let t1 = f.mul(seed, a);
    let t2 = f.add(t1, b);
    let t3 = f.bin(nimage_ir::BinOp::And, t2, mask);
    f.put_field(this, random_seed, t3);
    f.ret(Some(t3));
    pb.finish_body(next, f);
    let next_sel = pb.intern_selector("next", 0);

    Harness {
        benchmark_cls,
        benchmark_sel,
        random_cls,
        next_sel,
        random_seed,
    }
}

/// Declares the program `main`: boot the runtime, instantiate `bench_cls`
/// (must subclass `awfy.Benchmark`), run `iterations` inner iterations
/// through the virtual `benchmark()` and return the accumulated checksum.
pub fn install_main(
    pb: &mut ProgramBuilder,
    rt: &RuntimeLib,
    h: &Harness,
    bench_cls: ClassId,
    iterations: i64,
) -> MethodId {
    let main_cls = pb.add_class("awfy.Run", None);
    let main = pb.declare_static(main_cls, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(main);
    let boot_v = f.call_static(rt.boot, &[], true).unwrap();
    let bench = f.new_object(bench_cls);
    let acc = f.iconst(0);
    let from = f.iconst(0);
    let to = f.iconst(iterations);
    f.for_range(from, to, |f, _i| {
        let v = f
            .call_virtual(h.benchmark_cls, h.benchmark_sel, &[bench], true)
            .unwrap();
        let s = f.add(acc, v);
        f.assign(acc, s);
    });
    // Fold the boot checksum in modulo a large prime so benchmark results
    // stay recognizable.
    let zero = f.iconst(0);
    let boot_bit = f.ne(boot_v, zero);
    let _ = boot_bit;
    f.ret(Some(acc));
    pb.finish_body(main, f);
    pb.set_entry(main);
    main
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{install_runtime, RuntimeScale};
    use nimage_analysis::{analyze, AnalysisConfig};
    use nimage_compiler::{compile, InlineConfig, InstrumentConfig};
    use nimage_heap::{snapshot, HeapBuildConfig};
    use nimage_image::{BinaryImage, ImageOptions};
    use nimage_vm::{RtValue, StopWhen, Vm, VmConfig};

    /// A trivial benchmark returning 7 per iteration.
    #[test]
    fn harness_drives_virtual_benchmark() {
        let mut pb = ProgramBuilder::new();
        let rt = install_runtime(&mut pb, &RuntimeScale::small());
        let h = install_harness(&mut pb);
        let cls = pb.add_class("awfy.trivial.Trivial", Some(h.benchmark_cls));
        let m = pb.declare_virtual(cls, "benchmark", &[], Some(TypeRef::Int));
        let mut f = pb.body(m);
        let v = f.iconst(7);
        f.ret(Some(v));
        pb.finish_body(m, f);
        install_main(&mut pb, &rt, &h, cls, 3);
        let p = pb.build().unwrap();

        let reach = analyze(&p, &AnalysisConfig::default());
        let cp = compile(
            &p,
            reach,
            &InlineConfig::default(),
            InstrumentConfig::NONE,
            None,
        );
        let snap = snapshot(&p, &cp, &HeapBuildConfig::default()).unwrap();
        let img = BinaryImage::build(&cp, &snap, None, None, ImageOptions::default());
        let r = Vm::new(&p, &cp, &snap, &img, VmConfig::default())
            .run(StopWhen::Exit)
            .unwrap();
        assert_eq!(r.entry_return, Some(RtValue::Int(21)));
    }

    #[test]
    fn random_sequence_matches_awfy() {
        // Reference: seed 74755; first values 22896, 34761, 34014.
        let mut pb = ProgramBuilder::new();
        let rt = install_runtime(&mut pb, &RuntimeScale::small());
        let h = install_harness(&mut pb);
        let cls = pb.add_class("awfy.trivial.R", Some(h.benchmark_cls));
        let m = pb.declare_virtual(cls, "benchmark", &[], Some(TypeRef::Int));
        let mut f = pb.body(m);
        let r = f.new_object(h.random_cls);
        let seed = f.iconst(74755);
        f.put_field(r, h.random_seed, seed);
        let v1 = f
            .call_virtual(h.random_cls, h.next_sel, &[r], true)
            .unwrap();
        let v2 = f
            .call_virtual(h.random_cls, h.next_sel, &[r], true)
            .unwrap();
        let v3 = f
            .call_virtual(h.random_cls, h.next_sel, &[r], true)
            .unwrap();
        let t = f.add(v1, v2);
        let t = f.add(t, v3);
        f.ret(Some(t));
        pb.finish_body(m, f);
        install_main(&mut pb, &rt, &h, cls, 1);
        let p = pb.build().unwrap();
        let reach = analyze(&p, &AnalysisConfig::default());
        let cp = compile(
            &p,
            reach,
            &InlineConfig::default(),
            InstrumentConfig::NONE,
            None,
        );
        let snap = snapshot(&p, &cp, &HeapBuildConfig::default()).unwrap();
        let img = BinaryImage::build(&cp, &snap, None, None, ImageOptions::default());
        let r = Vm::new(&p, &cp, &snap, &img, VmConfig::default())
            .run(StopWhen::Exit)
            .unwrap();
        assert_eq!(r.entry_return, Some(RtValue::Int(22896 + 34761 + 34014)));
    }
}
