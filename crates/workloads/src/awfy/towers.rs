//! Towers: Towers of Hanoi with linked-list disk piles, counting moves.
//! Expected per-iteration result for 10 disks: 1023.

use nimage_ir::{ClassId, ProgramBuilder, TypeRef};

use crate::harness::Harness;

pub(crate) fn install(pb: &mut ProgramBuilder, h: &Harness) -> ClassId {
    // Disk: a linked-list node.
    let disk = pb.add_class("awfy.towers.TowersDisk", None);
    let f_size = pb.add_instance_field(disk, "size", TypeRef::Int);
    let f_next = pb.add_instance_field(disk, "next", TypeRef::Object(disk));

    let cls = pb.add_class("awfy.towers.Towers", Some(h.benchmark_cls));
    let f_piles = pb.add_instance_field(cls, "piles", TypeRef::array_of(TypeRef::Object(disk)));
    let f_moves = pb.add_instance_field(cls, "movesDone", TypeRef::Int);

    // pushDisk(this, d, pile)
    let push_disk = pb.declare_virtual(
        cls,
        "pushDisk",
        &[TypeRef::Object(disk), TypeRef::Int],
        None,
    );
    let mut f = pb.body(push_disk);
    let this = f.this();
    let d = f.param(1);
    let pile = f.param(2);
    let piles = f.get_field(this, f_piles);
    let top = f.array_get(piles, pile);
    f.put_field(d, f_next, top);
    f.array_set(piles, pile, d);
    f.ret(None);
    pb.finish_body(push_disk, f);

    // popDisk(this, pile) -> Disk
    let pop_disk = pb.declare_virtual(cls, "popDisk", &[TypeRef::Int], Some(TypeRef::Object(disk)));
    let mut f = pb.body(pop_disk);
    let this = f.this();
    let pile = f.param(1);
    let piles = f.get_field(this, f_piles);
    let top = f.array_get(piles, pile);
    let next = f.get_field(top, f_next);
    f.array_set(piles, pile, next);
    let null = f.null();
    f.put_field(top, f_next, null);
    f.ret(Some(top));
    pb.finish_body(pop_disk, f);

    // moveTopDisk(this, from, to)
    let move_top = pb.declare_virtual(cls, "moveTopDisk", &[TypeRef::Int, TypeRef::Int], None);
    let pop_sel = pb.intern_selector("popDisk", 1);
    let push_sel = pb.intern_selector("pushDisk", 2);
    let mut f = pb.body(move_top);
    let this = f.this();
    let from = f.param(1);
    let to = f.param(2);
    let d = f.call_virtual(cls, pop_sel, &[this, from], true).unwrap();
    f.call_virtual(cls, push_sel, &[this, d, to], false);
    let moves = f.get_field(this, f_moves);
    let one = f.iconst(1);
    let m1 = f.add(moves, one);
    f.put_field(this, f_moves, m1);
    f.ret(None);
    pb.finish_body(move_top, f);

    // moveDisks(this, n, from, to)
    let move_disks = pb.declare_virtual(
        cls,
        "moveDisks",
        &[TypeRef::Int, TypeRef::Int, TypeRef::Int],
        None,
    );
    let move_top_sel = pb.intern_selector("moveTopDisk", 2);
    let move_disks_sel = pb.intern_selector("moveDisks", 3);
    let mut f = pb.body(move_disks);
    let this = f.this();
    let n = f.param(1);
    let from = f.param(2);
    let to = f.param(3);
    let one = f.iconst(1);
    let single = f.eq(n, one);
    f.if_then_else(
        single,
        |f| {
            f.call_virtual(cls, move_top_sel, &[this, from, to], false);
            f.ret(None);
        },
        |f| {
            // other = 3 - from - to  (piles are 0, 1, 2)
            let three = f.iconst(3);
            let sum = f.add(from, to);
            let other = f.sub(three, sum);
            let n1 = f.sub(n, one);
            f.call_virtual(cls, move_disks_sel, &[this, n1, from, other], false);
            f.call_virtual(cls, move_top_sel, &[this, from, to], false);
            f.call_virtual(cls, move_disks_sel, &[this, n1, other, to], false);
            f.ret(None);
        },
    );
    pb.finish_body(move_disks, f);

    let bench = pb.declare_virtual(cls, "benchmark", &[], Some(TypeRef::Int));
    let mut f = pb.body(bench);
    let this = f.this();
    let three = f.iconst(3);
    let piles = f.new_array(TypeRef::Object(disk), three);
    f.put_field(this, f_piles, piles);
    let zero = f.iconst(0);
    f.put_field(this, f_moves, zero);
    // Build pile 0 with 10 disks, largest first.
    let n_disks = f.iconst(10);
    let one = f.iconst(1);
    let i = f.sub(n_disks, one);
    f.while_loop(
        |f| {
            let zero = f.iconst(0);
            f.ge(i, zero)
        },
        |f| {
            let d = f.new_object(disk);
            f.put_field(d, f_size, i);
            f.call_virtual(cls, push_sel, &[this, d, zero], false);
            let one = f.iconst(1);
            let i1 = f.sub(i, one);
            f.assign(i, i1);
        },
    );
    let two = f.iconst(2);
    f.call_virtual(cls, move_disks_sel, &[this, n_disks, zero, two], false);
    let moves = f.get_field(this, f_moves);
    f.ret(Some(moves));
    pb.finish_body(bench, f);

    cls
}
