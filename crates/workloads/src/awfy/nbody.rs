//! NBody: the classic 5-body solar-system simulation over double arrays.
//! Returns the system energy scaled to an integer checksum.

use nimage_ir::{ClassId, Intrinsic, Local, ProgramBuilder, TypeRef, UnOp};

use crate::harness::Harness;

pub(crate) fn install(pb: &mut ProgramBuilder, h: &Harness) -> ClassId {
    let body = pb.add_class("awfy.nbody.Body", None);
    let f_x = pb.add_instance_field(body, "x", TypeRef::Double);
    let f_y = pb.add_instance_field(body, "y", TypeRef::Double);
    let f_z = pb.add_instance_field(body, "z", TypeRef::Double);
    let f_vx = pb.add_instance_field(body, "vx", TypeRef::Double);
    let f_vy = pb.add_instance_field(body, "vy", TypeRef::Double);
    let f_vz = pb.add_instance_field(body, "vz", TypeRef::Double);
    let f_mass = pb.add_instance_field(body, "mass", TypeRef::Double);

    let cls = pb.add_class("awfy.nbody.NBody", Some(h.benchmark_cls));

    // makeBody(x, y, z, vx, vy, vz, mass) -> Body
    let make = pb.declare_static(
        cls,
        "makeBody",
        &[
            TypeRef::Double,
            TypeRef::Double,
            TypeRef::Double,
            TypeRef::Double,
            TypeRef::Double,
            TypeRef::Double,
            TypeRef::Double,
        ],
        Some(TypeRef::Object(body)),
    );
    let mut f = pb.body(make);
    let b = f.new_object(body);
    for (i, fld) in [f_x, f_y, f_z, f_vx, f_vy, f_vz, f_mass]
        .into_iter()
        .enumerate()
    {
        f.put_field(b, fld, Local(i as u16));
    }
    f.ret(Some(b));
    pb.finish_body(make, f);

    // advance(bodies, dt)
    let advance = pb.declare_static(
        cls,
        "advance",
        &[TypeRef::array_of(TypeRef::Object(body)), TypeRef::Double],
        None,
    );
    let mut f = pb.body(advance);
    let bodies = f.param(0);
    let dt = f.param(1);
    let n = f.array_len(bodies);
    let from = f.iconst(0);
    f.for_range(from, n, |f, i| {
        let bi = f.array_get(bodies, i);
        let one = f.iconst(1);
        let j = f.add(i, one);
        f.while_loop(
            |f| f.lt(j, n),
            |f| {
                let bj = f.array_get(bodies, j);
                let xi = f.get_field(bi, f_x);
                let xj = f.get_field(bj, f_x);
                let dx = f.sub(xi, xj);
                let yi = f.get_field(bi, f_y);
                let yj = f.get_field(bj, f_y);
                let dy = f.sub(yi, yj);
                let zi = f.get_field(bi, f_z);
                let zj = f.get_field(bj, f_z);
                let dz = f.sub(zi, zj);
                let dx2 = f.mul(dx, dx);
                let dy2 = f.mul(dy, dy);
                let dz2 = f.mul(dz, dz);
                let s1 = f.add(dx2, dy2);
                let d2 = f.add(s1, dz2);
                let d = f.intrinsic(Intrinsic::Sqrt, &[d2], true).unwrap();
                let d3 = f.mul(d2, d);
                let mag = f.div(dt, d3);

                let mj = f.get_field(bj, f_mass);
                let mi = f.get_field(bi, f_mass);
                let mj_mag = f.mul(mj, mag);
                let mi_mag = f.mul(mi, mag);

                let vxi = f.get_field(bi, f_vx);
                let t = f.mul(dx, mj_mag);
                let vxi2 = f.sub(vxi, t);
                f.put_field(bi, f_vx, vxi2);
                let vyi = f.get_field(bi, f_vy);
                let t = f.mul(dy, mj_mag);
                let vyi2 = f.sub(vyi, t);
                f.put_field(bi, f_vy, vyi2);
                let vzi = f.get_field(bi, f_vz);
                let t = f.mul(dz, mj_mag);
                let vzi2 = f.sub(vzi, t);
                f.put_field(bi, f_vz, vzi2);

                let vxj = f.get_field(bj, f_vx);
                let t = f.mul(dx, mi_mag);
                let vxj2 = f.add(vxj, t);
                f.put_field(bj, f_vx, vxj2);
                let vyj = f.get_field(bj, f_vy);
                let t = f.mul(dy, mi_mag);
                let vyj2 = f.add(vyj, t);
                f.put_field(bj, f_vy, vyj2);
                let vzj = f.get_field(bj, f_vz);
                let t = f.mul(dz, mi_mag);
                let vzj2 = f.add(vzj, t);
                f.put_field(bj, f_vz, vzj2);

                let one = f.iconst(1);
                let j1 = f.add(j, one);
                f.assign(j, j1);
            },
        );
    });
    let from = f.iconst(0);
    f.for_range(from, n, |f, i| {
        let b = f.array_get(bodies, i);
        for (pos, vel) in [(f_x, f_vx), (f_y, f_vy), (f_z, f_vz)] {
            let p = f.get_field(b, pos);
            let v = f.get_field(b, vel);
            let dtv = f.mul(dt, v);
            let p1 = f.add(p, dtv);
            f.put_field(b, pos, p1);
        }
    });
    f.ret(None);
    pb.finish_body(advance, f);

    // energy(bodies) -> Double
    let energy = pb.declare_static(
        cls,
        "energy",
        &[TypeRef::array_of(TypeRef::Object(body))],
        Some(TypeRef::Double),
    );
    let mut f = pb.body(energy);
    let bodies = f.param(0);
    let e = f.dconst(0.0);
    let n = f.array_len(bodies);
    let from = f.iconst(0);
    f.for_range(from, n, |f, i| {
        let bi = f.array_get(bodies, i);
        let vx = f.get_field(bi, f_vx);
        let vy = f.get_field(bi, f_vy);
        let vz = f.get_field(bi, f_vz);
        let vx2 = f.mul(vx, vx);
        let vy2 = f.mul(vy, vy);
        let vz2 = f.mul(vz, vz);
        let s = f.add(vx2, vy2);
        let v2 = f.add(s, vz2);
        let m = f.get_field(bi, f_mass);
        let mv2 = f.mul(m, v2);
        let half = f.dconst(0.5);
        let ke = f.mul(half, mv2);
        let e1 = f.add(e, ke);
        f.assign(e, e1);
        let one = f.iconst(1);
        let j = f.add(i, one);
        f.while_loop(
            |f| f.lt(j, n),
            |f| {
                let bj = f.array_get(bodies, j);
                let xi = f.get_field(bi, f_x);
                let xj = f.get_field(bj, f_x);
                let dx = f.sub(xi, xj);
                let yi = f.get_field(bi, f_y);
                let yj = f.get_field(bj, f_y);
                let dy = f.sub(yi, yj);
                let zi = f.get_field(bi, f_z);
                let zj = f.get_field(bj, f_z);
                let dz = f.sub(zi, zj);
                let dx2 = f.mul(dx, dx);
                let dy2 = f.mul(dy, dy);
                let dz2 = f.mul(dz, dz);
                let s1 = f.add(dx2, dy2);
                let d2 = f.add(s1, dz2);
                let d = f.intrinsic(Intrinsic::Sqrt, &[d2], true).unwrap();
                let mi = f.get_field(bi, f_mass);
                let mj = f.get_field(bj, f_mass);
                let mm = f.mul(mi, mj);
                let pe = f.div(mm, d);
                let e1 = f.sub(e, pe);
                f.assign(e, e1);
                let one = f.iconst(1);
                let j1 = f.add(j, one);
                f.assign(j, j1);
            },
        );
    });
    f.ret(Some(e));
    pb.finish_body(energy, f);

    let bench = pb.declare_virtual(cls, "benchmark", &[], Some(TypeRef::Int));
    let mut f = pb.body(bench);
    let five = f.iconst(5);
    let bodies = f.new_array(TypeRef::Object(body), five);
    // Jovian planets data (scaled as in the original CLBG/AWFY benchmark).
    let data: [[f64; 7]; 5] = [
        // Sun (mass = 4π²; velocities fixed up below).
        [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 39.478_417_604_357_43],
        [
            4.841_431_442_464_72,
            -1.160_320_044_027_428_4,
            -0.103_622_044_471_123_77,
            0.606_326_392_995_832_1,
            2.811_986_844_916_26,
            -0.025_218_361_659_887_63,
            0.037_693_674_870_389_5,
        ],
        [
            8.343_366_718_244_58,
            4.124_798_564_124_305,
            -0.403_523_417_114_321_4,
            -1.010_774_346_063_793,
            1.825_662_371_230_411_8,
            0.008_415_761_376_584_154,
            0.011_286_326_131_968_77,
        ],
        [
            12.894_369_562_139_131,
            -15.111_151_401_698_631,
            -0.223_307_578_892_655_74,
            1.082_791_006_441_535_4,
            0.868_713_018_169_608_2,
            -0.010_832_637_401_363_636,
            0.001_723_724_057_059_711,
        ],
        [
            15.379_697_114_850_917,
            -25.919_314_609_987_964,
            0.179_258_772_950_371_18,
            0.979_090_732_243_898,
            0.594_698_998_647_676_2,
            -0.034_755_955_504_078_104,
            0.002_033_686_869_924_631_6,
        ],
    ];
    for (i, row) in data.iter().enumerate() {
        let args: Vec<Local> = row.iter().map(|&v| f.dconst(v)).collect();
        let b = f.call_static(make, &args, true).unwrap();
        let idx = f.iconst(i as i64);
        f.array_set(bodies, idx, b);
    }
    // Offset the sun's momentum.
    let zero = f.iconst(0);
    let sun = f.array_get(bodies, zero);
    let sun_mass = f.get_field(sun, f_mass);
    for (vel, _) in [(f_vx, 0), (f_vy, 1), (f_vz, 2)] {
        let p = f.dconst(0.0);
        let one = f.iconst(1);
        let i = f.copy(one);
        let n = f.array_len(bodies);
        f.while_loop(
            |f| f.lt(i, n),
            |f| {
                let b = f.array_get(bodies, i);
                let v = f.get_field(b, vel);
                let m = f.get_field(b, f_mass);
                let mv = f.mul(v, m);
                let p1 = f.add(p, mv);
                f.assign(p, p1);
                let one = f.iconst(1);
                let i1 = f.add(i, one);
                f.assign(i, i1);
            },
        );
        let neg = f.un(UnOp::Neg, p);
        let v0 = f.div(neg, sun_mass);
        f.put_field(sun, vel, v0);
    }

    let dt = f.dconst(0.01);
    let from = f.iconst(0);
    let steps = f.iconst(30);
    f.for_range(from, steps, |f, _| {
        f.call_static(advance, &[bodies, dt], false);
    });
    let e = f.call_static(energy, &[bodies], true).unwrap();
    let scale = f.dconst(1_000_000.0);
    let scaled = f.mul(e, scale);
    let out = f.un(UnOp::DoubleToInt, scaled);
    f.ret(Some(out));
    pb.finish_body(bench, f);

    cls
}
