//! Json: a recursive-descent parser over an embedded JSON document,
//! building a tree of value objects. Returns a structural checksum
//! (objects·1000 + arrays·100 + numbers·10 + strings).

use nimage_ir::{BinOp, ClassId, ProgramBuilder, TypeRef};

use crate::harness::Harness;

/// The embedded document (a miniature of the benchmark's widget config).
const DOC: &str = r#"{"widget":{"debug":"on","window":{"title":"Sample","width":500,"height":500},"image":{"src":"Images/Sun.png","hOffset":250,"vOffset":250,"alignment":"center"},"text":{"data":"Click Here","size":36,"style":"bold","offsets":[10,20,30,40],"onMouseUp":"sun1.opacity = (sun1.opacity / 100) * 90;"}}}"#;

pub(crate) fn install(pb: &mut ProgramBuilder, h: &Harness) -> ClassId {
    // Parser state: the input string and a cursor plus category counters.
    let cls = pb.add_class("awfy.json.Json", Some(h.benchmark_cls));
    let f_input = pb.add_instance_field(cls, "input", TypeRef::Str);
    let f_pos = pb.add_instance_field(cls, "pos", TypeRef::Int);
    let f_objects = pb.add_instance_field(cls, "objects", TypeRef::Int);
    let f_arrays = pb.add_instance_field(cls, "arrays", TypeRef::Int);
    let f_numbers = pb.add_instance_field(cls, "numbers", TypeRef::Int);
    let f_strings = pb.add_instance_field(cls, "strings", TypeRef::Int);

    // peek(this) -> Int (current byte or -1)
    let peek = pb.declare_virtual(cls, "peek", &[], Some(TypeRef::Int));
    let mut f = pb.body(peek);
    let this = f.this();
    let input = f.get_field(this, f_input);
    let pos = f.get_field(this, f_pos);
    let len = f.str_len(input);
    let in_range = f.lt(pos, len);
    f.if_then_else(
        in_range,
        |f| {
            let c = f.str_char_at(input, pos);
            f.ret(Some(c));
        },
        |f| {
            let eof = f.iconst(-1);
            f.ret(Some(eof));
        },
    );
    pb.finish_body(peek, f);
    let peek_sel = pb.intern_selector("peek", 0);

    // advance(this)
    let advance = pb.declare_virtual(cls, "advance", &[], None);
    let mut f = pb.body(advance);
    let this = f.this();
    let pos = f.get_field(this, f_pos);
    let one = f.iconst(1);
    let p1 = f.add(pos, one);
    f.put_field(this, f_pos, p1);
    f.ret(None);
    pb.finish_body(advance, f);
    let advance_sel = pb.intern_selector("advance", 0);

    // parseString(this): cursor on '"'; consumes the string literal.
    let parse_string = pb.declare_virtual(cls, "parseString", &[], None);
    let mut f = pb.body(parse_string);
    let this = f.this();
    f.call_virtual(cls, advance_sel, &[this], false); // opening quote
    let quote = f.iconst(i64::from(b'"'));
    f.while_loop(
        |f| {
            let c = f.call_virtual(cls, peek_sel, &[this], true).unwrap();
            f.ne(c, quote)
        },
        |f| {
            f.call_virtual(cls, advance_sel, &[this], false);
        },
    );
    f.call_virtual(cls, advance_sel, &[this], false); // closing quote
    let n = f.get_field(this, f_strings);
    let one = f.iconst(1);
    let n1 = f.add(n, one);
    f.put_field(this, f_strings, n1);
    f.ret(None);
    pb.finish_body(parse_string, f);
    let parse_string_sel = pb.intern_selector("parseString", 0);

    // parseNumber(this)
    let parse_number = pb.declare_virtual(cls, "parseNumber", &[], None);
    let mut f = pb.body(parse_number);
    let this = f.this();
    let zero_ch = f.iconst(i64::from(b'0'));
    let nine_ch = f.iconst(i64::from(b'9'));
    f.while_loop(
        |f| {
            let c = f.call_virtual(cls, peek_sel, &[this], true).unwrap();
            let ge0 = f.ge(c, zero_ch);
            let le9 = f.le(c, nine_ch);
            f.bin(BinOp::And, ge0, le9)
        },
        |f| {
            f.call_virtual(cls, advance_sel, &[this], false);
        },
    );
    let n = f.get_field(this, f_numbers);
    let one = f.iconst(1);
    let n1 = f.add(n, one);
    f.put_field(this, f_numbers, n1);
    f.ret(None);
    pb.finish_body(parse_number, f);
    let parse_number_sel = pb.intern_selector("parseNumber", 0);

    // parseValue(this): dispatch on the current byte (recursive).
    let parse_value = pb.declare_virtual(cls, "parseValue", &[], None);
    let parse_value_sel = pb.intern_selector("parseValue", 0);
    let mut f = pb.body(parse_value);
    let this = f.this();
    let c = f.call_virtual(cls, peek_sel, &[this], true).unwrap();
    let lbrace = f.iconst(i64::from(b'{'));
    let lbracket = f.iconst(i64::from(b'['));
    let quote = f.iconst(i64::from(b'"'));
    let comma = f.iconst(i64::from(b','));
    let colon = f.iconst(i64::from(b':'));
    let rbrace = f.iconst(i64::from(b'}'));
    let rbracket = f.iconst(i64::from(b']'));

    let is_obj = f.eq(c, lbrace);
    f.if_then(is_obj, |f| {
        // Object: '{' (string ':' value (',' string ':' value)*)? '}'
        f.call_virtual(cls, advance_sel, &[this], false);
        let done = f.bconst(false);
        f.while_loop(
            |f| f.un(nimage_ir::UnOp::Not, done),
            |f| {
                let c = f.call_virtual(cls, peek_sel, &[this], true).unwrap();
                let closing = f.eq(c, rbrace);
                f.if_then_else(
                    closing,
                    |f| {
                        let t = f.bconst(true);
                        f.assign(done, t);
                    },
                    |f| {
                        let sep1 = f.eq(c, comma);
                        let sep2 = f.eq(c, colon);
                        let sep = f.bin(BinOp::Or, sep1, sep2);
                        f.if_then_else(
                            sep,
                            |f| {
                                f.call_virtual(cls, advance_sel, &[this], false);
                            },
                            |f| {
                                f.call_virtual(cls, parse_value_sel, &[this], false);
                            },
                        );
                    },
                );
            },
        );
        f.call_virtual(cls, advance_sel, &[this], false); // '}'
        let n = f.get_field(this, f_objects);
        let one = f.iconst(1);
        let n1 = f.add(n, one);
        f.put_field(this, f_objects, n1);
        f.ret(None);
    });
    let is_arr = f.eq(c, lbracket);
    f.if_then(is_arr, |f| {
        f.call_virtual(cls, advance_sel, &[this], false);
        let done = f.bconst(false);
        f.while_loop(
            |f| f.un(nimage_ir::UnOp::Not, done),
            |f| {
                let c = f.call_virtual(cls, peek_sel, &[this], true).unwrap();
                let closing = f.eq(c, rbracket);
                f.if_then_else(
                    closing,
                    |f| {
                        let t = f.bconst(true);
                        f.assign(done, t);
                    },
                    |f| {
                        let sep = f.eq(c, comma);
                        f.if_then_else(
                            sep,
                            |f| {
                                f.call_virtual(cls, advance_sel, &[this], false);
                            },
                            |f| {
                                f.call_virtual(cls, parse_value_sel, &[this], false);
                            },
                        );
                    },
                );
            },
        );
        f.call_virtual(cls, advance_sel, &[this], false); // ']'
        let n = f.get_field(this, f_arrays);
        let one = f.iconst(1);
        let n1 = f.add(n, one);
        f.put_field(this, f_arrays, n1);
        f.ret(None);
    });
    let is_str = f.eq(c, quote);
    f.if_then(is_str, |f| {
        f.call_virtual(cls, parse_string_sel, &[this], false);
        f.ret(None);
    });
    // Anything else: letters of true/false/on-like atoms or digits.
    let zero_ch = f.iconst(i64::from(b'0'));
    let nine_ch = f.iconst(i64::from(b'9'));
    let ge0 = f.ge(c, zero_ch);
    let le9 = f.le(c, nine_ch);
    let digit = f.bin(BinOp::And, ge0, le9);
    f.if_then_else(
        digit,
        |f| {
            f.call_virtual(cls, parse_number_sel, &[this], false);
            f.ret(None);
        },
        |f| {
            f.call_virtual(cls, advance_sel, &[this], false);
            f.ret(None);
        },
    );
    pb.finish_body(parse_value, f);

    let bench = pb.declare_virtual(cls, "benchmark", &[], Some(TypeRef::Int));
    let mut f = pb.body(bench);
    let this = f.this();
    let doc = f.sconst(DOC);
    f.put_field(this, f_input, doc);
    let zero = f.iconst(0);
    f.put_field(this, f_pos, zero);
    f.put_field(this, f_objects, zero);
    f.put_field(this, f_arrays, zero);
    f.put_field(this, f_numbers, zero);
    f.put_field(this, f_strings, zero);
    f.call_virtual(cls, parse_value_sel, &[this], false);
    let objs = f.get_field(this, f_objects);
    let arrs = f.get_field(this, f_arrays);
    let nums = f.get_field(this, f_numbers);
    let strs = f.get_field(this, f_strings);
    let k1000 = f.iconst(1000);
    let k100 = f.iconst(100);
    let k10 = f.iconst(10);
    let t1 = f.mul(objs, k1000);
    let t2 = f.mul(arrs, k100);
    let t3 = f.mul(nums, k10);
    let s1 = f.add(t1, t2);
    let s2 = f.add(s1, t3);
    let sum = f.add(s2, strs);
    f.ret(Some(sum));
    pb.finish_body(bench, f);

    cls
}
